//! Differential battery for the parallel hash-join probe.
//!
//! The join's parallelism contract mirrors the scan executor's: for
//! every inner-table strategy, encoding, and worker count, the join
//! returns the **byte-identical** `QueryResult` of the single-threaded
//! run — row order included — and cold `block_reads` are exact (the
//! sharded buffer pool single-flights concurrent misses, so a parallel
//! cold probe reads each block exactly once, like a serial one).
//!
//! The proptest sweeps `InnerStrategy::ALL` × {Plain, RLE, BitVec, Dict}
//! right-payload encodings × threads {1, 2, 4, 8} over arbitrary data,
//! probe granules, filter cutoffs, and duplicate/unmatched keys, using
//! the 1-thread execution as the oracle (itself checked against a
//! nested-loop oracle by `join_equivalence`).

use matstrat::common::Value;
use matstrat::core::{ExecOptions, InnerStrategy, JoinSpec};
use matstrat::prelude::*;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RIGHT_ENCODINGS: [EncodingKind; 4] = [
    EncodingKind::Plain,
    EncodingKind::Rle,
    EncodingKind::BitVec,
    EncodingKind::Dict,
];

struct JoinFixture {
    db: Database,
    spec: JoinSpec,
}

/// Load a left table (key, payload; key in the encoding under test for
/// the filter path) and a right table (sorted key, payload in the
/// encoding under test).
fn load(
    right_enc: EncodingKind,
    left_rows: &[(Value, Value)],
    right_rows: &[(Value, Value)],
    filter_cutoff: Option<Value>,
) -> JoinFixture {
    let db = Database::in_memory();
    let lk: Vec<Value> = left_rows.iter().map(|r| r.0).collect();
    let lv: Vec<Value> = left_rows.iter().map(|r| r.1).collect();
    let left = db
        .load_projection(
            &ProjectionSpec::new("l")
                .column("k", EncodingKind::Plain, SortOrder::None)
                .column("v", EncodingKind::Plain, SortOrder::None),
            &[&lk, &lv],
        )
        .unwrap();
    let mut sorted = right_rows.to_vec();
    sorted.sort_unstable();
    let rk: Vec<Value> = sorted.iter().map(|r| r.0).collect();
    let rv: Vec<Value> = sorted.iter().map(|r| r.1).collect();
    let right = db
        .load_projection(
            &ProjectionSpec::new("r")
                .column("k", EncodingKind::Plain, SortOrder::Primary)
                .column("v", right_enc, SortOrder::None),
            &[&rk, &rv],
        )
        .unwrap();
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: filter_cutoff.map(|x| (0, Predicate::lt(x))),
        right_filter: None,
        left_output: vec![0, 1],
        right_output: vec![1],
    };
    JoinFixture { db, spec }
}

/// Run the join cold and return everything the contract promises to be
/// deterministic: result bytes, column names, row count, and cold
/// `block_reads`.
fn cold_run(
    f: &JoinFixture,
    inner: InnerStrategy,
    granule: u64,
    threads: usize,
) -> (Vec<Value>, Vec<String>, u64, u64) {
    f.db.store().cold_reset();
    let opts = ExecOptions {
        granule,
        parallelism: threads,
        ..ExecOptions::default()
    };
    let r = match f.db.execute_planned(
        &Statement::JoinTree(JoinTreeSpec::new(vec![f.spec.clone()])),
        &QueryPlan::forced_tree(vec![0], vec![inner]),
        &opts,
    ) {
        Ok(out) => out.rows,
        Err(e) => panic!("{inner:?} threads={threads}: {e}"),
    };
    let reads = f.db.store().meter().snapshot().block_reads;
    (
        r.flat().to_vec(),
        r.column_names.clone(),
        r.num_rows() as u64,
        reads,
    )
}

fn assert_parallel_matches_serial(f: &JoinFixture, granule: u64) {
    for inner in InnerStrategy::ALL {
        let serial = cold_run(f, inner, granule, 1);
        for threads in THREAD_COUNTS {
            let got = cold_run(f, inner, granule, threads);
            assert_eq!(got.0, serial.0, "{inner:?} threads={threads}: result bytes");
            assert_eq!(got.1, serial.1, "{inner:?} threads={threads}: column names");
            assert_eq!(got.2, serial.2, "{inner:?} threads={threads}: rows_out");
            assert_eq!(
                got.3, serial.3,
                "{inner:?} threads={threads}: cold block_reads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn join_identical_at_any_thread_count(
        left in prop::collection::vec((0i64..40, 0i64..1000), 64..1500),
        right in prop::collection::vec((0i64..40, 0i64..8), 1..80),
        enc_idx in 0usize..4,
        has_filter in 0usize..2,
        cutoff in 0i64..42,
        granule_exp in 5u32..10, // granules of 32..512 so workers really split
    ) {
        let cutoff = (has_filter == 1).then_some(cutoff);
        let f = load(RIGHT_ENCODINGS[enc_idx], &left, &right, cutoff);
        assert_parallel_matches_serial(&f, 1 << granule_exp);
    }
}

/// Non-property companion: one fixed FK-joined dataset big enough that
/// every worker of an 8-way probe owns several granules, checked for
/// every inner strategy × right encoding × thread count. Fails loudly
/// outside the proptest lottery.
#[test]
fn fixed_dataset_full_matrix() {
    let left: Vec<(Value, Value)> = (0..6000).map(|i| ((i * 37) % 50, 1000 + i)).collect();
    let right: Vec<(Value, Value)> = (0..50).map(|k| (k, k * 3 % 7)).collect();
    for enc in RIGHT_ENCODINGS {
        let f = load(enc, &left, &right, Some(35));
        assert_parallel_matches_serial(&f, 128);
        // And without the left filter (full FK join).
        let f = load(enc, &left, &right, None);
        assert_parallel_matches_serial(&f, 128);
    }
}

/// Duplicate right keys fan out each match; the fan-out order must also
/// be thread-count-invariant.
#[test]
fn duplicate_right_keys_fan_out_identically() {
    let left: Vec<(Value, Value)> = (0..2000).map(|i| (i % 16, i)).collect();
    let right: Vec<(Value, Value)> = (0..64).map(|i| (i % 16, i * 10)).collect();
    for enc in [EncodingKind::Plain, EncodingKind::Rle] {
        let f = load(enc, &left, &right, None);
        assert_parallel_matches_serial(&f, 64);
    }
}

/// The database-level knob (`set_parallelism`) drives the same path as
/// explicit options, and the planner's join pick runs correctly through
/// `execute` at any worker count.
#[test]
fn database_knob_and_auto_plan_agree() {
    let left: Vec<(Value, Value)> = (0..4000).map(|i| (i % 100, i)).collect();
    let right: Vec<(Value, Value)> = (0..100).map(|k| (k, k + 7)).collect();
    let f = load(EncodingKind::Plain, &left, &right, Some(60));
    let serial =
        f.db.execute_planned(
            &Statement::JoinTree(JoinTreeSpec::new(vec![f.spec.clone()])),
            &QueryPlan::forced_tree(vec![0], vec![InnerStrategy::Materialized]),
            &f.db.exec_options(),
        )
        .unwrap()
        .rows;

    let mut db2 = Database::in_memory();
    // Rebuild the same tables on a fresh db with a different worker knob.
    let lk: Vec<Value> = left.iter().map(|r| r.0).collect();
    let lv: Vec<Value> = left.iter().map(|r| r.1).collect();
    let l = db2
        .load_projection(
            &ProjectionSpec::new("l")
                .column("k", EncodingKind::Plain, SortOrder::None)
                .column("v", EncodingKind::Plain, SortOrder::None),
            &[&lk, &lv],
        )
        .unwrap();
    let rk: Vec<Value> = right.iter().map(|r| r.0).collect();
    let rv: Vec<Value> = right.iter().map(|r| r.1).collect();
    let r = db2
        .load_projection(
            &ProjectionSpec::new("r")
                .column("k", EncodingKind::Plain, SortOrder::Primary)
                .column("v", EncodingKind::Plain, SortOrder::None),
            &[&rk, &rv],
        )
        .unwrap();
    let spec = JoinSpec {
        left: l,
        right: r,
        left_key: 0,
        right_key: 0,
        left_filter: Some((0, Predicate::lt(60))),
        right_filter: None,
        left_output: vec![0, 1],
        right_output: vec![1],
    };
    db2.set_parallelism(8);
    let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![spec]));
    assert_eq!(
        db2.execute_planned(
            &stmt,
            &QueryPlan::forced_tree(vec![0], vec![InnerStrategy::Materialized]),
            &db2.exec_options(),
        )
        .unwrap()
        .rows
        .flat(),
        serial.flat(),
        "set_parallelism(8) is byte-identical"
    );
    let out = db2.execute(&stmt).unwrap();
    let choice = match &out.choice {
        QueryPlan::Tree(c) => c,
        other => panic!("a join tree plans as a tree, got {other:?}"),
    };
    assert_eq!(choice.edge_alternatives[0].len(), 3);
    assert!(choice.estimate.total_us() > 0.0);
    assert_eq!(out.rows.sorted_rows(), serial.sorted_rows());
}
