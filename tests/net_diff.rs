//! The network differential: the concurrency battery's 9-query mixed
//! batch (`tests/concurrent_diff.rs`) replayed over **real TCP
//! sockets** by {1, 2, 4, 8} concurrent clients must produce responses
//! **byte-identical** — raw wire bytes, so rows AND the `OK` trailer's
//! per-query cold `block_reads` — to the same batch run serially
//! through in-process `Session::run`, at pool shard counts {1, 2}.
//!
//! The reference bytes are rendered locally from the serial outcomes
//! through the same `matstrat_net::protocol::write_outcome` the server
//! streams through, so "byte-identical over the wire" is a literal
//! `assert_eq!` on byte vectors, not a field-by-field paraphrase.
//!
//! Also here, because they need the full socket stack:
//! * interleaved INSERT/DELETE visibility — a write acknowledged on
//!   one connection is visible to every other connection's next query;
//! * a killed client (socket dropped with its query in flight) must
//!   leak nothing: the admission slot comes back ([`ServerStats`]
//!   exact, `active == 0`) and the wire layer's connection count
//!   drains to zero.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use matstrat::client::Client;
use matstrat::net::{protocol, NetConfig, NetServer};
use matstrat::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARD_COUNTS: [usize; 2] = [1, 2];

/// The same mixed batch as `tests/concurrent_diff.rs`: plain scans,
/// aggregations, a single join, a star, and a snowflake — each over
/// its own tables, so every query's cold footprint is exactly its own
/// whatever the interleaving.
const BATCH: [&str; 9] = [
    "SELECT k, v FROM t1 WHERE v < 60 AND w != 5",
    "SELECT w, v, k FROM t2 WHERE k BETWEEN 4000 AND 21000",
    "SELECT g, SUM(v) FROM t3 WHERE v > 10 GROUP BY g",
    "SELECT g, COUNT(v) FROM t4 WHERE v BETWEEN 5 AND 80 GROUP BY g",
    "SELECT f5.v, d5.x FROM f5 JOIN d5 ON f5.k = d5.dk",
    "SELECT f6.v, d6.x FROM f6 JOIN d6 ON f6.k = d6.dk WHERE f6.v < 40",
    "SELECT f7.v, d7a.x, d7b.x FROM f7 \
     JOIN d7a ON f7.k1 = d7a.dk JOIN d7b ON f7.k2 = d7b.dk WHERE f7.v < 70",
    "SELECT f8.v, d8a.x, d8b.x FROM f8 \
     JOIN d8a ON f8.k = d8a.dk JOIN d8b ON d8a.r = d8b.dk",
    "SELECT g, MAX(v) FROM t9 GROUP BY g",
];

const FACT_ROWS: i64 = 30_000;
const DIM_ROWS: i64 = 512;

/// Deterministic pseudo-data, structurally identical to the
/// concurrency battery's store (multiplicative scrambles, no RNG).
fn build_store() -> matstrat::storage::Store {
    let store = matstrat::storage::Store::in_memory();
    let n = FACT_ROWS;

    for name in ["t1", "t2", "t3", "t4", "t9"] {
        let k: Vec<Value> = (0..n).collect();
        let v: Vec<Value> = (0..n).map(|i| (i * 7919) % 101).collect();
        let w: Vec<Value> = (0..n).map(|i| i % 13).collect();
        let g: Vec<Value> = (0..n).map(|i| i / 1000).collect();
        let spec = ProjectionSpec::new(name)
            .column("k", EncodingKind::Plain, SortOrder::Primary)
            .column("v", EncodingKind::Plain, SortOrder::None)
            .column("w", EncodingKind::Plain, SortOrder::None)
            .column("g", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&k, &v, &w, &g]).unwrap();
    }

    for (fact, dim) in [("f5", "d5"), ("f6", "d6"), ("f8", "d8a")] {
        let k: Vec<Value> = (0..n).map(|i| (i * 31) % DIM_ROWS).collect();
        let v: Vec<Value> = (0..n).map(|i| (i * 17) % 97).collect();
        let spec = ProjectionSpec::new(fact)
            .column("k", EncodingKind::Plain, SortOrder::None)
            .column("v", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&k, &v]).unwrap();

        let dk: Vec<Value> = (0..DIM_ROWS).collect();
        let x: Vec<Value> = (0..DIM_ROWS).map(|i| i * 3 + 1).collect();
        let r: Vec<Value> = (0..DIM_ROWS).map(|i| (i * 5) % 64).collect();
        let spec = ProjectionSpec::new(dim)
            .column("dk", EncodingKind::Plain, SortOrder::Primary)
            .column("x", EncodingKind::Plain, SortOrder::None)
            .column("r", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&dk, &x, &r]).unwrap();
    }

    let k1: Vec<Value> = (0..n).map(|i| (i * 13) % DIM_ROWS).collect();
    let k2: Vec<Value> = (0..n).map(|i| (i * 29) % DIM_ROWS).collect();
    let v: Vec<Value> = (0..n).map(|i| (i * 23) % 89).collect();
    let spec = ProjectionSpec::new("f7")
        .column("k1", EncodingKind::Plain, SortOrder::None)
        .column("k2", EncodingKind::Plain, SortOrder::None)
        .column("v", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&spec, &[&k1, &k2, &v]).unwrap();
    for (dim, rows) in [("d7a", DIM_ROWS), ("d7b", DIM_ROWS), ("d8b", 64)] {
        let dk: Vec<Value> = (0..rows).collect();
        let x: Vec<Value> = (0..rows).map(|i| i * 7 + 2).collect();
        let spec = ProjectionSpec::new(dim)
            .column("dk", EncodingKind::Plain, SortOrder::Primary)
            .column("x", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&dk, &x]).unwrap();
    }

    store
}

fn service_cfg(threads: usize) -> ServerConfig {
    ServerConfig {
        max_concurrent: threads,
        worker_budget: threads.max(2),
    }
}

/// Serial in-process reference: one session, one query at a time, each
/// from a cold pool, the outcome rendered to wire bytes through the
/// very function the server streams through.
fn serial_reference(store: &matstrat::storage::Store) -> Vec<Vec<u8>> {
    let server = Server::new(
        store.clone(),
        ServerConfig {
            max_concurrent: 1,
            worker_budget: 1,
        },
    );
    let session = server.connect();
    BATCH
        .iter()
        .map(|sql| {
            store.cold_reset();
            let stmt = compile(store, sql).unwrap();
            let out = session.run(&stmt).unwrap();
            let mut bytes = Vec::new();
            protocol::write_outcome(&mut bytes, &out).unwrap();
            bytes
        })
        .collect()
}

/// One interleaved socket run: `threads` clients over real TCP, batch
/// spread round-robin, raw response bytes collected per query index.
fn run_over_sockets(net: &NetServer, threads: usize) -> Vec<Vec<u8>> {
    let addr = net.local_addr();
    let barrier = Arc::new(Barrier::new(threads));
    let mut out: Vec<Option<Vec<u8>>> = vec![None; BATCH.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let mut mine = Vec::new();
                for (i, sql) in BATCH.iter().enumerate().skip(t).step_by(threads) {
                    let resp = client.query(sql).unwrap();
                    mine.push((i, resp.raw().to_vec()));
                }
                mine
            }));
        }
        for h in handles {
            for (i, bytes) in h.join().unwrap() {
                out[i] = Some(bytes);
            }
        }
    });
    out.into_iter().map(Option::unwrap).collect()
}

#[test]
fn socket_batches_are_byte_identical_to_serial_in_process() {
    let store = build_store();
    let reference = serial_reference(&store);
    for (i, bytes) in reference.iter().enumerate() {
        let text = std::str::from_utf8(bytes).unwrap();
        assert!(text.starts_with("ROWS "), "query {i} reference: {text}");
        let trailer = text.lines().last().unwrap();
        let (rows_out, reads) = protocol::parse_ok_trailer(trailer).unwrap();
        assert!(rows_out > 0, "query {i} should produce rows");
        assert!(reads > 0, "query {i} should do cold I/O");
    }

    for shards in SHARD_COUNTS {
        store.pool().reshard(shards);
        assert_eq!(store.pool().num_shards(), shards);
        for threads in THREAD_COUNTS {
            // A fresh frontend per configuration keeps ServerStats and
            // NetStats exact for this run alone.
            let service = Server::new(store.clone(), service_cfg(threads));
            let net = NetServer::serve(
                "127.0.0.1:0",
                Arc::clone(&service),
                NetConfig {
                    max_conns: threads,
                    ..NetConfig::default()
                },
            )
            .unwrap();
            store.cold_reset();
            let got = run_over_sockets(&net, threads);
            for (i, (got, want)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got,
                    want,
                    "query {i} wire bytes drifted (threads={threads}, shards={shards})\n\
                     --- got ---\n{}\n--- want ---\n{}",
                    String::from_utf8_lossy(got),
                    String::from_utf8_lossy(want)
                );
            }
            let stats = service.stats();
            assert_eq!(stats.admitted as usize, BATCH.len());
            assert_eq!(stats.completed as usize, BATCH.len());
            assert_eq!(stats.active, 0, "every admission slot handed back");
            assert!(stats.peak_active <= threads, "admission bound held");
            let wire = net.stats();
            assert_eq!(wire.accepted as usize, threads);
            assert_eq!(wire.refused, 0);
            assert_eq!(wire.served as usize, BATCH.len());
            assert_eq!(wire.protocol_errors, 0);
            net.shutdown();
        }
        // The serial reference itself is shard-invariant.
        assert_eq!(serial_reference(&store), reference);
    }
}

/// A write acknowledged on one socket is durable and visible to every
/// other socket's next query — the wire layer inherits the engine's
/// write-visibility contract, and write acknowledgements render
/// exactly like the in-process outcome.
#[test]
fn interleaved_writes_are_visible_across_connections() {
    let store = build_store();
    let net = NetServer::bind("127.0.0.1:0", store.clone(), NetConfig::default()).unwrap();
    let addr = net.local_addr();
    let mut writer = Client::connect(addr).unwrap();
    let mut reader = Client::connect(addr).unwrap();

    const PROBE: &str = "SELECT k, v FROM t1 WHERE k BETWEEN 90000 AND 90010";
    let before = reader.query(PROBE).unwrap().expect_rows("probe before");
    assert_eq!(before.num_rows(), 0);

    let wrote = writer
        .query("INSERT INTO t1 VALUES (90001, 1, 2, 3), (90002, 4, 5, 6)")
        .unwrap()
        .expect_rows("insert");
    assert_eq!(wrote.columns, ["rows_affected"]);
    assert_eq!(wrote.data, [2]);
    assert_eq!(wrote.rows_out, 2);
    assert_eq!(wrote.block_reads, 0, "write acks carry no read cost");

    // Visible on the OTHER connection as soon as the OK came back.
    let after = reader.query(PROBE).unwrap().expect_rows("probe after");
    assert_eq!(after.data, [90001, 1, 90002, 4]);

    // Interleave a delete from a third connection; the reader sees the
    // rows gone on its next query.
    let gone = Client::connect(addr)
        .unwrap()
        .query("DELETE FROM t1 WHERE k BETWEEN 90000 AND 90010")
        .unwrap()
        .expect_rows("delete");
    assert_eq!(gone.data, [2]);
    let empty = reader.query(PROBE).unwrap().expect_rows("probe deleted");
    assert_eq!(empty.num_rows(), 0);

    // The wire rendering of a write is the serial in-process rendering.
    let session = net.service().connect();
    let stmt = compile(&store, "INSERT INTO t1 VALUES (90050, 1, 2, 3)").unwrap();
    let mut want = Vec::new();
    protocol::write_outcome(&mut want, &session.run(&stmt).unwrap()).unwrap();
    let got = writer
        .query("INSERT INTO t1 VALUES (90051, 1, 2, 3)")
        .unwrap();
    assert_eq!(got.raw(), &want[..]);
    let cleanup = writer
        .query("DELETE FROM t1 WHERE k BETWEEN 90050 AND 90051")
        .unwrap()
        .expect_rows("cleanup");
    assert_eq!(cleanup.data, [2]);
    net.shutdown();
}

/// Poll until `cond` holds or the deadline passes.
fn eventually(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Kill a client with its query in flight: the admission slot must
/// come back (ServerStats exact, `active == 0`), the connection count
/// must drain, and the next client must get byte-exact answers.
#[test]
fn killed_client_releases_its_admission_slot() {
    let store = build_store();
    let service = Server::new(store.clone(), service_cfg(2));
    let net = NetServer::serve("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();
    let addr = net.local_addr();

    // Send a real query and vanish without reading the response —
    // repeatedly, so the slot-release path runs more than once.
    use std::io::Write;
    for _ in 0..3 {
        // An idle kill: connect, say nothing, vanish.
        drop(Client::connect(addr).unwrap());
        // A mid-query kill: raw write so we can drop the socket
        // without awaiting the reply the server is computing.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"SELECT g, SUM(v) FROM t3 WHERE v > 10 GROUP BY g\n")
            .unwrap();
        drop(stream); // killed mid-query: the server may still be executing
    }

    // The server finishes (or abandons) the orphaned work and returns
    // to idle: every admitted query completed, no connection left.
    // Gate on `accepted == 6` first — a killed connection can still be
    // sitting in the listener backlog, in which case the other
    // counters look drained only because its work hasn't started.
    eventually("killed connections to drain", Duration::from_secs(10), || {
        let w = net.stats();
        let s = service.stats();
        w.accepted == 6 && w.active == 0 && s.active == 0 && s.admitted == s.completed
    });

    // And the service is unharmed: a fresh client gets the exact serial
    // bytes for a cold query.
    store.cold_reset();
    let session = service.connect();
    let stmt = compile(&store, BATCH[8]).unwrap();
    let mut want = Vec::new();
    protocol::write_outcome(&mut want, &session.run(&stmt).unwrap()).unwrap();
    store.cold_reset();
    let got = Client::connect(addr).unwrap().query(BATCH[8]).unwrap();
    assert_eq!(got.raw(), &want[..], "post-kill query drifted");
    let s = service.stats();
    assert_eq!(s.active, 0);
    assert_eq!(s.admitted, s.completed);
    net.shutdown();
}
