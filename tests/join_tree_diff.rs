//! Differential battery for the multi-way join-tree executor.
//!
//! The tree executor pipelines position lists through successive probes
//! instead of materializing an intermediate table per edge. This
//! battery proves the shortcut is **invisible**: for every per-edge
//! inner strategy, right-payload encoding, worker count, and tree shape,
//! the tree's `QueryResult` is **byte-identical** — row order included —
//! to the serial composition of single one-edge joins that
//! materializes each intermediate into a scratch projection and joins
//! again. On top of the byte contract, cold `block_reads` are exact: a
//! fixed plan reads the same number of blocks at any thread count (the
//! sharded pool single-flights concurrent misses; spans partition the
//! base table).
//!
//! The proptest sweeps strategy assignments × {Plain, RLE, BitVec, Dict}
//! right-payload encodings × threads {1, 2, 4, 8} × 2- and 3-edge trees
//! (star and snowflake) over arbitrary data; the fixed regression
//! matrix pins the full strategy cross product on a dataset big enough
//! that an 8-way probe really splits.
//!
//! The planner ride-alongs assert `Planner::choose_join_tree` never
//! prices its pick above a candidate it rejected, the single-edge tree
//! delegates to `choose_join` exactly, and the build-table cache runs
//! the partitioned build once per distinct inner table — byte-identical
//! to rebuild-per-edge, with the saved reads visible in the I/O meter.

use std::sync::atomic::{AtomicUsize, Ordering};

use matstrat::common::{TableId, Value};
use matstrat::core::{
    hash_join_tree_with_options, ExecOptions, InnerStrategy, JoinSpec, JoinTreePlan, JoinTreeSpec,
};
use matstrat::prelude::*;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RIGHT_ENCODINGS: [EncodingKind; 4] = [
    EncodingKind::Plain,
    EncodingKind::Rle,
    EncodingKind::BitVec,
    EncodingKind::Dict,
];

/// One relation's raw columns, loadable into any database.
#[derive(Clone)]
struct TableData {
    name: &'static str,
    cols: Vec<(&'static str, EncodingKind, SortOrder, Vec<Value>)>,
}

impl TableData {
    fn load(&self, db: &Database) -> TableId {
        let mut spec = ProjectionSpec::new(self.name);
        for (n, e, s, _) in &self.cols {
            spec = spec.column(*n, *e, *s);
        }
        let slices: Vec<&[Value]> = self.cols.iter().map(|c| c.3.as_slice()).collect();
        db.load_projection(&spec, &slices).unwrap()
    }
}

/// The same relations loaded twice: `db` runs the tree executor, the
/// oracle database runs the single-join composition (and absorbs its
/// scratch intermediates). Loading in the same order yields the same
/// `TableId`s, so one spec drives both.
struct Fixture {
    db: Database,
    oracle: Database,
    spec: JoinTreeSpec,
}

fn fixture(tables: &[TableData], edges: Vec<JoinSpec>) -> Fixture {
    let db = Database::in_memory();
    let oracle = Database::in_memory();
    for t in tables {
        let a = t.load(&db);
        let b = t.load(&oracle);
        assert_eq!(a, b, "load order must give identical ids");
    }
    Fixture {
        db,
        oracle,
        spec: JoinTreeSpec::new(edges),
    }
}

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// The oracle: execute the tree as N single one-edge joins in spec
/// order, materializing each intermediate into a scratch projection
/// (every column carried, Plain encoding), then project the tree's
/// output columns. Row order is the nested-loop order of the spec —
/// exactly what the tree executor must reproduce byte for byte.
fn compose_oracle(f: &Fixture, inners: &[InnerStrategy]) -> Vec<Value> {
    let db = &f.oracle;
    let spec = &f.spec;
    let base = spec.base();
    let base_width = db.store().projection(base).unwrap().columns.len();
    // carried[i] = (source table, source column) of scratch column i.
    let mut carried: Vec<(TableId, usize)> = (0..base_width).map(|c| (base, c)).collect();
    // Scratch column range holding each edge's right columns.
    let mut edge_offsets: Vec<usize> = Vec::new();
    let mut current: Option<(TableId, usize)> = None; // (scratch id, width)
    let mut rows: Option<QueryResult> = None;
    for (k, edge) in spec.edges.iter().enumerate() {
        let right_width = db.store().projection(edge.right).unwrap().columns.len();
        let (left, left_key, left_filter, left_width) = match current {
            None => (base, edge.left_key, edge.left_filter, base_width),
            Some((temp, w)) => {
                // The probe key lives at the scratch position of the
                // edge's source table column (first occurrence, matching
                // JoinTreeSpec::key_source).
                let idx = carried
                    .iter()
                    .position(|&(t, c)| t == edge.left && c == edge.left_key)
                    .expect("validated spec");
                (temp, idx, None, w)
            }
        };
        let jspec = JoinSpec {
            left,
            right: edge.right,
            left_key,
            right_key: edge.right_key,
            left_filter,
            right_filter: None,
            left_output: (0..left_width).collect(),
            right_output: (0..right_width).collect(),
        };
        let res = db
            .execute_planned(
                &Statement::JoinTree(JoinTreeSpec::new(vec![jspec])),
                &QueryPlan::forced_tree(vec![0], vec![inners[k]]),
                &db.exec_options(),
            )
            .unwrap()
            .rows;
        edge_offsets.push(carried.len());
        carried.extend((0..right_width).map(|c| (edge.right, c)));
        let width = carried.len();
        assert_eq!(res.width(), width);
        if k + 1 < spec.edges.len() {
            // Materialize the intermediate as a scratch projection.
            let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(res.num_rows()); width];
            for row in res.rows() {
                for (c, v) in row.iter().enumerate() {
                    cols[c].push(*v);
                }
            }
            let uid = SCRATCH.fetch_add(1, Ordering::Relaxed);
            let name = format!("scratch_{uid}");
            let mut pspec = ProjectionSpec::new(&name);
            let names: Vec<String> = (0..width).map(|c| format!("c{c}")).collect();
            for n in &names {
                pspec = pspec.column(n, EncodingKind::Plain, SortOrder::None);
            }
            let slices: Vec<&[Value]> = cols.iter().map(|c| c.as_slice()).collect();
            let temp = db.load_projection(&pspec, &slices).unwrap();
            current = Some((temp, width));
        }
        rows = Some(res);
    }
    // Final projection: base outputs, then each edge's own right block,
    // in spec order.
    let last = rows.expect("at least one edge");
    let mut pick: Vec<usize> = spec.edges[0].left_output.clone();
    for (k, edge) in spec.edges.iter().enumerate() {
        pick.extend(edge.right_output.iter().map(|&c| edge_offsets[k] + c));
    }
    let mut flat = Vec::with_capacity(last.num_rows() * pick.len());
    for row in last.rows() {
        for &c in &pick {
            flat.push(row[c]);
        }
    }
    flat
}

/// Run the tree cold under a fixed plan and return the deterministic
/// contract: result bytes, column names, row count, cold `block_reads`.
fn cold_tree_run(
    f: &Fixture,
    plan: &JoinTreePlan,
    granule: u64,
    threads: usize,
) -> (Vec<Value>, Vec<String>, u64, u64) {
    f.db.store().cold_reset();
    let opts = ExecOptions {
        granule,
        parallelism: threads,
        ..ExecOptions::default()
    };
    let (r, _) = match hash_join_tree_with_options(f.db.store(), &f.spec, plan, &opts) {
        Ok(r) => r,
        Err(e) => panic!("threads={threads}: {e}"),
    };
    let reads = f.db.store().meter().snapshot().block_reads;
    (
        r.flat().to_vec(),
        r.column_names.clone(),
        r.num_rows() as u64,
        reads,
    )
}

/// The battery core: for the given per-edge strategies, the tree must be
/// byte-identical to the single-join composition at every thread count,
/// with exact cold `block_reads` across the whole thread row.
fn assert_tree_matches_composition(f: &Fixture, inners: &[InnerStrategy], granule: u64) {
    let oracle = compose_oracle(f, inners);
    let plan = JoinTreePlan::in_spec_order(inners.to_vec());
    let serial = cold_tree_run(f, &plan, granule, 1);
    assert_eq!(
        serial.0, oracle,
        "{inners:?}: tree != single-join composition"
    );
    for threads in THREAD_COUNTS {
        let got = cold_tree_run(f, &plan, granule, threads);
        assert_eq!(got.0, serial.0, "{inners:?} threads={threads}: bytes");
        assert_eq!(got.1, serial.1, "{inners:?} threads={threads}: names");
        assert_eq!(got.2, serial.2, "{inners:?} threads={threads}: rows");
        assert_eq!(
            got.3, serial.3,
            "{inners:?} threads={threads}: cold block_reads"
        );
    }
}

/// 2-edge star: orders ⋈ customer (filtered) ⋈ date(enc payload).
fn star2(
    enc: EncodingKind,
    orders_rows: &[(Value, Value, Value)],
    cutoff: Option<Value>,
) -> Fixture {
    let n_cust = 20;
    let n_date = 10;
    let tables = vec![
        TableData {
            name: "orders",
            cols: vec![
                (
                    "custkey",
                    EncodingKind::Plain,
                    SortOrder::None,
                    orders_rows.iter().map(|r| r.0.rem_euclid(n_cust)).collect(),
                ),
                (
                    "datekey",
                    EncodingKind::Plain,
                    SortOrder::None,
                    orders_rows.iter().map(|r| r.1.rem_euclid(n_date)).collect(),
                ),
                (
                    "shipdate",
                    EncodingKind::Plain,
                    SortOrder::None,
                    orders_rows.iter().map(|r| r.2).collect(),
                ),
            ],
        },
        TableData {
            name: "customer",
            cols: vec![
                (
                    "custkey",
                    EncodingKind::Plain,
                    SortOrder::Primary,
                    (0..n_cust).collect(),
                ),
                (
                    "nation",
                    enc,
                    SortOrder::None,
                    (0..n_cust).map(|i| i % 5).collect(),
                ),
            ],
        },
        TableData {
            name: "date",
            cols: vec![
                (
                    "datekey",
                    EncodingKind::Plain,
                    SortOrder::Primary,
                    (0..n_date).collect(),
                ),
                (
                    "dname",
                    enc,
                    SortOrder::None,
                    (0..n_date).map(|i| i % 7).collect(),
                ),
            ],
        },
    ];
    let edges = |orders: TableId, customer: TableId, date: TableId| {
        vec![
            JoinSpec {
                left: orders,
                right: customer,
                left_key: 0,
                right_key: 0,
                left_filter: cutoff.map(|x| (0, Predicate::lt(x))),
                right_filter: None,
                left_output: vec![2],
                right_output: vec![1],
            },
            JoinSpec {
                left: orders,
                right: date,
                left_key: 1,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![1],
            },
        ]
    };
    let f = fixture(&tables, edges(TableId(0), TableId(1), TableId(2)));
    // TableIds are assigned in load order; re-derive them defensively.
    let orders = f.db.store().projection_by_name("orders").unwrap().id;
    let customer = f.db.store().projection_by_name("customer").unwrap().id;
    let date = f.db.store().projection_by_name("date").unwrap().id;
    Fixture {
        spec: JoinTreeSpec::new(edges(orders, customer, date)),
        ..f
    }
}

/// 3-edge star + snowflake: orders ⋈ customer ⋈ date, customer ⋈ nation
/// (keyed through customer's nation column — zero-I/O snowflake hop).
fn snowflake3(
    enc: EncodingKind,
    orders_rows: &[(Value, Value, Value)],
    cutoff: Option<Value>,
) -> Fixture {
    let mut f = star2(enc, orders_rows, cutoff);
    let nation = TableData {
        name: "nation",
        cols: vec![
            (
                "nationkey",
                EncodingKind::Plain,
                SortOrder::Primary,
                (0..5).collect(),
            ),
            (
                "region",
                enc,
                SortOrder::None,
                (0..5).map(|i| i * 11).collect(),
            ),
        ],
    };
    let a = nation.load(&f.db);
    let b = nation.load(&f.oracle);
    assert_eq!(a, b);
    let customer = f.spec.edges[0].right;
    f.spec.edges.push(JoinSpec {
        left: customer,
        right: a,
        left_key: 1,
        right_key: 0,
        left_filter: None,
        right_filter: None,
        left_output: vec![],
        right_output: vec![1],
    });
    f
}

fn dense_orders(n: i64) -> Vec<(Value, Value, Value)> {
    (0..n).map(|i| (i * 13, i * 7, 1000 + i)).collect()
}

/// Fixed regression matrix: the full 3×3 strategy cross product on every
/// encoding, on a dataset big enough that an 8-way probe owns several
/// granules each. Fails loudly outside the proptest lottery.
#[test]
fn fixed_two_edge_full_strategy_matrix() {
    let orders = dense_orders(6000);
    for enc in RIGHT_ENCODINGS {
        let f = star2(enc, &orders, Some(14));
        for a in InnerStrategy::ALL {
            for b in InnerStrategy::ALL {
                assert_tree_matches_composition(&f, &[a, b], 128);
            }
        }
    }
}

/// 3-edge trees: uniform strategies plus mixed rotations, per encoding.
#[test]
fn fixed_three_edge_snowflake_matrix() {
    let orders = dense_orders(4000);
    let triples: [[InnerStrategy; 3]; 6] = {
        use InnerStrategy::*;
        [
            [Materialized; 3],
            [MultiColumn; 3],
            [SingleColumn; 3],
            [Materialized, MultiColumn, SingleColumn],
            [SingleColumn, Materialized, MultiColumn],
            [MultiColumn, SingleColumn, Materialized],
        ]
    };
    for enc in RIGHT_ENCODINGS {
        let f = snowflake3(enc, &orders, Some(11));
        for t in triples {
            assert_tree_matches_composition(&f, &t, 128);
        }
    }
}

/// Unfiltered trees exercise the `PosList::full` descriptor path.
#[test]
fn fixed_unfiltered_tree() {
    let orders = dense_orders(3000);
    for enc in [EncodingKind::Plain, EncodingKind::BitVec] {
        let f = snowflake3(enc, &orders, None);
        assert_tree_matches_composition(&f, &[InnerStrategy::MultiColumn; 3], 256);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn tree_identical_to_composition_at_any_thread_count(
        orders in prop::collection::vec((0i64..1000, 0i64..1000, 0i64..10_000), 32..1200),
        enc_idx in 0usize..4,
        s0 in 0usize..3,
        s1 in 0usize..3,
        s2 in 0usize..3,
        three_edges in proptest::bool::ANY,
        has_filter in proptest::bool::ANY,
        cutoff in 0i64..22,
        granule_exp in 5u32..10, // granules of 32..512 so workers really split
    ) {
        let cutoff = has_filter.then_some(cutoff);
        let inners = [
            InnerStrategy::ALL[s0],
            InnerStrategy::ALL[s1],
            InnerStrategy::ALL[s2],
        ];
        if three_edges {
            let f = snowflake3(RIGHT_ENCODINGS[enc_idx], &orders, cutoff);
            assert_tree_matches_composition(&f, &inners, 1 << granule_exp);
        } else {
            let f = star2(RIGHT_ENCODINGS[enc_idx], &orders, cutoff);
            assert_tree_matches_composition(&f, &inners[..2], 1 << granule_exp);
        }
    }
}

/// The planner's pick is never priced above a plan it rejected — across
/// every candidate order and every per-slot strategy alternative — and
/// executing the pick returns the same row set as the spec-order run.
#[test]
fn planner_pick_never_priced_above_rejections() {
    let orders = dense_orders(5000);
    let f = snowflake3(EncodingKind::Plain, &orders, Some(13));
    let choice = match f.db.plan(&Statement::JoinTree(f.spec.clone())).unwrap() {
        QueryPlan::Tree(c) => c,
        other => panic!("a join tree plans as a tree, got {other:?}"),
    };
    let chosen_total = choice.estimate.total_us();
    for (order, total) in &choice.candidates {
        assert!(
            chosen_total <= total + 1e-9,
            "rejected order {order:?} priced below the pick: {total} < {chosen_total}"
        );
    }
    for (slot, alts) in choice.edge_alternatives.iter().enumerate() {
        let kind = choice.inners[choice.order[slot]];
        let chosen = alts.iter().find(|(s, _)| *s == kind).unwrap().1;
        for (s, c) in alts {
            assert!(
                chosen.total_us() <= c.total_us() + 1e-9,
                "slot {slot}: rejected {s:?} priced below chosen {kind:?}"
            );
        }
    }
    // The chosen plan executes and agrees with the spec-order run on
    // the row set (order may legitimately differ across plans).
    let out = f.db.execute(&Statement::JoinTree(f.spec.clone())).unwrap();
    match &out.choice {
        QueryPlan::Tree(c2) => assert_eq!(c2.order, choice.order),
        other => panic!("a join tree plans as a tree, got {other:?}"),
    }
    assert_eq!(out.stats.rows_out, out.rows.num_rows() as u64);
    let spec_order =
        f.db.execute_planned(
            &Statement::JoinTree(f.spec.clone()),
            &QueryPlan::forced_tree((0..f.spec.edges.len()).collect(), choice.inners.clone()),
            &f.db.exec_options(),
        )
        .unwrap()
        .rows;
    assert_eq!(out.rows.sorted_rows(), spec_order.sorted_rows());
    assert_eq!(out.rows.column_names, spec_order.column_names);
}

/// Satellite: the single-edge tree delegates to `choose_join` — the two
/// planners must agree exactly on a plain join.
#[test]
fn single_edge_tree_auto_equals_choose_join() {
    let orders = dense_orders(4000);
    let f = star2(EncodingKind::Plain, &orders, Some(9));
    let one = JoinTreeSpec::new(vec![f.spec.edges[0].clone()]);
    let join_choice =
        f.db.planner()
            .choose_join(f.db.store(), &one.edges[0])
            .unwrap();
    let tree_choice = match f.db.plan(&Statement::JoinTree(one.clone())).unwrap() {
        QueryPlan::Tree(c) => c,
        other => panic!("a join tree plans as a tree, got {other:?}"),
    };
    assert_eq!(tree_choice.inners, vec![join_choice.inner]);
    assert_eq!(tree_choice.order, vec![0]);
    assert!(
        (tree_choice.estimate.total_us() - join_choice.estimate.total_us()).abs() < 1e-12,
        "delegated estimate must be choose_join's"
    );
    // And the executed single-edge tree is byte-identical to a forced
    // single join under the same inner strategy.
    let tree_result =
        f.db.execute(&Statement::JoinTree(one.clone()))
            .unwrap()
            .rows;
    let single_result =
        f.db.execute_planned(
            &Statement::JoinTree(one),
            &QueryPlan::forced_tree(vec![0], vec![join_choice.inner]),
            &f.db.exec_options(),
        )
        .unwrap()
        .rows;
    assert_eq!(tree_result.flat(), single_result.flat());
}

/// Satellite: stats-level proof that the partitioned build runs once —
/// not N times — when one inner table is probed by multiple edges, with
/// byte-identical results vs. rebuild-per-edge and the saved build reads
/// visible in the meter.
#[test]
fn build_reuse_runs_partitioned_build_once() {
    // orders probes the date dimension on two different columns.
    let n = 4000i64;
    let tables = vec![
        TableData {
            name: "orders",
            cols: vec![
                (
                    "odate",
                    EncodingKind::Plain,
                    SortOrder::None,
                    (0..n).map(|i| i % 50).collect(),
                ),
                (
                    "sdate",
                    EncodingKind::Plain,
                    SortOrder::None,
                    (0..n).map(|i| (i * 3) % 50).collect(),
                ),
            ],
        },
        TableData {
            name: "date",
            cols: vec![
                (
                    "datekey",
                    EncodingKind::Plain,
                    SortOrder::Primary,
                    (0..50).collect(),
                ),
                (
                    "dname",
                    EncodingKind::Rle,
                    SortOrder::None,
                    (0..50).map(|i| i % 4).collect(),
                ),
            ],
        },
    ];
    let mk_edges = |orders: TableId, date: TableId| {
        vec![
            JoinSpec {
                left: orders,
                right: date,
                left_key: 0,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![0, 1],
                right_output: vec![1],
            },
            JoinSpec {
                left: orders,
                right: date,
                left_key: 1,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![1],
            },
        ]
    };
    let f = fixture(&tables, mk_edges(TableId(0), TableId(1)));
    let orders = f.db.store().projection_by_name("orders").unwrap().id;
    let date = f.db.store().projection_by_name("date").unwrap().id;
    let spec = JoinTreeSpec::new(mk_edges(orders, date));

    let inners = vec![InnerStrategy::MultiColumn; 2];
    let reuse = JoinTreePlan::in_spec_order(inners.clone());
    let rebuild = JoinTreePlan {
        reuse_builds: false,
        ..reuse.clone()
    };
    for threads in THREAD_COUNTS {
        let opts = ExecOptions {
            granule: 128,
            parallelism: threads,
            ..ExecOptions::default()
        };
        f.db.store().cold_reset();
        let (r1, s1) = hash_join_tree_with_options(f.db.store(), &spec, &reuse, &opts).unwrap();
        let reads_reuse = f.db.store().meter().snapshot().block_reads;
        assert_eq!(s1.builds, 1, "threads={threads}: one partitioned build");
        assert_eq!(s1.build_reuses, 1, "threads={threads}: second edge reuses");
        assert_eq!(s1.io.block_reads, reads_reuse);

        f.db.store().cold_reset();
        let (r2, s2) = hash_join_tree_with_options(f.db.store(), &spec, &rebuild, &opts).unwrap();
        assert_eq!(s2.builds, 2, "threads={threads}: rebuild per edge");
        assert_eq!(s2.build_reuses, 0);
        assert_eq!(
            r1.flat(),
            r2.flat(),
            "threads={threads}: reuse is byte-invisible"
        );
        assert_eq!(s1.rows_out, s2.rows_out);
    }
}
