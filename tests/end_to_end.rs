//! Workspace-level integration tests: the full pipeline from workload
//! generation through storage, execution, and planning.

use matstrat::prelude::*;
use matstrat::tpch::lineitem::cols;

/// Run a scan under a pinned strategy through the unified entry point.
fn run_forced(db: &Database, q: &QuerySpec, s: Strategy) -> Result<QueryOutcome> {
    db.execute_planned(
        &Statement::Select(q.clone()),
        &QueryPlan::forced_scan(s),
        &db.exec_options(),
    )
}

fn small_cfg() -> TpchConfig {
    TpchConfig {
        scale: 0.005,
        seed: 99,
    }
}

/// All four strategies agree on the paper's selection query over real
/// generated data, for every LINENUM encoding.
#[test]
fn paper_selection_query_all_encodings_agree() {
    let data = LineitemGen::new(small_cfg()).generate();
    let db = Database::in_memory();
    for enc in [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::BitVec] {
        let table = data
            .load(&db, &format!("lineitem_{}", enc.name()), enc)
            .unwrap();
        let x = data.shipdate_cutoff(0.4);
        let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::LINENUM])
            .filter(cols::SHIPDATE, Predicate::lt(x))
            .filter(cols::LINENUM, Predicate::lt(7));
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for s in Strategy::ALL {
            match run_forced(&db, &q, s) {
                Ok(out) => {
                    let rows = out.rows.sorted_rows();
                    match &reference {
                        Some(exp) => assert_eq!(exp, &rows, "{enc} {s}"),
                        None => reference = Some(rows),
                    }
                }
                Err(Error::Unsupported(_))
                    if s == Strategy::LmPipelined && enc == EncodingKind::BitVec => {}
                Err(e) => panic!("{enc} {s}: {e}"),
            }
        }
        // Sanity: the reference matches a direct count on the raw data.
        let expected = data
            .shipdate
            .iter()
            .zip(&data.linenum)
            .filter(|(&sd, &ln)| sd < x && ln < 7)
            .count();
        assert_eq!(reference.unwrap().len(), expected, "{enc}");
    }
}

/// The aggregation query returns per-group sums matching a direct
/// computation on the generated columns.
#[test]
fn paper_aggregation_query_matches_direct_computation() {
    let data = LineitemGen::new(small_cfg()).generate();
    let db = Database::in_memory();
    let table = data.load(&db, "lineitem", EncodingKind::Rle).unwrap();
    let x = data.shipdate_cutoff(0.6);
    let q = QuerySpec::select(table, vec![])
        .filter(cols::SHIPDATE, Predicate::lt(x))
        .filter(cols::LINENUM, Predicate::lt(7))
        .aggregate_sum(cols::SHIPDATE, cols::LINENUM);
    let result = run_forced(&db, &q, Strategy::LmParallel).unwrap().rows;

    use std::collections::BTreeMap;
    let mut expected: BTreeMap<Value, Value> = BTreeMap::new();
    for (&sd, &ln) in data.shipdate.iter().zip(&data.linenum) {
        if sd < x && ln < 7 {
            *expected.entry(sd).or_insert(0) += ln;
        }
    }
    assert_eq!(result.num_rows(), expected.len());
    for row in result.rows() {
        assert_eq!(expected.get(&row[0]), Some(&row[1]), "group {}", row[0]);
    }
}

/// Persistence: write a lineitem projection to a real directory, reopen
/// the database, and run the same query with identical results.
#[test]
fn reopened_database_returns_identical_results() {
    let dir = std::env::temp_dir().join(format!("matstrat-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = LineitemGen::new(small_cfg()).generate();
    let x = data.shipdate_cutoff(0.3);

    let before = {
        let db = Database::open(&dir).unwrap();
        let table = data.load(&db, "lineitem", EncodingKind::Rle).unwrap();
        let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::QUANTITY])
            .filter(cols::SHIPDATE, Predicate::lt(x));
        run_forced(&db, &q, Strategy::LmParallel)
            .unwrap()
            .rows
            .sorted_rows()
    };
    // Fresh process-equivalent: new handle, catalog reloaded from disk.
    let db = Database::open(&dir).unwrap();
    let table = db.store().projection_by_name("lineitem").unwrap().id;
    let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::QUANTITY])
        .filter(cols::SHIPDATE, Predicate::lt(x));
    for s in Strategy::ALL {
        let after = run_forced(&db, &q, s).unwrap().rows.sorted_rows();
        assert_eq!(before, after, "{s}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A tiny buffer pool forces evictions mid-query; results must not change.
#[test]
fn tiny_buffer_pool_does_not_change_results() {
    use matstrat::storage::Store;
    let data = LineitemGen::new(small_cfg()).generate();

    let run_with_pool = |blocks: usize| {
        let store = Store::in_memory_with_pool(blocks);
        let db = Database::with_store(store);
        let table = data.load(&db, "lineitem", EncodingKind::Plain).unwrap();
        let x = data.shipdate_cutoff(0.5);
        let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::LINENUM, cols::QUANTITY])
            .filter(cols::SHIPDATE, Predicate::lt(x))
            .filter(cols::LINENUM, Predicate::lt(4));
        let out = run_forced(&db, &q, Strategy::LmParallel).unwrap();
        (out.rows.sorted_rows(), out.stats.io.block_reads)
    };
    let (big_pool_rows, big_reads) = run_with_pool(100_000);
    let (tiny_pool_rows, tiny_reads) = run_with_pool(2);
    assert_eq!(big_pool_rows, tiny_pool_rows);
    assert!(
        tiny_reads >= big_reads,
        "a thrashing pool cannot read fewer blocks ({tiny_reads} vs {big_reads})"
    );
}

/// The join pipeline end-to-end on generated tables, all inner
/// strategies, with a predicate sweep.
#[test]
fn join_pipeline_all_inner_strategies() {
    use matstrat::tpch::join_tables::{customer_cols, orders_cols};
    let tables = JoinTables::generate(small_cfg());
    let db = Database::in_memory();
    let orders = tables.load_orders(&db, "orders").unwrap();
    let customer = tables.load_customer(&db, "customer").unwrap();
    for sf in [0.0, 0.25, 1.0] {
        let x = tables.custkey_cutoff(sf);
        let spec = JoinSpec {
            left: orders,
            right: customer,
            left_key: orders_cols::CUSTKEY,
            right_key: customer_cols::CUSTKEY,
            left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
            right_filter: None,
            left_output: vec![orders_cols::SHIPDATE, orders_cols::ORDERDATE],
            right_output: vec![customer_cols::NATIONCODE],
        };
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for inner in InnerStrategy::ALL {
            let r = db
                .execute_planned(
                    &Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()])),
                    &QueryPlan::forced_tree(vec![0], vec![inner]),
                    &db.exec_options(),
                )
                .unwrap()
                .rows;
            assert_eq!(r.column_names, vec!["shipdate", "orderdate", "nationcode"]);
            let rows = r.sorted_rows();
            match &reference {
                Some(exp) => assert_eq!(exp, &rows, "{inner:?} sf={sf}"),
                None => reference = Some(rows),
            }
        }
        let expected = tables.orders.custkey.iter().filter(|&&k| k < x).count();
        assert_eq!(reference.unwrap().len(), expected, "sf={sf}");
    }
}

/// Stats surfaces make sense: LM-pipelined at a selective predicate reads
/// fewer LINENUM blocks than EM-parallel on the plain encoding.
#[test]
fn lm_pipelined_block_skipping_is_observable() {
    let data = LineitemGen::new(TpchConfig {
        scale: 0.05,
        seed: 5,
    })
    .generate();
    let db = Database::in_memory();
    let table = data.load(&db, "lineitem", EncodingKind::Plain).unwrap();
    let x = data.shipdate_cutoff(0.02); // 2% selectivity, clustered
    let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::LINENUM])
        .filter(cols::SHIPDATE, Predicate::lt(x))
        .filter(cols::LINENUM, Predicate::lt(7));

    db.store().cold_reset();
    let lm = run_forced(&db, &q, Strategy::LmPipelined).unwrap().stats;
    db.store().cold_reset();
    let em = run_forced(&db, &q, Strategy::EmParallel).unwrap().stats;
    assert!(
        lm.io.block_reads < em.io.block_reads,
        "LM-pipelined should skip LINENUM blocks: {} vs {}",
        lm.io.block_reads,
        em.io.block_reads
    );
}

/// The planner's model-backed choice is never catastrophically wrong:
/// the chosen strategy's measured time is within 4x of the best measured
/// strategy on the paper's query.
#[test]
fn planner_choice_is_competitive() {
    let data = LineitemGen::new(TpchConfig {
        scale: 0.02,
        seed: 11,
    })
    .generate();
    let db = Database::in_memory();
    let table = data.load(&db, "lineitem", EncodingKind::Rle).unwrap();
    for sf in [0.1, 0.5, 0.9] {
        let x = data.shipdate_cutoff(sf);
        let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::LINENUM])
            .filter(cols::SHIPDATE, Predicate::lt(x))
            .filter(cols::LINENUM, Predicate::lt(7));
        let choice = match db.plan(&Statement::Select(q.clone())).unwrap() {
            QueryPlan::Scan(c) => c,
            _ => unreachable!("a select plans as a scan"),
        };
        // Measure every strategy (median of 3 runs, warm).
        let mut best = f64::INFINITY;
        let mut chosen = f64::INFINITY;
        for s in Strategy::ALL {
            let mut times = Vec::new();
            for _ in 0..3 {
                if let Ok(out) = run_forced(&db, &q, s) {
                    times.push(out.stats.wall.as_secs_f64());
                }
            }
            if times.is_empty() {
                continue;
            }
            times.sort_by(f64::total_cmp);
            let t = times[times.len() / 2];
            best = best.min(t);
            if s == choice.strategy {
                chosen = t;
            }
        }
        assert!(
            chosen <= best * 4.0 + 1e-4,
            "sf={sf}: planner chose {} at {chosen:.6}s, best was {best:.6}s",
            choice.strategy
        );
    }
}
