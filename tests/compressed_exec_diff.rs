//! Differential battery for the compressed-execution layer.
//!
//! The house invariant: operating on encoded representations — code-domain
//! predicates, run-granular scans and aggregates, code-keyed hash joins —
//! is an *optimization*, never a semantic. For every strategy, encoding,
//! and worker count, a query over compressed columns returns the
//! **byte-identical** result of the same query over fully decoded (Plain)
//! columns, cold `block_reads` are exact and thread-invariant, and
//! `ExecStats::code_path_ops` proves the compressed path actually ran
//! (and stayed deterministic) rather than silently falling back.
//!
//! Covered here, each against the decoded serial oracle and at threads
//! {1, 2, 4, 8}: selections and all four aggregate functions across
//! {Plain, RLE, BitVec, Dict, shared-dict} filter/payload encodings;
//! the same matrix re-run over a dirty delta (uncompacted inserts and
//! deletes, the PR 7 write path); code-keyed joins, their delta
//! fallbacks, and multi-way join trees with a shared-dictionary edge.

use matstrat::common::{Error, TableId};
use matstrat::core::{AggFunc, InnerStrategy, JoinSpec, Strategy};
use matstrat::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Filter-column encodings under test. `None` marks the shared-dict
/// variant (Dict encoding against one column-wide sorted dictionary).
const FILTER_ENCODINGS: [Option<EncodingKind>; 5] = [
    Some(EncodingKind::Plain),
    Some(EncodingKind::Rle),
    Some(EncodingKind::BitVec),
    Some(EncodingKind::Dict),
    None,
];

/// A 3-column projection: a (sorted primary, RLE), b (filter column in
/// the encoding under test), c (payload in `enc_c`).
fn load(
    enc_b: Option<EncodingKind>,
    enc_c: EncodingKind,
    rows: &[(Value, Value, Value)],
) -> (Database, TableId) {
    let mut sorted = rows.to_vec();
    sorted.sort_unstable();
    let a: Vec<Value> = sorted.iter().map(|r| r.0).collect();
    let b: Vec<Value> = sorted.iter().map(|r| r.1).collect();
    let c: Vec<Value> = sorted.iter().map(|r| r.2).collect();
    let db = Database::in_memory();
    let spec = ProjectionSpec::new("t").column("a", EncodingKind::Rle, SortOrder::Primary);
    let spec = match enc_b {
        Some(enc) => spec.column("b", enc, SortOrder::Secondary),
        None => spec.column_shared_dict("b", SortOrder::Secondary),
    };
    let spec = spec.column("c", enc_c, SortOrder::None);
    let id = db.load_projection(&spec, &[&a, &b, &c]).unwrap();
    (db, id)
}

/// The decoded oracle: the same logical table, every column Plain — no
/// codec ever sees a predicate, no aggregate ever sees a run.
fn load_decoded(rows: &[(Value, Value, Value)]) -> (Database, TableId) {
    let mut sorted = rows.to_vec();
    sorted.sort_unstable();
    let a: Vec<Value> = sorted.iter().map(|r| r.0).collect();
    let b: Vec<Value> = sorted.iter().map(|r| r.1).collect();
    let c: Vec<Value> = sorted.iter().map(|r| r.2).collect();
    let db = Database::in_memory();
    let spec = ProjectionSpec::new("t")
        .column("a", EncodingKind::Plain, SortOrder::Primary)
        .column("b", EncodingKind::Plain, SortOrder::Secondary)
        .column("c", EncodingKind::Plain, SortOrder::None);
    let id = db.load_projection(&spec, &[&a, &b, &c]).unwrap();
    (db, id)
}

/// Run cold and return everything the contract promises deterministic.
/// `Err(Unsupported)` is `None`; supportedness must not vary by threads.
#[allow(clippy::type_complexity)]
fn cold_run(
    db: &Database,
    q: &QuerySpec,
    s: Strategy,
    granule: u64,
    threads: usize,
) -> Option<(Vec<Value>, Vec<String>, u64, u64, u64, u64)> {
    db.store().cold_reset();
    let opts = ExecOptions {
        granule,
        parallelism: threads,
        ..ExecOptions::default()
    };
    match db.execute_planned(
        &Statement::Select(q.clone()),
        &QueryPlan::forced_scan(s),
        &opts,
    ) {
        Ok(QueryOutcome { rows: r, stats, .. }) => Some((
            r.flat().to_vec(),
            r.column_names.clone(),
            stats.positions_matched,
            stats.rows_out,
            stats.io.block_reads,
            stats.code_path_ops,
        )),
        Err(Error::Unsupported(_)) => None,
        Err(e) => panic!("{s} threads={threads}: {e}"),
    }
}

/// The full contract for one query over one fixture:
/// * serial compressed result ≡ serial decoded-oracle result (bytes,
///   names, match/row counters) wherever both paths are supported;
/// * the compressed path really ran (`code_path_ops > 0`) while the
///   decoded oracle never touched it (`== 0`);
/// * every thread count reproduces the serial run exactly — including
///   cold `block_reads` and `code_path_ops`.
fn assert_compressed_exec_contract(
    db: &Database,
    oracle_db: &Database,
    q: &QuerySpec,
    oracle_q: &QuerySpec,
    granule: u64,
    expect_code_path: bool,
    label: &str,
) {
    for s in Strategy::ALL {
        let oracle = cold_run(oracle_db, oracle_q, s, granule, 1);
        let serial = cold_run(db, q, s, granule, 1);
        if let Some(o) = &oracle {
            assert_eq!(o.5, 0, "{s} {label}: decoded oracle charged code ops");
        }
        if let (Some(got), Some(exp)) = (&serial, &oracle) {
            assert_eq!(got.0, exp.0, "{s} {label}: result bytes vs decoded oracle");
            assert_eq!(got.1, exp.1, "{s} {label}: column names vs decoded oracle");
            assert_eq!(got.2, exp.2, "{s} {label}: positions_matched vs oracle");
            assert_eq!(got.3, exp.3, "{s} {label}: rows_out vs oracle");
        }
        if let Some(got) = &serial {
            // When a predicate column is compressed, every late-
            // materialization strategy (DS1 position scans on predicate
            // columns) must have gone through at least one run-granular /
            // code-domain scan. EM strategies construct tuples by
            // decoding — by definition, not fallback — so they are exempt.
            if expect_code_path && s.is_late() {
                assert!(got.5 > 0, "{s} {label}: compressed path never ran");
            }
        }
        for threads in THREAD_COUNTS {
            let parallel = cold_run(db, q, s, granule, threads);
            match (&serial, &parallel) {
                (None, None) => {}
                (Some(exp), Some(got)) => {
                    assert_eq!(got.0, exp.0, "{s} {label} threads={threads}: result bytes");
                    assert_eq!(got.1, exp.1, "{s} {label} threads={threads}: column names");
                    assert_eq!(got.2, exp.2, "{s} {label} threads={threads}: positions");
                    assert_eq!(got.3, exp.3, "{s} {label} threads={threads}: rows_out");
                    assert_eq!(got.4, exp.4, "{s} {label} threads={threads}: block_reads");
                    assert_eq!(got.5, exp.5, "{s} {label} threads={threads}: code ops");
                }
                _ => panic!("{s} {label} threads={threads}: supportedness changed"),
            }
        }
    }
}

fn dataset() -> Vec<(Value, Value, Value)> {
    (0..6000)
        .map(|i| (i / 1000, (i * 37) % 10, (i * 7919) % 64))
        .collect()
}

#[test]
fn selections_never_decode_and_match_the_decoded_oracle() {
    let rows = dataset();
    let (oracle_db, oid) = load_decoded(&rows);
    for enc_b in FILTER_ENCODINGS {
        let (db, id) = load(enc_b, EncodingKind::Plain, &rows);
        let q = QuerySpec::select(id, vec![0, 2])
            .filter(0, Predicate::lt(5))
            .filter(1, Predicate::between(2, 7));
        let oq = QuerySpec::select(oid, vec![0, 2])
            .filter(0, Predicate::lt(5))
            .filter(1, Predicate::between(2, 7));
        assert_compressed_exec_contract(&db, &oracle_db, &q, &oq, 128, true, &format!("{enc_b:?}"));
    }
}

#[test]
fn aggregates_consume_runs_and_match_the_decoded_oracle() {
    let rows = dataset();
    let (oracle_db, oid) = load_decoded(&rows);
    // The payload encoding drives the run-aware aggregation path: RLE
    // payloads aggregate whole runs, Dict payloads aggregate codes.
    for enc_c in [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::Dict] {
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let (db, id) = load(Some(EncodingKind::Rle), enc_c, &rows);
            let q = QuerySpec::select(id, vec![])
                .filter(1, Predicate::ge(2))
                .aggregate_fn(0, 2, func);
            let oq = QuerySpec::select(oid, vec![])
                .filter(1, Predicate::ge(2))
                .aggregate_fn(0, 2, func);
            assert_compressed_exec_contract(
                &db,
                &oracle_db,
                &q,
                &oq,
                128,
                true,
                &format!("{enc_c:?} {func:?}"),
            );
        }
    }
}

/// The PR 7 write path: an uncompacted delta (inserts + deletes) merges
/// into compressed base scans without breaking the contract. Delta rows
/// evaluate decoded, the base stays on the code path.
#[test]
fn dirty_delta_merges_preserve_the_contract() {
    let rows = dataset();
    let inserts: Vec<Vec<Value>> = (0..40)
        .map(|i| vec![6, (i * 3) % 12, 100 + i]) // b values partly outside the base domain
        .collect();
    let (oracle_db, oid) = load_decoded(&rows);
    oracle_db.insert(oid, &inserts).unwrap();
    oracle_db
        .delete_where(oid, &[(2, Predicate::eq(63))])
        .unwrap();
    for enc_b in FILTER_ENCODINGS {
        let (db, id) = load(enc_b, EncodingKind::Plain, &rows);
        db.insert(id, &inserts).unwrap();
        db.delete_where(id, &[(2, Predicate::eq(63))]).unwrap();
        let q = QuerySpec::select(id, vec![0, 2])
            .filter(0, Predicate::le(6))
            .filter(1, Predicate::ne(4));
        let oq = QuerySpec::select(oid, vec![0, 2])
            .filter(0, Predicate::le(6))
            .filter(1, Predicate::ne(4));
        assert_compressed_exec_contract(
            &db,
            &oracle_db,
            &q,
            &oq,
            128,
            true,
            &format!("dirty {enc_b:?}"),
        );
        // And aggregation over the dirty table.
        let qa = QuerySpec::select(id, vec![])
            .filter(1, Predicate::lt(8))
            .aggregate_sum(0, 2);
        let oqa = QuerySpec::select(oid, vec![])
            .filter(1, Predicate::lt(8))
            .aggregate_sum(0, 2);
        assert_compressed_exec_contract(
            &db,
            &oracle_db,
            &qa,
            &oqa,
            128,
            enc_b != Some(EncodingKind::Plain),
            &format!("dirty agg {enc_b:?}"),
        );
    }
}

// ---------------------------------------------------------------------
// Code-keyed joins
// ---------------------------------------------------------------------

struct JoinFixture {
    db: Database,
    spec: JoinSpec,
}

/// Left (3,000 rows) and right (10 rows) keyed on the same 10-value
/// domain. `shared` encodes both key columns against shared sorted
/// dictionaries — equal fingerprints, so the join hashes u32 codes —
/// while the oracle keeps them Plain and hashes decoded values.
fn join_fixture(shared: bool) -> JoinFixture {
    let db = Database::in_memory();
    let lk: Vec<Value> = (0..3000).map(|i| ((i * 7) % 10) * 10).collect();
    let lv: Vec<Value> = (0..3000).collect();
    let key_col = |spec: ProjectionSpec, name: &str, sort| {
        if shared {
            spec.column_shared_dict(name, sort)
        } else {
            spec.column(name, EncodingKind::Plain, sort)
        }
    };
    let left = db
        .load_projection(
            &key_col(ProjectionSpec::new("l"), "k", SortOrder::None).column(
                "v",
                EncodingKind::Plain,
                SortOrder::None,
            ),
            &[&lk, &lv],
        )
        .unwrap();
    let rk: Vec<Value> = (0..10).map(|i| i * 10).collect();
    let rv: Vec<Value> = (0..10).map(|i| i + 500).collect();
    let right = db
        .load_projection(
            &key_col(ProjectionSpec::new("r"), "k", SortOrder::Primary).column(
                "v",
                EncodingKind::Plain,
                SortOrder::None,
            ),
            &[&rk, &rv],
        )
        .unwrap();
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: Some((1, Predicate::lt(2500))),
        right_filter: None,
        left_output: vec![1],
        right_output: vec![1],
    };
    JoinFixture { db, spec }
}

fn cold_join_run(
    f: &JoinFixture,
    inner: InnerStrategy,
    threads: usize,
) -> (Vec<Value>, Vec<String>, u64, u64) {
    f.db.store().cold_reset();
    let opts = ExecOptions {
        granule: 256,
        parallelism: threads,
        ..ExecOptions::default()
    };
    let ops0 = matstrat::common::codeops::snapshot();
    let r =
        f.db.execute_planned(
            &Statement::JoinTree(JoinTreeSpec::new(vec![f.spec.clone()])),
            &QueryPlan::forced_tree(vec![0], vec![inner]),
            &opts,
        )
        .unwrap()
        .rows;
    let ops = matstrat::common::codeops::snapshot().wrapping_sub(ops0);
    let reads = f.db.store().meter().snapshot().block_reads;
    (r.flat().to_vec(), r.column_names.clone(), reads, ops)
}

#[test]
fn code_keyed_joins_match_the_value_keyed_oracle() {
    let oracle = join_fixture(false);
    let coded = join_fixture(true);
    for inner in InnerStrategy::ALL {
        let exp = cold_join_run(&oracle, inner, 1);
        let serial = cold_join_run(&coded, inner, 1);
        assert_eq!(exp.3, 0, "{inner:?}: value-keyed oracle charged code ops");
        assert_eq!(
            serial.0, exp.0,
            "{inner:?}: result bytes vs value-keyed oracle"
        );
        assert_eq!(serial.1, exp.1, "{inner:?}: column names");
        // Build hashed 10 codes, probe hashed the 2,500 filter survivors.
        assert!(serial.3 >= 2500, "{inner:?}: code ops = {}", serial.3);
        for threads in THREAD_COUNTS {
            let got = cold_join_run(&coded, inner, threads);
            assert_eq!(got.0, serial.0, "{inner:?} threads={threads}: result bytes");
            assert_eq!(
                got.2, serial.2,
                "{inner:?} threads={threads}: cold block_reads"
            );
        }
    }
}

/// Delta rows ride along: in-dictionary delta keys translate through the
/// code table; a right-delta key outside the dictionary forces the
/// value-keyed fallback. Both must stay byte-identical to the oracle.
#[test]
fn code_keyed_join_deltas_match_the_value_keyed_oracle() {
    for out_of_dict in [false, true] {
        let oracle = join_fixture(false);
        let coded = join_fixture(true);
        let rkey = if out_of_dict { 999 } else { 30 };
        for f in [&oracle, &coded] {
            f.db.insert(f.spec.right, &[vec![rkey, 777]]).unwrap();
            f.db.insert(f.spec.left, &[vec![rkey, 100], vec![31, 101]])
                .unwrap();
        }
        for inner in InnerStrategy::ALL {
            let exp = cold_join_run(&oracle, inner, 1);
            for threads in THREAD_COUNTS {
                let got = cold_join_run(&coded, inner, threads);
                assert_eq!(
                    got.0, exp.0,
                    "{inner:?} threads={threads} out_of_dict={out_of_dict}: result bytes"
                );
            }
        }
    }
}

/// A two-edge join tree with one shared-dictionary edge: the base scan
/// probes that edge in the code domain, the other edge stays value-keyed,
/// and the merged output is byte-identical to the all-Plain oracle at
/// every thread count.
#[test]
fn join_trees_with_a_code_keyed_edge_match_the_oracle() {
    let build = |shared: bool| {
        let db = Database::in_memory();
        let k1: Vec<Value> = (0..4000).map(|i| ((i * 7) % 10) * 10).collect();
        let k2: Vec<Value> = (0..4000).map(|i| (i * 13) % 50).collect();
        let v: Vec<Value> = (0..4000).collect();
        let key_col = |spec: ProjectionSpec, name: &str, sort| {
            if shared {
                spec.column_shared_dict(name, sort)
            } else {
                spec.column(name, EncodingKind::Plain, sort)
            }
        };
        let base = db
            .load_projection(
                &key_col(ProjectionSpec::new("base"), "k1", SortOrder::None)
                    .column("k2", EncodingKind::Plain, SortOrder::None)
                    .column("v", EncodingKind::Plain, SortOrder::None),
                &[&k1, &k2, &v],
            )
            .unwrap();
        let d1k: Vec<Value> = (0..10).map(|i| i * 10).collect();
        let d1v: Vec<Value> = (0..10).map(|i| i + 500).collect();
        let dim1 = db
            .load_projection(
                &key_col(ProjectionSpec::new("dim1"), "k", SortOrder::Primary).column(
                    "v",
                    EncodingKind::Plain,
                    SortOrder::None,
                ),
                &[&d1k, &d1v],
            )
            .unwrap();
        let d2k: Vec<Value> = (0..50).collect();
        let d2v: Vec<Value> = (0..50).map(|i| i + 9000).collect();
        let dim2 = db
            .load_projection(
                &ProjectionSpec::new("dim2")
                    .column("k", EncodingKind::Plain, SortOrder::Primary)
                    .column("v", EncodingKind::Plain, SortOrder::None),
                &[&d2k, &d2v],
            )
            .unwrap();
        let spec = JoinTreeSpec::new(vec![
            JoinSpec {
                left: base,
                right: dim1,
                left_key: 0,
                right_key: 0,
                left_filter: Some((2, Predicate::lt(3500))),
                right_filter: None,
                left_output: vec![2],
                right_output: vec![1],
            },
            JoinSpec {
                left: base,
                right: dim2,
                left_key: 1,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![1],
            },
        ]);
        (db, spec)
    };
    let (oracle_db, oracle_spec) = build(false);
    let (coded_db, coded_spec) = build(true);
    let inners = [InnerStrategy::MultiColumn, InnerStrategy::MultiColumn];
    let run = |db: &Database, spec: &JoinTreeSpec, threads: usize| {
        db.store().cold_reset();
        let opts = ExecOptions {
            granule: 256,
            parallelism: threads,
            ..ExecOptions::default()
        };
        let out = db
            .execute_planned(
                &Statement::JoinTree(spec.clone()),
                &QueryPlan::forced_tree(vec![0, 1], inners.to_vec()),
                &opts,
            )
            .unwrap();
        (
            out.rows.flat().to_vec(),
            db.store().meter().snapshot().block_reads,
        )
    };
    let ops0 = matstrat::common::codeops::snapshot();
    let exp = run(&oracle_db, &oracle_spec, 1);
    assert_eq!(
        matstrat::common::codeops::snapshot(),
        ops0,
        "all-Plain tree must not touch the code path"
    );
    let serial = run(&coded_db, &coded_spec, 1);
    assert!(
        matstrat::common::codeops::snapshot().wrapping_sub(ops0) > 0,
        "shared-dict edge never took the code path"
    );
    assert_eq!(serial.0, exp.0, "tree result bytes vs decoded oracle");
    for threads in THREAD_COUNTS {
        let got = run(&coded_db, &coded_spec, threads);
        assert_eq!(got.0, serial.0, "threads={threads}: tree result bytes");
        assert_eq!(got.1, serial.1, "threads={threads}: cold block_reads");
    }
}
