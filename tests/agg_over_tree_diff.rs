//! Aggregation over join trees, differentially: the pipelined
//! tree-with-aggregate executor must equal the *serial composition*
//! oracle — run the unaggregated tree, then aggregate its rows in plain
//! test code — at every thread count, with the same cold block reads
//! every time, and with zone maps pruning clustered base blocks without
//! ever changing a byte.

use std::collections::BTreeMap;

use matstrat::core::{hash_join_tree_with_options, AggFunc, InnerStrategy, JoinTreePlan};
use matstrat::prelude::*;

const N: i64 = 40_000;
const GRANULE: u64 = 1024;
/// Shift shipprio bands into 8-byte territory so the clustered column
/// spans several 64 KB plain blocks (adaptive width would otherwise
/// pack the whole table into one block and give zone maps nothing to
/// prune).
const BAND: Value = 1 << 40;

/// A star + snowflake warehouse whose base filter column is clustered
/// (sorted), so whole 64 KB blocks fall outside a selective predicate's
/// value range and zone maps can prune them.
///
/// fact(shipprio sorted 0..9, custkey, datekey, qty)
///   ⋈ customer(custkey, nation)        — star, base filter shipprio < 2
///   ⋈ date(datekey, month)             — star
///   customer ⋈ nation(nationkey, region) — snowflake
fn fixture() -> (Database, JoinTreeSpec) {
    let db = Database::in_memory();
    let shipprio: Vec<Value> = (0..N).map(|i| (i / (N / 10)) * BAND).collect();
    let custkey: Vec<Value> = (0..N).map(|i| (i * 13) % 100).collect();
    let datekey: Vec<Value> = (0..N).map(|i| (i * 7) % 50).collect();
    let qty: Vec<Value> = (0..N).map(|i| (i * 31) % 97).collect();
    let fact = db
        .load_projection(
            &ProjectionSpec::new("fact")
                .column("shipprio", EncodingKind::Plain, SortOrder::Primary)
                .column("custkey", EncodingKind::Plain, SortOrder::None)
                .column("datekey", EncodingKind::Plain, SortOrder::None)
                .column("qty", EncodingKind::Plain, SortOrder::None),
            &[&shipprio, &custkey, &datekey, &qty],
        )
        .unwrap();
    let ck: Vec<Value> = (0..100).collect();
    let nation: Vec<Value> = (0..100).map(|c| c % 5).collect();
    let customer = db
        .load_projection(
            &ProjectionSpec::new("customer")
                .column("custkey", EncodingKind::Plain, SortOrder::Primary)
                .column("nation", EncodingKind::Plain, SortOrder::None),
            &[&ck, &nation],
        )
        .unwrap();
    let dk: Vec<Value> = (0..50).collect();
    let month: Vec<Value> = (0..50).map(|d| d % 12).collect();
    let date = db
        .load_projection(
            &ProjectionSpec::new("date")
                .column("datekey", EncodingKind::Plain, SortOrder::Primary)
                .column("month", EncodingKind::Plain, SortOrder::None),
            &[&dk, &month],
        )
        .unwrap();
    let nk: Vec<Value> = (0..5).collect();
    let region: Vec<Value> = (0..5).map(|n| n * 10).collect();
    let nation_t = db
        .load_projection(
            &ProjectionSpec::new("nation")
                .column("nationkey", EncodingKind::Plain, SortOrder::Primary)
                .column("region", EncodingKind::Plain, SortOrder::None),
            &[&nk, &region],
        )
        .unwrap();
    // Flat spec-order output: [qty, nation, month, region].
    let spec = JoinTreeSpec::new(vec![
        JoinSpec {
            left: fact,
            right: customer,
            left_key: 1,
            right_key: 0,
            left_filter: Some((0, Predicate::lt(2 * BAND))),
            right_filter: None,
            left_output: vec![3],
            right_output: vec![1],
        },
        JoinSpec {
            left: fact,
            right: date,
            left_key: 2,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![1],
        },
        JoinSpec {
            left: customer,
            right: nation_t,
            left_key: 1,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![1],
        },
    ]);
    (db, spec)
}

fn opts(db: &Database, threads: usize, zone_maps: bool) -> ExecOptions {
    ExecOptions {
        granule: GRANULE,
        parallelism: threads,
        zone_maps,
        ..db.exec_options()
    }
}

/// Cold-run a tree statement under a forced spec-order plan.
fn cold_tree(
    db: &Database,
    spec: &JoinTreeSpec,
    threads: usize,
    zone_maps: bool,
) -> (QueryResult, QueryStats) {
    db.store().cold_reset();
    let out = db
        .execute_planned(
            &Statement::JoinTree(spec.clone()),
            &QueryPlan::forced_tree(
                (0..spec.edges.len()).collect(),
                vec![InnerStrategy::MultiColumn; spec.edges.len()],
            ),
            &opts(db, threads, zone_maps),
        )
        .unwrap();
    (out.rows, out.stats)
}

/// The serial composition oracle: the *unaggregated* tree run serially
/// with zone maps off, aggregated by plain test code.
fn compose_oracle(db: &Database, spec: &JoinTreeSpec) -> (Vec<Vec<Value>>, QueryStats) {
    let agg = spec.aggregate.expect("oracle needs the aggregate spec");
    let mut flat_spec = spec.clone();
    flat_spec.aggregate = None;
    let (rows, stats) = cold_tree(db, &flat_spec, 1, false);
    let mut groups: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
    for row in rows.rows() {
        groups
            .entry(row[agg.group_col])
            .or_default()
            .push(row[agg.value_col]);
    }
    let want = groups
        .into_iter()
        .map(|(g, vs)| {
            let v = match agg.func {
                AggFunc::Sum => vs.iter().sum(),
                AggFunc::Count => vs.len() as Value,
                AggFunc::Min => *vs.iter().min().unwrap(),
                AggFunc::Max => *vs.iter().max().unwrap(),
            };
            vec![g, v]
        })
        .collect();
    (want, stats)
}

/// The headline differential: GROUP BY month, f(qty) over the three-edge
/// tree equals the serial composition oracle at every thread count — and
/// the aggregated pipeline's cold block reads are one exact number, not
/// a per-thread-count accident.
#[test]
fn tree_aggregate_equals_serial_composition_oracle_at_every_thread_count() {
    let (db, spec) = fixture();
    for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
        let agg_spec = spec.clone().aggregate_fn(2, 0, func);
        let (want, oracle_stats) = compose_oracle(&db, &agg_spec);
        assert!(!want.is_empty(), "{func:?}: oracle found no groups");
        assert_eq!(
            oracle_stats.zone_skips, 0,
            "{func:?}: the oracle runs with zone maps off"
        );
        let mut reads = None;
        for threads in [1usize, 2, 4, 8] {
            let (rows, stats) = cold_tree(&db, &agg_spec, threads, true);
            let got: Vec<Vec<Value>> = rows.rows().map(|r| r.to_vec()).collect();
            assert_eq!(got, want, "{func:?} threads={threads}");
            assert_eq!(stats.rows_out, want.len() as u64, "{func:?}");
            match reads {
                None => reads = Some(stats.io.block_reads),
                Some(r) => assert_eq!(
                    stats.io.block_reads, r,
                    "{func:?} threads={threads}: cold block reads must be \
                     exact, not a thread-count accident"
                ),
            }
        }
        // The aggregate never materializes the joined rows, so it cannot
        // read more than the oracle's unaggregated leg.
        assert!(
            reads.unwrap() <= oracle_stats.io.block_reads,
            "{func:?}: aggregated pipeline reads more than the flat tree"
        );
    }
}

/// Zone maps on the clustered base: the selective predicate's value
/// range excludes whole blocks, so skips are positive with maps on,
/// zero with maps off — and the bytes never move.
#[test]
fn zone_maps_prune_clustered_blocks_without_changing_bytes() {
    let (db, spec) = fixture();
    let agg_spec = spec.aggregate_fn(2, 0, AggFunc::Sum);
    let (pruned_rows, pruned) = cold_tree(&db, &agg_spec, 4, true);
    let (full_rows, full) = cold_tree(&db, &agg_spec, 4, false);
    assert!(
        pruned.zone_skips > 0,
        "clustered shipprio must prune blocks, skipped {}",
        pruned.zone_skips
    );
    assert_eq!(full.zone_skips, 0, "maps off cannot report skips");
    assert_eq!(pruned_rows.flat(), full_rows.flat());
    assert!(
        pruned.io.block_reads < full.io.block_reads,
        "pruning must show up in the meter: {} !< {}",
        pruned.io.block_reads,
        full.io.block_reads
    );
}

/// Bushy execution of the snowflake edge plus a dimension predicate
/// pushed into the customer build, against the unpushed post-filtered
/// oracle. `reuse_builds`/bushy shape is plan-level, so this leg drives
/// the raw executor; the oracle composes through the public API.
#[test]
fn bushy_plan_with_pushed_down_dimension_predicate_matches_oracle() {
    let (db, spec) = fixture();
    // Push nation < 3 into the customer build (customer col 1).
    let mut pushed = spec.clone();
    pushed.edges[0].right_filter = Some((1, Predicate::lt(3)));
    let pushed_agg = pushed.clone().aggregate_fn(2, 0, AggFunc::Sum);

    // Oracle: unpushed flat tree, post-filtered on the nation output
    // column (flat col 1), aggregated by hand.
    let (flat, _) = cold_tree(&db, &spec, 1, false);
    let mut groups: BTreeMap<Value, Value> = BTreeMap::new();
    for row in flat.rows().filter(|r| r[1] < 3) {
        *groups.entry(row[2]).or_insert(0) += row[0];
    }
    let want: Vec<Vec<Value>> = groups.into_iter().map(|(g, v)| vec![g, v]).collect();
    assert!(!want.is_empty(), "oracle must keep some groups");

    for threads in [1usize, 4] {
        for bushy in [vec![], vec![false, false, true]] {
            let plan = JoinTreePlan {
                bushy: bushy.clone(),
                ..JoinTreePlan::in_spec_order(vec![InnerStrategy::MultiColumn; 3])
            };
            db.store().cold_reset();
            let (rows, stats) = hash_join_tree_with_options(
                db.store(),
                &pushed_agg,
                &plan,
                &opts(&db, threads, true),
            )
            .unwrap();
            let got: Vec<Vec<Value>> = rows.rows().map(|r| r.to_vec()).collect();
            assert_eq!(got, want, "threads={threads} bushy={bushy:?}");
            assert_eq!(stats.rows_out, want.len() as u64);
        }
    }

    // And the planner's own pick — whatever shape it chooses — lands on
    // the same bytes through the public entry point.
    db.store().cold_reset();
    let out = db.execute(&Statement::JoinTree(pushed_agg)).unwrap();
    let got: Vec<Vec<Value>> = out.rows.rows().map(|r| r.to_vec()).collect();
    assert_eq!(got, want, "planner pick: {}", out.choice.describe());
    assert!(matches!(out.choice, QueryPlan::Tree(_)));
}

/// The language front-end lowers GROUP BY over JOIN into the same
/// pipeline: dialect text equals the composition oracle.
#[test]
fn sql_group_by_over_join_equals_composition_oracle() {
    let (db, spec) = fixture();
    let agg_spec = spec.aggregate_fn(2, 0, AggFunc::Sum);
    let (want, _) = compose_oracle(&db, &agg_spec);
    let sql = format!(
        "SELECT date.month, SUM(fact.qty) FROM fact \
         JOIN customer ON fact.custkey = customer.custkey \
         JOIN date ON fact.datekey = date.datekey \
         JOIN nation ON customer.nation = nation.nationkey \
         WHERE fact.shipprio < {} \
         GROUP BY date.month",
        2 * BAND
    );
    let stmt = matstrat::lang::compile(db.store(), &sql).unwrap();
    let out = db.execute(&stmt).unwrap();
    let got: Vec<Vec<Value>> = out.rows.rows().map(|r| r.to_vec()).collect();
    assert_eq!(got, want, "dialect text through {}", out.choice.describe());
}
