//! Clustered-selectivity skew battery for the work-stealing scheduler.
//!
//! Contiguous-span partitioning is optimal for seek accounting but
//! pathological when selectivity clusters: with every match concentrated
//! in one worker's original span, that worker does all the value
//! fetching and tuple construction while its siblings scan empty
//! granules and idle. The work-stealing scheduler exists to fix exactly
//! this — and it must fix it **without** touching the engine's
//! determinism contract. This battery constructs the pathological case
//! on purpose and asserts both halves:
//!
//! * **Semantics are untouched** — for every strategy and thread count,
//!   result bytes, column names, `positions_matched`, `rows_out`, and
//!   cold `block_reads` equal the serial run's exactly, even while
//!   granule runs migrate between workers.
//! * **Stealing actually happens** — the serial run reports
//!   `ExecStats::steals == 0`, and at ≥ 2 workers the skew drives idle
//!   workers to steal from the loaded span's tail (`steals > 0`). The
//!   steal count itself is scheduling, not semantics: it varies run to
//!   run, so the assertion is "occurred", never "equals".

use matstrat::common::TableId;
use matstrat::core::Strategy;
use matstrat::prelude::*;

/// Rows per granule and granules in the table: 256 granules of 64 rows,
/// so even an 8-way run plans 32-granule spans with chunk-sized steals.
const GRANULE: u64 = 64;
const NUM_GRANULES: u64 = 256;
const ROWS: usize = (GRANULE * NUM_GRANULES) as usize;

/// Matches live only in the first `1/16` of the table — inside worker
/// 0's original span for every thread count in the matrix (an 8-way run
/// gives worker 0 the first `1/8`).
const HOT_FRACTION: usize = 16;

/// Three columns: `a` sorted (RLE primary), `b` the clustered filter
/// column — `1` in the hot prefix, `0` elsewhere — and `c` a plain
/// payload fetched for survivors only.
fn load_clustered() -> (Database, TableId) {
    let hot = ROWS / HOT_FRACTION;
    let a: Vec<Value> = (0..ROWS).map(|i| (i / (ROWS / 8)) as Value).collect();
    let b: Vec<Value> = (0..ROWS).map(|i| Value::from(i < hot)).collect();
    let c: Vec<Value> = (0..ROWS).map(|i| ((i * 7919) % 1000) as Value).collect();
    let db = Database::in_memory();
    let spec = ProjectionSpec::new("skewed")
        .column("a", EncodingKind::Rle, SortOrder::Primary)
        .column("b", EncodingKind::Plain, SortOrder::None)
        .column("c", EncodingKind::Plain, SortOrder::None);
    let id = db.load_projection(&spec, &[&a, &b, &c]).unwrap();
    (db, id)
}

fn hot_query(table: TableId) -> QuerySpec {
    QuerySpec::select(table, vec![0, 2]).filter(1, Predicate::eq(1))
}

fn cold_run(db: &Database, q: &QuerySpec, s: Strategy, threads: usize) -> (QueryResult, ExecStats) {
    db.store().cold_reset();
    let opts = ExecOptions {
        granule: GRANULE,
        parallelism: threads,
        ..ExecOptions::default()
    };
    let out = db
        .execute_planned(
            &Statement::Select(q.clone()),
            &QueryPlan::forced_scan(s),
            &opts,
        )
        .unwrap_or_else(|e| panic!("{s} threads={threads}: {e}"));
    (out.rows, out.stats)
}

/// The determinism half: byte-identical results and exact deterministic
/// counters at every thread count, under maximal skew.
#[test]
fn clustered_skew_results_identical_at_any_thread_count() {
    let (db, table) = load_clustered();
    let q = hot_query(table);
    for s in Strategy::ALL {
        let (serial, serial_stats) = cold_run(&db, &q, s, 1);
        assert_eq!(serial_stats.steals, 0, "{s}: a serial run cannot steal");
        assert_eq!(
            serial_stats.positions_matched,
            (ROWS / HOT_FRACTION) as u64,
            "{s}: the hot prefix matches exactly"
        );
        for threads in [2, 4, 8] {
            let (par, stats) = cold_run(&db, &q, s, threads);
            assert_eq!(
                par.flat(),
                serial.flat(),
                "{s} threads={threads}: result bytes"
            );
            assert_eq!(par.column_names, serial.column_names);
            assert_eq!(
                stats.positions_matched, serial_stats.positions_matched,
                "{s} threads={threads}: positions_matched"
            );
            assert_eq!(
                stats.rows_out, serial_stats.rows_out,
                "{s} threads={threads}: rows_out"
            );
            assert_eq!(
                stats.io.block_reads, serial_stats.io.block_reads,
                "{s} threads={threads}: cold block_reads"
            );
        }
    }
}

/// The rebalance half: under clustered selectivity, idle workers steal
/// from the loaded span. Steal counts are scheduling (not semantics), so
/// a single run can legitimately finish without stealing on a loaded or
/// single-core host; the test retries a few times and requires stealing
/// to show up at least once per thread count — while every retried run
/// still passes the byte-identity check.
#[test]
fn clustered_skew_provokes_stealing_at_two_plus_workers() {
    let (db, table) = load_clustered();
    let q = hot_query(table);
    let (serial, _) = cold_run(&db, &q, Strategy::LmParallel, 1);
    for threads in [2usize, 4, 8] {
        let mut stole = 0u64;
        for _attempt in 0..20 {
            let (par, stats) = cold_run(&db, &q, Strategy::LmParallel, threads);
            assert_eq!(par.flat(), serial.flat(), "threads={threads}: bytes");
            stole = stats.steals;
            if stole > 0 {
                break;
            }
        }
        assert!(
            stole > 0,
            "threads={threads}: all matches in one worker's span must \
             provoke stealing in at least one of 20 runs"
        );
    }
}
