//! The interleaving differential: a batch of mixed queries submitted
//! through concurrent sessions must be **byte-identical** — results and
//! per-query cold `block_reads` — to the same batch run serially, at
//! every client-thread count in {1, 2, 4, 8} and pool shard count in
//! {1, 2}.
//!
//! Per-query I/O is harvested per thread (`IoSink`), and the buffer
//! pool's single-flight fill credits each block's read to the query
//! whose worker fills it (worker threads carry their query's token).
//! Queries racing on the *same* table may therefore split the reads
//! between them nondeterministically — but exactly: every cold fill is
//! charged to precisely one of them. The main battery gives each query
//! its own tables so the per-query expectation is exact; the
//! overlapping-table test below pins the split-but-exact contract.
//!
//! The batch is written in the dialect and compiled against the catalog
//! (`matstrat_lang`), so the text front-end sits in the proven path too.

use std::sync::{Arc, Barrier};

use matstrat::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARD_COUNTS: [usize; 2] = [1, 2];

/// The mixed batch: plain scans, aggregations, a single join, a star,
/// and a snowflake — each over its own tables (see the module docs).
const BATCH: [&str; 9] = [
    "SELECT k, v FROM t1 WHERE v < 60 AND w != 5",
    "SELECT w, v, k FROM t2 WHERE k BETWEEN 4000 AND 21000",
    "SELECT g, SUM(v) FROM t3 WHERE v > 10 GROUP BY g",
    "SELECT g, COUNT(v) FROM t4 WHERE v BETWEEN 5 AND 80 GROUP BY g",
    "SELECT f5.v, d5.x FROM f5 JOIN d5 ON f5.k = d5.dk",
    "SELECT f6.v, d6.x FROM f6 JOIN d6 ON f6.k = d6.dk WHERE f6.v < 40",
    "SELECT f7.v, d7a.x, d7b.x FROM f7 \
     JOIN d7a ON f7.k1 = d7a.dk JOIN d7b ON f7.k2 = d7b.dk WHERE f7.v < 70",
    "SELECT f8.v, d8a.x, d8b.x FROM f8 \
     JOIN d8a ON f8.k = d8a.dk JOIN d8b ON d8a.r = d8b.dk",
    "SELECT g, MAX(v) FROM t9 GROUP BY g",
];

const FACT_ROWS: i64 = 30_000;
const DIM_ROWS: i64 = 512;

/// Deterministic pseudo-data: multiplicative scrambles, nothing random.
fn build_store() -> matstrat::storage::Store {
    let store = matstrat::storage::Store::in_memory();
    let n = FACT_ROWS;

    // Scan tables t1..t4, t9: k 0..n sorted, v/w/g scrambled.
    for name in ["t1", "t2", "t3", "t4", "t9"] {
        let k: Vec<Value> = (0..n).collect();
        let v: Vec<Value> = (0..n).map(|i| (i * 7919) % 101).collect();
        let w: Vec<Value> = (0..n).map(|i| i % 13).collect();
        let g: Vec<Value> = (0..n).map(|i| i / 1000).collect();
        let spec = ProjectionSpec::new(name)
            .column("k", EncodingKind::Plain, SortOrder::Primary)
            .column("v", EncodingKind::Plain, SortOrder::None)
            .column("w", EncodingKind::Plain, SortOrder::None)
            .column("g", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&k, &v, &w, &g]).unwrap();
    }

    // Single-key facts f5, f6, f8 and their dimensions.
    for (fact, dim) in [("f5", "d5"), ("f6", "d6"), ("f8", "d8a")] {
        let k: Vec<Value> = (0..n).map(|i| (i * 31) % DIM_ROWS).collect();
        let v: Vec<Value> = (0..n).map(|i| (i * 17) % 97).collect();
        let spec = ProjectionSpec::new(fact)
            .column("k", EncodingKind::Plain, SortOrder::None)
            .column("v", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&k, &v]).unwrap();

        let dk: Vec<Value> = (0..DIM_ROWS).collect();
        let x: Vec<Value> = (0..DIM_ROWS).map(|i| i * 3 + 1).collect();
        let r: Vec<Value> = (0..DIM_ROWS).map(|i| (i * 5) % 64).collect();
        let spec = ProjectionSpec::new(dim)
            .column("dk", EncodingKind::Plain, SortOrder::Primary)
            .column("x", EncodingKind::Plain, SortOrder::None)
            .column("r", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&dk, &x, &r]).unwrap();
    }

    // The two-key star fact f7 and dimensions d7a/d7b, plus the second
    // snowflake hop d8b (keyed by d8a.r ∈ 0..64).
    let k1: Vec<Value> = (0..n).map(|i| (i * 13) % DIM_ROWS).collect();
    let k2: Vec<Value> = (0..n).map(|i| (i * 29) % DIM_ROWS).collect();
    let v: Vec<Value> = (0..n).map(|i| (i * 23) % 89).collect();
    let spec = ProjectionSpec::new("f7")
        .column("k1", EncodingKind::Plain, SortOrder::None)
        .column("k2", EncodingKind::Plain, SortOrder::None)
        .column("v", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&spec, &[&k1, &k2, &v]).unwrap();
    for (dim, rows) in [("d7a", DIM_ROWS), ("d7b", DIM_ROWS), ("d8b", 64)] {
        let dk: Vec<Value> = (0..rows).collect();
        let x: Vec<Value> = (0..rows).map(|i| i * 7 + 2).collect();
        let spec = ProjectionSpec::new(dim)
            .column("dk", EncodingKind::Plain, SortOrder::Primary)
            .column("x", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&dk, &x]).unwrap();
    }

    store
}

fn requests(store: &matstrat::storage::Store) -> Vec<Request> {
    BATCH
        .iter()
        .map(|sql| {
            compile(store, sql).unwrap_or_else(|e| panic!("batch query failed to compile:\n{e}"))
        })
        .collect()
}

/// What must be identical per query across every interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    result: QueryResult,
    block_reads: u64,
    rows_out: u64,
}

fn fingerprint(reply: Reply) -> Fingerprint {
    let rows_out = match reply.choice {
        QueryPlan::Write => 0,
        _ => reply.stats.rows_out,
    };
    Fingerprint {
        block_reads: reply.block_reads(),
        result: reply.rows,
        rows_out,
    }
}

/// Serial reference: one session, one query at a time, each from a cold
/// pool — the per-query cold cost with nothing else running.
fn run_serial(store: &matstrat::storage::Store) -> Vec<Fingerprint> {
    let server = Server::new(
        store.clone(),
        ServerConfig {
            max_concurrent: 1,
            worker_budget: 1,
        },
    );
    let session = server.connect();
    requests(store)
        .iter()
        .map(|req| {
            store.cold_reset();
            fingerprint(session.run(req).unwrap())
        })
        .collect()
}

/// Interleaved run: one cold reset, then the batch spread round-robin
/// over `threads` client sessions that start together. Disjoint tables
/// make every query cold exactly once, whatever the interleaving.
fn run_interleaved(store: &matstrat::storage::Store, threads: usize) -> Vec<Fingerprint> {
    store.cold_reset();
    let server = Server::new(
        store.clone(),
        ServerConfig {
            max_concurrent: threads,
            worker_budget: threads.max(2),
        },
    );
    let reqs = requests(store);
    let barrier = Arc::new(Barrier::new(threads));
    let mut out: Vec<Option<Fingerprint>> = vec![None; reqs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let server = &server;
            let reqs = &reqs;
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let session = server.connect();
                barrier.wait();
                let mut mine = Vec::new();
                for (i, req) in reqs.iter().enumerate().skip(t).step_by(threads) {
                    mine.push((i, fingerprint(session.run(req).unwrap())));
                }
                mine
            }));
        }
        for h in handles {
            for (i, fp) in h.join().unwrap() {
                out[i] = Some(fp);
            }
        }
    });
    let stats = server.stats();
    assert_eq!(stats.admitted as usize, BATCH.len());
    assert_eq!(stats.completed as usize, BATCH.len());
    assert!(stats.peak_active <= threads, "admission bound held");
    out.into_iter().map(Option::unwrap).collect()
}

#[test]
fn interleaved_batches_are_byte_identical_to_serial() {
    let store = build_store();
    let reference = run_serial(&store);
    for (i, fp) in reference.iter().enumerate() {
        assert!(fp.block_reads > 0, "query {i} should do cold I/O");
        assert!(fp.rows_out > 0, "query {i} should produce rows");
    }

    for shards in SHARD_COUNTS {
        store.pool().reshard(shards);
        assert_eq!(store.pool().num_shards(), shards);
        for threads in THREAD_COUNTS {
            let got = run_interleaved(&store, threads);
            for (i, (got, want)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.result, want.result,
                    "query {i} result drifted (threads={threads}, shards={shards})"
                );
                assert_eq!(
                    got.block_reads, want.block_reads,
                    "query {i} cold block_reads drifted (threads={threads}, shards={shards})"
                );
                assert_eq!(got.rows_out, want.rows_out, "query {i} rows_out");
            }
        }
        // The serial reference itself is shard-invariant.
        let again = run_serial(&store);
        assert_eq!(again, reference, "serial rerun drifted at shards={shards}");
    }
}

/// The overlapping-table case: identical queries racing on **one**
/// table have the same block footprint, so single-flight fill must
/// split the cold reads between them *without loss or double-count* —
/// per query ≤ the solo cold cost, summed exactly equal to it — while
/// every result stays byte-identical.
#[test]
fn overlapping_queries_split_cold_reads_exactly() {
    const SQL: &str = "SELECT k, v, w FROM t1 WHERE v < 120";
    let store = build_store();
    let req = compile(&store, SQL).unwrap();

    let solo = {
        let server = Server::new(
            store.clone(),
            ServerConfig {
                max_concurrent: 1,
                worker_budget: 1,
            },
        );
        store.cold_reset();
        fingerprint(server.connect().run(&req).unwrap())
    };
    assert!(solo.block_reads > 0, "the reference scan must be cold");

    for clients in [2usize, 4] {
        let server = Server::new(
            store.clone(),
            ServerConfig {
                max_concurrent: clients,
                worker_budget: clients.max(2),
            },
        );
        store.cold_reset();
        let barrier = Arc::new(Barrier::new(clients));
        let fps: Vec<Fingerprint> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let (server, req) = (&server, &req);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let session = server.connect();
                        barrier.wait();
                        fingerprint(session.run(req).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut total = 0;
        for (c, fp) in fps.iter().enumerate() {
            assert_eq!(fp.result, solo.result, "client {c} of {clients}: result");
            assert_eq!(fp.rows_out, solo.rows_out, "client {c}: rows_out");
            assert!(
                fp.block_reads <= solo.block_reads,
                "client {c} of {clients}: charged {} reads, solo cost is {}",
                fp.block_reads,
                solo.block_reads
            );
            total += fp.block_reads;
        }
        // Same footprint + single-flight: every distinct block was read
        // from disk exactly once and charged to exactly one query.
        assert_eq!(
            total, solo.block_reads,
            "{clients} clients: cold reads lost or double-counted"
        );
    }
}

#[test]
fn batch_queries_cover_all_three_shapes() {
    let store = build_store();
    let reqs = requests(&store);
    let scans = reqs
        .iter()
        .filter(|r| matches!(r, Request::Select(q) if q.aggregate.is_none()))
        .count();
    let aggs = reqs
        .iter()
        .filter(|r| matches!(r, Request::Select(q) if q.aggregate.is_some()))
        .count();
    let single = reqs
        .iter()
        .filter(|r| matches!(r, Request::JoinTree(t) if t.edges.len() == 1))
        .count();
    let multi = reqs
        .iter()
        .filter(|r| matches!(r, Request::JoinTree(t) if t.edges.len() > 1))
        .count();
    assert!(reqs.len() >= 8, "the battery must stay a real batch");
    assert!(scans >= 2 && aggs >= 2 && single >= 2 && multi >= 2);
}
