//! Regression battery for the empty-input hardening sweep: 0-row tables,
//! predicates that select nothing, and empty position-list intermediates
//! must flow through scan, join, and join-tree execution returning
//! well-formed empty results — correct schema, zero counters — never a
//! panic or a malformed fragment.

use matstrat::common::TableId;
use matstrat::core::{AggFunc, Strategy};
use matstrat::prelude::*;

const ENCODINGS: [EncodingKind; 3] = [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::BitVec];

/// A 0-row two-column projection in the encoding under test.
fn empty_table(db: &Database, name: &str, enc: EncodingKind) -> TableId {
    let spec = ProjectionSpec::new(name)
        .column("k", enc, SortOrder::Primary)
        .column("v", EncodingKind::Plain, SortOrder::None);
    db.load_projection(&spec, &[&[], &[]]).unwrap()
}

/// A populated two-column projection (k = 0..n, v = k * 2).
fn filled_table(db: &Database, name: &str, n: i64) -> TableId {
    let k: Vec<Value> = (0..n).collect();
    let v: Vec<Value> = (0..n).map(|i| i * 2).collect();
    let spec = ProjectionSpec::new(name)
        .column("k", EncodingKind::Plain, SortOrder::Primary)
        .column("v", EncodingKind::Plain, SortOrder::None);
    db.load_projection(&spec, &[&k, &v]).unwrap()
}

#[test]
fn scan_over_zero_row_table_returns_empty_schema_and_zero_stats() {
    for enc in ENCODINGS {
        let db = Database::in_memory();
        let t = empty_table(&db, "empty", enc);
        let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(5));
        for s in Strategy::ALL {
            db.store().cold_reset();
            let got = db.run_with_stats(&q, s);
            let (r, stats) = match got {
                Ok(ok) => ok,
                Err(matstrat::common::Error::Unsupported(_)) => continue,
                Err(e) => panic!("{s} over empty table ({enc:?}): {e}"),
            };
            assert_eq!(r.column_names, vec!["k", "v"], "{s} schema survives");
            assert_eq!(r.num_rows(), 0, "{s}");
            assert!(r.flat().is_empty(), "{s}");
            assert_eq!(stats.rows_out, 0, "{s}");
            assert_eq!(stats.positions_matched, 0, "{s}");
            assert_eq!(stats.io.block_reads, 0, "{s}: no blocks to read");
        }
    }
}

#[test]
fn aggregation_over_zero_row_table_yields_zero_groups() {
    let db = Database::in_memory();
    let t = empty_table(&db, "empty", EncodingKind::Plain);
    for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
        let q = QuerySpec::select(t, vec![])
            .filter(1, Predicate::ge(0))
            .aggregate_fn(0, 1, func);
        for s in Strategy::ALL {
            let got = db.run_with_stats(&q, s);
            let (r, stats) = match got {
                Ok(ok) => ok,
                Err(matstrat::common::Error::Unsupported(_)) => continue,
                Err(e) => panic!("{s} {func:?}: {e}"),
            };
            assert_eq!(r.num_rows(), 0, "{s} {func:?}: no groups");
            assert_eq!(r.column_names.len(), 2, "{s} {func:?}");
            assert_eq!(stats.rows_out, 0, "{s} {func:?}");
        }
    }
}

#[test]
fn predicate_selecting_nothing_returns_well_formed_empty_result() {
    let db = Database::in_memory();
    let t = filled_table(&db, "t", 3000);
    // k is 0..3000; nothing is < 0.
    let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(0));
    for s in Strategy::ALL {
        let (r, stats) = db.run_with_stats(&q, s).unwrap();
        assert_eq!(r.column_names, vec!["k", "v"], "{s}");
        assert_eq!(r.num_rows(), 0, "{s}");
        assert_eq!(stats.positions_matched, 0, "{s}");
        assert_eq!(stats.rows_out, 0, "{s}");
    }
    // Same through the planner.
    let (_, r) = db.run_auto(&q).unwrap();
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn join_with_zero_row_probe_side() {
    let db = Database::in_memory();
    let left = empty_table(&db, "l", EncodingKind::Plain);
    let right = filled_table(&db, "r", 50);
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: Some((0, Predicate::lt(10))),
        left_output: vec![1],
        right_output: vec![1],
    };
    for inner in InnerStrategy::ALL {
        let r = db.run_join(&spec, inner).unwrap();
        assert_eq!(r.column_names, vec!["v", "v"], "{inner:?}");
        assert_eq!(r.num_rows(), 0, "{inner:?}");
    }
    let (_, r) = db.run_join_auto(&spec).unwrap();
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn join_with_zero_row_build_side() {
    let db = Database::in_memory();
    let left = filled_table(&db, "l", 50);
    let right = empty_table(&db, "r", EncodingKind::Plain);
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: None,
        left_output: vec![0, 1],
        right_output: vec![1],
    };
    for inner in InnerStrategy::ALL {
        let r = db.run_join(&spec, inner).unwrap();
        assert_eq!(r.column_names, vec!["k", "v", "v"], "{inner:?}");
        assert_eq!(r.num_rows(), 0, "{inner:?}: empty build matches nothing");
    }
    let (_, r) = db.run_join_auto(&spec).unwrap();
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn join_filter_selecting_nothing_produces_empty_intermediate() {
    let db = Database::in_memory();
    let left = filled_table(&db, "l", 500);
    let right = filled_table(&db, "r", 20);
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: Some((0, Predicate::lt(0))), // empty position list
        left_output: vec![1],
        right_output: vec![1],
    };
    for inner in InnerStrategy::ALL {
        let r = db.run_join(&spec, inner).unwrap();
        assert_eq!(r.num_rows(), 0, "{inner:?}");
        assert_eq!(r.column_names, vec!["v", "v"], "{inner:?}");
    }
}

#[test]
fn join_tree_with_empty_intermediates_at_every_stage() {
    let db = Database::in_memory();
    let base = filled_table(&db, "base", 300);
    let dim_full = filled_table(&db, "dim_full", 300);
    let dim_empty = empty_table(&db, "dim_empty", EncodingKind::Plain);

    // Edge 0 matches everything, edge 1 joins a 0-row dimension: the
    // intermediate empties mid-tree and edge 1's fetch must cope.
    let spec = JoinTreeSpec::new(vec![
        JoinSpec {
            left: base,
            right: dim_full,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        },
        JoinSpec {
            left: base,
            right: dim_empty,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            left_output: vec![],
            right_output: vec![1],
        },
    ]);
    for inner in InnerStrategy::ALL {
        let r = db.run_join_tree(&spec, &[inner; 2]).unwrap();
        assert_eq!(r.num_rows(), 0, "{inner:?}");
        assert_eq!(r.column_names, vec!["v", "v", "v"], "{inner:?}");
    }
    let (_, r, stats) = db.run_join_tree_auto(&spec).unwrap();
    assert_eq!(r.num_rows(), 0);
    assert_eq!(stats.rows_out, 0);

    // A 0-row *base* table: the whole tree is empty from the start.
    let spec = JoinTreeSpec::new(vec![JoinSpec {
        left: dim_empty,
        right: dim_full,
        left_key: 0,
        right_key: 0,
        left_filter: Some((0, Predicate::ge(0))),
        left_output: vec![1],
        right_output: vec![1],
    }]);
    for inner in InnerStrategy::ALL {
        let r = db.run_join_tree(&spec, &[inner]).unwrap();
        assert_eq!(r.num_rows(), 0, "{inner:?}");
    }

    // A base filter selecting nothing empties the position intermediate
    // before the first probe.
    let spec = JoinTreeSpec::new(vec![
        JoinSpec {
            left: base,
            right: dim_full,
            left_key: 0,
            right_key: 0,
            left_filter: Some((0, Predicate::lt(0))),
            left_output: vec![1],
            right_output: vec![1],
        },
        JoinSpec {
            left: dim_full,
            right: dim_full,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            left_output: vec![],
            right_output: vec![1],
        },
    ]);
    for inner in InnerStrategy::ALL {
        let r = db.run_join_tree(&spec, &[inner; 2]).unwrap();
        assert_eq!(r.num_rows(), 0, "{inner:?}");
        assert_eq!(r.column_names.len(), 3, "{inner:?}");
    }
}

#[test]
fn planner_survives_zero_row_tables() {
    let db = Database::in_memory();
    let t = empty_table(&db, "empty", EncodingKind::Plain);
    let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(5));
    let choice = db.plan(&q).unwrap();
    let r = db.run(&q, choice.strategy).unwrap();
    assert_eq!(r.num_rows(), 0);

    let full = filled_table(&db, "full", 100);
    let spec = JoinSpec {
        left: t,
        right: full,
        left_key: 0,
        right_key: 0,
        left_filter: None,
        left_output: vec![1],
        right_output: vec![1],
    };
    let choice = db.plan_join(&spec).unwrap();
    let r = db.run_join(&spec, choice.inner).unwrap();
    assert_eq!(r.num_rows(), 0);
}
