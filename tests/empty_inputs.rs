//! Regression battery for the empty-input hardening sweep: 0-row tables,
//! predicates that select nothing, and empty position-list intermediates
//! must flow through scan, join, join-tree, and aggregation-over-tree
//! execution returning well-formed empty results — correct schema, zero
//! counters — never a panic or a malformed fragment. Everything routes
//! through the unified `Database::execute` surface.

use matstrat::common::TableId;
use matstrat::core::{AggFunc, Strategy};
use matstrat::prelude::*;

const ENCODINGS: [EncodingKind; 3] = [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::BitVec];

/// A 0-row two-column projection in the encoding under test.
fn empty_table(db: &Database, name: &str, enc: EncodingKind) -> TableId {
    let spec = ProjectionSpec::new(name)
        .column("k", enc, SortOrder::Primary)
        .column("v", EncodingKind::Plain, SortOrder::None);
    db.load_projection(&spec, &[&[], &[]]).unwrap()
}

/// A populated two-column projection (k = 0..n, v = k * 2).
fn filled_table(db: &Database, name: &str, n: i64) -> TableId {
    let k: Vec<Value> = (0..n).collect();
    let v: Vec<Value> = (0..n).map(|i| i * 2).collect();
    let spec = ProjectionSpec::new(name)
        .column("k", EncodingKind::Plain, SortOrder::Primary)
        .column("v", EncodingKind::Plain, SortOrder::None);
    db.load_projection(&spec, &[&k, &v]).unwrap()
}

/// Run a scan under a pinned strategy through the unified entry point.
fn run_forced(db: &Database, q: &QuerySpec, s: Strategy) -> Result<QueryOutcome> {
    db.execute_planned(
        &Statement::Select(q.clone()),
        &QueryPlan::forced_scan(s),
        &db.exec_options(),
    )
}

/// Run a one-edge tree under a pinned inner strategy.
fn run_join_forced(db: &Database, spec: &JoinSpec, inner: InnerStrategy) -> Result<QueryOutcome> {
    db.execute_planned(
        &Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()])),
        &QueryPlan::forced_tree(vec![0], vec![inner]),
        &db.exec_options(),
    )
}

/// Run a multi-edge tree, spec order, one pinned inner strategy per edge.
fn run_tree_forced(
    db: &Database,
    spec: &JoinTreeSpec,
    inners: &[InnerStrategy],
) -> Result<QueryOutcome> {
    db.execute_planned(
        &Statement::JoinTree(spec.clone()),
        &QueryPlan::forced_tree((0..spec.edges.len()).collect(), inners.to_vec()),
        &db.exec_options(),
    )
}

#[test]
fn scan_over_zero_row_table_returns_empty_schema_and_zero_stats() {
    for enc in ENCODINGS {
        let db = Database::in_memory();
        let t = empty_table(&db, "empty", enc);
        let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(5));
        for s in Strategy::ALL {
            db.store().cold_reset();
            let out = match run_forced(&db, &q, s) {
                Ok(out) => out,
                Err(matstrat::common::Error::Unsupported(_)) => continue,
                Err(e) => panic!("{s} over empty table ({enc:?}): {e}"),
            };
            assert_eq!(out.rows.column_names, vec!["k", "v"], "{s} schema survives");
            assert_eq!(out.rows.num_rows(), 0, "{s}");
            assert!(out.rows.flat().is_empty(), "{s}");
            assert_eq!(out.stats.rows_out, 0, "{s}");
            assert_eq!(out.stats.positions_matched, 0, "{s}");
            assert_eq!(out.stats.io.block_reads, 0, "{s}: no blocks to read");
        }
    }
}

#[test]
fn aggregation_over_zero_row_table_yields_zero_groups() {
    let db = Database::in_memory();
    let t = empty_table(&db, "empty", EncodingKind::Plain);
    for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
        let q = QuerySpec::select(t, vec![])
            .filter(1, Predicate::ge(0))
            .aggregate_fn(0, 1, func);
        for s in Strategy::ALL {
            let out = match run_forced(&db, &q, s) {
                Ok(out) => out,
                Err(matstrat::common::Error::Unsupported(_)) => continue,
                Err(e) => panic!("{s} {func:?}: {e}"),
            };
            assert_eq!(out.rows.num_rows(), 0, "{s} {func:?}: no groups");
            assert_eq!(out.rows.column_names.len(), 2, "{s} {func:?}");
            assert_eq!(out.stats.rows_out, 0, "{s} {func:?}");
        }
    }
}

#[test]
fn predicate_selecting_nothing_returns_well_formed_empty_result() {
    let db = Database::in_memory();
    let t = filled_table(&db, "t", 3000);
    // k is 0..3000; nothing is < 0.
    let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(0));
    for s in Strategy::ALL {
        let out = run_forced(&db, &q, s).unwrap();
        assert_eq!(out.rows.column_names, vec!["k", "v"], "{s}");
        assert_eq!(out.rows.num_rows(), 0, "{s}");
        assert_eq!(out.stats.positions_matched, 0, "{s}");
        assert_eq!(out.stats.rows_out, 0, "{s}");
    }
    // Same through the planner.
    let out = db.execute(&Statement::Select(q)).unwrap();
    assert_eq!(out.rows.num_rows(), 0);
    assert!(matches!(out.choice, QueryPlan::Scan(_)));
}

#[test]
fn join_with_zero_row_probe_side() {
    let db = Database::in_memory();
    let left = empty_table(&db, "l", EncodingKind::Plain);
    let right = filled_table(&db, "r", 50);
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: Some((0, Predicate::lt(10))),
        right_filter: None,
        left_output: vec![1],
        right_output: vec![1],
    };
    for inner in InnerStrategy::ALL {
        let r = run_join_forced(&db, &spec, inner).unwrap().rows;
        assert_eq!(r.column_names, vec!["v", "v"], "{inner:?}");
        assert_eq!(r.num_rows(), 0, "{inner:?}");
    }
    let out = db
        .execute(&Statement::JoinTree(JoinTreeSpec::new(vec![spec])))
        .unwrap();
    assert_eq!(out.rows.num_rows(), 0);
    assert!(matches!(out.choice, QueryPlan::Tree(_)));
}

#[test]
fn join_with_zero_row_build_side() {
    let db = Database::in_memory();
    let left = filled_table(&db, "l", 50);
    let right = empty_table(&db, "r", EncodingKind::Plain);
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: None,
        right_filter: None,
        left_output: vec![0, 1],
        right_output: vec![1],
    };
    for inner in InnerStrategy::ALL {
        let r = run_join_forced(&db, &spec, inner).unwrap().rows;
        assert_eq!(r.column_names, vec!["k", "v", "v"], "{inner:?}");
        assert_eq!(r.num_rows(), 0, "{inner:?}: empty build matches nothing");
    }
    let out = db
        .execute(&Statement::JoinTree(JoinTreeSpec::new(vec![spec])))
        .unwrap();
    assert_eq!(out.rows.num_rows(), 0);
}

#[test]
fn join_filter_selecting_nothing_produces_empty_intermediate() {
    let db = Database::in_memory();
    let left = filled_table(&db, "l", 500);
    let right = filled_table(&db, "r", 20);
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: Some((0, Predicate::lt(0))), // empty position list
        right_filter: None,
        left_output: vec![1],
        right_output: vec![1],
    };
    for inner in InnerStrategy::ALL {
        let r = run_join_forced(&db, &spec, inner).unwrap().rows;
        assert_eq!(r.num_rows(), 0, "{inner:?}");
        assert_eq!(r.column_names, vec!["v", "v"], "{inner:?}");
    }
}

/// A dimension predicate that semi-join-reduces the build side to zero
/// rows: the hash table is empty, so nothing probes through, at every
/// inner strategy and with zone maps on and off.
#[test]
fn semi_join_pushdown_reducing_build_to_zero_rows() {
    let db = Database::in_memory();
    let left = filled_table(&db, "l", 500);
    let right = filled_table(&db, "r", 20);
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: None,
        right_filter: Some((1, Predicate::lt(0))), // v = 0..40 by 2; none < 0
        left_output: vec![1],
        right_output: vec![1],
    };
    for inner in InnerStrategy::ALL {
        for zone_maps in [true, false] {
            let opts = ExecOptions {
                zone_maps,
                ..db.exec_options()
            };
            let r = db
                .execute_planned(
                    &Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()])),
                    &QueryPlan::forced_tree(vec![0], vec![inner]),
                    &opts,
                )
                .unwrap()
                .rows;
            assert_eq!(r.num_rows(), 0, "{inner:?} zone_maps={zone_maps}");
            assert_eq!(r.column_names, vec!["v", "v"], "{inner:?}");
        }
    }
}

#[test]
fn join_tree_with_empty_intermediates_at_every_stage() {
    let db = Database::in_memory();
    let base = filled_table(&db, "base", 300);
    let dim_full = filled_table(&db, "dim_full", 300);
    let dim_empty = empty_table(&db, "dim_empty", EncodingKind::Plain);

    // Edge 0 matches everything, edge 1 joins a 0-row dimension: the
    // intermediate empties mid-tree and edge 1's fetch must cope.
    let spec = JoinTreeSpec::new(vec![
        JoinSpec {
            left: base,
            right: dim_full,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        },
        JoinSpec {
            left: base,
            right: dim_empty,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![1],
        },
    ]);
    for inner in InnerStrategy::ALL {
        let r = run_tree_forced(&db, &spec, &[inner; 2]).unwrap().rows;
        assert_eq!(r.num_rows(), 0, "{inner:?}");
        assert_eq!(r.column_names, vec!["v", "v", "v"], "{inner:?}");
    }
    let out = db.execute(&Statement::JoinTree(spec)).unwrap();
    assert_eq!(out.rows.num_rows(), 0);
    assert_eq!(out.stats.rows_out, 0);

    // A 0-row *base* table: the whole tree is empty from the start.
    let spec = JoinTreeSpec::new(vec![JoinSpec {
        left: dim_empty,
        right: dim_full,
        left_key: 0,
        right_key: 0,
        left_filter: Some((0, Predicate::ge(0))),
        right_filter: None,
        left_output: vec![1],
        right_output: vec![1],
    }]);
    for inner in InnerStrategy::ALL {
        let r = run_tree_forced(&db, &spec, &[inner]).unwrap().rows;
        assert_eq!(r.num_rows(), 0, "{inner:?}");
    }

    // A base filter selecting nothing empties the position intermediate
    // before the first probe.
    let spec = JoinTreeSpec::new(vec![
        JoinSpec {
            left: base,
            right: dim_full,
            left_key: 0,
            right_key: 0,
            left_filter: Some((0, Predicate::lt(0))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        },
        JoinSpec {
            left: dim_full,
            right: dim_full,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![1],
        },
    ]);
    for inner in InnerStrategy::ALL {
        let r = run_tree_forced(&db, &spec, &[inner; 2]).unwrap().rows;
        assert_eq!(r.num_rows(), 0, "{inner:?}");
        assert_eq!(r.column_names.len(), 3, "{inner:?}");
    }
}

/// GROUP BY over a join tree whose intermediates empty out: the
/// aggregation pipeline must produce zero groups (not a zero-filled
/// group), whatever drained the tree — an empty dimension, a base filter
/// matching nothing, or a pushed-down dimension predicate matching
/// nothing.
#[test]
fn aggregation_over_empty_join_tree_yields_zero_groups() {
    let db = Database::in_memory();
    let base = filled_table(&db, "base", 300);
    let dim_full = filled_table(&db, "dim_full", 300);
    let dim_empty = empty_table(&db, "dim_empty", EncodingKind::Plain);

    let edge = |right: TableId,
                left_filter: Option<(usize, Predicate)>,
                right_filter: Option<(usize, Predicate)>| JoinSpec {
        left: base,
        right,
        left_key: 0,
        right_key: 0,
        left_filter,
        right_filter,
        left_output: vec![1],
        right_output: vec![1],
    };
    let cases = [
        ("empty dimension", edge(dim_empty, None, None)),
        (
            "base filter matches nothing",
            edge(dim_full, Some((0, Predicate::lt(0))), None),
        ),
        (
            "pushed-down dimension predicate matches nothing",
            edge(dim_full, None, Some((1, Predicate::lt(0)))),
        ),
    ];
    for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
        for (label, e) in &cases {
            let tree = JoinTreeSpec::new(vec![e.clone()]).aggregate_fn(0, 1, func);
            let stmt = Statement::JoinTree(tree);
            for inner in InnerStrategy::ALL {
                let out = db
                    .execute_planned(
                        &stmt,
                        &QueryPlan::forced_tree(vec![0], vec![inner]),
                        &db.exec_options(),
                    )
                    .unwrap();
                assert_eq!(out.rows.num_rows(), 0, "{label} {func:?} {inner:?}");
                assert_eq!(out.rows.column_names.len(), 2, "{label} {func:?}");
                assert_eq!(out.stats.rows_out, 0, "{label} {func:?}");
            }
            // And through the planner (bushy enumeration included).
            let out = db.execute(&stmt).unwrap();
            assert_eq!(out.rows.num_rows(), 0, "{label} {func:?} auto");
        }
    }
}

#[test]
fn planner_survives_zero_row_tables() {
    let db = Database::in_memory();
    let t = empty_table(&db, "empty", EncodingKind::Plain);
    let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(5));
    let out = db.execute(&Statement::Select(q)).unwrap();
    assert_eq!(out.rows.num_rows(), 0);
    assert!(matches!(out.choice, QueryPlan::Scan(_)));

    let full = filled_table(&db, "full", 100);
    let spec = JoinSpec {
        left: t,
        right: full,
        left_key: 0,
        right_key: 0,
        left_filter: None,
        right_filter: None,
        left_output: vec![1],
        right_output: vec![1],
    };
    let out = db
        .execute(&Statement::JoinTree(JoinTreeSpec::new(vec![spec])))
        .unwrap();
    assert_eq!(out.rows.num_rows(), 0);
    assert!(matches!(out.choice, QueryPlan::Tree(_)));
}
