//! Differential battery for the granule-parallel executor.
//!
//! The engine's parallelism contract is strict: for every strategy,
//! encoding, and worker count, a query returns the **byte-identical**
//! `QueryResult` of the single-threaded run, and the deterministic
//! counters agree — `positions_matched`, `rows_out`, the decompression
//! flag, and cold `block_reads` (the buffer pool single-flights
//! concurrent misses, so a parallel cold run reads each block exactly
//! once, like a serial one).
//!
//! The proptest sweeps `Strategy::ALL` × {Plain, RLE, BitVec} filter
//! encodings × threads {1, 2, 4, 8} over arbitrary data, granule sizes,
//! and predicates, for both plain selections and aggregations, using the
//! 1-thread execution as the oracle (itself spot-checked against the
//! row-store oracle by the seed suites).

use matstrat::common::{Error, TableId};
use matstrat::core::{AggFunc, Strategy};
use matstrat::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const FILTER_ENCODINGS: [EncodingKind; 3] =
    [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::BitVec];

/// A 3-column projection: a (sorted primary, RLE), b (filter column in
/// the encoding under test), c (plain payload).
fn load(enc_b: EncodingKind, rows: &[(Value, Value, Value)]) -> (Database, TableId) {
    let mut sorted = rows.to_vec();
    sorted.sort_unstable();
    let a: Vec<Value> = sorted.iter().map(|r| r.0).collect();
    let b: Vec<Value> = sorted.iter().map(|r| r.1).collect();
    let c: Vec<Value> = sorted.iter().map(|r| r.2).collect();
    let db = Database::in_memory();
    let spec = ProjectionSpec::new("t")
        .column("a", EncodingKind::Rle, SortOrder::Primary)
        .column("b", enc_b, SortOrder::Secondary)
        .column("c", EncodingKind::Plain, SortOrder::None);
    let id = db.load_projection(&spec, &[&a, &b, &c]).unwrap();
    (db, id)
}

fn arb_pred(domain: i64) -> impl PropStrategy<Value = Predicate> {
    (0i64..domain, 0usize..5).prop_map(|(x, op)| match op {
        0 => Predicate::lt(x),
        1 => Predicate::le(x),
        2 => Predicate::gt(x),
        3 => Predicate::ne(x),
        _ => Predicate::ge(x),
    })
}

/// Run cold and return everything the contract promises to be
/// deterministic. `Err` is represented as `None`; an unsupported
/// combination must be unsupported at every thread count.
#[allow(clippy::type_complexity)]
fn cold_run(
    db: &Database,
    q: &QuerySpec,
    s: Strategy,
    granule: u64,
    threads: usize,
) -> Option<(Vec<Value>, Vec<String>, u64, u64, u64, bool)> {
    db.store().cold_reset();
    let opts = ExecOptions {
        granule,
        parallelism: threads,
        ..ExecOptions::default()
    };
    match db.execute_planned(
        &Statement::Select(q.clone()),
        &QueryPlan::forced_scan(s),
        &opts,
    ) {
        Ok(QueryOutcome { rows: r, stats, .. }) => {
            if threads == 1 {
                // The steal counter is scheduling, not semantics, so it
                // is not part of the differential tuple — but a serial
                // run must never report one.
                assert_eq!(stats.steals, 0, "{s}: serial runs cannot steal");
            }
            Some((
                r.flat().to_vec(),
                r.column_names.clone(),
                stats.positions_matched,
                stats.rows_out,
                stats.io.block_reads,
                stats.decompressed_fetch,
            ))
        }
        Err(Error::Unsupported(_)) => None,
        Err(e) => panic!("{s} threads={threads}: {e}"),
    }
}

fn assert_parallel_matches_serial(db: &Database, q: &QuerySpec, granule: u64) {
    for s in Strategy::ALL {
        let serial = cold_run(db, q, s, granule, 1);
        for threads in THREAD_COUNTS {
            let parallel = cold_run(db, q, s, granule, threads);
            match (&serial, &parallel) {
                (None, None) => {} // unsupported regardless of threads
                (Some(exp), Some(got)) => {
                    assert_eq!(got.0, exp.0, "{s} threads={threads}: result bytes");
                    assert_eq!(got.1, exp.1, "{s} threads={threads}: column names");
                    assert_eq!(got.2, exp.2, "{s} threads={threads}: positions_matched");
                    assert_eq!(got.3, exp.3, "{s} threads={threads}: rows_out");
                    assert_eq!(got.4, exp.4, "{s} threads={threads}: cold block_reads");
                    assert_eq!(got.5, exp.5, "{s} threads={threads}: decompressed flag");
                }
                _ => panic!("{s} threads={threads}: supportedness changed with threads"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn selection_identical_at_any_thread_count(
        rows in prop::collection::vec((0i64..6, 0i64..10, 0i64..64), 64..2500),
        enc_idx in 0usize..3,
        p_a in arb_pred(6),
        p_b in arb_pred(10),
        granule_exp in 5u32..10, // granules of 32..512 so workers really split
    ) {
        let enc_b = FILTER_ENCODINGS[enc_idx];
        let (db, id) = load(enc_b, &rows);
        let q = QuerySpec::select(id, vec![0, 2])
            .filter(0, p_a)
            .filter(1, p_b);
        assert_parallel_matches_serial(&db, &q, 1 << granule_exp);
    }

    #[test]
    fn aggregation_identical_at_any_thread_count(
        rows in prop::collection::vec((0i64..6, 0i64..10, 0i64..64), 64..2500),
        enc_idx in 0usize..3,
        p_b in arb_pred(10),
        granule_exp in 5u32..10,
    ) {
        let enc_b = FILTER_ENCODINGS[enc_idx];
        let (db, id) = load(enc_b, &rows);
        let q = QuerySpec::select(id, vec![])
            .filter(1, p_b)
            .aggregate_sum(0, 2);
        assert_parallel_matches_serial(&db, &q, 1 << granule_exp);
    }
}

/// Non-property companion: one fixed dataset big enough to guarantee
/// every worker of an 8-way run owns several granules, checked for all
/// strategies × encodings × thread counts and all four aggregate
/// functions. Fails loudly outside the proptest lottery.
#[test]
fn fixed_dataset_full_matrix() {
    let rows: Vec<(Value, Value, Value)> = (0..6000)
        .map(|i| (i / 1000, (i * 37) % 10, (i * 7919) % 64))
        .collect();
    for enc_b in FILTER_ENCODINGS {
        let (db, id) = load(enc_b, &rows);
        let select = QuerySpec::select(id, vec![0, 2])
            .filter(0, Predicate::lt(5))
            .filter(1, Predicate::lt(7));
        assert_parallel_matches_serial(&db, &select, 128);
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let agg = QuerySpec::select(id, vec![])
                .filter(1, Predicate::ge(2))
                .aggregate_fn(0, 2, func);
            assert_parallel_matches_serial(&db, &agg, 128);
        }
    }
}
