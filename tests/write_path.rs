//! Differential battery for the durable write path: WAL + mutable delta
//! store + background compaction.
//!
//! Four proofs, each against an independent shadow model (never the
//! engine's own delta code):
//!
//! 1. **Delta-merged scans** are byte-identical to the row-store oracle
//!    over the logical live rows, across all four strategies × all four
//!    encodings × threads {1, 2, 4, 8}, with cold `block_reads` on the
//!    immutable side exactly what the same scan cost before any writes
//!    (the delta is in-memory; it must never charge the I/O ledger).
//! 2. **Crash at every WAL record boundary**: truncating the log to any
//!    record prefix and reopening replays exactly that prefix — state
//!    byte-identical to the shadow model fed the same records, recovery
//!    counters exact. A mid-record tear loses only the torn record.
//! 3. **Compaction** is invisible: queries racing an in-flight compact
//!    return the pre-compaction bytes, the post-compaction store returns
//!    them too, and a crash *between* the catalog swap and the WAL
//!    truncation replays the stale records as no-ops (epoch check).
//! 4. **Joins and join trees** merge deltas on both sides: inserts and
//!    deletes on fact and dimension tables, compared to a nested-loop
//!    oracle, across inner strategies and thread counts.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use matstrat::common::TableId;
use matstrat::core::rowstore::RowTable;
use matstrat::core::{
    delete_where, hash_join_tree_with_options, AggFunc, InnerStrategy, JoinTreePlan,
};
use matstrat::prelude::*;
use matstrat::storage::{Disk, MemDisk, Store};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ENCODINGS: [EncodingKind; 4] = [
    EncodingKind::Plain,
    EncodingKind::Rle,
    EncodingKind::BitVec,
    EncodingKind::Dict,
];

/// An independent model of the position-stamped delta: all logical rows
/// in position order (immutable base first, then inserts in stamp
/// order) plus the deleted-position set.
#[derive(Clone)]
struct Shadow {
    rows: Vec<Vec<Value>>,
    deleted: HashSet<u64>,
}

impl Shadow {
    fn new(base: Vec<Vec<Value>>) -> Shadow {
        Shadow {
            rows: base,
            deleted: HashSet::new(),
        }
    }

    fn insert(&mut self, row: Vec<Value>) {
        self.rows.push(row);
    }

    fn delete(&mut self, pos: u64) {
        assert!((pos as usize) < self.rows.len(), "shadow delete in range");
        self.deleted.insert(pos);
    }

    /// Rows a scan must see, in logical position order.
    fn live(&self) -> Vec<&Vec<Value>> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.deleted.contains(&(*i as u64)))
            .map(|(_, r)| r)
            .collect()
    }

    fn oracle(&self, names: &[&str]) -> RowTable {
        let live = self.live();
        let cols: Vec<Vec<Value>> = (0..names.len())
            .map(|c| live.iter().map(|r| r[c]).collect())
            .collect();
        let col_refs: Vec<&[Value]> = cols.iter().map(|c| c.as_slice()).collect();
        RowTable::from_columns(names.iter().map(|n| n.to_string()).collect(), &col_refs).unwrap()
    }
}

/// Cold-run a query and return the deterministic tuple (`None` for an
/// unsupported combination, which must be unsupported at every thread
/// count).
fn forced(db: &Database, q: &QuerySpec, s: Strategy) -> Result<QueryResult> {
    Ok(db
        .execute_planned(
            &Statement::Select(q.clone()),
            &QueryPlan::forced_scan(s),
            &db.exec_options(),
        )?
        .rows)
}

fn cold_run(
    db: &Database,
    q: &QuerySpec,
    s: Strategy,
    threads: usize,
) -> Option<(Vec<Value>, u64, u64, u64)> {
    db.store().cold_reset();
    let opts = ExecOptions {
        granule: 128,
        parallelism: threads,
        ..ExecOptions::default()
    };
    match db.execute_planned(
        &Statement::Select(q.clone()),
        &QueryPlan::forced_scan(s),
        &opts,
    ) {
        Ok(out) => Some((
            out.rows.flat().to_vec(),
            out.stats.positions_matched,
            out.stats.rows_out,
            out.stats.io.block_reads,
        )),
        Err(Error::Unsupported(_)) => None,
        Err(e) => panic!("{s} threads={threads}: {e}"),
    }
}

/// Proof 1: delta-merged scans across strategies × encodings × threads.
#[test]
fn delta_merged_scans_match_the_row_oracle() {
    let n: i64 = 600;
    for enc_b in ENCODINGS {
        // Base data sorted on `a`; `b` low-cardinality so BitVec/Dict
        // stay reasonable; `c` a distinct payload for row identity.
        let base: Vec<Vec<Value>> = (0..n).map(|i| vec![i / 50, (i * 7) % 8, i]).collect();
        let a: Vec<Value> = base.iter().map(|r| r[0]).collect();
        let b: Vec<Value> = base.iter().map(|r| r[1]).collect();
        let c: Vec<Value> = base.iter().map(|r| r[2]).collect();
        let db = Database::in_memory();
        let spec = ProjectionSpec::new("t")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", enc_b, SortOrder::None)
            .column("c", EncodingKind::Plain, SortOrder::None);
        let t = db.load_projection(&spec, &[&a, &b, &c]).unwrap();
        let mut shadow = Shadow::new(base);

        // The immutable-side I/O reference: a full-column scan before
        // any write exists.
        let full = QuerySpec::select(t, vec![0, 1, 2]);
        let pre_write_reads = cold_run(&db, &full, Strategy::LmParallel, 1).unwrap().3;

        // Writes: scattered single-row deletes (never a whole granule),
        // inserts that extend the `a` domain, deletes of fresh inserts.
        for i in 0..24 {
            let row = vec![12 + i % 3, i % 8, 1000 + i];
            db.insert(t, std::slice::from_ref(&row)).unwrap();
            shadow.insert(row);
        }
        let doomed: Vec<u64> = (0..20).map(|i| i * 29 % n as u64).collect();
        db.store().delete_positions(t, &doomed).unwrap();
        for p in doomed {
            shadow.delete(p);
        }
        // Content-addressed delete through the epoch-guarded path.
        let gone = delete_where(db.store(), t, &[(2, Predicate::eq(1003))]).unwrap();
        assert_eq!(gone, 1);
        shadow.delete(n as u64 + 3);

        let oracle = shadow.oracle(&["a", "b", "c"]);
        let queries = [
            QuerySpec::select(t, vec![0, 2])
                .filter(0, Predicate::lt(13))
                .filter(1, Predicate::lt(6)),
            QuerySpec::select(t, vec![0, 1, 2]),
            QuerySpec::select(t, vec![])
                .filter(1, Predicate::ge(2))
                .aggregate_sum(0, 2),
            QuerySpec::select(t, vec![]).aggregate_fn(1, 2, AggFunc::Max),
        ];
        for q in &queries {
            let want = oracle.run(q).unwrap();
            for s in Strategy::ALL {
                let serial = cold_run(&db, q, s, 1);
                if let Some(exp) = &serial {
                    assert_eq!(
                        exp.0,
                        want.flat(),
                        "{s} {enc_b:?}: serial delta merge vs row oracle"
                    );
                }
                for threads in THREAD_COUNTS {
                    let parallel = cold_run(&db, q, s, threads);
                    match (&serial, &parallel) {
                        (None, None) => {}
                        (Some(exp), Some(got)) => {
                            assert_eq!(got, exp, "{s} {enc_b:?} threads={threads}");
                        }
                        _ => panic!("{s} {enc_b:?}: supportedness changed with threads"),
                    }
                }
            }
        }

        // The delta never bills the I/O ledger: the full scan's cold
        // block_reads are unchanged by 24 inserts and 21 deletes.
        let post_write_reads = cold_run(&db, &full, Strategy::LmParallel, 1).unwrap().3;
        assert_eq!(
            post_write_reads, pre_write_reads,
            "{enc_b:?}: cold block_reads on the immutable side"
        );
    }
}

/// One scripted write, and the WAL records it must expand to.
enum Op {
    Insert(Vec<Vec<Value>>),
    /// Positions, pre-sorted and fresh (not yet deleted) by script.
    Delete(Vec<u64>),
}

/// One replayed record's effect on the shadow.
enum Rec {
    Ins(Vec<Value>),
    Del(u64),
}

fn copy_disk(src: &Arc<dyn Disk>) -> Arc<MemDisk> {
    let dst = Arc::new(MemDisk::new());
    for name in src.list() {
        let len = src.len(&name).unwrap() as usize;
        dst.create(&name).unwrap();
        dst.write_at(&name, 0, &src.read_at(&name, 0, len).unwrap())
            .unwrap();
    }
    dst
}

fn truncate_file(disk: &MemDisk, name: &str, keep: usize) {
    let len = disk.len(name).unwrap() as usize;
    let bytes = disk.read_at(name, 0, len.min(keep)).unwrap();
    disk.create(name).unwrap();
    disk.write_at(name, 0, &bytes).unwrap();
}

const RECORD_SIZE: usize = 128;

/// A persistent store on a shared `MemDisk`, a scripted write sequence,
/// and the per-record shadow script.
fn scripted_store() -> (Store, TableId, Vec<Vec<Value>>, Vec<Rec>) {
    let disk = Arc::new(MemDisk::new());
    let store = Store::with_disk(disk, 1 << 12, true);
    let base: Vec<Vec<Value>> = (0..200)
        .map(|i| vec![i, (i * 3) % 11, i * i % 97])
        .collect();
    let a: Vec<Value> = base.iter().map(|r| r[0]).collect();
    let b: Vec<Value> = base.iter().map(|r| r[1]).collect();
    let c: Vec<Value> = base.iter().map(|r| r[2]).collect();
    let spec = ProjectionSpec::new("t")
        .column("a", EncodingKind::Rle, SortOrder::Primary)
        .column("b", EncodingKind::Dict, SortOrder::None)
        .column("c", EncodingKind::Plain, SortOrder::None);
    let t = store.load_projection(&spec, &[&a, &b, &c]).unwrap();

    let ops = [
        Op::Insert((0..5).map(|i| vec![200 + i, i, 500 + i]).collect()),
        Op::Delete(vec![3, 77, 201]),
        Op::Insert((0..4).map(|i| vec![300 + i, i + 5, 600 + i]).collect()),
        Op::Delete(vec![0, 199, 203]),
    ];
    let mut records = Vec::new();
    for op in &ops {
        match op {
            Op::Insert(rows) => {
                store.insert_rows(t, rows).unwrap();
                records.extend(rows.iter().cloned().map(Rec::Ins));
            }
            Op::Delete(positions) => {
                let n = store.delete_positions(t, positions).unwrap();
                assert_eq!(n as usize, positions.len(), "script deletes are fresh");
                records.extend(positions.iter().copied().map(Rec::Del));
            }
        }
    }
    (store, t, base, records)
}

fn scan_all(store: &Store, t: TableId) -> Vec<Value> {
    let db = Database::with_store(store.clone());
    let q = QuerySpec::select(t, vec![0, 1, 2]);
    forced(&db, &q, Strategy::LmParallel)
        .unwrap()
        .flat()
        .to_vec()
}

fn shadow_after(base: &[Vec<Value>], records: &[Rec]) -> Shadow {
    let mut shadow = Shadow::new(base.to_vec());
    for rec in records {
        match rec {
            Rec::Ins(row) => shadow.insert(row.clone()),
            Rec::Del(pos) => shadow.delete(*pos),
        }
    }
    shadow
}

fn flat_live(shadow: &Shadow) -> Vec<Value> {
    shadow
        .live()
        .iter()
        .flat_map(|r| r.iter().copied())
        .collect()
}

/// Proof 2: crash at every WAL record boundary, replay byte-identity.
#[test]
fn crash_at_every_wal_record_boundary_replays_exactly() {
    let (store, t, base, records) = scripted_store();
    let wal_name = format!("wal_t{}.log", t.0);
    let total = store.disk().len(&wal_name).unwrap() as usize / RECORD_SIZE;
    assert_eq!(total, records.len(), "one record per scripted row/position");

    for k in 0..=total {
        let disk = copy_disk(store.disk());
        truncate_file(&disk, &wal_name, k * RECORD_SIZE);
        let reopened = Store::open_disk(disk, 1 << 12).unwrap();
        let reports = reopened.recovery_reports();
        assert_eq!(reports.len(), 1, "crash@{k}: one table had a log");
        assert_eq!(reports[0].table, t);
        assert_eq!(
            reports[0].recovered, k as u64,
            "crash@{k}: records recovered"
        );
        assert_eq!(reports[0].applied, k as u64, "crash@{k}: all live epoch");
        assert!(
            !reports[0].torn,
            "crash@{k}: a whole-record prefix is clean"
        );
        let want = flat_live(&shadow_after(&base, &records[..k]));
        assert_eq!(scan_all(&reopened, t), want, "crash@{k}: replayed bytes");
    }

    // A mid-record tear: the torn record is lost, everything before
    // survives, and the report says so.
    let disk = copy_disk(store.disk());
    truncate_file(&disk, &wal_name, total * RECORD_SIZE - 60);
    let reopened = Store::open_disk(disk, 1 << 12).unwrap();
    let reports = reopened.recovery_reports();
    assert_eq!(reports[0].recovered, total as u64 - 1);
    assert!(reports[0].torn, "partial trailing record reads as torn");
    let want = flat_live(&shadow_after(&base, &records[..total - 1]));
    assert_eq!(scan_all(&reopened, t), want);
}

/// Proof 2b (satellite): a fault-injecting `Disk` wrapper that corrupts
/// the log the way real storage does — truncated tails and flipped bits
/// — must leave replay stopping cleanly with exact recovery counts.
struct TamperDisk {
    inner: MemDisk,
}

impl TamperDisk {
    fn new() -> TamperDisk {
        TamperDisk {
            inner: MemDisk::new(),
        }
    }

    /// Chop the last `n` bytes off `name`.
    fn truncate_tail(&self, name: &str, n: usize) {
        let len = self.inner.len(name).unwrap() as usize;
        truncate_file(&self.inner, name, len.saturating_sub(n));
    }

    /// Flip one bit at `offset` of `name`.
    fn flip_bit(&self, name: &str, offset: usize) {
        let mut byte = self.inner.read_at(name, offset as u64, 1).unwrap();
        byte[0] ^= 0x04;
        self.inner.write_at(name, offset as u64, &byte).unwrap();
    }
}

impl Disk for TamperDisk {
    fn create(&self, name: &str) -> matstrat::common::Result<()> {
        self.inner.create(name)
    }
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> matstrat::common::Result<()> {
        self.inner.write_at(name, offset, data)
    }
    fn read_at(&self, name: &str, offset: u64, len: usize) -> matstrat::common::Result<Vec<u8>> {
        self.inner.read_at(name, offset, len)
    }
    fn len(&self, name: &str) -> matstrat::common::Result<u64> {
        self.inner.len(name)
    }
    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
    fn list(&self) -> Vec<String> {
        self.inner.list()
    }
}

#[test]
fn tampered_wal_tails_recover_the_surviving_prefix() {
    // The script logs 15 records (5 + 3 + 4 + 3). Each fault must lose
    // exactly the records the WAL contract says it loses.
    #[allow(clippy::type_complexity)]
    let cases: [(&str, Box<dyn Fn(&TamperDisk, &str)>); 3] = [
        ("truncated tail", Box::new(|d, f| d.truncate_tail(f, 50))),
        (
            "bit flip in the last record's payload",
            Box::new(|d, f| {
                let len = d.inner.len(f).unwrap() as usize;
                d.flip_bit(f, len - 40);
            }),
        ),
        (
            "bit flip in record 7's stored CRC",
            Box::new(|d, f| d.flip_bit(f, 6 * RECORD_SIZE + 1)),
        ),
    ];
    let survivors = [14u64, 14, 6];

    for ((what, fault), survive) in cases.iter().zip(survivors) {
        let (store, t, base, records) = scripted_store();
        let wal_name = format!("wal_t{}.log", t.0);
        let tampered = Arc::new(TamperDisk::new());
        for name in store.disk().list() {
            let len = store.disk().len(&name).unwrap() as usize;
            tampered.create(&name).unwrap();
            tampered
                .write_at(&name, 0, &store.disk().read_at(&name, 0, len).unwrap())
                .unwrap();
        }
        drop(store); // the crash
        fault(&tampered, &wal_name);

        let reopened = Store::open_disk(tampered, 1 << 12).unwrap();
        let reports = reopened.recovery_reports();
        assert_eq!(reports.len(), 1, "{what}");
        assert_eq!(reports[0].recovered, survive, "{what}: records recovered");
        assert_eq!(reports[0].applied, survive, "{what}: records applied");
        assert!(reports[0].torn, "{what}: the fault reads as a torn tail");
        let want = flat_live(&shadow_after(&base, &records[..survive as usize]));
        assert_eq!(scan_all(&reopened, t), want, "{what}: surviving prefix");
    }
}

/// Proof 3: compaction — racing queries, post-compaction identity, and
/// the crash window between catalog swap and WAL truncation.
#[test]
fn queries_racing_compaction_stay_byte_identical() {
    let (store, t, base, records) = scripted_store();
    let want = flat_live(&shadow_after(&base, &records));
    let db = Database::with_store(store.clone());
    let q = QuerySpec::select(t, vec![0, 1, 2]);
    assert_eq!(forced(&db, &q, Strategy::EmParallel).unwrap().flat(), want);

    // Query threads hammer the scan while the main thread compacts; no
    // iteration may observe anything but the logical bytes.
    let start = Barrier::new(5);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..4 {
            let (store, q, want, start, done) = (&store, &q, &want, &start, &done);
            scope.spawn(move || {
                let db = Database::with_store(store.clone());
                start.wait();
                let mut seen = 0u32;
                while !done.load(Ordering::Relaxed) || seen < 3 {
                    let got = forced(&db, q, Strategy::LmPipelined).unwrap();
                    assert_eq!(got.flat(), want, "worker {w}: racing compaction");
                    seen += 1;
                }
            });
        }
        start.wait();
        assert!(store.compact(t).unwrap(), "the delta was dirty");
        done.store(true, Ordering::Relaxed);
    });

    // Post-compaction: same bytes, no delta, clean WAL.
    let (info, delta) = store.scan_snapshot(t).unwrap();
    assert!(delta.is_none(), "compaction folded the delta");
    assert_eq!(info.num_rows as usize, want.len() / 3);
    assert_eq!(forced(&db, &q, Strategy::EmParallel).unwrap().flat(), want);
    assert_eq!(store.disk().len(&format!("wal_t{}.log", t.0)).unwrap(), 0);

    // A reopened store agrees (pure immutable blocks now).
    let reopened = Store::open_disk(copy_disk(store.disk()), 1 << 12).unwrap();
    assert_eq!(scan_all(&reopened, t), want);
}

#[test]
fn crash_between_catalog_swap_and_wal_truncation_is_a_no_op_replay() {
    let (store, t, base, records) = scripted_store();
    let want = flat_live(&shadow_after(&base, &records));
    let wal_name = format!("wal_t{}.log", t.0);
    let len = store.disk().len(&wal_name).unwrap() as usize;
    let stale = store.disk().read_at(&wal_name, 0, len).unwrap();

    assert!(store.compact(t).unwrap());

    // Simulate the crash window: the new-epoch catalog is durable but
    // the old log never got truncated.
    let disk = copy_disk(store.disk());
    disk.create(&wal_name).unwrap();
    disk.write_at(&wal_name, 0, &stale).unwrap();
    let reopened = Store::open_disk(disk, 1 << 12).unwrap();
    let reports = reopened.recovery_reports();
    assert_eq!(reports[0].recovered, records.len() as u64, "records parse");
    assert_eq!(reports[0].applied, 0, "but every one is a stale epoch");
    assert!(!reports[0].torn);
    assert_eq!(scan_all(&reopened, t), want, "no double-apply");
    let (_, delta) = reopened.scan_snapshot(t).unwrap();
    assert!(delta.is_none(), "stale records rebuild no delta");
}

/// Writes racing the background compactor: logical content is writer-
/// defined, so the shadow stays exact no matter when the compactor runs.
#[test]
fn writes_racing_the_background_compactor_stay_exact() {
    let db = Database::in_memory();
    let base: Vec<Vec<Value>> = (0..300).map(|i| vec![i, i % 7]).collect();
    let a: Vec<Value> = base.iter().map(|r| r[0]).collect();
    let b: Vec<Value> = base.iter().map(|r| r[1]).collect();
    let spec = ProjectionSpec::new("t")
        .column("a", EncodingKind::Plain, SortOrder::Primary)
        .column("b", EncodingKind::Plain, SortOrder::None);
    let t = db.load_projection(&spec, &[&a, &b]).unwrap();
    let mut shadow = Shadow::new(base);

    let compactor = db.spawn_compactor(std::time::Duration::from_millis(1));
    let q = QuerySpec::select(t, vec![0, 1]);
    for round in 0..40i64 {
        let fresh: Vec<Vec<Value>> = (0..3)
            .map(|i| vec![1000 + round * 3 + i, round % 7])
            .collect();
        db.insert(t, &fresh).unwrap();
        for row in fresh {
            shadow.insert(row);
        }
        // Content-addressed delete: position-stable across compactions.
        let victim = 1000 + round * 3;
        let n = db.delete_where(t, &[(0, Predicate::eq(victim))]).unwrap();
        assert_eq!(n, 1, "round {round}: exactly one row matches {victim}");
        // The shadow deletes by content too (position spaces diverge
        // once the compactor folds).
        let pos = shadow
            .rows
            .iter()
            .enumerate()
            .position(|(i, r)| r[0] == victim && !shadow.deleted.contains(&(i as u64)))
            .unwrap();
        shadow.delete(pos as u64);

        let want: Vec<Value> = flat_live(&shadow);
        let got = forced(&db, &q, Strategy::LmParallel).unwrap();
        assert_eq!(got.flat(), want, "round {round}: racing the compactor");
    }
    compactor.stop();
    db.compact_all().unwrap();
    assert_eq!(
        forced(&db, &q, Strategy::EmPipelined).unwrap().flat(),
        flat_live(&shadow),
        "post-quiesce"
    );
}

/// Proof 4: joins and join trees merge the delta on both sides.
#[test]
fn joins_merge_deltas_on_both_sides() {
    let db = Database::in_memory();
    let fact_rows: Vec<Vec<Value>> = (0..500)
        .map(|i| vec![(i * 31) % 40, (i * 17) % 90])
        .collect();
    let fk: Vec<Value> = fact_rows.iter().map(|r| r[0]).collect();
    let fv: Vec<Value> = fact_rows.iter().map(|r| r[1]).collect();
    let fact = db
        .load_projection(
            &ProjectionSpec::new("fact")
                .column("k", EncodingKind::Plain, SortOrder::None)
                .column("v", EncodingKind::Plain, SortOrder::None),
            &[&fk, &fv],
        )
        .unwrap();
    let dim_rows: Vec<Vec<Value>> = (0..40).map(|i| vec![i, i * 3 + 1, (i * 5) % 16]).collect();
    let dk: Vec<Value> = dim_rows.iter().map(|r| r[0]).collect();
    let dx: Vec<Value> = dim_rows.iter().map(|r| r[1]).collect();
    let dr: Vec<Value> = dim_rows.iter().map(|r| r[2]).collect();
    let dim = db
        .load_projection(
            &ProjectionSpec::new("dim")
                .column("dk", EncodingKind::Plain, SortOrder::Primary)
                .column("x", EncodingKind::Plain, SortOrder::None)
                .column("r", EncodingKind::Plain, SortOrder::None),
            &[&dk, &dx, &dr],
        )
        .unwrap();
    let sub_rows: Vec<Vec<Value>> = (0..16).map(|i| vec![i, 900 + i]).collect();
    let sk: Vec<Value> = sub_rows.iter().map(|r| r[0]).collect();
    let sy: Vec<Value> = sub_rows.iter().map(|r| r[1]).collect();
    let sub = db
        .load_projection(
            &ProjectionSpec::new("sub")
                .column("sk", EncodingKind::Plain, SortOrder::Primary)
                .column("y", EncodingKind::Plain, SortOrder::None),
            &[&sk, &sy],
        )
        .unwrap();

    let mut f = Shadow::new(fact_rows);
    let mut d = Shadow::new(dim_rows);
    // Dirty both sides: fact gains rows keyed at both old and brand-new
    // dim keys, dim gains the new keys and loses two old ones; some
    // fact rows die too.
    for i in 0..12 {
        let row = vec![38 + i % 4, 200 + i];
        db.insert(fact, std::slice::from_ref(&row)).unwrap();
        f.insert(row);
    }
    for i in 40..42 {
        let row = vec![i, i * 3 + 1, (i * 5) % 16];
        db.insert(dim, std::slice::from_ref(&row)).unwrap();
        d.insert(row);
    }
    db.store().delete_positions(dim, &[5, 11]).unwrap();
    d.delete(5);
    d.delete(11);
    let dead_fact = delete_where(db.store(), fact, &[(1, Predicate::lt(4))]).unwrap();
    assert!(dead_fact > 0);
    for (i, row) in f.rows.clone().iter().enumerate() {
        if row[1] < 4 {
            f.delete(i as u64);
        }
    }

    // Nested-loop oracle over live shadows, probe order outer-first.
    let filter = Predicate::ge(10);
    let mut want: Vec<Vec<Value>> = Vec::new();
    for frow in f.live() {
        if !filter.matches(frow[1]) {
            continue;
        }
        for drow in d.live() {
            if drow[0] == frow[0] {
                want.push(vec![frow[1], drow[1], drow[2]]);
            }
        }
    }
    let mut want_sorted = want.clone();
    want_sorted.sort_unstable();

    let spec = JoinSpec {
        left: fact,
        right: dim,
        left_key: 0,
        right_key: 0,
        left_filter: Some((1, filter)),
        right_filter: None,
        left_output: vec![1],
        right_output: vec![1, 2],
    };
    for inner in [
        InnerStrategy::Materialized,
        InnerStrategy::MultiColumn,
        InnerStrategy::SingleColumn,
    ] {
        for threads in [1usize, 4] {
            let opts = ExecOptions {
                granule: 128,
                parallelism: threads,
                ..ExecOptions::default()
            };
            let got = db
                .execute_planned(
                    &Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()])),
                    &QueryPlan::forced_tree(vec![0], vec![inner]),
                    &opts,
                )
                .unwrap()
                .rows;
            let mut rows: Vec<Vec<Value>> = got.rows().map(|r| r.to_vec()).collect();
            rows.sort_unstable();
            assert_eq!(rows, want_sorted, "{inner:?} threads={threads}");
        }
    }

    // Snowflake: fact ⋈ dim ⋈ sub (keyed through dim.r), dim delta rows
    // participating as through-table rows.
    let tree = JoinTreeSpec::new(vec![
        JoinSpec {
            left: fact,
            right: dim,
            left_key: 0,
            right_key: 0,
            left_filter: Some((1, filter)),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        },
        JoinSpec {
            left: dim,
            right: sub,
            left_key: 2,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![1],
        },
    ]);
    let mut tree_want: Vec<Vec<Value>> = Vec::new();
    for frow in f.live() {
        if !filter.matches(frow[1]) {
            continue;
        }
        for drow in d.live() {
            if drow[0] == frow[0] {
                for srow in &sub_rows {
                    if srow[0] == drow[2] {
                        tree_want.push(vec![frow[1], drow[1], srow[1]]);
                    }
                }
            }
        }
    }
    tree_want.sort_unstable();
    for threads in [1usize, 4] {
        let opts = ExecOptions {
            granule: 128,
            parallelism: threads,
            ..ExecOptions::default()
        };
        let (got, _) = hash_join_tree_with_options(
            db.store(),
            &tree,
            &JoinTreePlan::in_spec_order(vec![
                InnerStrategy::MultiColumn,
                InnerStrategy::Materialized,
            ]),
            &opts,
        )
        .unwrap();
        let mut rows: Vec<Vec<Value>> = got.rows().map(|r| r.to_vec()).collect();
        rows.sort_unstable();
        assert_eq!(rows, tree_want, "tree threads={threads}");
    }

    // And the whole thing holds after both tables fold their deltas.
    assert_eq!(db.compact_all().unwrap(), 2);
    let got = db
        .execute_planned(
            &Statement::JoinTree(JoinTreeSpec::new(vec![spec])),
            &QueryPlan::forced_tree(vec![0], vec![InnerStrategy::MultiColumn]),
            &db.exec_options(),
        )
        .unwrap()
        .rows;
    let mut rows: Vec<Vec<Value>> = got.rows().map(|r| r.to_vec()).collect();
    rows.sort_unstable();
    assert_eq!(rows, want_sorted, "post-compaction join");
}

/// The SQL front-end drives the same write path: INSERT/DELETE through
/// a server session, reads seeing the writes.
#[test]
fn insert_and_delete_statements_execute_through_a_session() {
    let store = Store::in_memory();
    let rows: Vec<Value> = (0..50).collect();
    let spec = ProjectionSpec::new("t")
        .column("a", EncodingKind::Plain, SortOrder::Primary)
        .column("b", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&spec, &[&rows, &rows]).unwrap();
    let server = Server::new(
        store.clone(),
        ServerConfig {
            max_concurrent: 2,
            worker_budget: 2,
        },
    );
    let session = server.connect();

    let run = |sql: &str| {
        let req = compile(&store, sql).unwrap();
        session.run(&req).unwrap()
    };
    let wrote = run("INSERT INTO t VALUES (100, 1), (101, 2), (102, 3)");
    assert_eq!(wrote.rows_affected(), Some(3));
    let wrote = run("DELETE FROM t WHERE a BETWEEN 10 AND 19 AND b < 15");
    assert_eq!(wrote.rows_affected(), Some(5), "rows 10..15 die");
    let wrote = run("DELETE FROM t WHERE a = 101");
    assert_eq!(wrote.rows_affected(), Some(1));
    let read = run("SELECT a, b FROM t");
    assert_eq!(read.result().num_rows(), 50 + 3 - 5 - 1);
    let read = run("SELECT a, b FROM t WHERE a >= 100");
    assert_eq!(read.result().flat(), vec![100, 1, 102, 3]);
    assert_eq!(read.block_reads(), 0, "warm after the full scan");
}
