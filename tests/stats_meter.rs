//! `ExecStats`/`IoStats` plumbing: the paper's headline effect must be
//! visible in the meter, not just in wall time.
//!
//! On a selective predicate, LM-parallel fetches the no-predicate output
//! column only at surviving positions (clustered by the sort order), while
//! EM-parallel's SPC leaf reads every block of every accessed column. If
//! the simulated-disk meter silently breaks — stops counting, double
//! counts, or loses the cold reset — this asymmetry disappears and these
//! assertions fail.

use matstrat::prelude::*;
use matstrat::tpch::lineitem::cols;

/// Big enough that QUANTITY spans several 64 KB blocks; small enough to
/// generate in milliseconds.
fn load_lineitem(db: &Database) -> (matstrat::tpch::LineitemData, matstrat::common::TableId) {
    let data = LineitemGen::new(TpchConfig {
        scale: 0.05,
        seed: 0x10_57A7,
    })
    .generate();
    let table = data.load(db, "lineitem", EncodingKind::Rle).unwrap();
    (data, table)
}

fn forced(db: &Database, q: &QuerySpec, s: Strategy) -> (QueryResult, ExecStats) {
    let out = db
        .execute_planned(
            &Statement::Select(q.clone()),
            &QueryPlan::forced_scan(s),
            &db.exec_options(),
        )
        .unwrap();
    (out.rows, out.stats)
}

fn cold_run(db: &Database, q: &QuerySpec, s: Strategy) -> ExecStats {
    db.store().cold_reset();
    let (result, stats) = forced(db, q, s);
    assert_eq!(
        result.num_rows() as u64,
        stats.rows_out,
        "{s}: rows_out drift"
    );
    stats
}

#[test]
fn lm_parallel_reads_fewer_blocks_than_em_parallel_when_selective() {
    let db = Database::in_memory();
    let (data, table) = load_lineitem(&db);
    // 1 % selectivity: survivors cluster at the head of each RETURNFLAG
    // group, so most QUANTITY blocks hold no matches at all.
    let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::QUANTITY])
        .filter(cols::SHIPDATE, Predicate::lt(data.shipdate_cutoff(0.01)));

    let lm = cold_run(&db, &q, Strategy::LmParallel);
    let em = cold_run(&db, &q, Strategy::EmParallel);

    assert!(lm.io.block_reads > 0, "meter recorded nothing for LM");
    assert!(em.io.block_reads > 0, "meter recorded nothing for EM");
    assert_eq!(
        lm.rows_out, em.rows_out,
        "strategies disagree on the result"
    );
    assert!(
        lm.io.block_reads < em.io.block_reads,
        "LM-parallel should touch fewer blocks than EM-parallel on a \
         selective predicate: LM={} EM={}",
        lm.io.block_reads,
        em.io.block_reads
    );
}

#[test]
fn exec_stats_fields_are_plumbed() {
    let db = Database::in_memory();
    let (data, table) = load_lineitem(&db);
    let cutoff = data.shipdate_cutoff(0.25);
    let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::QUANTITY])
        .filter(cols::SHIPDATE, Predicate::lt(cutoff));
    let expected_matches = data.shipdate.iter().filter(|&&d| d < cutoff).count() as u64;

    for s in Strategy::ALL {
        let stats = cold_run(&db, &q, s);
        assert_eq!(stats.strategy, Some(s));
        assert_eq!(
            stats.positions_matched, expected_matches,
            "{s}: positions_matched must count predicate survivors"
        );
        assert_eq!(stats.rows_out, expected_matches, "{s}: rows_out");
        assert!(
            stats.io.seeks > 0,
            "{s}: a cold run must seek at least once"
        );
        assert!(
            stats.io.seeks <= stats.io.block_reads,
            "{s}: more seeks than reads makes no sense ({} > {})",
            stats.io.seeks,
            stats.io.block_reads
        );
        assert!(stats.wall > std::time::Duration::ZERO, "{s}: wall clock");
        // Pricing is linear in the counters.
        let priced = stats.io.modeled_micros(1000.0, 100.0);
        let expected = stats.io.seeks as f64 * 1000.0 + stats.io.block_reads as f64 * 100.0;
        assert!(
            (priced - expected).abs() < 1e-9,
            "{s}: modeled_micros formula"
        );
    }
}

#[test]
fn warm_pool_eliminates_block_reads() {
    let db = Database::in_memory();
    let (data, table) = load_lineitem(&db);
    let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::QUANTITY])
        .filter(cols::SHIPDATE, Predicate::lt(data.shipdate_cutoff(0.1)));

    let cold = cold_run(&db, &q, Strategy::LmParallel);
    // Second run without a reset: everything is already pooled.
    let (_, warm) = forced(&db, &q, Strategy::LmParallel);
    assert!(cold.io.block_reads > 0);
    assert_eq!(
        warm.io.block_reads, 0,
        "a warm buffer pool must not touch the simulated disk"
    );
}
