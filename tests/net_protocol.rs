//! Wire-protocol robustness: the framing layer under abuse.
//!
//! `tests/net_diff.rs` proves the happy path is byte-identical to
//! in-process execution; this battery pins everything else a socket
//! peer can do to the server:
//!
//! * blank / whitespace / CRLF lines (ignored or tolerated);
//! * torn lines (bytes then EOF — no response owed, counted);
//! * oversized lines (`ERR`, counted, connection closed);
//! * invalid UTF-8 (`ERR`, counted, connection *survives*);
//! * read-timeout abandonment of silent connections;
//! * mid-query disconnects releasing their admission slot;
//! * the connection cap refusing — and recovering — above
//!   `NetConfig::max_conns`;
//! * multi-byte caret diagnostics crossing the wire verbatim, pinned
//!   against the same snapshots as `crates/lang/tests/errors.rs`.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use matstrat::client::{Client, Response};
use matstrat::net::{protocol, NetConfig, NetServer};
use matstrat::prelude::*;

/// The `fact` projection from `crates/lang/tests/errors.rs`, so the
/// pinned caret snapshots apply verbatim over the wire.
fn fixture() -> matstrat::storage::Store {
    let store = matstrat::storage::Store::in_memory();
    let rows: Vec<Value> = (0..16).collect();
    let fact = ProjectionSpec::new("fact")
        .column("k1", EncodingKind::Plain, SortOrder::Primary)
        .column("k2", EncodingKind::Plain, SortOrder::None)
        .column("a", EncodingKind::Plain, SortOrder::None)
        .column("b", EncodingKind::Plain, SortOrder::None)
        .column("c", EncodingKind::Plain, SortOrder::None);
    store
        .load_projection(&fact, &[&rows, &rows, &rows, &rows, &rows])
        .unwrap();
    store
}

fn boot(cfg: NetConfig) -> NetServer {
    NetServer::bind("127.0.0.1:0", fixture(), cfg).unwrap()
}

fn eventually(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

const DRAIN: Duration = Duration::from_secs(10);

/// A query every test can use; `a < 3` matches rows 0, 1, 2.
const PROBE: &str = "SELECT a FROM fact WHERE a < 3";

fn expect_probe_rows(resp: Response, context: &str) {
    let rows = resp.expect_rows(context);
    assert_eq!(rows.columns, ["a"], "{context}");
    assert_eq!(rows.data, [0, 1, 2], "{context}");
}

/// Blank, whitespace-only, and CRLF-terminated lines: the first two
/// produce no response at all, the third answers normally — so a
/// client that sent three "lines" must read exactly one response.
#[test]
fn blank_lines_are_ignored_and_crlf_is_tolerated() {
    let net = boot(NetConfig::default());
    let stream = TcpStream::connect(net.local_addr()).unwrap();
    stream
        .try_clone()
        .unwrap()
        .write_all(format!("\n   \t \n{PROBE}\r\n").as_bytes())
        .unwrap();
    let mut client = Client::from_stream(stream).unwrap();
    client.set_timeout(Some(DRAIN)).unwrap();
    expect_probe_rows(client.read_response().unwrap(), "after blank lines");
    let wire = net.stats();
    assert_eq!(wire.served, 1, "blank lines are not statements");
    assert_eq!(wire.protocol_errors, 0, "blank lines are not violations");
    net.shutdown();
}

/// A peer that sends bytes and vanishes before the newline framed no
/// request: the server owes nothing, counts the tear, and releases
/// the connection slot.
#[test]
fn torn_line_is_counted_and_closed_without_a_response() {
    let net = boot(NetConfig::default());
    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    stream.write_all(b"SELECT a FROM fa").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    // The server closes without writing anything: EOF, zero bytes.
    stream.set_read_timeout(Some(DRAIN)).unwrap();
    let mut got = Vec::new();
    stream.read_to_end(&mut got).unwrap();
    assert_eq!(got, b"", "no response is owed for a torn request");
    eventually("torn connection to drain", DRAIN, || {
        let s = net.stats();
        s.protocol_errors == 1 && s.active == 0
    });
    assert_eq!(net.stats().served, 0);
    net.shutdown();
}

/// A line that outgrows `MAX_LINE` before its newline is a framing
/// violation: one `ERR` naming the bound, then the connection closes
/// (the server cannot resynchronise inside an unbounded line).
#[test]
fn oversized_line_gets_an_err_and_a_close() {
    let net = boot(NetConfig::default());
    let stream = TcpStream::connect(net.local_addr()).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut client = Client::from_stream(stream).unwrap();
    client.set_timeout(Some(DRAIN)).unwrap();
    let huge = vec![b'x'; protocol::MAX_LINE + 1];
    w.write_all(&huge).unwrap();
    w.write_all(b"\n").unwrap();
    match client.read_response().unwrap() {
        Response::Err(e) => assert_eq!(
            e.message,
            format!("request line exceeds {} bytes", protocol::MAX_LINE)
        ),
        Response::Rows(_) => panic!("an oversized line executed"),
    }
    // The connection is gone: the next read sees EOF, not a hang.
    assert!(client.read_response().is_err(), "connection must be closed");
    eventually("oversized connection to drain", DRAIN, || {
        let s = net.stats();
        s.protocol_errors == 1 && s.active == 0
    });
    net.shutdown();
}

/// Invalid UTF-8 is a statement-level rejection, not a framing tear:
/// the line was properly framed, so the server answers `ERR` and the
/// connection keeps working.
#[test]
fn invalid_utf8_is_rejected_but_the_connection_survives() {
    let net = boot(NetConfig::default());
    let stream = TcpStream::connect(net.local_addr()).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut client = Client::from_stream(stream).unwrap();
    client.set_timeout(Some(DRAIN)).unwrap();
    w.write_all(b"SELECT \xff\xfe FROM fact\n").unwrap();
    match client.read_response().unwrap() {
        Response::Err(e) => assert_eq!(e.message, "request is not valid UTF-8"),
        Response::Rows(_) => panic!("mojibake executed"),
    }
    expect_probe_rows(client.query(PROBE).unwrap(), "after invalid UTF-8");
    let wire = net.stats();
    assert_eq!(wire.protocol_errors, 1);
    assert_eq!(wire.served, 2, "the ERR and the probe both count");
    net.shutdown();
}

/// A connection that goes silent past the read timeout is abandoned:
/// its socket slot comes back and the server keeps serving others.
#[test]
fn read_timeout_abandons_a_silent_connection() {
    let cfg = NetConfig {
        read_timeout: Duration::from_millis(100),
        ..NetConfig::default()
    };
    let net = boot(cfg);
    let silent = TcpStream::connect(net.local_addr()).unwrap();
    eventually("silent connection to be accepted", DRAIN, || {
        net.stats().accepted == 1
    });
    eventually("silent connection to be abandoned", DRAIN, || {
        net.stats().active == 0
    });
    // Abandonment is silent — no response bytes, no protocol error.
    assert_eq!(net.stats().protocol_errors, 0);
    // The timed-out socket really is dead (EOF), and new clients are
    // unaffected by the corpse.
    let mut probe = silent.try_clone().unwrap();
    probe.set_read_timeout(Some(DRAIN)).unwrap();
    let mut got = Vec::new();
    probe.read_to_end(&mut got).unwrap();
    assert_eq!(got, b"");
    let mut fresh = Client::connect(net.local_addr()).unwrap();
    fresh.set_timeout(Some(DRAIN)).unwrap();
    expect_probe_rows(fresh.query(PROBE).unwrap(), "after a timeout abandonment");
    net.shutdown();
}

/// A client that dies with its query in flight must not leak its
/// admission slot: the service drains back to idle and the next
/// caller is admitted normally.
#[test]
fn mid_query_disconnect_leaves_the_service_idle() {
    let net = boot(NetConfig::default());
    let service = std::sync::Arc::clone(net.service());
    let mut dying = TcpStream::connect(net.local_addr()).unwrap();
    dying.write_all(format!("{PROBE}\n").as_bytes()).unwrap();
    drop(dying); // gone before reading a single response byte
    eventually("admission gate to drain to idle", DRAIN, || {
        let s = service.stats();
        s.active == 0 && s.admitted == s.completed && net.stats().active == 0
    });
    let mut fresh = Client::connect(net.local_addr()).unwrap();
    fresh.set_timeout(Some(DRAIN)).unwrap();
    expect_probe_rows(fresh.query(PROBE).unwrap(), "after a mid-query disconnect");
    net.shutdown();
}

/// Above `max_conns` open sockets, the next connection is told why and
/// closed — and once a slot frees, new connections are admitted again.
#[test]
fn connection_cap_refuses_then_recovers() {
    let cfg = NetConfig {
        max_conns: 2,
        ..NetConfig::default()
    };
    let net = boot(cfg);
    let addr = net.local_addr();
    // Two live connections, each proven by a served statement.
    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    c1.set_timeout(Some(DRAIN)).unwrap();
    c2.set_timeout(Some(DRAIN)).unwrap();
    expect_probe_rows(c1.query(PROBE).unwrap(), "first capped client");
    expect_probe_rows(c2.query(PROBE).unwrap(), "second capped client");
    // The third is refused with a reason, then closed.
    let mut c3 = Client::connect(addr).unwrap();
    c3.set_timeout(Some(DRAIN)).unwrap();
    match c3.read_response().unwrap() {
        Response::Err(e) => {
            assert_eq!(e.message, "server at connection capacity (2 open)")
        }
        Response::Rows(_) => panic!("over-cap connection got rows"),
    }
    assert!(c3.read_response().is_err(), "refused socket must close");
    let wire = net.stats();
    assert_eq!((wire.accepted, wire.refused, wire.active), (3, 1, 2));
    // Refusal costs the live clients nothing.
    expect_probe_rows(c1.query(PROBE).unwrap(), "survivor after refusal");
    // Freeing a slot re-opens the door.
    drop(c2);
    eventually("closed client's slot to free", DRAIN, || {
        net.stats().active == 1
    });
    let mut c4 = Client::connect(addr).unwrap();
    c4.set_timeout(Some(DRAIN)).unwrap();
    expect_probe_rows(c4.query(PROBE).unwrap(), "client after slot freed");
    assert_eq!(net.stats().refused, 1, "no further refusals");
    net.shutdown();
}

/// The caret diagnostics cross the wire verbatim — pinned against the
/// exact snapshots in `crates/lang/tests/errors.rs`, multi-byte input
/// included. If the lang crate's rendering changes, both suites move
/// together; if the wire mangles UTF-8 or drops a line, only this one
/// fails.
#[test]
fn caret_snippets_cross_the_wire_verbatim() {
    let net = boot(NetConfig::default());
    let mut client = Client::connect(net.local_addr()).unwrap();
    client.set_timeout(Some(DRAIN)).unwrap();
    let snapshots: [(&str, &str); 3] = [
        (
            "SELECT a FROM fact WHERE a \u{2264} 3",
            "line 1, column 28: unexpected character '\u{2264}'\n\
             \x20 | SELECT a FROM fact WHERE a \u{2264} 3\n\
             \x20 |                            ^",
        ),
        (
            "SELECT \u{3a3}um FROM fact WHERE a < 3",
            "line 1, column 8: unexpected character '\u{3a3}'\n\
             \x20 | SELECT \u{3a3}um FROM fact WHERE a < 3\n\
             \x20 |        ^",
        ),
        (
            "SELECT zz FROM fact",
            "line 1, column 8: no column 'zz' in projection 'fact'\n\
             \x20 | SELECT zz FROM fact\n\
             \x20 |        ^",
        ),
    ];
    for (sql, expected) in snapshots {
        // The wire must agree with the in-process rendering…
        let local = compile(net.service().store(), sql)
            .expect_err("snapshot query must not compile")
            .to_string();
        assert_eq!(local, expected, "lang snapshot drifted for {sql:?}");
        // …character for character, multi-byte carets intact.
        match client.query(sql).unwrap() {
            Response::Err(e) => assert_eq!(e.message, expected, "wire mangled {sql:?}"),
            Response::Rows(_) => panic!("{sql:?} unexpectedly executed"),
        }
    }
    // Diagnostics never cost the connection: it still answers.
    expect_probe_rows(client.query(PROBE).unwrap(), "after three diagnostics");
    net.shutdown();
}
