//! Workspace smoke test: the paper's central invariant on a realistic
//! (but tiny) dataset, fast enough to fail first.
//!
//! `Strategy::ALL` × {Plain, Rle, BitVec} LINENUM encodings over a seeded
//! `LineitemGen` projection must agree with the `RowTable` oracle row for
//! row. The heavier proptest suites explore arbitrary data; this runs in
//! well under a second and catches wiring regressions (manifest drift,
//! broken re-exports, strategy dispatch) before they do.

use matstrat::common::Error;
use matstrat::core::rowstore::RowTable;
use matstrat::prelude::*;
use matstrat::tpch::lineitem::cols;

const SMOKE_ENCODINGS: [EncodingKind; 3] =
    [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::BitVec];

fn smoke_data() -> matstrat::tpch::LineitemData {
    // ~3000 rows: multiple runs per RLE column, single-granule execution.
    LineitemGen::new(TpchConfig {
        scale: 0.0005,
        seed: 0x5EED,
    })
    .generate()
}

#[test]
fn all_strategies_match_oracle_on_lineitem() {
    let data = smoke_data();
    let oracle = RowTable::from_columns(
        vec![
            "returnflag".into(),
            "shipdate".into(),
            "linenum".into(),
            "quantity".into(),
        ],
        &[
            &data.returnflag,
            &data.shipdate,
            &data.linenum,
            &data.quantity,
        ],
    )
    .unwrap();

    let db = Database::in_memory();
    let cutoff = data.shipdate_cutoff(0.3);
    for enc in SMOKE_ENCODINGS {
        let table = data.load(&db, &format!("lineitem_{enc:?}"), enc).unwrap();
        // The paper's selection query: SHIPDATE < X AND LINENUM < 7.
        let q = QuerySpec::select(table, vec![cols::SHIPDATE, cols::QUANTITY])
            .filter(cols::SHIPDATE, Predicate::lt(cutoff))
            .filter(cols::LINENUM, Predicate::lt(7));
        let expected = oracle.run(&q).unwrap().sorted_rows();
        assert!(!expected.is_empty(), "smoke query must select something");
        for s in Strategy::ALL {
            match db.execute_planned(
                &Statement::Select(q.clone()),
                &QueryPlan::forced_scan(s),
                &db.exec_options(),
            ) {
                Ok(out) => assert_eq!(
                    out.rows.sorted_rows(),
                    expected,
                    "{s} disagrees with the oracle on {enc:?} LINENUM"
                ),
                // LM-pipelined cannot fetch a bit-vector column at
                // arbitrary surviving positions (§4.1).
                Err(Error::Unsupported(_))
                    if s == Strategy::LmPipelined && enc == EncodingKind::BitVec => {}
                Err(e) => panic!("{s} on {enc:?} LINENUM failed: {e}"),
            }
        }
    }
}

#[test]
fn aggregation_matches_oracle_on_lineitem() {
    let data = smoke_data();
    let oracle = RowTable::from_columns(
        vec![
            "returnflag".into(),
            "shipdate".into(),
            "linenum".into(),
            "quantity".into(),
        ],
        &[
            &data.returnflag,
            &data.shipdate,
            &data.linenum,
            &data.quantity,
        ],
    )
    .unwrap();

    let db = Database::in_memory();
    let cutoff = data.shipdate_cutoff(0.5);
    for enc in SMOKE_ENCODINGS {
        let table = data.load(&db, &format!("agg_{enc:?}"), enc).unwrap();
        let q = QuerySpec::select(table, vec![])
            .filter(cols::SHIPDATE, Predicate::lt(cutoff))
            .filter(cols::LINENUM, Predicate::lt(7))
            .aggregate_sum(cols::RETURNFLAG, cols::QUANTITY);
        let expected = oracle.run(&q).unwrap().sorted_rows();
        for s in Strategy::ALL {
            match db.execute_planned(
                &Statement::Select(q.clone()),
                &QueryPlan::forced_scan(s),
                &db.exec_options(),
            ) {
                Ok(out) => assert_eq!(
                    out.rows.sorted_rows(),
                    expected,
                    "{s} aggregation on {enc:?}"
                ),
                Err(Error::Unsupported(_))
                    if s == Strategy::LmPipelined && enc == EncodingKind::BitVec => {}
                Err(e) => panic!("{s} aggregation on {enc:?} failed: {e}"),
            }
        }
    }
}
