//! The query service end to end: compile dialect text against the
//! catalog, EXPLAIN it, then serve a mixed batch from four concurrent
//! sessions over one shared store — with per-query I/O that stays exact
//! under the interleaving.
//!
//! Run with: `cargo run --release --example query_service`

use std::sync::Arc;

use matstrat::prelude::*;
use matstrat::storage::Store;

fn main() {
    // A small warehouse: one fact projection, one dimension.
    let store = Store::in_memory();
    let n = 200_000i64;
    let k: Vec<Value> = (0..n).collect();
    let qty: Vec<Value> = (0..n).map(|i| (i * 7919) % 50).collect();
    let day: Vec<Value> = (0..n).map(|i| i / 2000).collect();
    let fk: Vec<Value> = (0..n).map(|i| (i * 31) % 1024).collect();
    let fact = ProjectionSpec::new("sales")
        .column("k", EncodingKind::Plain, SortOrder::Primary)
        .column("qty", EncodingKind::Plain, SortOrder::None)
        .column("day", EncodingKind::Plain, SortOrder::None)
        .column("itemkey", EncodingKind::Plain, SortOrder::None);
    store
        .load_projection(&fact, &[&k, &qty, &day, &fk])
        .unwrap();
    let ik: Vec<Value> = (0..1024).collect();
    let price: Vec<Value> = (0..1024).map(|i| 100 + (i * 37) % 900).collect();
    let item = ProjectionSpec::new("item")
        .column("itemkey", EncodingKind::Plain, SortOrder::Primary)
        .column("price", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&item, &[&ik, &price]).unwrap();

    // The batch, written in the dialect and compiled against the catalog.
    let batch = [
        "SELECT k, qty FROM sales WHERE qty < 12 AND day != 40",
        "SELECT day, SUM(qty) FROM sales WHERE qty > 5 GROUP BY day",
        "SELECT day, COUNT(qty) FROM sales WHERE qty BETWEEN 10 AND 30 GROUP BY day",
        "SELECT sales.qty, item.price FROM sales \
         JOIN item ON sales.itemkey = item.itemkey WHERE sales.qty < 8",
    ];

    let server = Server::new(
        store,
        ServerConfig {
            max_concurrent: 4,
            worker_budget: default_parallelism().max(2),
        },
    );
    let session = server.connect();

    println!("== compile + explain ==");
    let mut requests = Vec::new();
    for sql in batch {
        let stmt = match compile(server.store(), sql) {
            Ok(stmt) => stmt,
            Err(e) => {
                // Errors carry the line/column and a caret snippet.
                println!("{e}");
                return;
            }
        };
        println!("{sql}");
        println!("  -> {}", session.explain(&stmt).unwrap());
        requests.push(stmt);
    }

    // A typo, to show the front-end's error reporting.
    println!("\n== a rejected query ==");
    let err = compile(server.store(), "SELECT qtty FROM sales").unwrap_err();
    println!("{err}");

    println!("\n== four sessions, one server ==");
    server.store().cold_reset();
    let requests = Arc::new(requests);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let server = &server;
            let requests = Arc::clone(&requests);
            scope.spawn(move || {
                let session = server.connect();
                let reply = session.run(&requests[t]).unwrap();
                let (rows, reads) = (reply.result().num_rows(), reply.block_reads());
                println!(
                    "session {t}: {rows:>6} rows, {reads:>3} cold block reads \
                     (this query's own — harvested per thread)"
                );
            });
        }
    });

    let stats = server.stats();
    println!(
        "\nserver: {} admitted, {} completed, peak {} active / {} queued (bound {})",
        stats.admitted,
        stats.completed,
        stats.peak_active,
        stats.peak_queued,
        server.config().max_concurrent,
    );
}
