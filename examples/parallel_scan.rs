//! Granule-parallel execution: the worker knob, the `MATSTRAT_THREADS`
//! environment default, and the determinism guarantee.
//!
//! ```text
//! cargo run --release --example parallel_scan
//! MATSTRAT_THREADS=4 cargo run --release --example parallel_scan
//! ```

use matstrat::prelude::*;

fn main() -> Result<()> {
    // 1. A projection big enough that the default 64 Ki granule yields
    //    eight granules — the units the workers divide among themselves.
    let mut db = Database::in_memory();
    let n = 512 * 1024i64;
    let region: Vec<Value> = (0..n).map(|i| i / (n / 16)).collect();
    let amount: Vec<Value> = (0..n).map(|i| (i * 7919) % 1000).collect();
    let spec = ProjectionSpec::new("sales")
        .column("region", EncodingKind::Rle, SortOrder::Primary)
        .column("amount", EncodingKind::Plain, SortOrder::None);
    let table = db.load_projection(&spec, &[&region, &amount])?;

    let query = QuerySpec::select(table, vec![0, 1])
        .filter(0, Predicate::lt(14))
        .filter(1, Predicate::lt(900));

    println!(
        "process default: {} worker(s) (MATSTRAT_THREADS; 0 = all cores)\n",
        default_parallelism()
    );
    println!("SELECT region, amount FROM sales WHERE region < 14 AND amount < 900;\n");

    // 2. The same query at increasing worker counts. The result is
    //    byte-identical every time — parallelism is a performance knob,
    //    never a semantics knob — and on a multi-core machine wall time
    //    drops with the worker count (on one core it simply flattens).
    let mut reference: Option<QueryResult> = None;
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "workers", "rows", "wall (µs)", "blocks"
    );
    for workers in [1usize, 2, 4, 8] {
        db.set_parallelism(workers);
        db.store().cold_reset();
        let out = db.execute_planned(
            &Statement::Select(query.clone()),
            &QueryPlan::forced_scan(Strategy::LmParallel),
            &db.exec_options(),
        )?;
        let (result, stats) = (out.rows, out.stats);
        println!(
            "{workers:>8} {:>12} {:>12} {:>8}",
            stats.rows_out,
            stats.wall.as_micros(),
            stats.io.block_reads
        );
        match &reference {
            None => reference = Some(result),
            Some(r) => assert_eq!(
                r.flat(),
                result.flat(),
                "parallel result must be byte-identical to serial"
            ),
        }
    }

    // 3. The planner prices plans for the configured worker count: CPU
    //    terms divide across workers, the shared cold-I/O term does not.
    db.set_parallelism(4);
    let choice = db.plan(&Statement::Select(query))?;
    println!("\nplanner at 4 workers: {}", choice.describe());

    println!("\nall worker counts returned the same bytes — determinism holds.");
    Ok(())
}
