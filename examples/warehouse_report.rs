//! A warehouse reporting workload over TPC-H-style lineitem data — the
//! read-mostly, aggregation-heavy setting the paper's introduction
//! motivates. The planner picks a materialization strategy per query
//! from the analytical model.
//!
//! ```text
//! cargo run --release --example warehouse_report
//! ```

use matstrat::core::AggFunc;
use matstrat::prelude::*;
use matstrat::tpch::lineitem::cols;

fn main() -> Result<()> {
    let cfg = TpchConfig {
        scale: 0.02,
        ..TpchConfig::default()
    };
    println!("generating lineitem at scale {} ...", cfg.scale);
    let data = LineitemGen::new(cfg).generate();
    let db = Database::in_memory();
    let table = data.load(&db, "lineitem", EncodingKind::Rle)?;
    println!("loaded {} rows\n", data.num_rows());

    // Report 1: shipped volume per day for the first quarter of the
    // domain (selective range + aggregation → late materialization).
    let q1_cutoff = data.shipdate_cutoff(0.25);
    let stmt = Statement::Select(
        QuerySpec::select(table, vec![])
            .filter(cols::SHIPDATE, Predicate::lt(q1_cutoff))
            .aggregate_sum(cols::SHIPDATE, cols::QUANTITY),
    );
    let out = db.execute(&stmt)?;
    println!("Report 1 — SUM(quantity) GROUP BY shipdate, shipdate < {q1_cutoff}");
    println!("  {}", out.choice.describe());
    println!("  {} ship-days; first 3:", out.rows.num_rows());
    for row in out.rows.rows().take(3) {
        println!("    day {:>5} → {:>7} units", row[0], row[1]);
    }

    // Report 2: how many line items per linenumber — COUNT lets late
    // materialization skip the value column entirely.
    let stmt = Statement::Select(QuerySpec::select(table, vec![]).aggregate_fn(
        cols::LINENUM,
        cols::QUANTITY,
        AggFunc::Count,
    ));
    let out = db.execute_planned(
        &stmt,
        &QueryPlan::forced_scan(Strategy::LmParallel),
        &db.exec_options(),
    )?;
    println!("\nReport 2 — COUNT(*) GROUP BY linenum (LM-parallel)");
    for row in out.rows.rows() {
        let bar = "#".repeat((row[1] * 40 / data.num_rows() as i64).max(1) as usize);
        println!("    linenum {} │{bar} {}", row[0], row[1]);
    }

    // Report 3: largest single shipment per return flag.
    let stmt = Statement::Select(QuerySpec::select(table, vec![]).aggregate_fn(
        cols::RETURNFLAG,
        cols::QUANTITY,
        AggFunc::Max,
    ));
    let out = db.execute_planned(
        &stmt,
        &QueryPlan::forced_scan(Strategy::LmParallel),
        &db.exec_options(),
    )?;
    println!("\nReport 3 — MAX(quantity) GROUP BY returnflag");
    let flags = ["A", "N", "R"];
    for row in out.rows.rows() {
        println!("    {} → {}", flags[row[0] as usize], row[1]);
    }

    // Report 4: a wide low-selectivity selection — the case where the
    // paper's heuristic flips to early materialization.
    let stmt = Statement::Select(
        QuerySpec::select(table, vec![cols::SHIPDATE, cols::LINENUM, cols::QUANTITY])
            .filter(cols::QUANTITY, Predicate::ge(2)),
    );
    println!("\nReport 4 — wide scan, quantity >= 2 (96 % selectivity)");
    let out = db.execute(&stmt)?;
    println!("  planner: {}", out.choice.describe());
    println!("  {} rows materialized", out.rows.num_rows());

    // Cross-check the planner's pick against all strategies.
    println!("\n  measured (for reference):");
    for s in Strategy::ALL {
        db.store().cold_reset();
        if let Ok(out) = db.execute_planned(&stmt, &QueryPlan::forced_scan(s), &db.exec_options()) {
            println!(
                "    {:>14}: {:>8.2} ms wall, {} block reads",
                s.name(),
                out.stats.wall.as_secs_f64() * 1e3,
                out.stats.io.block_reads
            );
        }
    }
    Ok(())
}
