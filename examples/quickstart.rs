//! Quickstart: load a projection, run one query under all four
//! materialization strategies, and peek at the multi-column machinery.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use matstrat::prelude::*;

fn main() -> Result<()> {
    // 1. An in-memory column store with one projection of three columns:
    //    `region` (sorted, run-length encoded), `status` (7 distinct
    //    values, bit-vector encoded), `amount` (uncompressed).
    let db = Database::in_memory();
    let n = 100_000i64;
    let region: Vec<Value> = (0..n).map(|i| i / (n / 8)).collect();
    let status: Vec<Value> = (0..n).map(|i| (i * 31) % 7).collect();
    let amount: Vec<Value> = (0..n).map(|i| (i * 17) % 1000).collect();
    let spec = ProjectionSpec::new("sales")
        .column("region", EncodingKind::Rle, SortOrder::Primary)
        .column("status", EncodingKind::BitVec, SortOrder::None)
        .column("amount", EncodingKind::Plain, SortOrder::None);
    let table = db.load_projection(&spec, &[&region, &status, &amount])?;
    println!("loaded projection 'sales': {n} rows, 3 columns\n");

    // 2. SELECT region, amount FROM sales
    //    WHERE region < 3 AND status < 2
    let stmt = Statement::Select(
        QuerySpec::select(table, vec![0, 2])
            .filter(0, Predicate::lt(3))
            .filter(1, Predicate::lt(2)),
    );

    println!("SELECT region, amount FROM sales WHERE region < 3 AND status < 2;\n");
    println!(
        "{:>14} {:>10} {:>12} {:>9} {:>8}",
        "strategy", "rows", "wall (µs)", "blocks", "seeks"
    );
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for strategy in Strategy::ALL {
        db.store().cold_reset();
        let plan = QueryPlan::forced_scan(strategy);
        match db.execute_planned(&stmt, &plan, &db.exec_options()) {
            Ok(out) => {
                println!(
                    "{:>14} {:>10} {:>12} {:>9} {:>8}",
                    strategy.name(),
                    out.rows.num_rows(),
                    out.stats.wall.as_micros(),
                    out.stats.io.block_reads,
                    out.stats.io.seeks,
                );
                // Every strategy must return the same tuples.
                let rows = out.rows.sorted_rows();
                match &reference {
                    Some(r) => assert_eq!(r, &rows, "strategies disagree!"),
                    None => reference = Some(rows),
                }
            }
            Err(Error::Unsupported(msg)) => {
                println!("{:>14} {:>10}   ({msg})", strategy.name(), "—");
            }
            Err(e) => return Err(e),
        }
    }

    // 3. The same query, aggregated: GROUP BY region, SUM(amount).
    let agg = Statement::Select(
        QuerySpec::select(table, vec![])
            .filter(1, Predicate::lt(2))
            .aggregate_sum(0, 2),
    );
    let out = db.execute(&agg)?;
    println!("\nGROUP BY region, SUM(amount) WHERE status < 2");
    println!("planner chose: {}", out.choice.describe());
    for row in out.rows.rows().take(4) {
        println!("  region {:>2} → sum {:>10}", row[0], row[1]);
    }
    println!("  ... ({} groups)", out.rows.num_rows());

    // 4. A peek at late materialization's working state: one multi-column
    //    granule (Figure 9 of the paper).
    let reader = db.store().reader(table, 0)?;
    let mini = MiniColumn::fetch(&reader, PosRange::new(0, 64))?;
    let positions = mini.scan_positions(&Predicate::eq(0));
    println!("\nmulti-column granule over positions [0, 64):");
    println!("  mini-column blocks : {}", mini.blocks().len());
    println!(
        "  position descriptor: {:?} with {} valid positions",
        positions.repr(),
        positions.count()
    );
    Ok(())
}
