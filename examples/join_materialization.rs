//! The §4.3 join experiment as a standalone demo: the same
//! orders ⋈ customer query under the three inner-table representations,
//! with timings and I/O counts.
//!
//! ```text
//! cargo run --release --example join_materialization
//! ```

use matstrat::prelude::*;
use matstrat::tpch::join_tables::{customer_cols, orders_cols};

fn main() -> Result<()> {
    let cfg = TpchConfig {
        scale: 0.05,
        ..TpchConfig::default()
    };
    println!(
        "generating orders ({} rows) and customer ({} rows) ...\n",
        cfg.rows(1_500_000),
        cfg.rows(150_000)
    );
    let tables = JoinTables::generate(cfg);
    let db = Database::in_memory();
    let orders = tables.load_orders(&db, "orders")?;
    let customer = tables.load_customer(&db, "customer")?;

    println!("SELECT orders.shipdate, customer.nationcode");
    println!("FROM orders, customer");
    println!("WHERE orders.custkey = customer.custkey AND orders.custkey < X\n");

    for sf in [0.1, 0.5, 1.0] {
        let x = tables.custkey_cutoff(sf);
        let spec = JoinSpec {
            left: orders,
            right: customer,
            left_key: orders_cols::CUSTKEY,
            right_key: customer_cols::CUSTKEY,
            left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
            right_filter: None,
            left_output: vec![orders_cols::SHIPDATE],
            right_output: vec![customer_cols::NATIONCODE],
        };
        println!("— predicate selectivity {sf} (X = {x}) —");
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for inner in InnerStrategy::ALL {
            db.store().cold_reset();
            let out = db.execute_planned(
                &Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()])),
                &QueryPlan::forced_tree(vec![0], vec![inner]),
                &db.exec_options(),
            )?;
            let (result, wall, io) = (out.rows, out.stats.wall, out.stats.io);
            println!(
                "  {:>28}: {:>8.2} ms, {:>6} rows, {:>4} block reads",
                inner.name(),
                wall.as_secs_f64() * 1e3,
                result.num_rows(),
                io.block_reads
            );
            let rows = result.sorted_rows();
            match &reference {
                Some(r) => assert_eq!(r, &rows, "inner strategies disagree!"),
                None => reference = Some(rows),
            }
        }
        println!();
    }
    println!(
        "Expectation from the paper (Figure 13): materialized ≈ multi-column;\n\
         single-column pays an extra positional join on the unsorted right\n\
         positions and lands several times slower.\n"
    );

    // The planner prices all three representations (probe CPU divided by
    // the worker count the join executor will actually use) and picks one.
    let spec = JoinSpec {
        left: orders,
        right: customer,
        left_key: orders_cols::CUSTKEY,
        right_key: customer_cols::CUSTKEY,
        left_filter: Some((
            orders_cols::CUSTKEY,
            Predicate::lt(tables.custkey_cutoff(0.5)),
        )),
        right_filter: None,
        left_output: vec![orders_cols::SHIPDATE],
        right_output: vec![customer_cols::NATIONCODE],
    };
    let out = db.execute(&Statement::JoinTree(JoinTreeSpec::new(vec![spec])))?;
    println!(
        "planner: {} → {} rows",
        out.choice.describe(),
        out.rows.num_rows()
    );
    Ok(())
}
