//! Multi-way joins end to end: a star/snowflake tree over the TPC-H
//! style tables, planned by `choose_join_tree` (edge order + per-edge
//! inner strategy) and executed with the build-table cache.
//!
//! ```text
//! cargo run --release --example join_tree
//! ```

use matstrat::prelude::*;
use matstrat::tpch::join_tables::{customer_cols, date_cols, nation_cols, orders_cols};

fn main() -> Result<()> {
    let cfg = TpchConfig {
        scale: 0.05,
        ..TpchConfig::default()
    };
    println!(
        "generating orders ({} rows), customer ({} rows), nation, date ...\n",
        cfg.rows(1_500_000),
        cfg.rows(150_000)
    );
    let tables = JoinTables::generate(cfg);
    let db = Database::in_memory();
    let orders = tables.load_orders(&db, "orders")?;
    let customer = tables.load_customer(&db, "customer")?;
    let nation = tables.load_nation(&db, "nation")?;
    let date = tables.load_date(&db, "date")?;

    println!("SELECT o.shipdate, c.nationcode, d.month, n.regionkey");
    println!("FROM orders o, customer c, date d, nation n");
    println!("WHERE o.custkey = c.custkey       -- star edge (filtered)");
    println!("  AND o.orderdate = d.datekey     -- star edge");
    println!("  AND c.nationcode = n.nationkey  -- snowflake edge");
    println!("  AND o.custkey < X\n");

    let x = tables.custkey_cutoff(0.5);
    let spec = JoinTreeSpec::new(vec![
        JoinSpec {
            left: orders,
            right: customer,
            left_key: orders_cols::CUSTKEY,
            right_key: customer_cols::CUSTKEY,
            left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
            right_filter: None,
            left_output: vec![orders_cols::SHIPDATE],
            right_output: vec![customer_cols::NATIONCODE],
        },
        JoinSpec {
            left: orders,
            right: date,
            left_key: orders_cols::ORDERDATE,
            right_key: date_cols::DATEKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![date_cols::MONTH],
        },
        JoinSpec {
            left: customer,
            right: nation,
            left_key: customer_cols::NATIONCODE,
            right_key: nation_cols::NATIONKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![nation_cols::REGIONKEY],
        },
    ]);

    // Fixed plans: every uniform strategy assignment, spec order.
    for inner in InnerStrategy::ALL {
        db.store().cold_reset();
        let t0 = std::time::Instant::now();
        let result = db
            .execute_planned(
                &Statement::JoinTree(spec.clone()),
                &QueryPlan::forced_tree(vec![0, 1, 2], vec![inner; 3]),
                &db.exec_options(),
            )?
            .rows;
        let io = db.store().meter().snapshot();
        println!(
            "  {:>28} ×3: {:>8.2} ms, {:>6} rows, {:>4} block reads",
            inner.name(),
            t0.elapsed().as_secs_f64() * 1e3,
            result.num_rows(),
            io.block_reads,
        );
    }

    // The planner's pick: edge order + per-edge strategies.
    db.store().cold_reset();
    let out = db.execute(&Statement::JoinTree(spec))?;
    println!("\nplanner: {}", out.choice.describe());
    println!(
        "executed: {} rows in {:.2} ms ({} block reads, {} builds, {} reuses)",
        out.rows.num_rows(),
        out.stats.wall.as_secs_f64() * 1e3,
        out.stats.io.block_reads,
        out.stats.builds,
        out.stats.build_reuses,
    );
    Ok(())
}
