//! The analytical model as an advisor: print which strategy the §3 cost
//! model recommends across the (selectivity × encoding × aggregation)
//! space, and locate the EM/LM crossover — the decision procedure the
//! paper suggests embedding in a query optimizer.
//!
//! ```text
//! cargo run --release --example strategy_advisor
//! ```

use matstrat::model::plans::{PlanKind, QueryParams};
use matstrat::model::{ColumnParams, Constants, CostModel};

/// Paper-scale column profiles (§3.7 / §4): 60 M rows.
fn profile(encoding: &str, sf1: f64) -> QueryParams {
    let n = 60_000_000.0;
    // SHIPDATE: always RLE, 1 block, 3,800 runs.
    let c1 = ColumnParams {
        blocks: 1.0,
        rows: n,
        run_len: n / 3800.0,
        resident: 0.0,
        code_width: 8.0,
        shared_dict: false,
    };
    let c2 = match encoding {
        // LINENUM uncompressed: 916 blocks of 1-byte values.
        "plain" => ColumnParams {
            blocks: 916.0,
            rows: n,
            run_len: 1.0,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        },
        // LINENUM RLE: 5 blocks, 26,726 runs.
        "rle" => ColumnParams {
            blocks: 5.0,
            rows: n,
            run_len: n / 26_726.0,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        },
        // LINENUM bit-vector: ~25 % of plain size.
        _ => ColumnParams {
            blocks: 229.0,
            rows: n,
            run_len: 1.0,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        },
    };
    let mut q = QueryParams::selection(n, c1, c2, sf1, 27.0 / 28.0);
    q.pos_run_len1 = (n * sf1 / 3.0).max(1.0); // clustered (3 RETURNFLAG groups)
    q.pos_run_len2 = if encoding == "rle" {
        (n * q.sf2 / 26_726.0).max(1.0)
    } else {
        1.0
    };
    if encoding == "bitvec" {
        q.bitstring2 = true;
        q.c2_supports_ds3 = false;
        q.c2_decompress_fetch = true;
    }
    q
}

fn main() {
    let model = CostModel::new(Constants::host_defaults());
    let sweep: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();

    for aggregated in [false, true] {
        println!(
            "\n== recommended strategy, {} query (paper scale 10) ==",
            if aggregated {
                "aggregation"
            } else {
                "selection"
            }
        );
        println!(
            "{:>12} {:>14} {:>14} {:>14}",
            "selectivity", "plain", "rle", "bitvec"
        );
        for &sf in &sweep {
            print!("{sf:>12.1}");
            for enc in ["plain", "rle", "bitvec"] {
                let mut q = profile(enc, sf);
                if aggregated {
                    q.aggregated = true;
                    q.num_groups = 2526.0;
                }
                let (best, _) = model.best_plan(&q);
                print!(" {:>14}", best.name());
            }
            println!();
        }
    }

    // Locate the EM-parallel / LM-pipelined crossover on uncompressed
    // data (Figure 11(a)'s headline feature) by bisection.
    let crossing = |sf: f64| {
        let q = profile("plain", sf);
        let lm = model
            .estimate(PlanKind::LmPipelined, &q)
            .expect("plain supports DS3")
            .total_us();
        let em = model.estimate(PlanKind::EmParallel, &q).unwrap().total_us();
        lm - em
    };
    let (mut lo, mut hi) = (0.001, 0.999);
    if crossing(lo) < 0.0 && crossing(hi) > 0.0 {
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if crossing(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        println!(
            "\nmodelled EM-parallel / LM-pipelined crossover on uncompressed data: \
             selectivity ≈ {:.3}",
            0.5 * (lo + hi)
        );
        println!("below it, skip-friendly late materialization wins; above it, building");
        println!("tuples once at the leaves is cheaper than per-position jumps.");
    } else {
        println!("\nno EM/LM crossover inside (0, 1) for this profile");
    }
}
