//! Granule-at-a-time execution of the four materialization strategies.
//!
//! The executor processes one position granule ([`crate::GRANULE`]
//! positions) per iteration, mirroring C-Store's block-oriented operator
//! loop: multi-columns are horizontal partitions, and "single
//! multi-column blocks are worked on in each operator iteration, so that
//! column-subsets can be pipelined up the query tree" (§3.6).
//!
//! Per-strategy data flow within a granule:
//!
//! * **LM-parallel** — DS1 every filter column → AND the multi-columns →
//!   DS3 the output columns: filter columns re-use the mini-columns
//!   already in hand (re-access costs no I/O), while no-predicate output
//!   columns are fetched selectively, reading only the blocks that hold
//!   AND survivors → MERGE (or aggregate straight off the compressed
//!   group column).
//! * **LM-pipelined** — DS1 the first filter column; for each later
//!   filter, fetch **only the blocks containing surviving positions**
//!   (DS3), filter the value subset; stitch at the top. An empty
//!   descriptor skips every later column entirely — the block-skipping
//!   win on selective, clustered predicates.
//! * **EM-parallel** — SPC: read all accessed columns fully, construct
//!   tuples at the leaf, short-circuit predicates.
//! * **EM-pipelined** — DS2 the first column into (pos, value) tuples,
//!   then DS4-probe each later column tuple-at-a-time.
//!
//! # Parallel execution
//!
//! Granules are independent by construction — every strategy's pipeline
//! reads a position window, filters it, and emits its fragment of the
//! result without looking at any other window. The executor exploits
//! this morsel-style through the shared [`FragmentPipeline`] substrate
//! (also used by the parallel join probe): [`ExecOptions::parallelism`]
//! workers each start on one contiguous, granule-aligned span of the
//! position range and run the full DS1→AND→DS3 (or SPC / DS2→DS4)
//! pipeline over chunk-sized granule runs claimed from it; a worker
//! that drains its span **steals** runs from the tail of the most
//! loaded sibling's span (the [`ExecStats::steals`] counter), so
//! clustered selectivity cannot strand the matches on one core. The
//! per-run fragments — result values, partial aggregates, [`ExecStats`]
//! — are merged in global granule order, so the produced [`QueryResult`]
//! is **byte-identical** to the serial run at any worker count, and the
//! deterministic counters (`positions_matched`, `rows_out`, cold
//! `block_reads`) are exact: the buffer pool single-flights concurrent
//! cold misses and the I/O meter tracks sequentiality per (file,
//! worker).
//!
//! # The write path's delta merge
//!
//! A table with pending writes is *immutable blocks + delta*
//! (`matstrat_storage::TableDelta`). The executor takes one consistent
//! `Store::scan_snapshot` up front and pins every [`ColumnReader`] to
//! that snapshot's catalog entry, so a compaction racing the query can
//! never mix generations. Deleted base positions are filtered inside
//! each granule — after the AND for LM-parallel, after the descriptor
//! pipeline for LM-pipelined, and on the constructed tuples for both EM
//! shapes — before `positions_matched` counts them. Live inserted rows
//! (position-stamped past the base) are evaluated serially *after* the
//! granule fragments merge, in stamp order: they are the tail of the
//! table's logical row order, so the result is byte-identical to a run
//! over the compacted table at any thread count. The aggregate domain
//! is widened with the delta's group values up front (the dense
//! accumulator's `seen` bitmap keeps widening output-invariant).

use std::collections::HashMap;
use std::time::Instant;

use matstrat_common::{Error, Pos, PosRange, Predicate, Result, Value};
use matstrat_poslist::{PosList, PosListBuilder, PosVec};
use matstrat_storage::{set_thread_query_token, ColumnReader, EncodingKind, IoMeter, Store};

use crate::multicol::{FetchKind, MiniColumn, MultiColumn};
use crate::ops::agg::{aggregate_runs, aggregate_runs_compressed, AggFunc, Aggregator};
use crate::ops::merge::merge_columns;
use crate::ops::probe::ds4_extend;
use crate::ops::spc::spc_scan;
use crate::pipeline::FragmentPipeline;
use crate::query::{ExecStats, QueryResult, QuerySpec};
use crate::strategy::Strategy;
use crate::GRANULE;

// The process-wide `MATSTRAT_THREADS` default now lives in
// `matstrat-common` so the storage loader can share it; re-exported here
// to keep the historical `matstrat_core::exec::default_parallelism` path.
pub use matstrat_common::default_parallelism;

/// Executor tuning knobs, used by the ablation benchmarks to isolate the
/// contribution of individual design choices. Defaults reproduce the
/// paper's configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOptions {
    /// Reuse mini-columns already fetched by DS1 when DS3 re-accesses a
    /// column (§3.6's multi-column optimization). Disabling it forces a
    /// re-fetch through the buffer pool, restoring the re-access cost the
    /// optimization removes.
    pub multicolumn_reuse: bool,
    /// Force every DS1 position list into one representation, overriding
    /// the per-codec choice (ranges from RLE, bitmaps from bit-vector,
    /// heuristic otherwise). `None` keeps the paper's behavior.
    pub force_repr: Option<matstrat_poslist::Repr>,
    /// Positions per pipeline granule.
    pub granule: u64,
    /// Worker threads to spread the granule range over. 1 runs serially
    /// on the calling thread; the effective count is capped by the number
    /// of granules. The result is identical at any setting. Defaults to
    /// [`default_parallelism`] (the `MATSTRAT_THREADS` environment knob).
    pub parallelism: usize,
    /// The query's identity for cold-read attribution (0 = untracked).
    /// Every executor thread tags itself with it, so a buffer-pool fill
    /// raced by *another* query credits the waiter's per-thread meter
    /// share (see `matstrat_storage::BufferPool::get_or_insert_with_owner`).
    /// The query service allocates one per request; standalone callers
    /// can leave the default.
    pub query_token: u64,
    /// Consult per-block min/max zone maps when scanning a **filter**
    /// column: blocks whose value range cannot satisfy the predicate are
    /// never read (their positions would not survive the scan anyway, so
    /// the result is byte-identical). Applies to the LM strategies' DS1
    /// scans and to join/tree probe-side filters; EM reads every block by
    /// definition. [`ExecStats::zone_skips`] counts the pruned blocks.
    /// Granule partitioning is deterministic, so in the scan executor the
    /// set of read blocks — and exact cold `block_reads` — is
    /// data-dependent only, at any worker count.
    pub zone_maps: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            multicolumn_reuse: true,
            force_repr: None,
            granule: GRANULE,
            parallelism: default_parallelism(),
            query_token: 0,
            zone_maps: true,
        }
    }
}

impl ExecOptions {
    /// Default options at an explicit worker count (clamped to ≥ 1) —
    /// the shape schedulers like the query service's fair-share
    /// admission hand to the executor.
    pub fn with_parallelism(workers: usize) -> ExecOptions {
        ExecOptions {
            parallelism: workers.max(1),
            ..ExecOptions::default()
        }
    }
}

/// Execute `q` under `strategy` with default options.
pub fn execute(
    store: &Store,
    q: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryResult, ExecStats)> {
    execute_with_options(store, q, strategy, &ExecOptions::default())
}

/// Execute `q` under `strategy` with explicit [`ExecOptions`].
pub fn execute_with_options(
    store: &Store,
    q: &QuerySpec,
    strategy: Strategy,
    opts: &ExecOptions,
) -> Result<(QueryResult, ExecStats)> {
    let (proj, delta) = store.scan_snapshot(q.table)?;
    let accessed = q.accessed_columns();
    if accessed.is_empty() {
        return Err(Error::invalid("query accesses no columns"));
    }
    for &c in &accessed {
        proj.column(c)?; // validate indices early
    }
    if strategy == Strategy::LmPipelined {
        // Later filter columns are position-fetched then filtered; the
        // bit-vector codec cannot do that (§4.1): the paper omits
        // LM-pipelined from Figures 11(c)/12(c) for this reason.
        for (col, _) in q.filters.iter().skip(1) {
            if proj.column(*col)?.encoding == EncodingKind::BitVec {
                return Err(Error::unsupported(
                    "LM-pipelined requires DS3 on later filter columns; \
                     bit-vector encoding does not support position fetch",
                ));
            }
        }
    }

    // Readers are pinned to the snapshot's catalog entries: even if a
    // compaction swaps the table mid-query, every granule resolves
    // against the generation the snapshot captured.
    let readers: HashMap<usize, ColumnReader> = accessed
        .iter()
        .map(|&c| Ok((c, store.reader_for(proj.column(c)?)?)))
        .collect::<Result<_>>()?;

    // Live inserted rows in stamp order — the tail of the table's
    // logical row order, scanned serially after the fragments merge.
    let live_inserts: Vec<&Vec<Value>> = match &delta {
        Some(d) => d
            .inserts
            .iter()
            .enumerate()
            .filter(|(i, _)| !d.is_deleted(d.base_rows + *i as u64))
            .map(|(_, row)| row)
            .collect(),
        None => Vec::new(),
    };
    // Deleted positions on the immutable side, filtered inside granules.
    let base_deletes: &[u64] = delta.as_ref().map_or(&[], |d| d.base_deletes());

    // Output shape. Workers build their own accumulator from the shared
    // domain so partial aggregates merge representation-for-representation.
    let (out_cols, agg_domain): (Vec<usize>, Option<(AggFunc, Value, Value)>) = match q.aggregate {
        Some(a) => {
            let g = proj.column(a.group_col)?;
            // Widen the block-statistics domain with the delta's group
            // values; the dense accumulator's `seen` bitmap keeps the
            // widening invisible in the output.
            let (mut lo, mut hi) = (g.stats.min, g.stats.max);
            for row in &live_inserts {
                lo = lo.min(row[a.group_col]);
                hi = hi.max(row[a.group_col]);
            }
            (vec![a.group_col, a.value_col], Some((a.func, lo, hi)))
        }
        None => {
            if q.output.is_empty() {
                return Err(Error::invalid("non-aggregated query must output columns"));
            }
            (q.output.clone(), None)
        }
    };

    let n = proj.num_rows;
    let pipeline = FragmentPipeline::new(n, opts.granule.max(1), opts.parallelism.max(1));
    let task = SpanTask {
        q,
        readers: &readers,
        accessed: &accessed,
        opts,
        out_cols: &out_cols,
        agg_domain,
        strategy,
        meter: store.meter(),
        deletes: base_deletes,
    };

    let t0 = Instant::now();
    let (fragments, steals): (Vec<Fragment>, u64) =
        pipeline.run_counted(store.meter(), |span| task.run_span(span))?;

    // Merge fragments in global granule order: values concatenate (runs
    // are contiguous, disjoint, and ascending — stealing moves who
    // computes a granule, never where it lands — so this reproduces the
    // serial output byte for byte), aggregates fold, stats merge
    // associatively.
    let mut fragments = fragments.into_iter();
    let first = fragments.next().expect("at least one span");
    let mut flat = first.flat;
    let mut agg = first.agg;
    let mut stats = first.stats;
    for frag in fragments {
        stats += frag.stats;
        flat.extend(frag.flat);
        if let (Some(a), Some(partial)) = (agg.as_mut(), frag.agg) {
            a.merge(partial);
        }
    }

    // The delta pass: live inserted rows, row-at-a-time (the delta is
    // tiny and row-major — strategy distinctions do not apply to it),
    // appended after every immutable fragment so the output order is the
    // table's logical row order.
    for row in &live_inserts {
        if !q.filters.iter().all(|(c, p)| p.matches(row[*c])) {
            continue;
        }
        stats.positions_matched += 1;
        match (agg.as_mut(), q.aggregate) {
            (Some(a), Some(spec)) => a.add(row[spec.group_col], row[spec.value_col]),
            _ => flat.extend(out_cols.iter().map(|&c| row[c])),
        }
    }

    // Finalize.
    let result = match agg {
        Some(a) => {
            let rows = a.finish();
            let spec = q.aggregate.unwrap();
            let names = vec![
                proj.column(spec.group_col)?.name.clone(),
                format!("{}_{}", spec.func.name(), proj.column(spec.value_col)?.name),
            ];
            let mut flat = Vec::with_capacity(rows.len() * 2);
            for (g, s) in rows {
                flat.push(g);
                flat.push(s);
            }
            QueryResult::from_flat(names, flat)
        }
        None => {
            let names = q
                .output
                .iter()
                .map(|&c| proj.column(c).map(|ci| ci.name.clone()))
                .collect::<Result<Vec<_>>>()?;
            QueryResult::from_flat(names, flat)
        }
    };

    stats.wall = t0.elapsed();
    stats.rows_out = result.num_rows() as u64;
    stats.steals = steals;
    Ok((result, stats))
}

/// One result fragment: everything a worker's span produced.
struct Fragment {
    flat: Vec<Value>,
    agg: Option<Aggregator>,
    stats: ExecStats,
}

/// The per-worker execution context: everything needed to run the
/// granule loop over one span. All references are shared, immutable
/// query/catalog state; per-granule scratch (mini-column caches, position
/// lists) stays inside the worker.
struct SpanTask<'a> {
    q: &'a QuerySpec,
    readers: &'a HashMap<usize, ColumnReader>,
    accessed: &'a [usize],
    opts: &'a ExecOptions,
    out_cols: &'a [usize],
    agg_domain: Option<(AggFunc, Value, Value)>,
    strategy: Strategy,
    meter: &'a IoMeter,
    /// Deleted base positions (sorted) — each granule filters its window's
    /// slice of them out of the surviving descriptor/tuples.
    deletes: &'a [u64],
}

impl SpanTask<'_> {
    /// The serial granule loop over `span`, exactly as the paper's
    /// executor runs it over the whole table. I/O is measured through the
    /// calling thread's meter view, so a worker reports only what it
    /// caused.
    fn run_span(&self, span: PosRange) -> Result<Fragment> {
        // Tag the worker with the query's identity so cold fills it waits
        // on (raced by another query) credit this query's meter share.
        set_thread_query_token(self.opts.query_token);
        let t0 = Instant::now();
        let io0 = self.meter.thread_snapshot();
        // Like the I/O meter, the code-op ledger is thread-local and
        // monotonic: the span's share is the snapshot difference. The
        // count is data-dependent only (granule partitioning is
        // deterministic), so it is exact at any worker count.
        let ops0 = matstrat_common::codeops::snapshot();
        let mut agg = self
            .agg_domain
            .map(|(func, lo, hi)| Aggregator::with_domain_fn(func, lo, hi));
        let mut flat: Vec<Value> = Vec::new();
        let mut positions_matched = 0u64;
        let mut decompressed = false;
        let mut zone_skips = 0u64;

        let granule = self.opts.granule.max(1);
        let mut start = span.start;
        while start < span.end {
            let window = PosRange::new(start, (start + granule).min(span.end));
            start = window.end;
            let lo = self.deletes.partition_point(|&p| p < window.start);
            let hi = self.deletes.partition_point(|&p| p < window.end);
            let g = Granule {
                q: self.q,
                readers: self.readers,
                window,
                accessed: self.accessed,
                opts: self.opts,
                deletes: &self.deletes[lo..hi],
            };
            let got = match self.strategy {
                Strategy::LmParallel => g.lm_parallel(self.out_cols, &mut agg, &mut flat)?,
                Strategy::LmPipelined => g.lm_pipelined(self.out_cols, &mut agg, &mut flat)?,
                Strategy::EmParallel => g.em_parallel(self.out_cols, &mut agg, &mut flat)?,
                Strategy::EmPipelined => g.em_pipelined(self.out_cols, &mut agg, &mut flat)?,
            };
            positions_matched += got.matched;
            decompressed |= got.decompressed;
            zone_skips += got.zone_skips;
        }

        Ok(Fragment {
            flat,
            agg,
            stats: ExecStats {
                strategy: Some(self.strategy),
                wall: t0.elapsed(),
                io: self.meter.thread_snapshot().since(&io0),
                positions_matched,
                decompressed_fetch: decompressed,
                code_path_ops: matstrat_common::codeops::snapshot().wrapping_sub(ops0),
                zone_skips,
                // rows_out is set after the merged result is assembled;
                // steals is a scheduler-level count, set after the merge.
                ..ExecStats::default()
            },
        })
    }
}

/// Per-granule outcome counters.
struct GranuleOut {
    matched: u64,
    decompressed: bool,
    zone_skips: u64,
}

/// One granule's worth of execution context.
struct Granule<'a> {
    q: &'a QuerySpec,
    readers: &'a HashMap<usize, ColumnReader>,
    window: PosRange,
    accessed: &'a [usize],
    opts: &'a ExecOptions,
    /// Deleted positions within `window` (sorted) — the write path's
    /// base-side tombstones, filtered before positions count as matched.
    deletes: &'a [u64],
}

impl Granule<'_> {
    fn reader(&self, col: usize) -> &ColumnReader {
        &self.readers[&col]
    }

    /// Apply the ablation override to a freshly produced position list.
    fn coerce_repr(&self, pl: PosList) -> PosList {
        match self.opts.force_repr {
            None => pl,
            Some(matstrat_poslist::Repr::Ranges) => PosList::Ranges(pl.to_ranges()),
            Some(matstrat_poslist::Repr::Bitmap) => PosList::Bitmap(pl.to_bitmap(self.window)),
            Some(matstrat_poslist::Repr::Explicit) => PosList::Explicit(pl.to_explicit()),
        }
    }

    /// Drop deleted positions from a surviving descriptor. A no-op (and
    /// no rebuild) when the window holds no tombstones — the read-only
    /// fast path pays one emptiness check.
    fn filter_desc(&self, desc: PosList) -> PosList {
        if self.deletes.is_empty() {
            return desc;
        }
        let mut b = PosListBuilder::new();
        let mut di = 0usize;
        for p in desc.iter() {
            while di < self.deletes.len() && self.deletes[di] < p {
                di += 1;
            }
            if di < self.deletes.len() && self.deletes[di] == p {
                continue;
            }
            b.push(p);
        }
        self.coerce_repr(b.finish())
    }

    /// Drop deleted rows from an EM `(positions, tuples)` pair in place.
    fn filter_em(&self, positions: &mut Vec<Pos>, tuples: &mut Vec<Value>, width: usize) {
        if self.deletes.is_empty() {
            return;
        }
        let mut keep_pos = Vec::with_capacity(positions.len());
        let mut keep_tup = Vec::with_capacity(tuples.len());
        let mut di = 0usize;
        for (r, &pos) in positions.iter().enumerate() {
            while di < self.deletes.len() && self.deletes[di] < pos {
                di += 1;
            }
            if di < self.deletes.len() && self.deletes[di] == pos {
                continue;
            }
            keep_pos.push(pos);
            keep_tup.extend_from_slice(&tuples[r * width..(r + 1) * width]);
        }
        *positions = keep_pos;
        *tuples = keep_tup;
    }

    /// Fetch a filter column's mini for a DS1 scan, consulting zone maps
    /// when enabled: blocks whose min/max range cannot satisfy `pred` are
    /// skipped (counted into `zone_skips`) and never read.
    fn fetch_filter_mini(
        &self,
        col: usize,
        pred: &Predicate,
        zone_skips: &mut u64,
    ) -> Result<MiniColumn> {
        if self.opts.zone_maps {
            let (mini, pruned) = MiniColumn::fetch_pruned(self.reader(col), self.window, pred)?;
            *zone_skips += pruned;
            Ok(mini)
        } else {
            MiniColumn::fetch(self.reader(col), self.window)
        }
    }

    /// All predicates on `col`, in filter order.
    fn preds_for(&self, col: usize) -> Vec<Predicate> {
        self.q
            .filters
            .iter()
            .filter(|(c, _)| *c == col)
            .map(|(_, p)| *p)
            .collect()
    }

    /// Consume the surviving positions: fetch output values and merge, or
    /// feed the aggregator from the compressed group column.
    fn consume_lm(
        &self,
        desc: &PosList,
        minis: &mut HashMap<usize, MiniColumn>,
        out_cols: &[usize],
        agg: &mut Option<Aggregator>,
        flat: &mut Vec<Value>,
        selective_fetch: bool,
    ) -> Result<bool> {
        let mut decompressed = false;
        let fetch_mini =
            |col: usize, minis: &mut HashMap<usize, MiniColumn>| -> Result<MiniColumn> {
                if self.opts.multicolumn_reuse {
                    if let Some(m) = minis.get(&col) {
                        return Ok(m.clone()); // multi-column re-access: no I/O
                    }
                }
                let m = if selective_fetch {
                    MiniColumn::fetch_selective(self.reader(col), self.window, desc)?
                } else {
                    MiniColumn::fetch(self.reader(col), self.window)?
                };
                minis.insert(col, m.clone());
                Ok(m)
            };
        match self.q.aggregate {
            Some(a) => {
                let gmini = fetch_mini(a.group_col, minis)?;
                if a.func.needs_values() {
                    let vmini = fetch_mini(a.value_col, minis)?;
                    if vmini.runs_without_decode() {
                        // Compressed execution: the RLE value column is
                        // consumed run-at-a-time — no value vector is
                        // ever materialized. Same blocks were fetched,
                        // so I/O accounting is unchanged; the result is
                        // byte-identical (see `aggregate_runs_compressed`).
                        aggregate_runs_compressed(
                            desc,
                            &gmini,
                            &vmini,
                            agg.as_mut().expect("agg set"),
                        )?;
                    } else {
                        let mut vals = Vec::with_capacity(desc.count() as usize);
                        if vmini.fetch_values(desc, &mut vals)? == FetchKind::Decompressed {
                            decompressed = true;
                        }
                        aggregate_runs(desc, &gmini, &vals, agg.as_mut().expect("agg set"))?;
                    }
                } else {
                    // COUNT never touches the value column — an LM-only win.
                    aggregate_runs(desc, &gmini, &[], agg.as_mut().expect("agg set"))?;
                }
            }
            None => {
                let mut cols: Vec<Vec<Value>> = Vec::with_capacity(out_cols.len());
                for &c in out_cols {
                    let mini = fetch_mini(c, minis)?;
                    let mut vals = Vec::with_capacity(desc.count() as usize);
                    if mini.fetch_values(desc, &mut vals)? == FetchKind::Decompressed {
                        decompressed = true;
                    }
                    cols.push(vals);
                }
                let refs: Vec<&[Value]> = cols.iter().map(|v| v.as_slice()).collect();
                merge_columns(&refs, flat);
            }
        }
        Ok(decompressed)
    }

    /// LM-parallel: DS1 ∥ DS1 → AND → DS3 ∥ DS3 → MERGE.
    fn lm_parallel(
        &self,
        out_cols: &[usize],
        agg: &mut Option<Aggregator>,
        flat: &mut Vec<Value>,
    ) -> Result<GranuleOut> {
        let mut mcs = Vec::with_capacity(self.q.filters.len());
        let mut zone_skips = 0u64;
        for (col, pred) in &self.q.filters {
            // Zone maps prune the DS1 scan: a block whose min/max range
            // cannot satisfy the predicate contributes no positions, so
            // skipping the read leaves the descriptor unchanged. Survivor
            // positions always live in present blocks, so the pruned mini
            // is safe to re-access for output values.
            let mini = self.fetch_filter_mini(*col, pred, &mut zone_skips)?;
            let pl = self.coerce_repr(mini.scan_positions(pred));
            let mut mc = MultiColumn::with_descriptor(self.window, pl);
            mc.add_mini(*col, mini);
            mcs.push(mc);
        }
        let mc = MultiColumn::and_many(mcs, self.window);
        let desc = self.filter_desc(mc.descriptor().clone());
        let matched = desc.count();
        if matched == 0 {
            return Ok(GranuleOut {
                matched,
                decompressed: false,
                zone_skips,
            });
        }
        let mut minis: HashMap<usize, MiniColumn> = mc
            .columns()
            .map(|c| (c, mc.mini(c).expect("listed").clone()))
            .collect();
        // Output columns without predicates were not touched by DS1, so
        // DS3 fetches only the blocks holding AND survivors (§3.6) —
        // skipping whole blocks is the LM I/O win on selective queries.
        let decompressed = self.consume_lm(&desc, &mut minis, out_cols, agg, flat, true)?;
        Ok(GranuleOut {
            matched,
            decompressed,
            zone_skips,
        })
    }

    /// LM-pipelined: DS1 → (DS3 + filter)* → DS3 outputs.
    fn lm_pipelined(
        &self,
        out_cols: &[usize],
        agg: &mut Option<Aggregator>,
        flat: &mut Vec<Value>,
    ) -> Result<GranuleOut> {
        let mut minis: HashMap<usize, MiniColumn> = HashMap::new();
        let mut desc: PosList = PosList::full(self.window);
        let mut zone_skips = 0u64;
        for (i, (col, pred)) in self.q.filters.iter().enumerate() {
            if i == 0 {
                let mini = self.fetch_filter_mini(*col, pred, &mut zone_skips)?;
                desc = self.coerce_repr(mini.scan_positions(pred));
                minis.insert(*col, mini);
            } else {
                if desc.is_empty() {
                    break; // skip all later columns: their blocks are never read
                }
                let mini = match minis.get(col) {
                    Some(m) => m.clone(),
                    None => {
                        let m = MiniColumn::fetch_selective(self.reader(*col), self.window, &desc)?;
                        minis.insert(*col, m.clone());
                        m
                    }
                };
                let mut vals = Vec::with_capacity(desc.count() as usize);
                mini.gather(&desc, &mut vals)?;
                let mut b = PosListBuilder::new();
                for (p, v) in desc.iter().zip(&vals) {
                    if pred.matches(*v) {
                        b.push(p);
                    }
                }
                desc = b.finish();
            }
        }
        let desc = self.filter_desc(desc);
        let matched = desc.count();
        if matched == 0 {
            return Ok(GranuleOut {
                matched,
                decompressed: false,
                zone_skips,
            });
        }
        let decompressed = self.consume_lm(&desc, &mut minis, out_cols, agg, flat, true)?;
        Ok(GranuleOut {
            matched,
            decompressed,
            zone_skips,
        })
    }

    /// EM-parallel: SPC leaf over all accessed columns.
    fn em_parallel(
        &self,
        out_cols: &[usize],
        agg: &mut Option<Aggregator>,
        flat: &mut Vec<Value>,
    ) -> Result<GranuleOut> {
        // Read every accessed column in full — EM-parallel never skips.
        let mut spc_cols: Vec<(MiniColumn, Option<Predicate>)> =
            Vec::with_capacity(self.accessed.len());
        let mut extra_preds: Vec<(usize, Predicate)> = Vec::new(); // (tuple idx, pred)
        for (ti, &col) in self.accessed.iter().enumerate() {
            let mini = MiniColumn::fetch(self.reader(col), self.window)?;
            let mut preds = self.preds_for(col);
            let first = if preds.is_empty() {
                None
            } else {
                Some(preds.remove(0))
            };
            for p in preds {
                extra_preds.push((ti, p));
            }
            spc_cols.push((mini, first));
        }
        let mut out = spc_scan(&spc_cols)?;
        // Rare path: multiple predicates on one column.
        for (ti, p) in extra_preds {
            let w = out.width;
            let mut keep_pos = Vec::with_capacity(out.positions.len());
            let mut keep_tup = Vec::with_capacity(out.tuples.len());
            for (r, &pos) in out.positions.iter().enumerate() {
                if p.matches(out.tuples[r * w + ti]) {
                    keep_pos.push(pos);
                    keep_tup.extend_from_slice(&out.tuples[r * w..(r + 1) * w]);
                }
            }
            out.positions = keep_pos;
            out.tuples = keep_tup;
        }
        self.filter_em(&mut out.positions, &mut out.tuples, out.width);
        let matched = out.positions.len() as u64;
        self.consume_em(&out.positions, &out.tuples, out.width, out_cols, agg, flat)?;
        Ok(GranuleOut {
            matched,
            decompressed: out.decompressed,
            zone_skips: 0, // EM reads every block by definition
        })
    }

    /// EM-pipelined: DS2 leaf, DS4 probes for every later column.
    fn em_pipelined(
        &self,
        out_cols: &[usize],
        agg: &mut Option<Aggregator>,
        flat: &mut Vec<Value>,
    ) -> Result<GranuleOut> {
        let first_col = self.accessed[0];
        let mini = MiniColumn::fetch(self.reader(first_col), self.window)?;
        let mut preds = self.preds_for(first_col);
        let leaf_pred = if preds.is_empty() {
            Predicate::always_true()
        } else {
            preds.remove(0)
        };
        let mut positions: Vec<Pos> = Vec::new();
        let mut tuples: Vec<Value> = Vec::new();
        mini.scan_pairs(&leaf_pred, &mut positions, &mut tuples);
        for p in preds {
            let mut keep_pos = Vec::with_capacity(positions.len());
            let mut keep_tup = Vec::with_capacity(tuples.len());
            for (i, &v) in tuples.iter().enumerate() {
                if p.matches(v) {
                    keep_pos.push(positions[i]);
                    keep_tup.push(v);
                }
            }
            positions = keep_pos;
            tuples = keep_tup;
        }
        // Tombstones drop out at the leaf, before any DS4 probe spends
        // I/O on them.
        self.filter_em(&mut positions, &mut tuples, 1);
        let mut width = 1usize;
        for &col in &self.accessed[1..] {
            if positions.is_empty() {
                break;
            }
            let pl = PosList::Explicit(PosVec::from_sorted(positions.clone()));
            let mini = MiniColumn::fetch_selective(self.reader(col), self.window, &pl)?;
            let col_preds = self.preds_for(col);
            let mut preds_iter = col_preds.into_iter();
            width = ds4_extend(
                &mini,
                preds_iter.next().as_ref(),
                &mut positions,
                &mut tuples,
                width,
            )?;
            for p in preds_iter {
                let mut keep_pos = Vec::with_capacity(positions.len());
                let mut keep_tup = Vec::with_capacity(tuples.len());
                for (r, &pos) in positions.iter().enumerate() {
                    if p.matches(tuples[r * width + width - 1]) {
                        keep_pos.push(pos);
                        keep_tup.extend_from_slice(&tuples[r * width..(r + 1) * width]);
                    }
                }
                positions = keep_pos;
                tuples = keep_tup;
            }
        }
        let matched = positions.len() as u64;
        if matched > 0 {
            // Tuples may be narrower than `accessed` if we broke early —
            // but break only happens when positions is empty.
            debug_assert_eq!(width, self.accessed.len());
            self.consume_em(&positions, &tuples, width, out_cols, agg, flat)?;
        }
        Ok(GranuleOut {
            matched,
            decompressed: false,
            zone_skips: 0, // EM reads every block by definition
        })
    }

    /// Consume constructed tuples: aggregate tuple-at-a-time (the EM agg
    /// path) or project the output columns into the result buffer.
    fn consume_em(
        &self,
        positions: &[Pos],
        tuples: &[Value],
        width: usize,
        out_cols: &[usize],
        agg: &mut Option<Aggregator>,
        flat: &mut Vec<Value>,
    ) -> Result<()> {
        let tuple_idx = |col: usize| -> usize {
            self.accessed
                .iter()
                .position(|&c| c == col)
                .expect("output column is accessed")
        };
        match agg {
            Some(a) => {
                let gi = tuple_idx(self.q.aggregate.unwrap().group_col);
                let vi = tuple_idx(self.q.aggregate.unwrap().value_col);
                for r in 0..positions.len() {
                    a.add(tuples[r * width + gi], tuples[r * width + vi]);
                }
            }
            None => {
                let idxs: Vec<usize> = out_cols.iter().map(|&c| tuple_idx(c)).collect();
                flat.reserve(positions.len() * idxs.len());
                for r in 0..positions.len() {
                    for &i in &idxs {
                        flat.push(tuples[r * width + i]);
                    }
                }
            }
        }
        Ok(())
    }
}
