//! Mini-columns and multi-columns (§3.6, Figure 9).
//!
//! A **mini-column** is "the set of corresponding values for a specified
//! position range of a particular attribute", kept compressed: here, a
//! window over one column plus `Arc`s to the buffer-pool blocks that
//! cover it. A **multi-column** bundles mini-columns of several
//! attributes over one covering range with a *position descriptor*
//! saying which positions are still valid.
//!
//! Mini-columns are the unit of sharing in the parallel executor: the
//! backing blocks are immutable `Arc`s into the buffer pool, so cloning a
//! mini-column across granules (the §3.6 re-access optimization) is
//! pointer-copying with no synchronization. Each worker keeps its own
//! mini-column cache for its own granules — reuse is strictly
//! worker-local, so no mutable state ever crosses threads.

use std::collections::BTreeMap;
use std::sync::Arc;

use matstrat_common::{Error, Pos, PosRange, Predicate, Result, Value};
use matstrat_poslist::{Bitmap, PosList, PosListBuilder};
use matstrat_storage::{ColumnReader, EncodedBlock};

/// How a value fetch was satisfied — used by execution stats to report
/// when the bit-vector decompression penalty was paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Values were gathered by position (DS3 proper).
    Gathered,
    /// The codec cannot jump to positions; the window was decompressed
    /// and then filtered (bit-vector path).
    Decompressed,
}

/// A compressed window of one column: `Arc`s into the buffer pool.
#[derive(Debug, Clone)]
pub struct MiniColumn {
    window: PosRange,
    blocks: Vec<Arc<EncodedBlock>>,
}

// The parallel executor hands mini-/multi-columns to scoped worker
// threads; losing these bounds (e.g. by caching a `Cell` or `Rc` inside a
// block) would silently break it, so assert them at compile time.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<MiniColumn>();
    _assert_send_sync::<MultiColumn>();
};

impl MiniColumn {
    /// Fetch every block overlapping `window` (clamped to the column's
    /// rows) through the buffer pool.
    pub fn fetch(reader: &ColumnReader, window: PosRange) -> Result<MiniColumn> {
        let window = window.intersect(&PosRange::new(0, reader.num_rows()));
        let mut blocks = Vec::new();
        if !window.is_empty() {
            let mut idx = reader.block_for_pos(window.start)?;
            while idx < reader.num_blocks() {
                let meta = reader.block_meta(idx)?;
                if meta.start_pos >= window.end {
                    break;
                }
                blocks.push(reader.block(idx)?);
                idx += 1;
            }
        }
        Ok(MiniColumn { window, blocks })
    }

    /// Fetch every block overlapping `window` whose index **zone map**
    /// admits `pred` — blocks whose [min, max] range provably excludes
    /// every matching value are never read. Positions inside a pruned
    /// block cannot survive the scan, so leaving its block out of the
    /// mini-column changes nothing but the I/O: [`scan_positions`]
    /// simply never emits them. Returns the mini-column and the number
    /// of blocks pruned. Files written before zone maps carry
    /// `(Value::MIN, Value::MAX)` zones and are never pruned.
    ///
    /// [`scan_positions`]: MiniColumn::scan_positions
    pub fn fetch_pruned(
        reader: &ColumnReader,
        window: PosRange,
        pred: &Predicate,
    ) -> Result<(MiniColumn, u64)> {
        let window = window.intersect(&PosRange::new(0, reader.num_rows()));
        let mut blocks = Vec::new();
        let mut pruned = 0u64;
        if !window.is_empty() {
            let mut idx = reader.block_for_pos(window.start)?;
            while idx < reader.num_blocks() {
                let meta = reader.block_meta(idx)?;
                if meta.start_pos >= window.end {
                    break;
                }
                if meta.zone_overlaps(pred) {
                    blocks.push(reader.block(idx)?);
                } else {
                    pruned += 1;
                }
                idx += 1;
            }
        }
        Ok((MiniColumn { window, blocks }, pruned))
    }

    /// Fetch only the blocks containing positions of `positions`
    /// (clamped to `window`) — the pipelined block-skipping path: blocks
    /// of this column with no surviving positions are never read.
    pub fn fetch_selective(
        reader: &ColumnReader,
        window: PosRange,
        positions: &PosList,
    ) -> Result<MiniColumn> {
        let window = window.intersect(&PosRange::new(0, reader.num_rows()));
        let mut blocks = Vec::new();
        let mut last_idx: Option<usize> = None;
        if !window.is_empty() {
            for range in positions.to_ranges().ranges() {
                let r = range.intersect(&window);
                if r.is_empty() {
                    continue;
                }
                let mut idx = reader.block_for_pos(r.start)?;
                loop {
                    let meta = reader.block_meta(idx)?;
                    if meta.start_pos >= r.end {
                        break;
                    }
                    if last_idx != Some(idx) {
                        blocks.push(reader.block(idx)?);
                        last_idx = Some(idx);
                    }
                    idx += 1;
                    if idx >= reader.num_blocks() {
                        break;
                    }
                }
            }
        }
        Ok(MiniColumn { window, blocks })
    }

    /// An empty mini-column over `window` (no blocks).
    pub fn empty(window: PosRange) -> MiniColumn {
        MiniColumn {
            window,
            blocks: Vec::new(),
        }
    }

    /// The covering window.
    pub fn window(&self) -> PosRange {
        self.window
    }

    /// The buffer-pool blocks backing the window.
    pub fn blocks(&self) -> &[Arc<EncodedBlock>] {
        &self.blocks
    }

    /// Whether every backing block supports DS3 position fetch.
    pub fn supports_position_fetch(&self) -> bool {
        self.blocks
            .iter()
            .all(|b| b.encoding().supports_position_fetch())
    }

    /// DS1 over the window: positions whose values pass `pred`.
    pub fn scan_positions(&self, pred: &Predicate) -> PosList {
        let lists: Vec<PosList> = self
            .blocks
            .iter()
            .map(|b| b.scan_positions_in(pred, self.window))
            .collect();
        if lists.iter().any(|pl| matches!(pl, PosList::Bitmap(_))) {
            // Any dense block makes the result a bit-map over the window.
            // Merge wholesale — bitmap parts OR in 64 positions per
            // instruction, runs set word-wise — instead of re-pushing
            // every position through the builder one at a time.
            let mut bm = Bitmap::zeros(self.window);
            for pl in &lists {
                match pl {
                    PosList::Bitmap(b) => bm.union(b),
                    PosList::Ranges(r) => {
                        for range in r.ranges() {
                            bm.set_run(*range);
                        }
                    }
                    PosList::Explicit(_) => {
                        for p in pl.iter() {
                            bm.set(p);
                        }
                    }
                }
            }
            return PosList::Bitmap(bm);
        }
        let mut builder = PosListBuilder::new();
        for pl in &lists {
            match pl {
                PosList::Ranges(r) => {
                    for range in r.ranges() {
                        builder.push_run(*range);
                    }
                }
                other => {
                    for p in other.iter() {
                        builder.push(p);
                    }
                }
            }
        }
        builder.finish()
    }

    /// DS2 over the window: matching (position, value) pairs.
    pub fn scan_pairs(&self, pred: &Predicate, out_pos: &mut Vec<Pos>, out_val: &mut Vec<Value>) {
        for b in &self.blocks {
            b.scan_pairs_in(pred, self.window, out_pos, out_val);
        }
    }

    /// The block containing `pos`, by binary search over block starts.
    fn block_for(&self, pos: Pos) -> Result<&Arc<EncodedBlock>> {
        let idx = self.blocks.partition_point(|b| b.covering().end <= pos);
        let b = self
            .blocks
            .get(idx)
            .ok_or_else(|| Error::invalid(format!("position {pos} not covered by mini-column")))?;
        if !b.covering().contains(pos) {
            return Err(Error::invalid(format!(
                "position {pos} falls in a gap of the mini-column"
            )));
        }
        Ok(b)
    }

    /// DS4 probe: value at one position.
    pub fn value_at(&self, pos: Pos) -> Result<Value> {
        self.block_for(pos)?.value_at(pos)
    }

    /// DS3: values at the descriptor's positions, in position order.
    ///
    /// Errors with [`Error::Unsupported`] if any backing block is
    /// bit-vector encoded — callers that accept the decompression cost
    /// should use [`fetch_values`](Self::fetch_values) instead.
    pub fn gather(&self, positions: &PosList, out: &mut Vec<Value>) -> Result<()> {
        match positions {
            PosList::Ranges(rl) => {
                for range in rl.ranges() {
                    let mut r = range.intersect(&self.window);
                    while !r.is_empty() {
                        let b = self.block_for(r.start)?;
                        let sub = r.intersect(&b.covering());
                        b.gather_range(sub, out)?;
                        r = PosRange::new(sub.end, r.end);
                    }
                }
            }
            other => {
                // Point gathers, batched per block.
                let mut batch: Vec<Pos> = Vec::new();
                let mut current: Option<&Arc<EncodedBlock>> = None;
                for p in other.iter() {
                    if !self.window.contains(p) {
                        continue;
                    }
                    match current {
                        Some(b) if b.covering().contains(p) => batch.push(p),
                        _ => {
                            if let Some(b) = current {
                                b.gather(&batch, out)?;
                            }
                            batch.clear();
                            current = Some(self.block_for(p)?);
                            batch.push(p);
                        }
                    }
                }
                if let Some(b) = current {
                    b.gather(&batch, out)?;
                }
            }
        }
        Ok(())
    }

    /// Values at the descriptor's positions, decompressing when the codec
    /// cannot gather (bit-vector). Returns how the fetch was satisfied.
    pub fn fetch_values(&self, positions: &PosList, out: &mut Vec<Value>) -> Result<FetchKind> {
        if self.supports_position_fetch() {
            self.gather(positions, out)?;
            return Ok(FetchKind::Gathered);
        }
        // Decompress each needed block fully, then select.
        for b in &self.blocks {
            let w = b.covering().intersect(&self.window);
            let clipped = positions.clip(w);
            if clipped.is_empty() {
                continue;
            }
            let mut decoded = Vec::with_capacity(w.len() as usize);
            b.decode_range(w, &mut decoded)?;
            for p in clipped.iter() {
                out.push(decoded[(p - w.start) as usize]);
            }
        }
        Ok(FetchKind::Decompressed)
    }

    /// Decompress the entire window in position order.
    pub fn decode(&self, out: &mut Vec<Value>) -> Result<()> {
        for b in &self.blocks {
            let w = b.covering().intersect(&self.window);
            b.decode_range(w, out)?;
        }
        Ok(())
    }

    /// Visit maximal equal-value runs across the window in position order.
    pub fn for_each_run(&self, mut f: impl FnMut(Value, PosRange)) {
        for b in &self.blocks {
            b.for_each_run_in(self.window, &mut f);
        }
    }

    /// Whether [`for_each_run`](Self::for_each_run) visits stored runs
    /// without per-row decoding — true only when every backing block is
    /// RLE. Gates the compressed aggregation path: on other codecs
    /// `for_each_run` decodes internally, which would defeat it.
    pub fn runs_without_decode(&self) -> bool {
        !self.blocks.is_empty()
            && self
                .blocks
                .iter()
                .all(|b| matches!(b.as_ref(), EncodedBlock::Rle(_)))
    }

    /// If every backing block is dict-encoded against the *same*
    /// dictionary, the shared fingerprint — the precondition for
    /// code-granular operations across the window (code-keyed joins).
    /// `None` when the window is empty, any block is not dict, or the
    /// blocks disagree.
    pub fn shared_dict_fingerprint(&self) -> Option<u64> {
        let mut fp = None;
        for b in &self.blocks {
            match b.as_ref() {
                EncodedBlock::Dict(d) => match fp {
                    None => fp = Some(d.fingerprint()),
                    Some(f) if f == d.fingerprint() => {}
                    Some(_) => return None,
                },
                _ => return None,
            }
        }
        fp
    }

    /// The dictionary shared by every backing block (first block's copy);
    /// call only after [`shared_dict_fingerprint`] returned `Some`.
    pub fn shared_dict(&self) -> Option<&[Value]> {
        match self.blocks.first().map(|b| b.as_ref()) {
            Some(EncodedBlock::Dict(d)) => Some(d.dictionary()),
            _ => None,
        }
    }

    /// Dictionary codes at the descriptor's positions, in position order —
    /// the probe-side fetch of a code-keyed join: no value is ever
    /// decoded. Errors on non-dict blocks; meaningful across blocks only
    /// under a shared dictionary ([`shared_dict_fingerprint`]).
    pub fn gather_codes(&self, positions: &PosList, out: &mut Vec<u32>) -> Result<()> {
        let mut batch: Vec<Pos> = Vec::new();
        let mut current: Option<&Arc<EncodedBlock>> = None;
        let flush = |b: &EncodedBlock, batch: &[Pos], out: &mut Vec<u32>| -> Result<()> {
            match b {
                EncodedBlock::Dict(d) => d.gather_codes(batch, out),
                other => Err(Error::unsupported(format!(
                    "code gather on a {} block",
                    other.encoding().name()
                ))),
            }
        };
        for p in positions.iter() {
            if !self.window.contains(p) {
                continue;
            }
            match current {
                Some(b) if b.covering().contains(p) => batch.push(p),
                _ => {
                    if let Some(b) = current {
                        flush(b, &batch, out)?;
                    }
                    batch.clear();
                    current = Some(self.block_for(p)?);
                    batch.push(p);
                }
            }
        }
        if let Some(b) = current {
            flush(b, &batch, out)?;
        }
        Ok(())
    }
}

/// A horizontal partition of several attributes plus a position
/// descriptor (§3.6).
#[derive(Debug, Clone)]
pub struct MultiColumn {
    /// Covering position range of the partition.
    covering: PosRange,
    /// Which positions within `covering` remain valid.
    descriptor: PosList,
    /// Mini-columns by column index. `BTreeMap` keeps deterministic
    /// iteration order for tests and output.
    minis: BTreeMap<usize, MiniColumn>,
}

impl MultiColumn {
    /// A multi-column with all positions of `covering` valid and no
    /// attributes yet.
    pub fn new(covering: PosRange) -> MultiColumn {
        MultiColumn {
            covering,
            descriptor: PosList::full(covering),
            minis: BTreeMap::new(),
        }
    }

    /// A multi-column with an explicit descriptor.
    pub fn with_descriptor(covering: PosRange, descriptor: PosList) -> MultiColumn {
        MultiColumn {
            covering,
            descriptor,
            minis: BTreeMap::new(),
        }
    }

    /// Attach a mini-column for attribute `col`.
    pub fn add_mini(&mut self, col: usize, mini: MiniColumn) {
        self.minis.insert(col, mini);
    }

    /// The covering range.
    pub fn covering(&self) -> PosRange {
        self.covering
    }

    /// The position descriptor.
    pub fn descriptor(&self) -> &PosList {
        &self.descriptor
    }

    /// Replace the descriptor (predicate application: "the mini-column
    /// remains untouched").
    pub fn set_descriptor(&mut self, descriptor: PosList) {
        self.descriptor = descriptor;
    }

    /// The attached mini-column for `col`, if any.
    pub fn mini(&self, col: usize) -> Option<&MiniColumn> {
        self.minis.get(&col)
    }

    /// Attribute indices present.
    pub fn columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.minis.keys().copied()
    }

    /// The degree (number of attached attributes).
    pub fn degree(&self) -> usize {
        self.minis.len()
    }

    /// Number of valid positions.
    pub fn valid_count(&self) -> u64 {
        self.descriptor.count()
    }

    /// AND two multi-columns (§3.6): the result covers the intersection
    /// of the covering ranges, its descriptor is the AND of the
    /// descriptors, and its mini-column set is the union (copying `Arc`s,
    /// "a zero-cost operation").
    pub fn and(mut self, other: MultiColumn) -> MultiColumn {
        let covering = self.covering.intersect(&other.covering);
        let descriptor = self.descriptor.and(&other.descriptor);
        let mut minis = std::mem::take(&mut self.minis);
        for (col, mini) in other.minis {
            minis.entry(col).or_insert(mini);
        }
        MultiColumn {
            covering,
            descriptor,
            minis,
        }
    }

    /// AND a whole set of multi-columns; `window` is the identity
    /// covering when the set is empty.
    pub fn and_many(mcs: Vec<MultiColumn>, window: PosRange) -> MultiColumn {
        let mut iter = mcs.into_iter();
        match iter.next() {
            None => MultiColumn::new(window),
            Some(first) => iter.fold(first, MultiColumn::and),
        }
    }

    /// Collapse to listed positions (§3.6): the descriptor becomes an
    /// explicit position list. Useful when few positions remain valid.
    pub fn collapse(&mut self) {
        self.descriptor = PosList::Explicit(self.descriptor.to_explicit());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_storage::{EncodingKind as Ek, ProjectionSpec, SortOrder, Store};

    /// 3000-row projection: a = i/300 (sorted), b = i%7, c = i%5 (bitvec).
    fn setup() -> (
        Store,
        matstrat_common::TableId,
        Vec<Value>,
        Vec<Value>,
        Vec<Value>,
    ) {
        let store = Store::in_memory();
        let a: Vec<Value> = (0..3000).map(|i| i / 300).collect();
        let b: Vec<Value> = (0..3000).map(|i| i % 7).collect();
        let c: Vec<Value> = (0..3000).map(|i| i % 5).collect();
        let spec = ProjectionSpec::new("t")
            .column("a", Ek::Rle, SortOrder::Primary)
            .column("b", Ek::Plain, SortOrder::None)
            .column("c", Ek::BitVec, SortOrder::None);
        let id = store.load_projection(&spec, &[&a, &b, &c]).unwrap();
        (store, id, a, b, c)
    }

    #[test]
    fn fetch_clamps_window() {
        let (store, id, ..) = setup();
        let r = store.reader(id, 0).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(2900, 99_999)).unwrap();
        assert_eq!(mc.window(), PosRange::new(2900, 3000));
        assert!(!mc.blocks().is_empty());
    }

    #[test]
    fn scan_positions_matches_reference() {
        let (store, id, _, b, _) = setup();
        let r = store.reader(id, 1).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(100, 900)).unwrap();
        let pl = mc.scan_positions(&Predicate::lt(3));
        let expected: Vec<Pos> = (100..900).filter(|&i| b[i as usize] < 3).collect();
        assert_eq!(pl.to_vec(), expected);
    }

    #[test]
    fn gather_ranges_and_points() {
        let (store, id, _, b, _) = setup();
        let r = store.reader(id, 1).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(0, 3000)).unwrap();
        // Range gather.
        let pl = PosList::full(PosRange::new(10, 20));
        let mut out = Vec::new();
        mc.gather(&pl, &mut out).unwrap();
        assert_eq!(out, &b[10..20]);
        // Point gather.
        let pl = PosList::from_positions(vec![1, 500, 2999]);
        out.clear();
        mc.gather(&pl, &mut out).unwrap();
        assert_eq!(out, vec![b[1], b[500], b[2999]]);
    }

    #[test]
    fn fetch_values_decompresses_bitvec() {
        let (store, id, _, _, c) = setup();
        let r = store.reader(id, 2).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(0, 3000)).unwrap();
        assert!(!mc.supports_position_fetch());
        let pl = PosList::from_positions(vec![3, 77, 1234]);
        let mut out = Vec::new();
        assert!(mc.gather(&pl, &mut out).is_err());
        out.clear();
        let kind = mc.fetch_values(&pl, &mut out).unwrap();
        assert_eq!(kind, FetchKind::Decompressed);
        assert_eq!(out, vec![c[3], c[77], c[1234]]);
    }

    #[test]
    fn fetch_values_gathers_when_supported() {
        let (store, id, _, b, _) = setup();
        let r = store.reader(id, 1).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(0, 3000)).unwrap();
        let pl = PosList::from_positions(vec![5, 6, 7]);
        let mut out = Vec::new();
        assert_eq!(mc.fetch_values(&pl, &mut out).unwrap(), FetchKind::Gathered);
        assert_eq!(out, vec![b[5], b[6], b[7]]);
    }

    #[test]
    fn fetch_selective_skips_unneeded_blocks() {
        let (store, id, ..) = setup();
        let r = store.reader(id, 1).unwrap();
        store.cold_reset();
        // Positions only in the very first rows: later plain blocks (if
        // any) must not be fetched. With 3000 W1 rows there is 1 block, so
        // instead check the I/O meter only counts 1 block.
        let pl = PosList::from_positions(vec![0, 1]);
        let mc = MiniColumn::fetch_selective(&r, PosRange::new(0, 3000), &pl).unwrap();
        assert_eq!(store.meter().snapshot().block_reads, 1);
        assert_eq!(mc.value_at(0).unwrap(), 0);
        // Empty positions: nothing fetched.
        store.cold_reset();
        let mc =
            MiniColumn::fetch_selective(&r, PosRange::new(0, 3000), &PosList::empty()).unwrap();
        assert_eq!(store.meter().snapshot().block_reads, 0);
        assert!(mc.blocks().is_empty());
    }

    #[test]
    fn value_at_errors_outside_window() {
        let (store, id, ..) = setup();
        let r = store.reader(id, 1).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(100, 200)).unwrap();
        assert!(mc.value_at(150).is_ok());
        // 3000 is beyond the column entirely.
        assert!(mc.value_at(3000).is_err());
    }

    #[test]
    fn for_each_run_spans_blocks() {
        let (store, id, a, ..) = setup();
        let r = store.reader(id, 0).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(250, 950)).unwrap();
        let mut seen = Vec::new();
        mc.for_each_run(|v, range| seen.push((v, range.start, range.end)));
        assert_eq!(
            seen,
            vec![(0, 250, 300), (1, 300, 600), (2, 600, 900), (3, 900, 950)]
        );
        let _ = a;
    }

    #[test]
    fn multicolumn_and_unions_minis_and_intersects_descriptors() {
        let (store, id, ..) = setup();
        let ra = store.reader(id, 0).unwrap();
        let rb = store.reader(id, 1).unwrap();
        let w = PosRange::new(0, 1000);
        let ma = MiniColumn::fetch(&ra, w).unwrap();
        let mb = MiniColumn::fetch(&rb, w).unwrap();
        let pa = ma.scan_positions(&Predicate::lt(2)); // a < 2 → pos 0..600
        let pb = mb.scan_positions(&Predicate::eq(0)); // b == 0 → multiples of 7
        let mut mca = MultiColumn::with_descriptor(w, pa);
        mca.add_mini(0, ma);
        let mut mcb = MultiColumn::with_descriptor(w, pb);
        mcb.add_mini(1, mb);
        let mc = mca.and(mcb);
        assert_eq!(mc.degree(), 2);
        assert_eq!(mc.covering(), w);
        let expected: Vec<Pos> = (0..600).filter(|p| p % 7 == 0).collect();
        assert_eq!(mc.descriptor().to_vec(), expected);
        assert!(mc.mini(0).is_some() && mc.mini(1).is_some());
        assert_eq!(mc.columns().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn and_many_empty_is_full_window() {
        let w = PosRange::new(0, 100);
        let mc = MultiColumn::and_many(vec![], w);
        assert_eq!(mc.valid_count(), 100);
        assert_eq!(mc.degree(), 0);
    }

    #[test]
    fn collapse_to_listed_positions() {
        let w = PosRange::new(0, 100);
        let mut mc = MultiColumn::with_descriptor(w, PosList::full(PosRange::new(5, 8)));
        mc.collapse();
        assert!(matches!(mc.descriptor(), PosList::Explicit(_)));
        assert_eq!(mc.descriptor().to_vec(), vec![5, 6, 7]);
    }

    #[test]
    fn minicolumn_clones_share_blocks_across_threads() {
        // Worker-local reuse: each worker clones the mini-column (an
        // Arc-copy, no I/O) and scans it independently; results agree and
        // no re-fetch hits the meter.
        let (store, id, _, b, _) = setup();
        let r = store.reader(id, 1).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(0, 3000)).unwrap();
        let io_before = store.meter().snapshot();
        let counts: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let local = mc.clone();
                    s.spawn(move || local.scan_positions(&Predicate::lt(3)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expected = b.iter().filter(|&&v| v < 3).count() as u64;
        assert!(counts.iter().all(|&c| c == expected));
        assert_eq!(
            store.meter().snapshot(),
            io_before,
            "clones re-read nothing"
        );
    }

    #[test]
    fn shared_dict_fingerprint_and_code_gather() {
        let store = Store::in_memory();
        let k: Vec<Value> = (0..150_000).map(|i| ((i * 31) % 10) * 5).collect();
        let spec = ProjectionSpec::new("t").column_shared_dict("k", SortOrder::None);
        let id = store.load_projection(&spec, &[&k]).unwrap();
        let r = store.reader(id, 0).unwrap();
        let mc = MiniColumn::fetch(&r, PosRange::new(0, 150_000)).unwrap();
        assert!(mc.blocks().len() > 1, "want a multi-block window");
        let fp = mc.shared_dict_fingerprint().expect("shared dict");
        assert_ne!(fp, 0);
        let dict = mc.shared_dict().unwrap();
        // Codes decode to the same values the value gather returns, even
        // across a block boundary.
        let pl = PosList::from_positions(vec![0, 3, 70_000, 149_999]);
        let (mut codes, mut vals) = (Vec::new(), Vec::new());
        mc.gather_codes(&pl, &mut codes).unwrap();
        mc.gather(&pl, &mut vals).unwrap();
        let via_dict: Vec<Value> = codes.iter().map(|&c| dict[c as usize]).collect();
        assert_eq!(via_dict, vals);
        // Non-dict windows refuse both.
        let (store2, id2, ..) = setup();
        let mc2 =
            MiniColumn::fetch(&store2.reader(id2, 0).unwrap(), PosRange::new(0, 3000)).unwrap();
        assert!(mc2.shared_dict_fingerprint().is_none());
        assert!(mc2.gather_codes(&pl, &mut codes).is_err());
    }

    #[test]
    fn runs_without_decode_only_for_rle() {
        let (store, id, ..) = setup();
        let w = PosRange::new(0, 3000);
        let rle = MiniColumn::fetch(&store.reader(id, 0).unwrap(), w).unwrap();
        let plain = MiniColumn::fetch(&store.reader(id, 1).unwrap(), w).unwrap();
        assert!(rle.runs_without_decode());
        assert!(!plain.runs_without_decode());
        assert!(!MiniColumn::empty(w).runs_without_decode());
    }

    #[test]
    fn empty_minicolumn() {
        let mc = MiniColumn::empty(PosRange::new(0, 10));
        assert!(mc.blocks().is_empty());
        assert!(mc.scan_positions(&Predicate::always_true()).is_empty());
    }
}
