//! The materialization-strategy executor: the paper's primary contribution.
//!
//! This crate implements the four tuple-construction strategies of
//! *Abadi et al., "Materialization Strategies in a Column-Oriented DBMS"*
//! over the `matstrat-storage` substrate:
//!
//! * [`Strategy::EmPipelined`] — DS2 → DS4 chains: tuples are built
//!   incrementally, one column per operator, probing later columns at the
//!   positions that survived earlier predicates;
//! * [`Strategy::EmParallel`] — an SPC (scan-predicate-construct) leaf
//!   that reads all needed columns in lockstep and emits full tuples;
//! * [`Strategy::LmPipelined`] — positions flow down a DS1/DS3 chain;
//!   later columns are fetched **only** at surviving positions, skipping
//!   whole blocks when a granule produced no matches;
//! * [`Strategy::LmParallel`] — every predicate column is filtered to a
//!   position list, the lists are intersected with word-wise ANDs, and
//!   values are stitched at the very top.
//!
//! Late-materialization plans communicate via [`MultiColumn`]s (§3.6):
//! a covering position range, compressed mini-columns referencing
//! buffer-pool blocks, and a position descriptor in one of the three
//! representations of `matstrat-poslist`.
//!
//! The [`Database`] facade ties storage, execution, the §4.3 join
//! strategies, and the model-driven [`planner`] together.

pub mod db;
pub mod exec;
pub mod multicol;
pub mod ops;
pub mod pipeline;
pub mod planner;
pub mod query;
pub mod rowstore;
pub mod session;
pub mod strategy;

pub use db::{delete_where, Database, QueryOutcome, QueryPlan};
pub use exec::{default_parallelism, execute, execute_with_options, ExecOptions};
pub use multicol::{MiniColumn, MultiColumn};
pub use ops::agg::AggFunc;
pub use ops::join::{
    hash_join, hash_join_with_io, hash_join_with_options, hash_join_with_stats, InnerStrategy,
    JoinSpec,
};
pub use ops::join_tree::{hash_join_tree, hash_join_tree_with_options, JoinTreePlan};
pub use pipeline::FragmentPipeline;
pub use planner::{JoinChoice, JoinTreeChoice, PlanChoice, Planner};
pub use query::{
    AggSpec, ExecStats, JoinKeySource, JoinTreeSpec, JoinTreeStats, QueryResult, QuerySpec,
    QueryStats, Statement,
};
pub use session::{fair_share, Reply, Request, Server, ServerConfig, ServerStats, Session};
pub use strategy::Strategy;

/// Number of positions processed per pipeline iteration (one "granule").
///
/// Multi-columns are horizontal partitions; this is their height. 64 Ki
/// positions keeps a granule of a 1-byte uncompressed column at roughly
/// one 64 KB storage block, mirroring C-Store's block-at-a-time operator
/// loop.
pub const GRANULE: u64 = 64 * 1024;
