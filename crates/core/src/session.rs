//! The query service: N concurrent sessions over one shared store.
//!
//! PRs 2–5 built a single-query engine — one `Database`, one hand-built
//! spec, one execution at a time. This module is the step to a *served*
//! system: a [`Server`] owns the shared substrate (sharded buffer pool,
//! I/O meter, planner) and admits queries from any number of
//! [`Session`]s onto it, with three properties the concurrency battery
//! (`tests/concurrent_diff.rs`) proves:
//!
//! * **Admission control** — at most [`ServerConfig::max_concurrent`]
//!   queries execute at once; excess callers block (a condvar queue),
//!   bounding memory and thread fan-out no matter how many sessions
//!   exist.
//! * **Fair span scheduling** — the server's
//!   [`ServerConfig::worker_budget`] threads are split over the queries
//!   active at admission time: `budget / active` each, with the
//!   remainder going one-each to the earliest-admitted slots (clamped
//!   to ≥ 1), so shares always sum to the whole budget when it covers
//!   the active set — plain truncation stranded `budget % active`
//!   workers (8 over 3 handed out 2 + 2 + 2). Because every operator is
//!   byte-identical at any worker count, the share is pure scheduling:
//!   it decides wall time, never results.
//! * **Per-query isolation** — each query's [`ExecStats`] /
//!   [`JoinTreeStats`] (rows, positions, cold `block_reads`) are its own,
//!   harvested per thread ([`matstrat_storage::IoSink`]); the buffer
//!   pool's global [`matstrat_storage::PoolStats`] ledger stays exact
//!   because the service never touches the pool's counters or striping —
//!   those belong to the store owner.
//!
//! Plans are priced at the **full worker budget**, not the fair share:
//! planning must be deterministic for a given store, or an interleaved
//! run could pick different strategies than a serial one and legitimately
//! read different blocks. Execution parallelism is where the share
//! lands — there, any value returns the same bytes.
//!
//! The text front-end lives in `matstrat-lang` (which depends on this
//! crate); `examples/query_service.rs` wires the two together.

use std::sync::{Arc, Condvar, Mutex};

use matstrat_common::Result;
use matstrat_model::Constants;
use matstrat_storage::{next_query_token, set_thread_query_token, Store};

use crate::db::{Database, QueryOutcome, QueryPlan};
use crate::exec::{default_parallelism, execute_with_options, ExecOptions};
use crate::ops::join_tree::hash_join_tree_with_options;
use crate::planner::Planner;
use crate::query::{ExecStats, JoinTreeSpec, JoinTreeStats, QueryResult, QuerySpec, Statement};

/// Admission knobs for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Queries allowed to execute simultaneously; further submissions
    /// block until a slot frees (clamped to ≥ 1).
    pub max_concurrent: usize,
    /// Total executor worker threads shared by the active queries; each
    /// query gets its [`fair_share`] at admission (clamped to ≥ 1).
    pub worker_budget: usize,
}

impl Default for ServerConfig {
    /// Four concurrent queries sharing the `MATSTRAT_THREADS` worker
    /// default.
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: 4,
            worker_budget: default_parallelism(),
        }
    }
}

/// Cumulative admission counters (exact: every transition happens under
/// the gate lock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries admitted so far.
    pub admitted: u64,
    /// Queries finished (successfully or not).
    pub completed: u64,
    /// Most queries ever active at once (≤ `max_concurrent`).
    pub peak_active: usize,
    /// Most queries ever blocked waiting for a slot at once.
    pub peak_queued: usize,
    /// Queries executing right now (a snapshot, not a cumulative
    /// counter): `admitted - completed` at the instant of
    /// [`Server::stats`]. Zero means the gate is idle — every
    /// admission slot has been handed back, which is what the network
    /// frontend's disconnect tests assert.
    pub active: usize,
}

#[derive(Default)]
struct GateState {
    active: usize,
    queued: usize,
    /// Occupied admission slots; a query claims the lowest free one, so
    /// a slot index is also the query's seniority rank among the active
    /// set — the remainder of the worker budget goes to the lowest
    /// ranks.
    slots: Vec<bool>,
    stats: ServerStats,
}

/// The worker share of the query admitted at seniority `rank` (0-based)
/// among `active` queries sharing `budget` threads: `budget / active`,
/// plus one of the `budget % active` remainder threads for the lowest
/// ranks, clamped to ≥ 1. For any `(budget, active)` the shares over
/// ranks `0..active` sum to exactly `budget` whenever `budget ≥ active`
/// (and to `active` otherwise — nobody runs with zero workers), differ
/// by at most one, and never increase with rank.
pub fn fair_share(budget: usize, rank: usize, active: usize) -> usize {
    let active = active.max(1);
    (budget / active + usize::from(rank < budget % active)).max(1)
}

/// The shared query service: one store, one planner, one admission gate.
/// Create sessions with [`Server::connect`]; all of them execute against
/// the same buffer pool and worker budget.
pub struct Server {
    store: Store,
    planner: Planner,
    cfg: ServerConfig,
    gate: Mutex<GateState>,
    cv: Condvar,
}

impl Server {
    /// Serve `store` under `cfg`. Pool striping stays whatever the store
    /// owner set (`BufferPool::reshard*` — see `Database::set_parallelism`
    /// for the grow-only idiom): it is a throughput knob, never a
    /// correctness one, and the concurrency battery pins results across
    /// shard counts.
    pub fn new(store: Store, cfg: ServerConfig) -> Arc<Server> {
        let cfg = ServerConfig {
            max_concurrent: cfg.max_concurrent.max(1),
            worker_budget: cfg.worker_budget.max(1),
        };
        Arc::new(Server {
            store,
            // Deterministic planning: priced at the full budget (see the
            // module docs), never at a transient fair share.
            planner: Planner::with_parallelism(Constants::host_defaults(), cfg.worker_budget),
            cfg,
            gate: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        })
    }

    /// An in-memory server with the given knobs.
    pub fn in_memory(cfg: ServerConfig) -> Arc<Server> {
        Server::new(Store::in_memory(), cfg)
    }

    /// Open a session. Sessions are cheap handles; drop them freely.
    pub fn connect(self: &Arc<Server>) -> Session {
        Session {
            server: Arc::clone(self),
        }
    }

    /// The shared store (catalog, buffer pool, meter).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The admission knobs the server runs with.
    pub fn config(&self) -> ServerConfig {
        self.cfg
    }

    /// Snapshot the admission counters (plus the live `active` count,
    /// read under the same gate lock).
    pub fn stats(&self) -> ServerStats {
        let g = self.gate.lock().expect("gate poisoned");
        ServerStats {
            active: g.active,
            ..g.stats
        }
    }

    /// Block until a slot frees, then return this query's fair worker
    /// share. The share is computed from the active count *including*
    /// this query, under the same lock that admitted it.
    fn admit(&self) -> AdmitGuard<'_> {
        let mut g = self.gate.lock().expect("gate poisoned");
        g.queued += 1;
        g.stats.peak_queued = g.stats.peak_queued.max(g.queued);
        while g.active >= self.cfg.max_concurrent {
            g = self.cv.wait(g).expect("gate poisoned");
        }
        g.queued -= 1;
        g.active += 1;
        g.stats.admitted += 1;
        g.stats.peak_active = g.stats.peak_active.max(g.active);
        // Claim the lowest free slot. Everything below it is occupied,
        // so the slot index is this query's seniority rank.
        let slot = match g.slots.iter().position(|occupied| !occupied) {
            Some(s) => s,
            None => {
                g.slots.push(false);
                g.slots.len() - 1
            }
        };
        g.slots[slot] = true;
        let share = fair_share(self.cfg.worker_budget, slot, g.active);
        drop(g);
        AdmitGuard {
            server: self,
            share,
            slot,
        }
    }
}

/// Releases the admission slot on drop — error paths included.
struct AdmitGuard<'a> {
    server: &'a Server,
    share: usize,
    slot: usize,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.server.gate.lock().expect("gate poisoned");
        g.active -= 1;
        g.slots[self.slot] = false;
        g.stats.completed += 1;
        drop(g);
        self.server.cv.notify_all();
    }
}

/// One query against the service — exactly the engine's [`Statement`]
/// shape. `matstrat-lang` compiles query text into this enum's payloads.
pub type Request = Statement;

/// A finished query: the [`QueryOutcome`] the unified execute path
/// produced — rows, one [`QueryStats`](crate::query::QueryStats) shape
/// whatever the statement kind (its cold `block_reads` are this query's
/// own, harvested per thread, exact under concurrency), and the plan.
pub type Reply = QueryOutcome;

/// A client handle on a [`Server`]. `run` blocks while the server is at
/// its concurrency bound; use one session per client thread.
pub struct Session {
    server: Arc<Server>,
}

impl Session {
    /// The server this session talks to.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// EXPLAIN: plan the statement (at the full worker budget, like
    /// `run`) and describe the choice without executing or taking a slot.
    pub fn explain(&self, req: &Request) -> Result<String> {
        let srv = &self.server;
        match req {
            Statement::Select(q) => Ok(srv.planner.choose(&srv.store, q)?.describe()),
            Statement::JoinTree(t) => Ok(srv.planner.choose_join_tree(&srv.store, t)?.describe()),
            Statement::Insert { rows, .. } => Ok(format!("insert {} row(s) via WAL", rows.len())),
            Statement::Delete { filters, .. } => Ok(format!(
                "delete where {} predicate(s) match, via WAL",
                filters.len()
            )),
        }
    }

    /// Plan and execute one statement under admission control — the
    /// served twin of [`Database::execute`]: plans price at the **full**
    /// worker budget (deterministic for a given store), execution runs
    /// at this query's fair share. Writes bypass the admission gate:
    /// they serialize on the store's write lock and never consume
    /// executor workers.
    pub fn run(&self, req: &Request) -> Result<Reply> {
        let srv = &self.server;
        match req {
            Statement::Select(q) => {
                let choice = srv.planner.choose(&srv.store, q)?;
                let permit = srv.admit();
                let opts = ExecOptions {
                    query_token: next_query_token(),
                    ..ExecOptions::with_parallelism(permit.share)
                };
                let _tag = ThreadTokenGuard::tag(opts.query_token);
                let (rows, stats) = execute_with_options(&srv.store, q, choice.strategy, &opts)?;
                Ok(QueryOutcome {
                    rows,
                    stats,
                    choice: QueryPlan::Scan(choice),
                })
            }
            Statement::JoinTree(t) => {
                let choice = srv.planner.choose_join_tree(&srv.store, t)?;
                let permit = srv.admit();
                let opts = ExecOptions {
                    query_token: next_query_token(),
                    ..ExecOptions::with_parallelism(permit.share)
                };
                let _tag = ThreadTokenGuard::tag(opts.query_token);
                let (rows, stats) =
                    hash_join_tree_with_options(&srv.store, t, &choice.plan(), &opts)?;
                Ok(QueryOutcome {
                    rows,
                    stats,
                    choice: QueryPlan::Tree(choice),
                })
            }
            Statement::Insert { table, rows } => {
                let t0 = std::time::Instant::now();
                srv.store.insert_rows(*table, rows)?;
                Ok(Database::write_outcome(rows.len() as u64, t0))
            }
            Statement::Delete { table, filters } => {
                let t0 = std::time::Instant::now();
                let n = crate::db::delete_where(&srv.store, *table, filters)?;
                Ok(Database::write_outcome(n, t0))
            }
        }
    }

    /// Plan (at the full budget) and run a scan (at the fair share).
    /// Now a thin delegate of [`Session::run`] — same planning, same
    /// admission, same token tagging — so the deprecated path can never
    /// drift from the unified one (`deprecated_session_shims_match_run`
    /// pins the stats equality).
    #[deprecated(note = "use Session::run(&Request); the Reply carries rows and stats")]
    pub fn run_scan(&self, q: &QuerySpec) -> Result<(QueryResult, ExecStats)> {
        let out = self.run(&Statement::Select(q.clone()))?;
        Ok((out.rows, out.stats))
    }

    /// Plan (at the full budget) and run a join tree (at the fair
    /// share). A thin delegate of [`Session::run`], like
    /// [`Session::run_scan`].
    #[deprecated(note = "use Session::run(&Request); the Reply carries rows and stats")]
    pub fn run_join_tree(&self, spec: &JoinTreeSpec) -> Result<(QueryResult, JoinTreeStats)> {
        let out = self.run(&Statement::JoinTree(spec.clone()))?;
        Ok((out.rows, out.stats))
    }
}

/// Tags the calling (session) thread with a query token for the scope
/// of one request — executor workers tag themselves in their span loop;
/// this covers reads issued inline on the session thread — and untags
/// on drop so a later query on the same client thread starts clean.
struct ThreadTokenGuard;

impl ThreadTokenGuard {
    fn tag(token: u64) -> ThreadTokenGuard {
        set_thread_query_token(token);
        ThreadTokenGuard
    }
}

impl Drop for ThreadTokenGuard {
    fn drop(&mut self) {
        set_thread_query_token(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::{Predicate, Value};
    use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};

    fn served_store() -> Store {
        let store = Store::in_memory();
        let a: Vec<Value> = (0..3000).map(|i| i / 300).collect();
        let b: Vec<Value> = (0..3000).map(|i| i % 7).collect();
        let spec = ProjectionSpec::new("t")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&a, &b]).unwrap();
        store
    }

    #[test]
    fn sessions_share_one_store_and_results_match_the_database_path() {
        let store = served_store();
        let t = store.projection_by_name("t").unwrap().id;
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(3));
        let (oracle, _) = execute_with_options(
            &store,
            &q,
            crate::Strategy::LmParallel,
            &ExecOptions::default(),
        )
        .unwrap();

        let server = Server::new(store, ServerConfig::default());
        let s1 = server.connect();
        let s2 = server.connect();
        let plan = s1.explain(&Request::Select(q.clone())).unwrap();
        assert!(plan.starts_with("scan via "), "explain text: {plan}");
        let r1 = s1.run(&Request::Select(q.clone())).unwrap();
        let r2 = s2.run(&Request::Select(q)).unwrap();
        assert_eq!(r1.result().flat(), oracle.flat());
        assert_eq!(r2.result().flat(), oracle.flat());
        let stats = server.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn admission_gate_bounds_active_queries_and_counts_peaks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let server = Server::new(
            served_store(),
            ServerConfig {
                max_concurrent: 2,
                worker_budget: 4,
            },
        );
        let t = server.store().projection_by_name("t").unwrap().id;
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::ge(0));
        let in_flight = AtomicUsize::new(0);
        let over_bound = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let server = &server;
                let q = &q;
                let in_flight = &in_flight;
                let over_bound = &over_bound;
                s.spawn(move || {
                    let session = server.connect();
                    // The gate admits before execution; sample the
                    // active count from inside a running query.
                    let _ = session.run(&Request::Select(q.clone())).unwrap();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    if now > 2 {
                        over_bound.fetch_add(1, Ordering::SeqCst);
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        let stats = server.stats();
        assert_eq!(stats.admitted, 6);
        assert_eq!(stats.completed, 6);
        assert!(stats.peak_active <= 2, "admission bound held");
        assert!(stats.peak_active >= 1);
    }

    #[test]
    fn fair_share_never_exceeds_budget_or_drops_below_one() {
        // Budget 4 split across up to 8 active queries: the share is
        // computed under the gate lock, so active ∈ [1, max_concurrent]
        // and share ∈ [1, budget].
        let server = Server::new(
            served_store(),
            ServerConfig {
                max_concurrent: 8,
                worker_budget: 4,
            },
        );
        let permit = server.admit();
        assert_eq!(permit.share, 4, "sole query gets the whole budget");
        let second = server.admit();
        assert_eq!(second.share, 2, "two active: half each");
        drop(permit);
        drop(second);
        let zero_knobs = Server::in_memory(ServerConfig {
            max_concurrent: 0,
            worker_budget: 0,
        });
        assert_eq!(zero_knobs.config().max_concurrent, 1, "clamped");
        assert_eq!(zero_knobs.config().worker_budget, 1, "clamped");
        let permit = zero_knobs.admit();
        assert_eq!(permit.share, 1);
    }

    #[test]
    fn fair_shares_spend_the_whole_budget_without_stranding_workers() {
        // The remainder bug: 8 workers over 3 active used to hand out
        // 2 + 2 + 2, stranding two. Earliest-admitted ranks soak up the
        // remainder instead.
        assert_eq!(
            (0..3).map(|r| fair_share(8, r, 3)).collect::<Vec<_>>(),
            vec![3, 3, 2]
        );
        for budget in 1..=9usize {
            for active in 1..=8usize {
                let shares: Vec<usize> =
                    (0..active).map(|r| fair_share(budget, r, active)).collect();
                let share_max = *shares.iter().max().unwrap();
                // The sum identity: everything the budget covers is
                // handed out (never more than active × the top share),
                // and when the budget cannot cover the active set every
                // query still gets its floor of one.
                assert_eq!(
                    shares.iter().sum::<usize>(),
                    budget.max(active).min(active * share_max),
                    "budget {budget} active {active}: {shares:?}"
                );
                // Shares are within one of each other, never ascending.
                assert!(shares.windows(2).all(|w| w[0] >= w[1] && w[0] - w[1] <= 1));
            }
        }
    }

    /// The deterministic face of [`QueryStats`]: everything except
    /// wall time (timing) and steals (scheduling), which legitimately
    /// vary run to run.
    fn deterministic_stats(s: &crate::query::QueryStats) -> impl PartialEq + std::fmt::Debug {
        (
            s.strategy,
            s.io,
            s.rows_out,
            s.positions_matched,
            s.decompressed_fetch,
            s.code_path_ops,
            s.builds,
            s.build_reuses,
            s.zone_skips,
        )
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_session_shims_match_run() {
        use crate::ops::join::JoinSpec;
        // A store with a scan table and a fact/dim pair, so both shims
        // are exercised.
        let store = Store::in_memory();
        let n = 4000i64;
        let k: Vec<Value> = (0..n).collect();
        let v: Vec<Value> = (0..n).map(|i| (i * 7919) % 101).collect();
        let spec = ProjectionSpec::new("fact")
            .column("k", EncodingKind::Plain, SortOrder::Primary)
            .column("v", EncodingKind::Plain, SortOrder::None)
            .column("fk", EncodingKind::Plain, SortOrder::None);
        let fk: Vec<Value> = (0..n).map(|i| (i * 31) % 128).collect();
        store.load_projection(&spec, &[&k, &v, &fk]).unwrap();
        let dk: Vec<Value> = (0..128).collect();
        let x: Vec<Value> = (0..128).map(|i| i * 3 + 1).collect();
        let spec = ProjectionSpec::new("dim")
            .column("dk", EncodingKind::Plain, SortOrder::Primary)
            .column("x", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&dk, &x]).unwrap();
        let fact = store.projection_by_name("fact").unwrap().id;
        let dim = store.projection_by_name("dim").unwrap().id;
        let server = Server::new(store, ServerConfig::default());
        let session = server.connect();
        let scan = QuerySpec::select(fact, vec![0, 1]).filter(1, Predicate::lt(40));
        let tree = JoinTreeSpec::new(vec![JoinSpec {
            left: fact,
            right: dim,
            left_key: 2,
            right_key: 0,
            left_filter: Some((1, Predicate::lt(60))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        }]);

        // Each path cold, so the per-query I/O must agree exactly too.
        server.store().cold_reset();
        let (rows_dep, stats_dep) = session.run_scan(&scan).unwrap();
        server.store().cold_reset();
        let out = session.run(&Request::Select(scan.clone())).unwrap();
        assert_eq!(rows_dep, out.rows, "deprecated scan shim drifted");
        assert_eq!(
            deterministic_stats(&stats_dep),
            deterministic_stats(&out.stats)
        );

        server.store().cold_reset();
        let (rows_dep, stats_dep) = session.run_join_tree(&tree).unwrap();
        server.store().cold_reset();
        let out = session.run(&Request::JoinTree(tree.clone())).unwrap();
        assert_eq!(rows_dep, out.rows, "deprecated join-tree shim drifted");
        assert_eq!(
            deterministic_stats(&stats_dep),
            deterministic_stats(&out.stats)
        );
        let stats = server.stats();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.active, 0, "every slot handed back");
    }

    #[test]
    fn admission_ranks_reuse_freed_slots() {
        let server = Server::new(
            served_store(),
            ServerConfig {
                max_concurrent: 8,
                worker_budget: 7,
            },
        );
        let first = server.admit(); // slot 0, alone: whole budget
        assert_eq!(first.share, 7);
        let second = server.admit(); // slot 1 of 2: 7/2 = 3, no remainder
        assert_eq!(second.share, 3);
        drop(first);
        // Slot 0 is free again; the next admission takes it and, as the
        // senior of two active queries, gets the remainder thread.
        let third = server.admit();
        assert_eq!(third.slot, 0);
        assert_eq!(third.share, 4);
        drop(second);
        drop(third);
        assert_eq!(server.stats().completed, 3);
    }
}
