//! The query service: N concurrent sessions over one shared store.
//!
//! PRs 2–5 built a single-query engine — one `Database`, one hand-built
//! spec, one execution at a time. This module is the step to a *served*
//! system: a [`Server`] owns the shared substrate (sharded buffer pool,
//! I/O meter, planner) and admits queries from any number of
//! [`Session`]s onto it, with three properties the concurrency battery
//! (`tests/concurrent_diff.rs`) proves:
//!
//! * **Admission control** — at most [`ServerConfig::max_concurrent`]
//!   queries execute at once; excess callers block (a condvar queue),
//!   bounding memory and thread fan-out no matter how many sessions
//!   exist.
//! * **Fair span scheduling** — the server's
//!   [`ServerConfig::worker_budget`] threads are split evenly over the
//!   queries active at admission time (`max(1, budget / active)`).
//!   Because every operator is byte-identical at any worker count, the
//!   share is pure scheduling: it decides wall time, never results.
//! * **Per-query isolation** — each query's [`ExecStats`] /
//!   [`JoinTreeStats`] (rows, positions, cold `block_reads`) are its own,
//!   harvested per thread ([`matstrat_storage::IoSink`]); the buffer
//!   pool's global [`matstrat_storage::PoolStats`] ledger stays exact
//!   because the service never touches the pool's counters or striping —
//!   those belong to the store owner.
//!
//! Plans are priced at the **full worker budget**, not the fair share:
//! planning must be deterministic for a given store, or an interleaved
//! run could pick different strategies than a serial one and legitimately
//! read different blocks. Execution parallelism is where the share
//! lands — there, any value returns the same bytes.
//!
//! The text front-end lives in `matstrat-lang` (which depends on this
//! crate); `examples/query_service.rs` wires the two together.

use std::sync::{Arc, Condvar, Mutex};

use matstrat_common::Result;
use matstrat_model::Constants;
use matstrat_storage::Store;

use crate::exec::{default_parallelism, execute_with_options, ExecOptions};
use crate::ops::join_tree::hash_join_tree_with_options;
use crate::planner::Planner;
use crate::query::{ExecStats, JoinTreeSpec, JoinTreeStats, QueryResult, QuerySpec};

/// Admission knobs for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Queries allowed to execute simultaneously; further submissions
    /// block until a slot frees (clamped to ≥ 1).
    pub max_concurrent: usize,
    /// Total executor worker threads shared by the active queries; each
    /// query gets `max(1, worker_budget / active)` at admission
    /// (clamped to ≥ 1).
    pub worker_budget: usize,
}

impl Default for ServerConfig {
    /// Four concurrent queries sharing the `MATSTRAT_THREADS` worker
    /// default.
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: 4,
            worker_budget: default_parallelism(),
        }
    }
}

/// Cumulative admission counters (exact: every transition happens under
/// the gate lock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries admitted so far.
    pub admitted: u64,
    /// Queries finished (successfully or not).
    pub completed: u64,
    /// Most queries ever active at once (≤ `max_concurrent`).
    pub peak_active: usize,
    /// Most queries ever blocked waiting for a slot at once.
    pub peak_queued: usize,
}

#[derive(Default)]
struct GateState {
    active: usize,
    queued: usize,
    stats: ServerStats,
}

/// The shared query service: one store, one planner, one admission gate.
/// Create sessions with [`Server::connect`]; all of them execute against
/// the same buffer pool and worker budget.
pub struct Server {
    store: Store,
    planner: Planner,
    cfg: ServerConfig,
    gate: Mutex<GateState>,
    cv: Condvar,
}

impl Server {
    /// Serve `store` under `cfg`. Pool striping stays whatever the store
    /// owner set (`BufferPool::reshard*` — see `Database::set_parallelism`
    /// for the grow-only idiom): it is a throughput knob, never a
    /// correctness one, and the concurrency battery pins results across
    /// shard counts.
    pub fn new(store: Store, cfg: ServerConfig) -> Arc<Server> {
        let cfg = ServerConfig {
            max_concurrent: cfg.max_concurrent.max(1),
            worker_budget: cfg.worker_budget.max(1),
        };
        Arc::new(Server {
            store,
            // Deterministic planning: priced at the full budget (see the
            // module docs), never at a transient fair share.
            planner: Planner::with_parallelism(Constants::host_defaults(), cfg.worker_budget),
            cfg,
            gate: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        })
    }

    /// An in-memory server with the given knobs.
    pub fn in_memory(cfg: ServerConfig) -> Arc<Server> {
        Server::new(Store::in_memory(), cfg)
    }

    /// Open a session. Sessions are cheap handles; drop them freely.
    pub fn connect(self: &Arc<Server>) -> Session {
        Session {
            server: Arc::clone(self),
        }
    }

    /// The shared store (catalog, buffer pool, meter).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The admission knobs the server runs with.
    pub fn config(&self) -> ServerConfig {
        self.cfg
    }

    /// Snapshot the admission counters.
    pub fn stats(&self) -> ServerStats {
        self.gate.lock().expect("gate poisoned").stats
    }

    /// Block until a slot frees, then return this query's fair worker
    /// share. The share is computed from the active count *including*
    /// this query, under the same lock that admitted it.
    fn admit(&self) -> AdmitGuard<'_> {
        let mut g = self.gate.lock().expect("gate poisoned");
        g.queued += 1;
        g.stats.peak_queued = g.stats.peak_queued.max(g.queued);
        while g.active >= self.cfg.max_concurrent {
            g = self.cv.wait(g).expect("gate poisoned");
        }
        g.queued -= 1;
        g.active += 1;
        g.stats.admitted += 1;
        g.stats.peak_active = g.stats.peak_active.max(g.active);
        let share = (self.cfg.worker_budget / g.active).max(1);
        drop(g);
        AdmitGuard {
            server: self,
            share,
        }
    }
}

/// Releases the admission slot on drop — error paths included.
struct AdmitGuard<'a> {
    server: &'a Server,
    share: usize,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.server.gate.lock().expect("gate poisoned");
        g.active -= 1;
        g.stats.completed += 1;
        drop(g);
        self.server.cv.notify_all();
    }
}

/// One query, in either of the shapes the engine plans: a (possibly
/// aggregated) scan, or a left-deep join tree. `matstrat-lang` compiles
/// query text into exactly this enum's payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `SELECT ... FROM t WHERE ... [GROUP BY ...]`
    Scan(QuerySpec),
    /// `SELECT ... FROM base JOIN ... [WHERE base pred]`
    JoinTree(JoinTreeSpec),
}

/// A finished query: the result plus the shape-specific measurements.
/// Both stats carry this query's own cold `block_reads` (per-thread
/// harvest), exact under concurrency.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A scan's result and measurements.
    Scan(QueryResult, ExecStats),
    /// A join tree's result and measurements.
    JoinTree(QueryResult, JoinTreeStats),
}

impl Reply {
    /// The materialized result, whatever the request shape.
    pub fn result(&self) -> &QueryResult {
        match self {
            Reply::Scan(r, _) => r,
            Reply::JoinTree(r, _) => r,
        }
    }

    /// This query's simulated-disk block reads.
    pub fn block_reads(&self) -> u64 {
        match self {
            Reply::Scan(_, s) => s.io.block_reads,
            Reply::JoinTree(_, s) => s.io.block_reads,
        }
    }
}

/// A client handle on a [`Server`]. `run` blocks while the server is at
/// its concurrency bound; use one session per client thread.
pub struct Session {
    server: Arc<Server>,
}

impl Session {
    /// The server this session talks to.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// EXPLAIN: plan the request (at the full worker budget, like `run`)
    /// and describe the choice without executing or taking a slot.
    pub fn explain(&self, req: &Request) -> Result<String> {
        let srv = &self.server;
        match req {
            Request::Scan(q) => Ok(srv.planner.choose(&srv.store, q)?.describe()),
            Request::JoinTree(t) => Ok(srv.planner.choose_join_tree(&srv.store, t)?.describe()),
        }
    }

    /// Plan and execute one request under admission control.
    pub fn run(&self, req: &Request) -> Result<Reply> {
        match req {
            Request::Scan(q) => {
                let (r, s) = self.run_scan(q)?;
                Ok(Reply::Scan(r, s))
            }
            Request::JoinTree(t) => {
                let (r, s) = self.run_join_tree(t)?;
                Ok(Reply::JoinTree(r, s))
            }
        }
    }

    /// Plan (at the full budget) and run a scan (at the fair share).
    pub fn run_scan(&self, q: &QuerySpec) -> Result<(QueryResult, ExecStats)> {
        let srv = &self.server;
        let choice = srv.planner.choose(&srv.store, q)?;
        let permit = srv.admit();
        let opts = ExecOptions::with_parallelism(permit.share);
        execute_with_options(&srv.store, q, choice.strategy, &opts)
    }

    /// Plan (at the full budget) and run a join tree (at the fair share).
    pub fn run_join_tree(&self, spec: &JoinTreeSpec) -> Result<(QueryResult, JoinTreeStats)> {
        let srv = &self.server;
        let choice = srv.planner.choose_join_tree(&srv.store, spec)?;
        let permit = srv.admit();
        let opts = ExecOptions::with_parallelism(permit.share);
        hash_join_tree_with_options(&srv.store, spec, &choice.plan(), &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::{Predicate, Value};
    use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};

    fn served_store() -> Store {
        let store = Store::in_memory();
        let a: Vec<Value> = (0..3000).map(|i| i / 300).collect();
        let b: Vec<Value> = (0..3000).map(|i| i % 7).collect();
        let spec = ProjectionSpec::new("t")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None);
        store.load_projection(&spec, &[&a, &b]).unwrap();
        store
    }

    #[test]
    fn sessions_share_one_store_and_results_match_the_database_path() {
        let store = served_store();
        let t = store.projection_by_name("t").unwrap().id;
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(3));
        let oracle = crate::Database::with_store(store.clone())
            .run(&q, crate::Strategy::LmParallel)
            .unwrap();

        let server = Server::new(store, ServerConfig::default());
        let s1 = server.connect();
        let s2 = server.connect();
        let plan = s1.explain(&Request::Scan(q.clone())).unwrap();
        assert!(plan.starts_with("scan via "), "explain text: {plan}");
        let r1 = s1.run(&Request::Scan(q.clone())).unwrap();
        let r2 = s2.run(&Request::Scan(q)).unwrap();
        assert_eq!(r1.result().flat(), oracle.flat());
        assert_eq!(r2.result().flat(), oracle.flat());
        let stats = server.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn admission_gate_bounds_active_queries_and_counts_peaks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let server = Server::new(
            served_store(),
            ServerConfig {
                max_concurrent: 2,
                worker_budget: 4,
            },
        );
        let t = server.store().projection_by_name("t").unwrap().id;
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::ge(0));
        let in_flight = AtomicUsize::new(0);
        let over_bound = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let server = &server;
                let q = &q;
                let in_flight = &in_flight;
                let over_bound = &over_bound;
                s.spawn(move || {
                    let session = server.connect();
                    // The gate admits before execution; sample the
                    // active count from inside a running query.
                    let _ = session.run(&Request::Scan(q.clone())).unwrap();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    if now > 2 {
                        over_bound.fetch_add(1, Ordering::SeqCst);
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        let stats = server.stats();
        assert_eq!(stats.admitted, 6);
        assert_eq!(stats.completed, 6);
        assert!(stats.peak_active <= 2, "admission bound held");
        assert!(stats.peak_active >= 1);
    }

    #[test]
    fn fair_share_never_exceeds_budget_or_drops_below_one() {
        // Budget 4 split across up to 8 active queries: the share is
        // computed under the gate lock, so active ∈ [1, max_concurrent]
        // and share ∈ [1, budget].
        let server = Server::new(
            served_store(),
            ServerConfig {
                max_concurrent: 8,
                worker_budget: 4,
            },
        );
        let permit = server.admit();
        assert_eq!(permit.share, 4, "sole query gets the whole budget");
        let second = server.admit();
        assert_eq!(second.share, 2, "two active: half each");
        drop(permit);
        drop(second);
        let zero_knobs = Server::in_memory(ServerConfig {
            max_concurrent: 0,
            worker_budget: 0,
        });
        assert_eq!(zero_knobs.config().max_concurrent, 1, "clamped");
        assert_eq!(zero_knobs.config().worker_budget, 1, "clamped");
        let permit = zero_knobs.admit();
        assert_eq!(permit.share, 1);
    }
}
