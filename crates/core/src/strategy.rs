//! The four materialization strategies.

use std::fmt;

use matstrat_model::plans::PlanKind;

/// When and how tuples are constructed (§3.5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Early materialization, pipelined: a DS2 leaf produces
    /// (position, value) tuples; each later column is added by a DS4
    /// operator that jumps to the surviving positions.
    EmPipelined,
    /// Early materialization, parallel: an SPC leaf scans all needed
    /// columns together and constructs full tuples immediately.
    EmParallel,
    /// Late materialization, pipelined: a DS1 leaf produces positions;
    /// each later column is fetched (DS3) only at surviving positions and
    /// filtered; values are stitched at the top.
    LmPipelined,
    /// Late materialization, parallel: DS1 on every predicate column,
    /// positional AND, then DS3 fetches and a final MERGE.
    LmParallel,
}

impl Strategy {
    /// All four strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::EmPipelined,
        Strategy::EmParallel,
        Strategy::LmPipelined,
        Strategy::LmParallel,
    ];

    /// Whether this is a late-materialization strategy.
    pub fn is_late(self) -> bool {
        matches!(self, Strategy::LmPipelined | Strategy::LmParallel)
    }

    /// The cost-model plan this strategy corresponds to.
    pub fn plan_kind(self) -> PlanKind {
        match self {
            Strategy::EmPipelined => PlanKind::EmPipelined,
            Strategy::EmParallel => PlanKind::EmParallel,
            Strategy::LmPipelined => PlanKind::LmPipelined,
            Strategy::LmParallel => PlanKind::LmParallel,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        self.plan_kind().name()
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_flags() {
        assert!(Strategy::LmParallel.is_late());
        assert!(Strategy::LmPipelined.is_late());
        assert!(!Strategy::EmParallel.is_late());
        assert!(!Strategy::EmPipelined.is_late());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Strategy::EmPipelined.to_string(), "EM-pipelined");
        assert_eq!(Strategy::LmParallel.to_string(), "LM-parallel");
    }

    #[test]
    fn plan_kind_mapping_is_bijective() {
        use std::collections::HashSet;
        let kinds: HashSet<_> = Strategy::ALL.iter().map(|s| s.plan_kind()).collect();
        assert_eq!(kinds.len(), 4);
    }
}
