//! Model-driven strategy selection — the paper's §6 conclusion put to
//! work: *"Using an analytical model to predict query performance can
//! facilitate materialization strategy decision-making."*
//!
//! The planner derives the model's parameters from catalog statistics
//! (block counts, row counts, run lengths, min/max for selectivity) and
//! asks [`CostModel`] for the cheapest plan. Queries that do not match
//! the modeled two-predicate shape fall back to the paper's heuristic:
//! aggregation, selective output, or light-weight compression → late
//! materialization; otherwise early materialization.

use matstrat_common::{Result, Value};
use matstrat_model::plans::{BushyReduction, JoinTreeCost, JoinTreeEdgeParams, QueryParams};
use matstrat_model::{ColumnParams, Constants, CostBreakdown, CostModel, JoinParams};
use matstrat_storage::{ColumnInfo, EncodingKind, ProjectionInfo, SortOrder, Store};

use crate::ops::join::{InnerStrategy, JoinSpec};
use crate::ops::join_tree::JoinTreePlan;
use crate::pipeline::FragmentPipeline;
use crate::query::{JoinKeySource, JoinTreeSpec, QuerySpec};
use crate::strategy::Strategy;

/// Why the planner picked what it picked.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Model estimate for the chosen plan, when the model was used.
    pub estimate: Option<CostBreakdown>,
    /// Estimates for every strategy the model could price.
    pub alternatives: Vec<(Strategy, CostBreakdown)>,
    /// Human-readable reasoning.
    pub reason: String,
}

/// The planner's pick of an inner-table representation for a hash join.
#[derive(Debug, Clone)]
pub struct JoinChoice {
    /// The chosen inner-table strategy.
    pub inner: InnerStrategy,
    /// Model estimate for the chosen plan at the effective worker count.
    pub estimate: CostBreakdown,
    /// Estimates for all three representations.
    pub alternatives: Vec<(InnerStrategy, CostBreakdown)>,
    /// Human-readable reasoning.
    pub reason: String,
}

/// The planner's pick for a whole join tree: an execution order plus one
/// inner-table strategy per edge, with every candidate it rejected.
#[derive(Debug, Clone)]
pub struct JoinTreeChoice {
    /// Chosen execution order (indices into `spec.edges`).
    pub order: Vec<usize>,
    /// Chosen inner-table strategy per edge, indexed by **spec**
    /// position.
    pub inners: Vec<InnerStrategy>,
    /// Chosen bushy flag per edge, indexed by **spec** position (empty
    /// means a pure left-deep plan). A bushy snowflake edge's subtree is
    /// built first and semi-join-reduces its parent's hash table.
    pub bushy: Vec<bool>,
    /// Total estimate of the chosen plan.
    pub estimate: CostBreakdown,
    /// The chosen plan's per-edge costs and chained cardinality
    /// estimates (execution order), from [`CostModel::join_tree`].
    pub tree: JoinTreeCost,
    /// For each execution slot of the chosen order: all three
    /// representations priced, the rejected ones included.
    pub edge_alternatives: Vec<Vec<(InnerStrategy, CostBreakdown)>>,
    /// Every execution order evaluated (each with its per-edge-best
    /// strategies) and its total estimate — the chosen order included.
    pub candidates: Vec<(Vec<usize>, f64)>,
    /// Human-readable reasoning.
    pub reason: String,
}

impl PlanChoice {
    /// One-line EXPLAIN-style summary: the pick plus the reasoning.
    pub fn describe(&self) -> String {
        format!("scan via {}: {}", self.strategy, self.reason)
    }
}

impl JoinChoice {
    /// One-line EXPLAIN-style summary: the pick plus the reasoning.
    pub fn describe(&self) -> String {
        format!("hash join via {}: {}", self.inner.name(), self.reason)
    }
}

impl JoinTreeChoice {
    /// One-line EXPLAIN-style summary: order, inner strategies, reasoning.
    pub fn describe(&self) -> String {
        format!(
            "join tree, order {:?}, inners {:?}: {}",
            self.order, self.inners, self.reason
        )
    }

    /// The executable plan this choice describes.
    pub fn plan(&self) -> JoinTreePlan {
        JoinTreePlan {
            order: self.order.clone(),
            inners: self.inners.clone(),
            bushy: self.bushy.clone(),
            reuse_builds: true,
        }
    }
}

/// Edge-order enumeration switches from exhaustive to greedy above this
/// many edges (4! = 24 orders × 3 representations per edge stays cheap;
/// 7! would not).
const EXHAUSTIVE_ORDER_EDGES: usize = 4;

/// The strategy chooser.
#[derive(Debug, Clone)]
pub struct Planner {
    model: CostModel,
    /// Worker threads the executor will use; the model divides CPU terms
    /// by this so `choose()` prices plans as they will actually run.
    parallelism: usize,
}

impl Planner {
    /// Planner with the given model constants, pricing serial execution.
    pub fn new(constants: Constants) -> Planner {
        Planner::with_parallelism(constants, 1)
    }

    /// Planner pricing execution on `workers` granule-parallel threads.
    pub fn with_parallelism(constants: Constants, workers: usize) -> Planner {
        Planner {
            model: CostModel::new(constants),
            parallelism: workers.max(1),
        }
    }

    /// The worker count the planner prices against.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Pick a strategy for `q`.
    pub fn choose(&self, store: &Store, q: &QuerySpec) -> Result<PlanChoice> {
        let proj = store.projection(q.table)?;
        if q.filters.len() == 2 {
            self.choose_modeled(store, &proj, q)
        } else {
            Ok(self.choose_heuristic(&proj, q))
        }
    }

    /// Serial CPU surcharge for merging `table`'s in-memory delta rows
    /// into a query: the delta pass is row-oriented and runs on one
    /// thread after the span fragments, so it is priced at `fc` (the
    /// model's per-tuple function-call cost) per live insert row — for
    /// **every** strategy, since the pass is strategy-independent. The
    /// term never flips a single-table strategy choice (it is a constant
    /// across alternatives) but keeps reported totals honest as the
    /// delta fraction grows and compaction lag becomes visible in plans.
    fn delta_merge_cpu_us(&self, store: &Store, table: matstrat_common::TableId) -> f64 {
        match store.scan_snapshot(table) {
            Ok((_, Some(d))) => {
                let dead_inserts = (d.deletes.len() - d.base_deletes().len()) as f64;
                let live_inserts = d.inserts.len() as f64 - dead_inserts;
                live_inserts * self.model.constants().fc
            }
            _ => 0.0,
        }
    }

    /// Pick an inner-table representation for `spec`, priced at the
    /// worker counts the join executor will actually use: the probe side
    /// spans the **left** table's granules and the partitioned build
    /// spans the **right** table's, so the pipeline's skew guard is
    /// applied to each row count separately — probe CPU divides by the
    /// probe's effective count, build CPU by the build's, and the shared
    /// I/O by neither. The partitioning pass and the work-stealing
    /// scheduler's bookkeeping are priced on top
    /// (`CostModel::hash_join_parallel`).
    pub fn choose_join(&self, store: &Store, spec: &JoinSpec) -> Result<JoinChoice> {
        let params = self.join_params(store, spec)?;
        let left_rows = store.projection(spec.left)?.num_rows;
        let right_rows = store.projection(spec.right)?.num_rows;
        let probe_workers =
            FragmentPipeline::effective_workers(left_rows, crate::GRANULE, self.parallelism);
        let build_workers =
            FragmentPipeline::effective_workers(right_rows, crate::GRANULE, self.parallelism);
        // The left delta probes serially after the fragments; right
        // delta keys append to the build. Both are strategy-independent.
        let delta_cpu =
            self.delta_merge_cpu_us(store, spec.left) + self.delta_merge_cpu_us(store, spec.right);
        let alternatives: Vec<(InnerStrategy, CostBreakdown)> = InnerStrategy::ALL
            .iter()
            .map(|&s| {
                let mut cost = self.model.hash_join_parallel(
                    &params,
                    s.plan_kind(),
                    build_workers,
                    probe_workers,
                );
                cost.cpu_us += delta_cpu;
                (s, cost)
            })
            .collect();
        let &(inner, estimate) = alternatives
            .iter()
            .min_by(|a, b| a.1.total_us().total_cmp(&b.1.total_us()))
            .expect("three join plans always estimable");
        let mut workers = String::new();
        if probe_workers > 1 {
            workers.push_str(&format!(", {probe_workers} probe workers"));
        }
        if build_workers > 1 {
            workers.push_str(&format!(", {build_workers} build workers"));
        }
        let code_note = if params.code_keyed {
            ", code-keyed (shared-dict keys hashed without decoding)"
        } else {
            ""
        };
        Ok(JoinChoice {
            inner,
            estimate,
            alternatives,
            reason: format!(
                "analytical model: {} predicted {:.2} ms (cpu {:.2} + io {:.2}{workers}){code_note}",
                inner.name(),
                estimate.total_ms(),
                estimate.cpu_us / 1000.0,
                estimate.io_us / 1000.0
            ),
        })
    }

    /// Pick an execution order **and** a per-edge inner-table strategy
    /// for a join tree, priced with [`CostModel::join_tree`]'s chained
    /// intermediate cardinalities and build-reuse discounts.
    ///
    /// A single-edge tree delegates to [`Planner::choose_join`] — the
    /// two entry points must never disagree on a plain join — and wraps
    /// its choice. For multi-edge trees every dependency-respecting
    /// order is enumerated exhaustively up to 4 edges; larger trees are
    /// planned greedily (smallest estimated cardinality multiplier
    /// first), with the spec order always among the candidates. Within
    /// an order, each edge's representation is chosen independently —
    /// an edge's strategy affects its own cost but never the chained
    /// cardinality, so per-edge minimization is globally optimal for
    /// that order.
    pub fn choose_join_tree(&self, store: &Store, spec: &JoinTreeSpec) -> Result<JoinTreeChoice> {
        spec.validate()?;
        if spec.edges.len() == 1 {
            let single = self.choose_join(store, &spec.edges[0])?;
            return Ok(Self::wrap_single_edge(single));
        }
        let probe_workers = FragmentPipeline::effective_workers(
            store.projection(spec.base())?.num_rows,
            crate::GRANULE,
            self.parallelism,
        );

        // (order, per-edge inners, bushy flags, total cost)
        type BestPlan = (Vec<usize>, Vec<InnerStrategy>, Vec<bool>, f64);
        let mut best: Option<BestPlan> = None;
        let mut candidates: Vec<(Vec<usize>, f64)> = Vec::new();
        for order in self.candidate_orders(store, spec)? {
            let (inners, bushy, total) = self.price_order(store, spec, &order, probe_workers)?;
            candidates.push((order.clone(), total));
            if best.as_ref().is_none_or(|(_, _, _, t)| total < *t) {
                best = Some((order, inners, bushy, total));
            }
        }
        let (order, inners, bushy, _) = best.expect("at least the spec order is a candidate");

        // Authoritative estimate of the winner via the model's composer,
        // plus the per-slot alternatives the choice rejected.
        let mut edge_params = self.tree_edge_params(store, spec, &order, probe_workers)?;
        let reductions = Self::bushy_setup(spec, &order, &mut edge_params, &bushy);
        let mut tree = self.model.join_tree_bushy(
            &edge_params
                .iter()
                .zip(&order)
                .map(|(p, &ei)| JoinTreeEdgeParams {
                    kind: inners[ei].plan_kind(),
                    ..*p
                })
                .collect::<Vec<_>>(),
            &reductions,
        );
        // Delta-merge surcharge: base inserts probe serially after the
        // fragments, each inner table's inserts append to its build.
        // Order-invariant (the same tables participate in every order),
        // so it is added to the winner's total rather than per candidate.
        tree.total.cpu_us += self.delta_merge_cpu_us(store, spec.base())
            + spec
                .edges
                .iter()
                .map(|e| self.delta_merge_cpu_us(store, e.right))
                .sum::<f64>();
        let mut edge_alternatives = Vec::with_capacity(order.len());
        for (slot, p) in edge_params.iter().enumerate() {
            let mut chained = *p;
            chained.params.left_key.rows = if slot == 0 {
                p.params.left_rows()
            } else {
                tree.cards[slot - 1]
            };
            for r in reductions.iter().filter(|r| r.parent_slot == slot) {
                chained.params.match_rate *= r.keep_rate.clamp(0.0, 1.0);
            }
            edge_alternatives.push(
                InnerStrategy::ALL
                    .iter()
                    .map(|&s| {
                        (
                            s,
                            self.model.hash_join_parallel_with_reuse(
                                &chained.params,
                                s.plan_kind(),
                                chained.build_workers,
                                chained.probe_workers,
                                chained.build_reused,
                            ),
                        )
                    })
                    .collect::<Vec<_>>(),
            );
        }
        let estimate = tree.total;
        let reused = edge_params.iter().filter(|p| p.build_reused).count();
        let reuse_note = if reused > 0 {
            format!(
                ", {reused} build reuse{}",
                if reused > 1 { "s" } else { "" }
            )
        } else {
            String::new()
        };
        let code_edges = edge_params.iter().filter(|p| p.params.code_keyed).count();
        let code_note = if code_edges > 0 {
            format!(
                ", {code_edges} code-keyed edge{}",
                if code_edges > 1 { "s" } else { "" }
            )
        } else {
            String::new()
        };
        let bushy_edges = bushy.iter().filter(|b| **b).count();
        let bushy_note = if bushy_edges > 0 {
            format!(
                ", {bushy_edges} bushy edge{} (semi-join reduced)",
                if bushy_edges > 1 { "s" } else { "" }
            )
        } else {
            String::new()
        };
        let reason = format!(
            "analytical model over {} orders: [{}] with [{}] predicted {:.2} ms \
             (cpu {:.2} + io {:.2}, ~{:.0} rows out{reuse_note}{code_note}{bushy_note})",
            candidates.len(),
            order
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(" → "),
            order
                .iter()
                .map(|&e| inners[e].name())
                .collect::<Vec<_>>()
                .join(", "),
            estimate.total_ms(),
            estimate.cpu_us / 1000.0,
            estimate.io_us / 1000.0,
            tree.out_rows(),
        );
        Ok(JoinTreeChoice {
            order,
            inners,
            bushy,
            estimate,
            tree,
            edge_alternatives,
            candidates,
            reason,
        })
    }

    /// Wrap a single join's [`JoinChoice`] as a one-edge tree choice —
    /// the delegation that keeps `choose_join_tree` and `choose_join`
    /// in exact agreement on plain joins.
    fn wrap_single_edge(single: JoinChoice) -> JoinTreeChoice {
        JoinTreeChoice {
            order: vec![0],
            inners: vec![single.inner],
            bushy: Vec::new(),
            estimate: single.estimate,
            tree: JoinTreeCost {
                edges: vec![(single.inner.plan_kind(), single.estimate)],
                cards: Vec::new(),
                total: single.estimate,
            },
            edge_alternatives: vec![single.alternatives.clone()],
            candidates: vec![(vec![0], single.estimate.total_us())],
            reason: format!("single edge, delegated to choose_join: {}", single.reason),
        }
    }

    /// Every execution order worth pricing: all dependency-respecting
    /// permutations for small trees, or spec order plus a greedy
    /// smallest-multiplier-first order for large ones.
    fn candidate_orders(&self, store: &Store, spec: &JoinTreeSpec) -> Result<Vec<Vec<usize>>> {
        let n = spec.edges.len();
        if n <= EXHAUSTIVE_ORDER_EDGES {
            let mut orders = Vec::new();
            let mut current = Vec::with_capacity(n);
            let mut placed = vec![false; n];
            Self::permute_orders(spec, &mut current, &mut placed, &mut orders)?;
            return Ok(orders);
        }
        // Greedy: repeatedly run the edge that shrinks (or grows) the
        // intermediate least — the standard smallest-intermediate
        // heuristic — among the dependency-eligible ones.
        let mut multipliers = Vec::with_capacity(n);
        for ei in 0..n {
            let p = self.tree_edge_raw_params(store, spec, ei)?;
            multipliers.push(p.match_rate * p.fanout);
        }
        let mut greedy = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        while greedy.len() < n {
            let next = (0..n)
                .filter(|&e| !placed[e] && Self::deps_placed(spec, e, &placed))
                .min_by(|&a, &b| multipliers[a].total_cmp(&multipliers[b]))
                .expect("spec order is dependency-valid, so some edge is eligible");
            placed[next] = true;
            greedy.push(next);
        }
        let spec_order: Vec<usize> = (0..n).collect();
        if greedy == spec_order {
            Ok(vec![spec_order])
        } else {
            Ok(vec![spec_order, greedy])
        }
    }

    fn deps_placed(spec: &JoinTreeSpec, edge: usize, placed: &[bool]) -> bool {
        match spec.key_source(edge) {
            Ok(JoinKeySource::Edge(j)) => placed[j],
            _ => true,
        }
    }

    fn permute_orders(
        spec: &JoinTreeSpec,
        current: &mut Vec<usize>,
        placed: &mut [bool],
        out: &mut Vec<Vec<usize>>,
    ) -> Result<()> {
        let n = spec.edges.len();
        if current.len() == n {
            out.push(current.clone());
            return Ok(());
        }
        for e in 0..n {
            if !placed[e] && Self::deps_placed(spec, e, placed) {
                placed[e] = true;
                current.push(e);
                Self::permute_orders(spec, current, placed, out)?;
                current.pop();
                placed[e] = false;
            }
        }
        Ok(())
    }

    /// Price one execution order: chained cardinalities via the model's
    /// composer, with each edge's representation chosen independently
    /// (kind never feeds back into the cardinality chain). For each
    /// order, every subset of the snowflake edges is additionally tried
    /// **bushy** — the subset with the lowest total wins, with ties going
    /// to fewer bushy edges (the reduction is never free, so a useless
    /// one strictly loses).
    fn price_order(
        &self,
        store: &Store,
        spec: &JoinTreeSpec,
        order: &[usize],
        probe_workers: usize,
    ) -> Result<(Vec<InnerStrategy>, Vec<bool>, f64)> {
        let base_params = self.tree_edge_params(store, spec, order, probe_workers)?;
        let snowflake: Vec<usize> = (0..spec.edges.len())
            .filter(|&ei| matches!(spec.key_source(ei), Ok(JoinKeySource::Edge(_))))
            .collect();
        // 2^k configurations; beyond the exhaustive cap only the
        // left-deep plan and single-edge reductions are tried.
        let exhaustive = snowflake.len() <= EXHAUSTIVE_ORDER_EDGES;
        let configs: Vec<u32> = if exhaustive {
            (0..(1u32 << snowflake.len())).collect()
        } else {
            std::iter::once(0)
                .chain((0..snowflake.len() as u32).map(|b| 1 << b))
                .collect()
        };
        let mut best: Option<(Vec<InnerStrategy>, Vec<bool>, f64)> = None;
        for mask in configs {
            let bushy: Vec<bool> = if mask == 0 {
                Vec::new()
            } else {
                let mut v = vec![false; spec.edges.len()];
                for (bit, &ei) in snowflake.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        v[ei] = true;
                    }
                }
                v
            };
            let mut edge_params = base_params.clone();
            let reductions = Self::bushy_setup(spec, order, &mut edge_params, &bushy);
            // Cards are kind-independent: compose once at any kind.
            let priced = self.model.join_tree_bushy(&edge_params, &reductions);
            let mut inners = vec![InnerStrategy::MultiColumn; spec.edges.len()];
            let mut total = 0.0;
            for (slot, p) in edge_params.iter().enumerate() {
                let mut chained = p.params;
                if slot > 0 {
                    chained.left_key.rows = priced.cards[slot - 1];
                }
                for r in reductions.iter().filter(|r| r.parent_slot == slot) {
                    chained.match_rate *= r.keep_rate.clamp(0.0, 1.0);
                }
                let (kind, cost) = InnerStrategy::ALL
                    .iter()
                    .map(|&s| {
                        (
                            s,
                            self.model.hash_join_parallel_with_reuse(
                                &chained,
                                s.plan_kind(),
                                p.build_workers,
                                p.probe_workers,
                                p.build_reused,
                            ),
                        )
                    })
                    .min_by(|a, b| a.1.total_us().total_cmp(&b.1.total_us()))
                    .expect("three join plans always estimable");
                inners[order[slot]] = kind;
                total += cost.total_us();
            }
            // The reduction's build-time scan is kind-independent.
            for r in &reductions {
                total += r.scan_rows * self.model.constants().fc
                    / edge_params[r.parent_slot].build_workers.max(1) as f64;
            }
            if best.as_ref().is_none_or(|(_, _, t)| total < *t) {
                best = Some((inners, bushy, total));
            }
        }
        Ok(best.expect("the left-deep configuration is always priced"))
    }

    /// Fold `bushy` into priced edge params: each bushy child edge is
    /// re-rated at match rate 1.0 (every surviving parent row matches the
    /// reduced table by construction) and a [`BushyReduction`] carries
    /// its original match rate onto the parent's slot. Returns the
    /// reductions for [`CostModel::join_tree_bushy`].
    fn bushy_setup(
        spec: &JoinTreeSpec,
        order: &[usize],
        edge_params: &mut [JoinTreeEdgeParams],
        bushy: &[bool],
    ) -> Vec<BushyReduction> {
        let mut reductions = Vec::new();
        for (child_slot, &ei) in order.iter().enumerate() {
            if !bushy.get(ei).copied().unwrap_or(false) {
                continue;
            }
            let Ok(JoinKeySource::Edge(parent)) = spec.key_source(ei) else {
                continue;
            };
            let parent_slot = order
                .iter()
                .position(|&e| e == parent)
                .expect("validated order covers every edge");
            let keep_rate = edge_params[child_slot].params.match_rate;
            edge_params[child_slot].params.match_rate = 1.0;
            reductions.push(BushyReduction {
                parent_slot,
                keep_rate,
                scan_rows: edge_params[parent_slot].params.right_rows(),
            });
        }
        reductions
    }

    /// The model inputs for `order`, in execution order: per-edge
    /// [`JoinParams`] (left rows set for the first edge, chained by the
    /// model for the rest), skew-guarded worker counts, and build-reuse
    /// flags for repeated (inner table, key column) pairs.
    fn tree_edge_params(
        &self,
        store: &Store,
        spec: &JoinTreeSpec,
        order: &[usize],
        probe_workers: usize,
    ) -> Result<Vec<JoinTreeEdgeParams>> {
        let mut out = Vec::with_capacity(order.len());
        let mut built: Vec<(matstrat_common::TableId, usize)> = Vec::new();
        for (slot, &ei) in order.iter().enumerate() {
            let edge = &spec.edges[ei];
            let mut params = self.tree_edge_raw_params(store, spec, ei)?;
            if slot == 0 {
                // The base filter is applied once, before the first probe
                // of whatever edge executes first.
                params.sf = match &spec.edges[0].left_filter {
                    Some((col, pred)) => {
                        let base = store.projection(spec.base())?;
                        Self::selectivity(base.column(*col)?, pred)
                    }
                    None => 1.0,
                };
            }
            if slot + 1 == order.len() {
                // Base output values are fetched once, at the top of the
                // tree — price them on the last edge, whose output
                // cardinality is the tree's.
                let base = store.projection(spec.base())?;
                params.left_out_cols = spec.edges[0].left_output.len() as f64;
                params.left_out_blocks = {
                    let mut total = 0.0;
                    for &c in &spec.edges[0].left_output {
                        total += base.column(c)?.stats.num_blocks as f64;
                    }
                    total
                };
            }
            let right_rows = store.projection(edge.right)?.num_rows;
            let build_workers =
                FragmentPipeline::effective_workers(right_rows, crate::GRANULE, self.parallelism);
            let key = (edge.right, edge.right_key);
            let build_reused = built.contains(&key);
            built.push(key);
            out.push(JoinTreeEdgeParams {
                params,
                kind: matstrat_model::plans::JoinInnerKind::MultiColumn,
                build_workers,
                probe_workers,
                build_reused,
            });
        }
        Ok(out)
    }

    /// Order-independent [`JoinParams`] for one edge: key column shapes,
    /// match rate from the key domains' overlap, fan-out from the right
    /// key's duplication, and the edge's right outputs. `sf` and the
    /// base outputs are order-dependent and filled by
    /// [`Self::tree_edge_params`]; no filter selectivity enters here.
    fn tree_edge_raw_params(
        &self,
        store: &Store,
        spec: &JoinTreeSpec,
        ei: usize,
    ) -> Result<JoinParams> {
        let edge = &spec.edges[ei];
        let right = store.projection(edge.right)?;
        let rkey = right.column(edge.right_key)?;
        let (lkey_params, lkey) = match spec.key_source(ei)? {
            JoinKeySource::Base => {
                let base_id = spec.base();
                let base = store.projection(base_id)?;
                let col = base.column(edge.left_key)?;
                (
                    Self::column_params_for(store, base_id, edge.left_key, col),
                    col.clone(),
                )
            }
            JoinKeySource::Edge(j) => {
                let through = spec.edges[j].right;
                let proj = store.projection(through)?;
                let col = proj.column(edge.left_key)?;
                let mut p = Self::column_params_for(store, through, edge.left_key, col);
                // Snowflake keys indexed out of the through table's
                // *hash-key* decode cost no I/O — the executor reuses the
                // `SharedBuild::keys` it already holds. Keying on any
                // other column makes the executor fetch + decode that
                // column once at build time, so its blocks stay priced.
                if spec.edges[j].right_key == edge.left_key {
                    p.blocks = 0.0;
                }
                (p, col.clone())
            }
        };
        let code_eligible = matches!(spec.key_source(ei)?, JoinKeySource::Base)
            && Self::code_keyed_eligible(&lkey, rkey);
        let mut params = JoinParams::fk_join(
            lkey_params,
            Self::column_params_for(store, edge.right, edge.right_key, rkey),
            1.0,
        );
        params.code_keyed = code_eligible;
        // Fraction of probe keys inside the right domain, under
        // uniformity (see `join_params`).
        let lo = lkey.stats.min.max(rkey.stats.min) as f64;
        let hi = lkey.stats.max.min(rkey.stats.max) as f64;
        let l_span = (lkey.stats.max - lkey.stats.min) as f64 + 1.0;
        params.match_rate = ((hi - lo + 1.0) / l_span).clamp(0.0, 1.0);
        // A pushed-down inner predicate thins the build at construction
        // time, exactly like a semi-join reduction: fewer probes match.
        if let Some((col, pred)) = &edge.right_filter {
            params.match_rate *= Self::selectivity(right.column(*col)?, pred);
        }
        // Right-key duplication: matches per matching probe.
        params.fanout = rkey.stats.num_rows as f64 / rkey.stats.distinct.max(1) as f64;
        params.left_out_cols = 0.0;
        params.left_out_blocks = 0.0;
        params.right_out_cols = edge.right_output.len() as f64;
        params.right_out_blocks = {
            let mut total = 0.0;
            for &c in &edge.right_output {
                total += right.column(c)?.stats.num_blocks as f64;
            }
            total
        };
        Ok(params)
    }

    /// Build the model's [`JoinParams`] for an equi-join from catalog
    /// statistics.
    pub fn join_params(&self, store: &Store, spec: &JoinSpec) -> Result<JoinParams> {
        let left = store.projection(spec.left)?;
        let right = store.projection(spec.right)?;
        let lkey = left.column(spec.left_key)?;
        let rkey = right.column(spec.right_key)?;
        let sf = match &spec.left_filter {
            Some((col, pred)) => Self::selectivity(left.column(*col)?, pred),
            None => 1.0,
        };
        let sum_blocks = |proj: &ProjectionInfo, cols: &[usize]| -> Result<f64> {
            let mut total = 0.0;
            for &c in cols {
                total += proj.column(c)?.stats.num_blocks as f64;
            }
            Ok(total)
        };
        let mut params = JoinParams::fk_join(
            Self::column_params_for(store, spec.left, spec.left_key, lkey),
            Self::column_params_for(store, spec.right, spec.right_key, rkey),
            sf,
        );
        params.code_keyed = Self::code_keyed_eligible(lkey, rkey);
        // Fraction of surviving left keys that land inside the right
        // key's min/max domain, under uniformity — 1.0 for a clean FK
        // join, < 1 when left keys overhang the right domain.
        let lo = lkey.stats.min.max(rkey.stats.min) as f64;
        let hi = lkey.stats.max.min(rkey.stats.max) as f64;
        let l_span = (lkey.stats.max - lkey.stats.min) as f64 + 1.0;
        params.match_rate = ((hi - lo + 1.0) / l_span).clamp(0.0, 1.0);
        // A pushed-down inner predicate thins the build at construction
        // time: fewer probes match.
        if let Some((col, pred)) = &spec.right_filter {
            params.match_rate *= Self::selectivity(right.column(*col)?, pred);
        }
        params.left_out_cols = spec.left_output.len() as f64;
        params.left_out_blocks = sum_blocks(&left, &spec.left_output)?;
        params.right_out_cols = spec.right_output.len() as f64;
        params.right_out_blocks = sum_blocks(&right, &spec.right_output)?;
        Ok(params)
    }

    /// Whether a hash join over these two key columns can run in the
    /// code domain: both sides dictionary-encoded against a column-wide
    /// shared (sorted) dictionary, over what the statistics say is the
    /// same value domain — the executor additionally verifies the dict
    /// fingerprints at build time, so this is a pricing signal, not a
    /// correctness gate.
    fn code_keyed_eligible(lkey: &ColumnInfo, rkey: &ColumnInfo) -> bool {
        lkey.shared_dict
            && rkey.shared_dict
            && lkey.encoding == EncodingKind::Dict
            && rkey.encoding == EncodingKind::Dict
            && lkey.stats.distinct == rkey.stats.distinct
            && lkey.stats.min == rkey.stats.min
            && lkey.stats.max == rkey.stats.max
    }

    /// Estimate a predicate's selectivity from min/max statistics under a
    /// uniformity assumption.
    fn selectivity(col: &ColumnInfo, pred: &matstrat_common::Predicate) -> f64 {
        pred.uniform_selectivity(col.stats.min, col.stats.max)
    }

    /// `RL_p` of the position list a DS1 over `col` emits, for a range
    /// predicate of selectivity `sf`.
    ///
    /// * A column sorted on itself (or a sort-key column) produces
    ///   *clustered* matches: the matching positions coalesce into one
    ///   run per higher-order sort group — for the paper's secondary-
    ///   sorted SHIPDATE, one run per RETURNFLAG value.
    /// * An unsorted column produces one position run per matching value
    ///   run, so `RL_p` equals the column's own run length.
    fn pos_run_len(proj: &ProjectionInfo, col: &ColumnInfo, sf: f64, n: f64) -> f64 {
        let clustered = col.sort != SortOrder::None || col.self_sorted();
        if clustered {
            // Number of groups above this column in the sort key.
            let groups: f64 = proj
                .columns
                .iter()
                .filter(|c| c.sort.rank() < col.sort.rank())
                .map(|c| c.stats.distinct.max(1) as f64)
                .product();
            ((n * sf) / groups.max(1.0)).max(1.0)
        } else {
            col.stats.avg_run_len().max(1.0)
        }
    }

    fn column_params_for(
        store: &Store,
        table: matstrat_common::TableId,
        col_idx: usize,
        col: &ColumnInfo,
    ) -> ColumnParams {
        let resident = store
            .reader(table, col_idx)
            .map(|r| r.resident_fraction())
            .unwrap_or(0.0);
        // Stored code width mirrors DictBlock's choice: 1/2/4 bytes by
        // dictionary cardinality; non-dict columns iterate full values.
        let code_width = if col.encoding == EncodingKind::Dict {
            match col.stats.distinct {
                0..=255 => 1.0,
                256..=65_535 => 2.0,
                _ => 4.0,
            }
        } else {
            8.0
        };
        ColumnParams {
            blocks: col.stats.num_blocks as f64,
            rows: col.stats.num_rows as f64,
            run_len: col.stats.avg_run_len(),
            resident,
            code_width,
            shared_dict: col.shared_dict,
        }
    }

    /// Build the model's [`QueryParams`] for a two-predicate query.
    pub fn query_params(&self, store: &Store, q: &QuerySpec) -> Result<QueryParams> {
        let proj = store.projection(q.table)?;
        let n = proj.num_rows as f64;
        let (c1_idx, p1) = q.filters[0];
        let (c2_idx, p2) = q.filters[1];
        let c1 = proj.column(c1_idx)?;
        let c2 = proj.column(c2_idx)?;
        let sf1 = Self::selectivity(c1, &p1);
        let sf2 = Self::selectivity(c2, &p2);
        let mut params = QueryParams::selection(
            n,
            Self::column_params_for(store, q.table, c1_idx, c1),
            Self::column_params_for(store, q.table, c2_idx, c2),
            sf1,
            sf2,
        );
        params.pos_run_len1 = Self::pos_run_len(&proj, c1, sf1, n);
        params.pos_run_len2 = Self::pos_run_len(&proj, c2, sf2, n);
        params.bitstring1 = c1.encoding == EncodingKind::BitVec;
        params.bitstring2 = c2.encoding == EncodingKind::BitVec;
        params.c2_supports_ds3 = c2.encoding.supports_position_fetch();
        params.c1_decompress_fetch = c1.encoding == EncodingKind::BitVec;
        params.c2_decompress_fetch = c2.encoding == EncodingKind::BitVec;
        if let Some(a) = q.aggregate {
            params.aggregated = true;
            params.num_groups = proj.column(a.group_col)?.stats.distinct as f64;
        }
        Ok(params)
    }

    fn choose_modeled(
        &self,
        store: &Store,
        proj: &ProjectionInfo,
        q: &QuerySpec,
    ) -> Result<PlanChoice> {
        let params = self.query_params(store, q)?;
        // The pipeline's skew guard caps workers at the table's granule
        // count — a one-granule table runs serially no matter the knob —
        // so price with the worker count that will actually run, not the
        // nominal one; otherwise small tables get CPU terms divided by
        // threads that never spawn and the plan choice can flip wrongly.
        let effective =
            FragmentPipeline::effective_workers(proj.num_rows, crate::GRANULE, self.parallelism);
        let delta_cpu = self.delta_merge_cpu_us(store, q.table);
        let mut alternatives = Vec::new();
        for s in Strategy::ALL {
            if let Some(mut cost) = self
                .model
                .estimate_parallel(s.plan_kind(), &params, effective)
            {
                cost.cpu_us += delta_cpu;
                alternatives.push((s, cost));
            }
        }
        let &(strategy, estimate) = alternatives
            .iter()
            .min_by(|a, b| a.1.total_us().total_cmp(&b.1.total_us()))
            .expect("EM plans always estimable");
        let workers = if effective > 1 {
            format!(", {effective} workers")
        } else {
            String::new()
        };
        Ok(PlanChoice {
            strategy,
            estimate: Some(estimate),
            alternatives,
            reason: format!(
                "analytical model: {} predicted {:.2} ms (cpu {:.2} + io {:.2}{workers})",
                strategy.name(),
                estimate.total_ms(),
                estimate.cpu_us / 1000.0,
                estimate.io_us / 1000.0
            ),
        })
    }

    /// The paper's closing heuristic, for query shapes outside the model:
    /// *"if output data is aggregated, or if the query has low
    /// selectivity [i.e. few matches], or if input data is compressed
    /// using a light-weight compression technique, a late materialization
    /// strategy should be used. Otherwise ... early materialization."*
    fn choose_heuristic(&self, proj: &ProjectionInfo, q: &QuerySpec) -> PlanChoice {
        let lm_ok_pipelined = q.filters.iter().skip(1).all(|(c, _)| {
            proj.column(*c)
                .map(|ci| ci.encoding.supports_position_fetch())
                .unwrap_or(false)
        });
        if q.aggregate.is_some() {
            return PlanChoice {
                strategy: Strategy::LmParallel,
                estimate: None,
                alternatives: Vec::new(),
                reason: "heuristic: aggregated output favors late materialization".into(),
            };
        }
        // Estimated fraction of rows surviving all predicates.
        let mut sf = 1.0;
        for (c, p) in &q.filters {
            if let Ok(ci) = proj.column(*c) {
                sf *= Self::selectivity(ci, p);
            }
        }
        let compressed = q.filters.iter().all(|(c, _)| {
            proj.column(*c)
                .map(|ci| matches!(ci.encoding, EncodingKind::Rle | EncodingKind::Dict))
                .unwrap_or(false)
        });
        if sf < 0.05 && lm_ok_pipelined {
            PlanChoice {
                strategy: Strategy::LmPipelined,
                estimate: None,
                alternatives: Vec::new(),
                reason: format!(
                    "heuristic: highly selective predicates (SF ≈ {sf:.3}) favor pipelined \
                     late materialization with block skipping"
                ),
            }
        } else if compressed {
            PlanChoice {
                strategy: Strategy::LmParallel,
                estimate: None,
                alternatives: Vec::new(),
                reason: "heuristic: light-weight compressed inputs favor late materialization"
                    .into(),
            }
        } else {
            PlanChoice {
                strategy: Strategy::EmParallel,
                estimate: None,
                alternatives: Vec::new(),
                reason: format!(
                    "heuristic: high selectivity (SF ≈ {sf:.3}), non-aggregated, \
                     uncompressed inputs favor early materialization"
                ),
            }
        }
    }
}

impl Default for Planner {
    fn default() -> Planner {
        Planner::with_parallelism(
            Constants::host_defaults(),
            crate::exec::default_parallelism(),
        )
    }
}

/// Convenience: estimated number of distinct groups for an aggregation.
pub fn estimated_groups(proj: &ProjectionInfo, group_col: usize) -> Value {
    proj.column(group_col)
        .map(|c| c.stats.distinct as Value)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::Predicate;
    use matstrat_storage::{ProjectionSpec, SortOrder as So, Store};

    /// lineitem-shaped projection: retflag (3 values, primary, RLE),
    /// shipdate (100 values, secondary, RLE), linenum (7 values, plain).
    fn setup(linenum_enc: EncodingKind) -> (Store, matstrat_common::TableId) {
        let store = Store::in_memory();
        let n = 30_000usize;
        let mut rows: Vec<(Value, Value, Value)> = (0..n)
            .map(|i| {
                (
                    (i % 3) as Value,
                    ((i * 37) % 100) as Value,
                    ((i * 7) % 7 + 1) as Value,
                )
            })
            .collect();
        rows.sort_unstable();
        let rf: Vec<Value> = rows.iter().map(|r| r.0).collect();
        let sd: Vec<Value> = rows.iter().map(|r| r.1).collect();
        let ln: Vec<Value> = rows.iter().map(|r| r.2).collect();
        let spec = ProjectionSpec::new("lineitem")
            .column("retflag", EncodingKind::Rle, So::Primary)
            .column("shipdate", EncodingKind::Rle, So::Secondary)
            .column("linenum", linenum_enc, So::Tertiary);
        let id = store.load_projection(&spec, &[&rf, &sd, &ln]).unwrap();
        (store, id)
    }

    #[test]
    fn modeled_choice_prefers_lm_for_rle_aggregation() {
        let (store, id) = setup(EncodingKind::Rle);
        let planner = Planner::default();
        let q = QuerySpec::select(id, vec![])
            .filter(1, Predicate::lt(80))
            .filter(2, Predicate::lt(7))
            .aggregate_sum(1, 2);
        let choice = planner.choose(&store, &q).unwrap();
        assert!(
            choice.strategy.is_late(),
            "got {:?}: {}",
            choice.strategy,
            choice.reason
        );
        assert!(choice.estimate.is_some());
        assert!(!choice.alternatives.is_empty());
    }

    #[test]
    fn bitvec_filter_column_excludes_lm_pipelined() {
        let (store, id) = setup(EncodingKind::BitVec);
        let planner = Planner::default();
        let q = QuerySpec::select(id, vec![1, 2])
            .filter(1, Predicate::lt(80))
            .filter(2, Predicate::lt(7));
        let choice = planner.choose(&store, &q).unwrap();
        assert!(
            !choice
                .alternatives
                .iter()
                .any(|(s, _)| *s == Strategy::LmPipelined),
            "LM-pipelined must not be estimable over bit-vector data"
        );
    }

    #[test]
    fn heuristic_aggregation_prefers_lm() {
        let (store, id) = setup(EncodingKind::Rle);
        let planner = Planner::default();
        // Single filter → heuristic path.
        let q = QuerySpec::select(id, vec![])
            .filter(1, Predicate::lt(50))
            .aggregate_sum(1, 2);
        let choice = planner.choose(&store, &q).unwrap();
        assert_eq!(choice.strategy, Strategy::LmParallel);
        assert!(choice.estimate.is_none());
    }

    #[test]
    fn heuristic_selective_prefers_lm_pipelined() {
        let (store, id) = setup(EncodingKind::Plain);
        let planner = Planner::default();
        let q = QuerySpec::select(id, vec![0, 1, 2]).filter(1, Predicate::eq(3)); // SF = 1/100
        let choice = planner.choose(&store, &q).unwrap();
        assert_eq!(choice.strategy, Strategy::LmPipelined, "{}", choice.reason);
    }

    #[test]
    fn heuristic_wide_scan_prefers_em() {
        let (store, id) = setup(EncodingKind::Plain);
        let planner = Planner::default();
        // Nearly unselective single predicate on a plain column.
        let q = QuerySpec::select(id, vec![2]).filter(2, Predicate::ge(1));
        let choice = planner.choose(&store, &q).unwrap();
        assert_eq!(choice.strategy, Strategy::EmParallel, "{}", choice.reason);
    }

    #[test]
    fn parallel_planner_caps_workers_at_granule_count() {
        // 30k rows fit in one default granule: the executor runs serially
        // no matter the knob, so the planner must price serially too —
        // dividing CPU by threads that never spawn would flip choices.
        let (store, id) = setup(EncodingKind::Rle);
        let serial = Planner::with_parallelism(Constants::host_defaults(), 1);
        let eight = Planner::with_parallelism(Constants::host_defaults(), 8);
        assert_eq!(eight.parallelism(), 8);
        let q = QuerySpec::select(id, vec![1, 2])
            .filter(1, Predicate::lt(80))
            .filter(2, Predicate::lt(7));
        let c1 = serial.choose(&store, &q).unwrap();
        let c8 = eight.choose(&store, &q).unwrap();
        assert!(!c8.reason.contains("workers"), "{}", c8.reason);
        for ((s1, e1), (s8, e8)) in c1.alternatives.iter().zip(&c8.alternatives) {
            assert_eq!(s1, s8);
            assert!(
                (e8.cpu_us - e1.cpu_us).abs() < 1e-9,
                "{s1:?}: capped serial"
            );
            assert!((e8.io_us - e1.io_us).abs() < 1e-9, "{s1:?}");
        }
    }

    #[test]
    fn parallel_planner_divides_cpu_on_multi_granule_tables() {
        // 4 granules' worth of rows: a 4-worker planner prices CPU at a
        // quarter and leaves the shared cold-I/O term alone.
        let store = Store::in_memory();
        let n = 4 * (crate::GRANULE as usize);
        let a: Vec<Value> = (0..n).map(|i| (i / (n / 8)) as Value).collect();
        let b: Vec<Value> = (0..n).map(|i| ((i * 13) % 100) as Value).collect();
        let spec = ProjectionSpec::new("big")
            .column("a", EncodingKind::Rle, So::Primary)
            .column("b", EncodingKind::Plain, So::None);
        let id = store.load_projection(&spec, &[&a, &b]).unwrap();
        let q = QuerySpec::select(id, vec![0, 1])
            .filter(0, Predicate::lt(6))
            .filter(1, Predicate::lt(80));
        let serial = Planner::with_parallelism(Constants::host_defaults(), 1);
        let four = Planner::with_parallelism(Constants::host_defaults(), 4);
        let c1 = serial.choose(&store, &q).unwrap();
        let c4 = four.choose(&store, &q).unwrap();
        assert!(c4.reason.contains("4 workers"), "{}", c4.reason);
        let overhead = four.model().steal_overhead(4);
        for ((s1, e1), (s4, e4)) in c1.alternatives.iter().zip(&c4.alternatives) {
            assert_eq!(s1, s4);
            assert!(
                (e4.cpu_us - (e1.cpu_us / 4.0 + overhead)).abs() < 1e-9,
                "{s1:?}: CPU divides plus scheduler bookkeeping"
            );
            assert!((e4.io_us - e1.io_us).abs() < 1e-9, "{s1:?}");
        }
    }

    /// orders(custkey FK, shipdate) ⋈ customer(custkey PK, nation), with
    /// `left_granules` granules of left rows.
    fn join_setup(left_granules: u64) -> (Store, crate::ops::join::JoinSpec) {
        let store = Store::in_memory();
        let n = (left_granules * crate::GRANULE) as usize;
        let n_cust = 500i64;
        let custkey: Vec<Value> = (0..n).map(|i| (i as Value * 13) % n_cust).collect();
        let shipdate: Vec<Value> = (0..n).map(|i| (i % 2500) as Value).collect();
        let left = store
            .load_projection(
                &ProjectionSpec::new("orders")
                    .column("custkey", EncodingKind::Plain, So::None)
                    .column("shipdate", EncodingKind::Plain, So::None),
                &[&custkey, &shipdate],
            )
            .unwrap();
        let ckey: Vec<Value> = (0..n_cust).collect();
        let nation: Vec<Value> = (0..n_cust).map(|i| i % 25).collect();
        let right = store
            .load_projection(
                &ProjectionSpec::new("customer")
                    .column("custkey", EncodingKind::Plain, So::Primary)
                    .column("nation", EncodingKind::Plain, So::None),
                &[&ckey, &nation],
            )
            .unwrap();
        let spec = crate::ops::join::JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: Some((0, Predicate::lt(250))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        (store, spec)
    }

    #[test]
    fn choose_join_prices_all_three_representations() {
        let (store, spec) = join_setup(1);
        let planner = Planner::default();
        let choice = planner.choose_join(&store, &spec).unwrap();
        assert_eq!(choice.alternatives.len(), 3);
        let best = choice
            .alternatives
            .iter()
            .map(|(_, c)| c.total_us())
            .fold(f64::INFINITY, f64::min);
        assert!((choice.estimate.total_us() - best).abs() < 1e-9);
        assert!(
            choice.reason.contains("analytical model"),
            "{}",
            choice.reason
        );
        // The FK-shaped params came out of the catalog sensibly.
        let params = planner.join_params(&store, &spec).unwrap();
        assert_eq!(params.left_rows(), crate::GRANULE as f64);
        assert_eq!(params.right_rows(), 500.0);
        assert!((params.sf - 0.5).abs() < 0.01, "sf = {}", params.sf);
        assert!((params.match_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn code_keyed_join_is_detected_priced_cheaper_and_reported() {
        let store = Store::in_memory();
        let n = crate::GRANULE as usize;
        let lk: Vec<Value> = (0..n).map(|i| ((i as Value * 7) % 10) * 10).collect();
        let lv: Vec<Value> = (0..n).map(|i| i as Value).collect();
        let left = store
            .load_projection(
                &ProjectionSpec::new("l_dict")
                    .column_shared_dict("k", So::None)
                    .column("v", EncodingKind::Plain, So::None),
                &[&lk, &lv],
            )
            .unwrap();
        let rk: Vec<Value> = (0..10).map(|i| i * 10).collect();
        let rv: Vec<Value> = (0..10).map(|i| i + 500).collect();
        let right = store
            .load_projection(
                &ProjectionSpec::new("r_dict")
                    .column_shared_dict("k", So::Primary)
                    .column("v", EncodingKind::Plain, So::None),
                &[&rk, &rv],
            )
            .unwrap();
        let spec = crate::ops::join::JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        let planner = Planner::default();
        let params = planner.join_params(&store, &spec).unwrap();
        assert!(params.code_keyed, "shared-dict keys over one domain");
        // 10 distinct values → 1-byte codes on both sides.
        assert!((params.left_key.code_width - 1.0).abs() < 1e-9);
        assert!((params.right_key.code_width - 1.0).abs() < 1e-9);
        assert!(params.left_key.shared_dict && params.right_key.shared_dict);
        let choice = planner.choose_join(&store, &spec).unwrap();
        assert!(choice.reason.contains("code-keyed"), "{}", choice.reason);
        assert!(
            choice.describe().starts_with("hash join via"),
            "{}",
            choice.describe()
        );
        // The code path discounts CPU on every representation; I/O is
        // identical — the executor reads the same blocks either way.
        let mut value_params = params;
        value_params.code_keyed = false;
        let model = planner.model();
        for (s, _) in &choice.alternatives {
            let coded = model.hash_join_parallel(&params, s.plan_kind(), 1, 1);
            let plain = model.hash_join_parallel(&value_params, s.plan_kind(), 1, 1);
            assert!(coded.cpu_us < plain.cpu_us, "{s:?}");
            assert!((coded.io_us - plain.io_us).abs() < 1e-9, "{s:?}");
        }
        // Keying on a plain column disables the code path.
        let mut vspec = spec.clone();
        vspec.left_key = 1;
        assert!(!planner.join_params(&store, &vspec).unwrap().code_keyed);
        // A single-edge tree carries the note through the delegation.
        let tree = planner
            .choose_join_tree(&store, &crate::query::JoinTreeSpec::new(vec![spec]))
            .unwrap();
        assert!(tree.reason.contains("code-keyed"), "{}", tree.reason);
    }

    #[test]
    fn join_planner_divides_probe_cpu_by_effective_workers() {
        // 4 granules of left rows but a sub-granule right table: an
        // 8-worker planner runs 4 probe workers and 1 build worker (the
        // pipeline skew guard per table), so probe CPU shrinks while
        // build CPU and I/O stay serial — the estimate drops but not by
        // a full 8x, and no partitioning terms appear.
        let (store, spec) = join_setup(4);
        let serial = Planner::with_parallelism(Constants::host_defaults(), 1);
        let eight = Planner::with_parallelism(Constants::host_defaults(), 8);
        let c1 = serial.choose_join(&store, &spec).unwrap();
        let c8 = eight.choose_join(&store, &spec).unwrap();
        assert!(c8.reason.contains("4 probe workers"), "{}", c8.reason);
        assert!(!c8.reason.contains("build workers"), "{}", c8.reason);
        let params = serial.join_params(&store, &spec).unwrap();
        let model = serial.model();
        for ((s1, e1), (s8, e8)) in c1.alternatives.iter().zip(&c8.alternatives) {
            assert_eq!(s1, s8);
            let cost = model.hash_join(&params, s1.plan_kind());
            let expect = cost.build.cpu_us + cost.probe.cpu_us / 4.0 + model.steal_overhead(4);
            assert!((e8.cpu_us - expect).abs() < 1e-6, "{s1:?}");
            assert!((e8.io_us - e1.io_us).abs() < 1e-9, "{s1:?}: io shared");
            assert!(e8.cpu_us < e1.cpu_us, "{s1:?}");
        }
    }

    #[test]
    fn join_planner_divides_build_cpu_on_multi_granule_right_tables() {
        // Both sides span multiple granules: the planner prices the
        // partitioned build (build CPU / build workers + radix terms)
        // and the parallel probe independently.
        let store = Store::in_memory();
        let n_left = 2 * crate::GRANULE as usize;
        let n_right = 2 * crate::GRANULE as usize;
        let lk: Vec<Value> = (0..n_left).map(|i| (i % 1000) as Value).collect();
        let lv: Vec<Value> = (0..n_left).map(|i| i as Value).collect();
        let left = store
            .load_projection(
                &ProjectionSpec::new("l")
                    .column("k", EncodingKind::Plain, So::None)
                    .column("v", EncodingKind::Plain, So::None),
                &[&lk, &lv],
            )
            .unwrap();
        let rk: Vec<Value> = (0..n_right).map(|i| i as Value).collect();
        let rv: Vec<Value> = (0..n_right).map(|i| (i % 25) as Value).collect();
        let right = store
            .load_projection(
                &ProjectionSpec::new("r")
                    .column("k", EncodingKind::Plain, So::Primary)
                    .column("v", EncodingKind::Plain, So::None),
                &[&rk, &rv],
            )
            .unwrap();
        let spec = crate::ops::join::JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        let serial = Planner::with_parallelism(Constants::host_defaults(), 1);
        let two = Planner::with_parallelism(Constants::host_defaults(), 2);
        let c1 = serial.choose_join(&store, &spec).unwrap();
        let c2 = two.choose_join(&store, &spec).unwrap();
        assert!(
            c2.reason.contains("2 probe workers") && c2.reason.contains("2 build workers"),
            "{}",
            c2.reason
        );
        let params = serial.join_params(&store, &spec).unwrap();
        let model = serial.model();
        for ((s1, e1), (s2, e2)) in c1.alternatives.iter().zip(&c2.alternatives) {
            assert_eq!(s1, s2);
            let expect = model.hash_join_parallel(&params, s1.plan_kind(), 2, 2);
            assert!((e2.cpu_us - expect.cpu_us).abs() < 1e-6, "{s1:?}");
            assert!((e2.io_us - e1.io_us).abs() < 1e-9, "{s1:?}: io shared");
            assert!(e2.cpu_us < e1.cpu_us, "{s1:?}: both phases shrink");
        }
    }

    #[test]
    fn join_planner_caps_workers_at_left_granule_count() {
        // One granule of left rows: the probe runs serially no matter the
        // knob, so an 8-worker planner must price serially too.
        let (store, spec) = join_setup(1);
        let serial = Planner::with_parallelism(Constants::host_defaults(), 1);
        let eight = Planner::with_parallelism(Constants::host_defaults(), 8);
        let c1 = serial.choose_join(&store, &spec).unwrap();
        let c8 = eight.choose_join(&store, &spec).unwrap();
        assert!(!c8.reason.contains("workers"), "{}", c8.reason);
        for ((s1, e1), (s8, e8)) in c1.alternatives.iter().zip(&c8.alternatives) {
            assert_eq!(s1, s8);
            assert!((e8.cpu_us - e1.cpu_us).abs() < 1e-9, "{s1:?}");
            assert!((e8.io_us - e1.io_us).abs() < 1e-9, "{s1:?}");
        }
    }

    /// orders(custkey FK, datekey FK, shipdate) star-joined to customer
    /// (filtered side) and a tiny date dimension.
    fn tree_setup(left_granules: u64) -> (Store, crate::query::JoinTreeSpec) {
        let store = Store::in_memory();
        let n = (left_granules * crate::GRANULE) as usize;
        let n_cust = 500i64;
        let n_date = 100i64;
        let custkey: Vec<Value> = (0..n).map(|i| (i as Value * 13) % n_cust).collect();
        let datekey: Vec<Value> = (0..n).map(|i| (i as Value * 7) % n_date).collect();
        let shipdate: Vec<Value> = (0..n).map(|i| (i % 2500) as Value).collect();
        let orders = store
            .load_projection(
                &ProjectionSpec::new("orders")
                    .column("custkey", EncodingKind::Plain, So::None)
                    .column("datekey", EncodingKind::Plain, So::None)
                    .column("shipdate", EncodingKind::Plain, So::None),
                &[&custkey, &datekey, &shipdate],
            )
            .unwrap();
        let ck: Vec<Value> = (0..n_cust).collect();
        let nation: Vec<Value> = (0..n_cust).map(|i| i % 25).collect();
        let customer = store
            .load_projection(
                &ProjectionSpec::new("customer")
                    .column("custkey", EncodingKind::Plain, So::Primary)
                    .column("nation", EncodingKind::Plain, So::None),
                &[&ck, &nation],
            )
            .unwrap();
        // Two rows per datekey: a fan-out-2 dimension, so edge order
        // genuinely matters (probing it early doubles the intermediate).
        let dk: Vec<Value> = (0..2 * n_date).map(|i| i / 2).collect();
        let dname: Vec<Value> = (0..2 * n_date).map(|i| 1000 + i).collect();
        let date = store
            .load_projection(
                &ProjectionSpec::new("date")
                    .column("datekey", EncodingKind::Plain, So::Primary)
                    .column("dname", EncodingKind::Plain, So::None),
                &[&dk, &dname],
            )
            .unwrap();
        let spec = crate::query::JoinTreeSpec::new(vec![
            crate::ops::join::JoinSpec {
                left: orders,
                right: customer,
                left_key: 0,
                right_key: 0,
                left_filter: Some((0, Predicate::lt(125))),
                right_filter: None,
                left_output: vec![2],
                right_output: vec![1],
            },
            crate::ops::join::JoinSpec {
                left: orders,
                right: date,
                left_key: 1,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![1],
            },
        ]);
        (store, spec)
    }

    #[test]
    fn single_edge_tree_choice_equals_choose_join() {
        // The delegation contract: a one-edge tree must produce exactly
        // the plain join planner's pick — strategy, estimate, and
        // alternatives.
        let (store, spec) = join_setup(2);
        let planner = Planner::default();
        let single = planner.choose_join(&store, &spec).unwrap();
        let tree = planner
            .choose_join_tree(&store, &crate::query::JoinTreeSpec::new(vec![spec]))
            .unwrap();
        assert_eq!(tree.order, vec![0]);
        assert_eq!(tree.inners, vec![single.inner]);
        assert_eq!(tree.estimate, single.estimate);
        assert_eq!(tree.edge_alternatives.len(), 1);
        for ((s_tree, c_tree), (s_join, c_join)) in
            tree.edge_alternatives[0].iter().zip(&single.alternatives)
        {
            assert_eq!(s_tree, s_join);
            assert_eq!(c_tree, c_join);
        }
        assert!(
            tree.reason.contains("delegated to choose_join"),
            "{}",
            tree.reason
        );
    }

    #[test]
    fn choose_join_tree_picks_the_cheapest_candidate() {
        let (store, spec) = tree_setup(2);
        let planner = Planner::default();
        let choice = planner.choose_join_tree(&store, &spec).unwrap();
        // Two star edges, no dependencies: both orders priced.
        assert_eq!(choice.candidates.len(), 2);
        let best = choice
            .candidates
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        let chosen = choice
            .candidates
            .iter()
            .find(|(o, _)| *o == choice.order)
            .expect("chosen order among candidates");
        assert!(
            chosen.1 <= best + 1e-9,
            "picked plan priced above a rejected one: {} vs {best}",
            chosen.1
        );
        // The non-expanding customer edge runs before the fan-out-2 date
        // edge: probing the dimension early would double the
        // intermediate the customer probe then has to chew through.
        assert_eq!(choice.order, vec![0, 1], "{}", choice.reason);
        // Per-edge choice is the per-slot minimum of its alternatives.
        for (slot, alts) in choice.edge_alternatives.iter().enumerate() {
            let chosen_kind = choice.inners[choice.order[slot]];
            let chosen_cost = alts
                .iter()
                .find(|(s, _)| *s == chosen_kind)
                .expect("chosen kind priced")
                .1;
            for (s, c) in alts {
                assert!(
                    chosen_cost.total_us() <= c.total_us() + 1e-9,
                    "slot {slot}: {chosen_kind:?} dearer than {s:?}"
                );
            }
        }
        // Cardinality chain: ~0.25 × left rows after the filtered
        // customer edge, doubled by the fan-out-2 date edge.
        let n = (2 * crate::GRANULE) as f64;
        assert!((choice.tree.cards[0] / (0.25 * n) - 1.0).abs() < 0.05);
        assert!((choice.tree.out_rows() / (0.5 * n) - 1.0).abs() < 0.05);
    }

    #[test]
    fn choose_join_tree_prices_build_reuse() {
        // The same date dimension probed on two base columns: the second
        // edge must carry the reuse discount and the reason must say so.
        let (store, mut spec) = tree_setup(1);
        let date = spec.edges[1].right;
        spec.edges[0] = crate::ops::join::JoinSpec {
            left: spec.edges[0].left,
            right: date,
            left_key: 2, // shipdate % domain happens to overlap; fine for pricing
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![2],
            right_output: vec![1],
        };
        let planner = Planner::default();
        let choice = planner.choose_join_tree(&store, &spec).unwrap();
        assert!(choice.reason.contains("build reuse"), "{}", choice.reason);
        // Whichever order won, its second slot reuses the first's build.
        let params = planner
            .tree_edge_params(&store, &spec, &choice.order, 1)
            .unwrap();
        assert!(!params[0].build_reused && params[1].build_reused);
    }

    #[test]
    fn choose_join_tree_respects_snowflake_dependencies() {
        // customer → nation snowflake: nation can never execute before
        // customer, in any candidate order.
        let (store, mut spec) = tree_setup(1);
        let customer = spec.edges[0].right;
        let nk: Vec<Value> = (0..25).collect();
        let rg: Vec<Value> = (0..25).map(|i| i % 5).collect();
        let nation = store
            .load_projection(
                &ProjectionSpec::new("nation")
                    .column("nationkey", EncodingKind::Plain, So::Primary)
                    .column("region", EncodingKind::Plain, So::None),
                &[&nk, &rg],
            )
            .unwrap();
        spec.edges.push(crate::ops::join::JoinSpec {
            left: customer,
            right: nation,
            left_key: 1,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![1],
        });
        let planner = Planner::default();
        let choice = planner.choose_join_tree(&store, &spec).unwrap();
        // 3 edges, one dependency (2 after 0): 3 valid orders, not 6.
        assert_eq!(choice.candidates.len(), 3);
        for (order, _) in &choice.candidates {
            let pos0 = order.iter().position(|&e| e == 0).unwrap();
            let pos2 = order.iter().position(|&e| e == 2).unwrap();
            assert!(pos0 < pos2, "snowflake dependency violated: {order:?}");
        }
        // The snowflake hop keys on customer.nation (col 1), not the
        // column customer was hashed on (col 0): the executor will fetch
        // and decode that column at build time, so the planner must keep
        // its blocks priced — only a hash-key-aligned hop is free.
        let p2 = planner.tree_edge_raw_params(&store, &spec, 2).unwrap();
        assert!(
            p2.left_key.blocks > 0.0,
            "non-hash-key snowflake key I/O priced"
        );
        // A hop aligned with the hash key prices as zero-I/O.
        let mut aligned = spec.clone();
        aligned.edges[2].left_key = 0;
        let p2 = planner.tree_edge_raw_params(&store, &aligned, 2).unwrap();
        assert_eq!(p2.left_key.blocks, 0.0, "hash-key hop reuses the decode");
    }

    #[test]
    fn query_params_reflect_catalog() {
        let (store, id) = setup(EncodingKind::Plain);
        let planner = Planner::default();
        let q = QuerySpec::select(id, vec![1, 2])
            .filter(1, Predicate::lt(50))
            .filter(2, Predicate::lt(4));
        let params = planner.query_params(&store, &q).unwrap();
        assert_eq!(params.n, 30_000.0);
        assert!(params.sf1 > 0.3 && params.sf1 < 0.7, "sf1 = {}", params.sf1);
        assert!(params.c2_supports_ds3);
        assert!(!params.bitstring2);
        // Secondary-sorted shipdate → clustered positions: long runs.
        assert!(params.pos_run_len1 > 100.0);
    }
}
