//! Query descriptions and results.

use std::ops::AddAssign;
use std::time::Duration;

use matstrat_common::{Error, Predicate, Result, TableId, Value};
use matstrat_storage::IoStats;

use crate::ops::agg::AggFunc;
use crate::ops::join::JoinSpec;
use crate::strategy::Strategy;

/// An aggregation over one column, grouped by another
/// (`SELECT g, f(v) ... GROUP BY g`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggSpec {
    /// Column index of the GROUP BY attribute.
    pub group_col: usize,
    /// Column index of the aggregated attribute.
    pub value_col: usize,
    /// The aggregate function (the paper's experiments use SUM).
    pub func: AggFunc,
}

/// A selection (optionally aggregated) over one projection:
///
/// ```sql
/// SELECT <output...> FROM <table> WHERE <col op const> AND ...
/// [GROUP BY g -- with SUM(v)]
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// The projection to read.
    pub table: TableId,
    /// Column indices to output (ignored when `aggregate` is set:
    /// aggregation outputs `(group, sum)`).
    pub output: Vec<usize>,
    /// Conjunctive single-column predicates, applied in order.
    pub filters: Vec<(usize, Predicate)>,
    /// Optional GROUP BY + SUM on top of the selection.
    pub aggregate: Option<AggSpec>,
}

impl QuerySpec {
    /// `SELECT <output> FROM <table>`.
    pub fn select(table: TableId, output: Vec<usize>) -> QuerySpec {
        QuerySpec {
            table,
            output,
            filters: Vec::new(),
            aggregate: None,
        }
    }

    /// Add `AND column <op> const` to the WHERE clause.
    pub fn filter(mut self, col: usize, pred: Predicate) -> QuerySpec {
        self.filters.push((col, pred));
        self
    }

    /// Replace the output with `GROUP BY group_col, SUM(value_col)`.
    pub fn aggregate_sum(self, group_col: usize, value_col: usize) -> QuerySpec {
        self.aggregate_fn(group_col, value_col, AggFunc::Sum)
    }

    /// Replace the output with `GROUP BY group_col, f(value_col)`.
    pub fn aggregate_fn(mut self, group_col: usize, value_col: usize, func: AggFunc) -> QuerySpec {
        self.aggregate = Some(AggSpec {
            group_col,
            value_col,
            func,
        });
        self
    }

    /// Every column the query touches, in access order and without
    /// duplicates: filter columns first, then extra output/aggregate
    /// columns.
    pub fn accessed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = Vec::new();
        let mut push = |c: usize| {
            if !cols.contains(&c) {
                cols.push(c);
            }
        };
        for (c, _) in &self.filters {
            push(*c);
        }
        match self.aggregate {
            Some(a) => {
                push(a.group_col);
                push(a.value_col);
            }
            None => {
                for &c in &self.output {
                    push(c);
                }
            }
        }
        cols
    }
}

/// Where a join-tree edge's probe keys come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKeySource {
    /// The base (leftmost) table: key values are fetched at the
    /// intermediate's base positions with a merge on position.
    Base,
    /// The right table of an earlier edge (by spec index): key values
    /// are indexed out of that table at the intermediate's matched right
    /// positions — a snowflake hop, no extra I/O.
    Edge(usize),
}

/// A left-deep tree of equi-joins over [`JoinSpec`] edges, optionally
/// topped by a GROUP BY aggregation:
///
/// ```sql
/// SELECT base.<outputs...>, r1.<outputs...>, ..., rN.<outputs...>
/// FROM base, r1, ..., rN
/// WHERE base.k1 = r1.key AND ... [AND base.<filter col> <op> const]
///                               [AND rK.<filter col> <op> const ...]
/// [GROUP BY g -- with f(v)]
/// ```
///
/// Edge 0 is an ordinary [`JoinSpec`] — its `left` names the **base**
/// (probe) table, its `left_filter`/`left_output` the base predicate and
/// output columns. Every later edge joins one more inner table into the
/// running intermediate: its `left` must be the base table (a star edge)
/// or the `right` of an earlier edge (a snowflake edge, keyed through
/// that table's matched positions), its `left_key` a column of that
/// table, and — since the intermediate carries the base state — its
/// `left_filter` must be `None` and `left_output` empty. Any edge may
/// carry a `right_filter` on its inner table; the build phase applies
/// it as a semi-join reduction on the hash table.
///
/// Output columns are the base outputs followed by every edge's right
/// outputs **in spec order**, whatever execution order the planner
/// picks. A one-edge tree is exactly its [`JoinSpec`]. When `aggregate`
/// is set, its `group_col`/`value_col` index that flat spec-order
/// output and the result is `(group, f(value))` rows sorted by group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTreeSpec {
    /// The join edges, in declaration order.
    pub edges: Vec<JoinSpec>,
    /// Optional GROUP BY + aggregate over the joined output. Column
    /// indices address the flat spec-order output columns.
    pub aggregate: Option<AggSpec>,
}

impl JoinTreeSpec {
    /// Wrap edges into a tree (validated at execution/planning time).
    pub fn new(edges: Vec<JoinSpec>) -> JoinTreeSpec {
        JoinTreeSpec {
            edges,
            aggregate: None,
        }
    }

    /// Top the tree with `GROUP BY group_col, SUM(value_col)` (indices
    /// into the flat spec-order output).
    pub fn aggregate_sum(self, group_col: usize, value_col: usize) -> JoinTreeSpec {
        self.aggregate_fn(group_col, value_col, AggFunc::Sum)
    }

    /// Top the tree with `GROUP BY group_col, f(value_col)`.
    pub fn aggregate_fn(
        mut self,
        group_col: usize,
        value_col: usize,
        func: AggFunc,
    ) -> JoinTreeSpec {
        self.aggregate = Some(AggSpec {
            group_col,
            value_col,
            func,
        });
        self
    }

    /// The base (probe) table: edge 0's left side.
    pub fn base(&self) -> TableId {
        self.edges.first().map(|e| e.left).unwrap_or(TableId(0))
    }

    /// Where edge `idx`'s probe keys come from: the base table, or the
    /// right side of the first earlier edge whose inner table matches
    /// (duplicate inner tables resolve to their first occurrence, which
    /// is also the build every later occurrence reuses).
    pub fn key_source(&self, idx: usize) -> Result<JoinKeySource> {
        let edge = &self.edges[idx];
        if edge.left == self.base() {
            return Ok(JoinKeySource::Base);
        }
        self.edges[..idx]
            .iter()
            .position(|e| e.right == edge.left)
            .map(JoinKeySource::Edge)
            .ok_or_else(|| {
                Error::invalid(format!(
                    "join tree edge {idx}: left table {:?} is neither the base table \
                     nor the inner table of an earlier edge",
                    edge.left
                ))
            })
    }

    /// Check tree shape: at least one edge, later edges carry no base
    /// state of their own, and every edge's key source resolves.
    pub fn validate(&self) -> Result<()> {
        if self.edges.is_empty() {
            return Err(Error::invalid("join tree needs at least one edge"));
        }
        for (i, e) in self.edges.iter().enumerate().skip(1) {
            if e.left_filter.is_some() {
                return Err(Error::invalid(format!(
                    "join tree edge {i}: only edge 0 may filter the base table"
                )));
            }
            if !e.left_output.is_empty() {
                return Err(Error::invalid(format!(
                    "join tree edge {i}: base outputs belong to edge 0 \
                     (left_output must be empty)"
                )));
            }
            self.key_source(i)?;
        }
        if let Some(a) = &self.aggregate {
            let width = self.output_width();
            if a.group_col >= width || a.value_col >= width {
                return Err(Error::invalid(format!(
                    "join tree aggregate: group/value column ({}, {}) outside \
                     the {width}-column output",
                    a.group_col, a.value_col
                )));
            }
        }
        Ok(())
    }

    /// Output width: base outputs plus every edge's right outputs.
    pub fn output_width(&self) -> usize {
        self.edges.first().map_or(0, |e| e.left_output.len())
            + self
                .edges
                .iter()
                .map(|e| e.right_output.len())
                .sum::<usize>()
    }
}

/// One statement of work against the database — the single input shape
/// of [`Database::execute`](crate::db::Database::execute). Reads carry
/// their full spec; writes carry the rows or filters they apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A (possibly aggregated) selection over one projection.
    Select(QuerySpec),
    /// A tree of equi-joins, optionally topped by an aggregate.
    JoinTree(JoinTreeSpec),
    /// Append rows to a projection's delta store.
    Insert {
        /// Target projection.
        table: TableId,
        /// Full-width rows to append.
        rows: Vec<Vec<Value>>,
    },
    /// Delete every row matching all `filters` (conjunctive).
    Delete {
        /// Target projection.
        table: TableId,
        /// Conjunctive single-column predicates.
        filters: Vec<(usize, Predicate)>,
    },
}

/// A materialized result: row-major tuples of `width` values.
///
/// Tuples are stored flat (`rows * width` values) — building this buffer
/// *is* the tuple-construction cost the paper measures, without allocator
/// noise per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Output column names.
    pub column_names: Vec<String>,
    width: usize,
    data: Vec<Value>,
}

impl QueryResult {
    /// An empty result with the given output columns.
    pub fn new(column_names: Vec<String>) -> QueryResult {
        let width = column_names.len();
        QueryResult {
            column_names,
            width,
            data: Vec::new(),
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_flat(column_names: Vec<String>, data: Vec<Value>) -> QueryResult {
        let width = column_names.len();
        assert!(width > 0, "result needs at least one column");
        assert_eq!(data.len() % width, 0, "flat buffer must be rows*width");
        QueryResult {
            column_names,
            width,
            data,
        }
    }

    /// Tuple width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of result rows.
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// Append one row.
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.width);
        self.data.extend_from_slice(row);
    }

    /// The flat row-major buffer.
    pub fn flat(&self) -> &[Value] {
        &self.data
    }

    /// Mutable access to the flat buffer (executors append in place).
    pub fn flat_mut(&mut self) -> &mut Vec<Value> {
        &mut self.data
    }

    /// Iterate rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.data.chunks_exact(self.width)
    }

    /// The row at `idx`.
    pub fn row(&self, idx: usize) -> &[Value] {
        &self.data[idx * self.width..(idx + 1) * self.width]
    }

    /// All rows, sorted — the canonical form for comparing strategies,
    /// whose output orders may differ.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self.rows().map(|r| r.to_vec()).collect();
        rows.sort_unstable();
        rows
    }
}

/// Measurements of one statement execution — the single stats shape
/// every execution path reports, whatever the statement kind. Scan-only
/// counters (`positions_matched`, `decompressed_fetch`) stay zero for
/// joins; join-only counters (`builds`, `build_reuses`) stay zero for
/// scans; writes report only `rows_out` and `wall`.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Scan strategy that was run (`None` for join trees and writes,
    /// whose execution is not a single scan strategy).
    pub strategy: Option<Strategy>,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Simulated-disk activity during execution — **this query's only**,
    /// harvested per thread ([`matstrat_storage::IoSink`]) so the
    /// counters stay exact when several sessions execute concurrently.
    pub io: IoStats,
    /// Result rows produced (rows affected, for writes).
    pub rows_out: u64,
    /// Positions that survived all predicates (before aggregation).
    pub positions_matched: u64,
    /// Whether a bit-vector decompression fallback was taken.
    pub decompressed_fetch: bool,
    /// Operations executed directly on compressed representations —
    /// code comparisons in dict scans, per-run comparisons in RLE
    /// scans, per-distinct-value predicate evaluations in bit-vector
    /// scans, run folds in compressed aggregation, code-keyed join
    /// build/probe ops. Data-dependent only, so exact at any worker
    /// count; > 0 proves the decode-free path actually ran.
    pub code_path_ops: u64,
    /// Granule runs the work-stealing scheduler moved between workers:
    /// claims taken from the tail of another worker's span by a worker
    /// that had drained its own. Always 0 for a serial run; under
    /// clustered selectivity and ≥ 2 workers it is the rebalance at
    /// work. Unlike the other counters it is *not* deterministic — it
    /// measures scheduling, not semantics.
    pub steals: u64,
    /// Partitioned hash-table builds that actually ran — one per
    /// distinct (inner table, key column, inner filter) triple when
    /// reuse is on.
    pub builds: u64,
    /// Probes served by a cached build table instead of a rebuild: the
    /// reuse the tree executor (and the planner's pricing) counts on
    /// when one inner table appears in multiple edges.
    pub build_reuses: u64,
    /// Granules a filtered scan skipped outright because no block zone
    /// map overlapping the granule admits the predicate — provably
    /// empty, so no block is read. Deterministic for a cold run.
    pub zone_skips: u64,
}

/// The scan executor's stats shape — now the unified [`QueryStats`].
pub type ExecStats = QueryStats;
/// The join-tree executor's stats shape — now the unified [`QueryStats`].
pub type JoinTreeStats = QueryStats;

impl QueryStats {
    /// Zeroed measurements tagged with `strategy` — the identity of the
    /// [`AddAssign`] merge.
    pub fn zero(strategy: Strategy) -> QueryStats {
        QueryStats {
            strategy: Some(strategy),
            ..QueryStats::default()
        }
    }

    /// Wall time plus modeled cold-I/O time, in milliseconds, pricing the
    /// simulated disk with `seek_us`/`read_us`.
    pub fn modeled_total_ms(&self, seek_us: f64, read_us: f64) -> f64 {
        self.wall.as_secs_f64() * 1e3 + self.io.modeled_micros(seek_us, read_us) / 1e3
    }
}

/// Associative merge of fragments measured for one query: counters sum,
/// the decompression flag ORs, and wall time takes the maximum — parallel
/// workers overlap, so the slowest fragment bounds the elapsed time.
/// Merging stats of different strategies is a logic error.
impl AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        debug_assert!(
            self.strategy.is_none() || rhs.strategy.is_none() || self.strategy == rhs.strategy,
            "fragments of one query"
        );
        self.strategy = self.strategy.or(rhs.strategy);
        self.wall = self.wall.max(rhs.wall);
        self.io += rhs.io;
        self.rows_out += rhs.rows_out;
        self.positions_matched += rhs.positions_matched;
        self.decompressed_fetch |= rhs.decompressed_fetch;
        self.code_path_ops += rhs.code_path_ops;
        self.steals += rhs.steals;
        self.builds += rhs.builds;
        self.build_reuses += rhs.build_reuses;
        self.zone_skips += rhs.zone_skips;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessed_columns_dedup_and_order() {
        let q = QuerySpec::select(TableId(0), vec![3, 1])
            .filter(1, Predicate::lt(5))
            .filter(2, Predicate::gt(0));
        assert_eq!(q.accessed_columns(), vec![1, 2, 3]);
        let qa = QuerySpec::select(TableId(0), vec![])
            .filter(2, Predicate::lt(5))
            .aggregate_sum(0, 2);
        assert_eq!(qa.accessed_columns(), vec![2, 0]);
    }

    #[test]
    fn result_flat_roundtrip() {
        let mut r = QueryResult::new(vec!["a".into(), "b".into()]);
        r.push_row(&[1, 2]);
        r.push_row(&[3, 4]);
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.width(), 2);
        assert_eq!(r.row(1), &[3, 4]);
        assert_eq!(r.rows().count(), 2);
        assert_eq!(r.flat(), &[1, 2, 3, 4]);
    }

    #[test]
    fn sorted_rows_canonicalizes() {
        let a = QueryResult::from_flat(vec!["x".into()], vec![3, 1, 2]);
        let b = QueryResult::from_flat(vec!["x".into()], vec![1, 2, 3]);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    #[should_panic(expected = "rows*width")]
    fn from_flat_validates_shape() {
        QueryResult::from_flat(vec!["a".into(), "b".into()], vec![1, 2, 3]);
    }

    #[test]
    fn modeled_total_adds_io() {
        let s = QueryStats {
            strategy: Some(Strategy::LmParallel),
            wall: Duration::from_millis(10),
            io: IoStats {
                block_reads: 2,
                seeks: 1,
            },
            ..QueryStats::default()
        };
        // 10ms wall + (2500 + 2000)us = 14.5ms
        assert!((s.modeled_total_ms(2500.0, 1000.0) - 14.5).abs() < 1e-9);
    }

    #[test]
    fn exec_stats_merge_is_associative() {
        let frag = |wall_ms, reads, matched, dec| QueryStats {
            strategy: Some(Strategy::EmPipelined),
            wall: Duration::from_millis(wall_ms),
            io: IoStats {
                block_reads: reads,
                seeks: 1,
            },
            rows_out: matched,
            positions_matched: matched,
            decompressed_fetch: dec,
            code_path_ops: matched * 2,
            steals: 1,
            builds: 1,
            build_reuses: 2,
            zone_skips: 1,
        };
        let (a, b, c) = (
            frag(5, 2, 10, false),
            frag(9, 3, 20, true),
            frag(1, 1, 5, false),
        );

        // (a + b) + c
        let mut left = QueryStats::zero(Strategy::EmPipelined);
        left += a.clone();
        left += b.clone();
        left += c.clone();
        // a + (b + c)
        let mut right = b;
        right += c;
        let mut right2 = a;
        right2 += right;

        for s in [&left, &right2] {
            assert_eq!(s.wall, Duration::from_millis(9), "max, not sum");
            assert_eq!(s.io.block_reads, 6);
            assert_eq!(s.io.seeks, 3);
            assert_eq!(s.rows_out, 35);
            assert_eq!(s.positions_matched, 35);
            assert!(s.decompressed_fetch);
            assert_eq!(s.code_path_ops, 70, "code-op counters sum");
            assert_eq!(s.steals, 3, "steal counters sum");
            assert_eq!(s.builds, 3);
            assert_eq!(s.build_reuses, 6);
            assert_eq!(s.zone_skips, 3);
        }
    }

    #[test]
    fn exec_stats_zero_is_identity() {
        let mut z = QueryStats::zero(Strategy::LmParallel);
        let s = QueryStats {
            strategy: Some(Strategy::LmParallel),
            wall: Duration::from_millis(3),
            io: IoStats {
                block_reads: 4,
                seeks: 2,
            },
            rows_out: 7,
            positions_matched: 8,
            decompressed_fetch: true,
            code_path_ops: 11,
            steals: 2,
            builds: 1,
            build_reuses: 0,
            zone_skips: 5,
        };
        z += s.clone();
        assert_eq!(z.wall, s.wall);
        assert_eq!(z.io, s.io);
        assert_eq!(z.rows_out, s.rows_out);
        assert_eq!(z.positions_matched, s.positions_matched);
        assert_eq!(z.decompressed_fetch, s.decompressed_fetch);
        assert_eq!(z.code_path_ops, s.code_path_ops);
        assert_eq!(z.steals, s.steals);
        assert_eq!(z.builds, s.builds);
        assert_eq!(z.zone_skips, s.zone_skips);
    }

    #[test]
    fn untagged_stats_adopt_the_tagged_side_strategy() {
        // A write-path or tree fragment (strategy None) merged into a
        // tagged scan's stats keeps the tag, whichever side it lands on.
        let mut tagged = QueryStats::zero(Strategy::LmParallel);
        tagged += QueryStats::default();
        assert_eq!(tagged.strategy, Some(Strategy::LmParallel));
        let mut untagged = QueryStats::default();
        untagged += QueryStats::zero(Strategy::EmParallel);
        assert_eq!(untagged.strategy, Some(Strategy::EmParallel));
    }

    #[test]
    fn tree_aggregate_validates_output_indices() {
        let edge = JoinSpec {
            left: TableId(0),
            right: TableId(1),
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        let ok = JoinTreeSpec::new(vec![edge.clone()]).aggregate_sum(0, 1);
        assert!(ok.validate().is_ok());
        let bad = JoinTreeSpec::new(vec![edge]).aggregate_sum(0, 2);
        let err = bad.validate().unwrap_err().to_string();
        assert!(err.contains("outside"), "{err}");
    }
}
