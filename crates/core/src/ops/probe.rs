//! DS4: extend early-materialized tuples with one more column (Figure 3).
//!
//! The EM-pipelined plan's inner operator: for each input tuple, jump to
//! its position in the new column, apply the predicate, and emit the
//! widened tuple if it passes. This is a tuple-at-a-time loop with one
//! positional probe per tuple — the `TICTUP`-heavy cost the model
//! assigns to DS4, and the reason EM-pipelined degrades at high
//! selectivity.

use matstrat_common::{Pos, Predicate, Result, Value};

use crate::multicol::MiniColumn;

/// Widen `(positions, tuples)` of width `width` by probing `mini` at each
/// position and keeping rows whose new value passes `pred` (pass `None`
/// for a pure output column). Returns the new width (`width + 1`).
pub fn ds4_extend(
    mini: &MiniColumn,
    pred: Option<&Predicate>,
    positions: &mut Vec<Pos>,
    tuples: &mut Vec<Value>,
    width: usize,
) -> Result<usize> {
    debug_assert_eq!(tuples.len(), positions.len() * width);
    let mut new_positions = Vec::with_capacity(positions.len());
    let mut new_tuples = Vec::with_capacity(tuples.len() + positions.len());
    for (i, &pos) in positions.iter().enumerate() {
        let v = mini.value_at(pos)?;
        if pred.is_none_or(|p| p.matches(v)) {
            new_positions.push(pos);
            new_tuples.extend_from_slice(&tuples[i * width..(i + 1) * width]);
            new_tuples.push(v);
        }
    }
    *positions = new_positions;
    *tuples = new_tuples;
    Ok(width + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::PosRange;
    use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder, Store};

    fn mini(encoding: EncodingKind, vals: &[Value]) -> MiniColumn {
        let store = Store::in_memory();
        let spec = ProjectionSpec::new("t").column("c", encoding, SortOrder::None);
        let id = store.load_projection(&spec, &[vals]).unwrap();
        MiniColumn::fetch(
            &store.reader(id, 0).unwrap(),
            PosRange::new(0, vals.len() as u64),
        )
        .unwrap()
    }

    #[test]
    fn extend_filters_and_widens() {
        let vals: Vec<Value> = (0..100).map(|i| i % 10).collect();
        let m = mini(EncodingKind::Plain, &vals);
        let mut positions: Vec<Pos> = vec![3, 13, 14, 50, 99];
        let mut tuples: Vec<Value> = positions.iter().map(|&p| p as Value * 100).collect();
        let w = ds4_extend(&m, Some(&Predicate::lt(5)), &mut positions, &mut tuples, 1).unwrap();
        assert_eq!(w, 2);
        // vals: pos 3→3, 13→3, 14→4, 50→0, 99→9(fails)
        assert_eq!(positions, vec![3, 13, 14, 50]);
        assert_eq!(tuples, vec![300, 3, 1300, 3, 1400, 4, 5000, 0]);
    }

    #[test]
    fn extend_without_predicate_keeps_all() {
        let vals: Vec<Value> = (0..10).collect();
        let m = mini(EncodingKind::Rle, &vals);
        let mut positions: Vec<Pos> = vec![0, 9];
        let mut tuples: Vec<Value> = vec![7, 8];
        ds4_extend(&m, None, &mut positions, &mut tuples, 1).unwrap();
        assert_eq!(tuples, vec![7, 0, 8, 9]);
    }

    #[test]
    fn extend_works_on_bitvec_via_value_at() {
        // DS4 on bit-vector data is legal (EM-pipelined appears in
        // Figure 11(c)) — it probes all k bit-strings per position.
        let vals: Vec<Value> = (0..50).map(|i| i % 5).collect();
        let m = mini(EncodingKind::BitVec, &vals);
        let mut positions: Vec<Pos> = (0..50).collect();
        let mut tuples: Vec<Value> = positions.iter().map(|&p| p as Value).collect();
        ds4_extend(&m, Some(&Predicate::eq(2)), &mut positions, &mut tuples, 1).unwrap();
        let expected: Vec<Pos> = (0..50u64).filter(|p| p % 5 == 2).collect();
        assert_eq!(positions, expected);
    }

    #[test]
    fn extend_empty_input() {
        let m = mini(EncodingKind::Plain, &[1, 2, 3]);
        let mut positions: Vec<Pos> = vec![];
        let mut tuples: Vec<Value> = vec![];
        let w = ds4_extend(&m, Some(&Predicate::lt(5)), &mut positions, &mut tuples, 1).unwrap();
        assert_eq!(w, 2);
        assert!(positions.is_empty());
    }
}
