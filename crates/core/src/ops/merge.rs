//! MERGE: combine k aligned value columns into k-ary row tuples.
//!
//! This is the top of every late-materialization plan (Figure 5): the
//! DS3 operators have produced one value vector per output column, all in
//! descriptor position order, and MERGE stitches them into row-major
//! tuples. The paper's cost model charges `2k·FC` per tuple — the work
//! here is exactly the k reads + k writes per row.

use matstrat_common::Value;

/// Append row-major tuples built from `cols` (equal-length value
/// vectors) to `out`.
///
/// # Panics
/// Panics (debug) if the columns have unequal lengths.
pub fn merge_columns(cols: &[&[Value]], out: &mut Vec<Value>) {
    let Some(first) = cols.first() else { return };
    let n = first.len();
    debug_assert!(cols.iter().all(|c| c.len() == n), "MERGE inputs must align");
    out.reserve(n * cols.len());
    match cols {
        // The common arities get tight loops.
        [a] => out.extend_from_slice(a),
        [a, b] => {
            for i in 0..n {
                out.push(a[i]);
                out.push(b[i]);
            }
        }
        [a, b, c] => {
            for i in 0..n {
                out.push(a[i]);
                out.push(b[i]);
                out.push(c[i]);
            }
        }
        _ => {
            for i in 0..n {
                for col in cols {
                    out.push(col[i]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_two_columns() {
        let mut out = Vec::new();
        merge_columns(&[&[1, 2, 3], &[10, 20, 30]], &mut out);
        assert_eq!(out, vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn merge_one_and_three_and_four() {
        let mut out = Vec::new();
        merge_columns(&[&[7, 8]], &mut out);
        assert_eq!(out, vec![7, 8]);
        out.clear();
        merge_columns(&[&[1], &[2], &[3]], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        out.clear();
        merge_columns(&[&[1], &[2], &[3], &[4]], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn merge_empty_inputs() {
        let mut out = Vec::new();
        merge_columns(&[], &mut out);
        assert!(out.is_empty());
        merge_columns(&[&[], &[]], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn merge_appends_after_existing() {
        let mut out = vec![99];
        merge_columns(&[&[1], &[2]], &mut out);
        assert_eq!(out, vec![99, 1, 2]);
    }
}
