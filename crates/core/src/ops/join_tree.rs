//! Multi-way join execution: a left-deep tree of hash joins pipelining
//! **position lists** through successive probes.
//!
//! The single-join executor (§4.3, [`crate::ops::join`]) materializes
//! its output after one probe. Composing N of them naively would
//! materialize — and re-scan — every intermediate. The tree executor
//! instead keeps the intermediate in its cheapest form for as long as
//! possible: a vector of base-table positions plus one matched-position
//! vector per completed edge, all row-aligned. Each edge's probe only
//! ever *extends* this position state (fan-out duplicates positions, a
//! missed probe drops the row); **values are fetched exactly once, at
//! the very top** — base columns with a merge on the sorted (possibly
//! duplicated) base positions, right columns per edge through the same
//! three inner-table representations the single join offers. That is
//! the paper's late-materialization discipline carried across a whole
//! join tree.
//!
//! # Build caching
//!
//! The partitioned hash table depends only on the (inner table, key
//! column) pair — never on an edge's strategy or output columns — so
//! when the same inner table is probed by multiple edges (the date
//! dimension joined on both order date and ship date, say), the table
//! is built **once** and every later edge reuses it
//! ([`JoinTreeStats::builds`] / [`JoinTreeStats::build_reuses`] count
//! both sides). The cached decoded key column doubles as the zero-I/O
//! key source for snowflake edges probing *through* a previous table.
//!
//! # Parallelism contract
//!
//! The probe phase runs on the same [`FragmentPipeline`] substrate as
//! every other operator, span-parallel over the **base** table: each
//! granule run executes the full filter→probe→…→probe→fetch→stitch
//! pipeline for its positions, and fragments merge in global granule
//! order. All per-row state is span-local and the build side is shared
//! read-only, so the result is **byte-identical** at any worker count
//! with exact cold `block_reads` — the property
//! `tests/join_tree_diff.rs` proves against the serial composition of
//! single joins.
//!
//! # Edge ordering
//!
//! Execution order is a plan property ([`JoinTreePlan::order`]), chosen
//! by `Planner::choose_join_tree` to shrink the intermediate early.
//! Output *columns* always follow spec order; output *row* order follows
//! the execution order's fan-out nesting (like any join reorder). For
//! the identity order the rows are byte-identical to the spec-order
//! composition of single joins.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use matstrat_common::{Error, Pos, PosRange, Predicate, Result, TableId, Value};
use matstrat_poslist::PosList;
use matstrat_storage::{set_thread_query_token, ColumnReader, IoSink, Store, TableDelta};

use crate::exec::ExecOptions;
use crate::multicol::MiniColumn;
use crate::ops::agg::Aggregator;
use crate::ops::join::{
    fetch_codes_expanded, fetch_expanded, filter_deleted, BuildReducer, InnerRep, InnerStrategy,
    SharedBuild,
};
use crate::pipeline::FragmentPipeline;
use crate::query::{AggSpec, JoinKeySource, JoinTreeSpec, JoinTreeStats, QueryResult};

/// How a [`JoinTreeSpec`] is to be executed: the edge order, one inner
/// strategy per edge, which snowflake edges run **bushy** (their
/// dimension subtree joined before the fact side probes it), and whether
/// build tables are cached across edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTreePlan {
    /// Execution order as indices into `spec.edges`. Must be a
    /// permutation in which every snowflake edge runs after the edge it
    /// keys through.
    pub order: Vec<usize>,
    /// Inner-table strategy per edge, indexed by **spec** position.
    pub inners: Vec<InnerStrategy>,
    /// Bushy flag per edge, indexed by **spec** position (empty means
    /// none). A bushy edge must be a snowflake edge; its hash table is
    /// built *before* its parent's, and parent rows with no match in it
    /// are semi-join-reduced out of the parent's table — a dimension
    /// subtree joined ahead of the fact probe. Output-invariant: the
    /// reduced rows would die at the bushy edge's own probe anyway.
    pub bushy: Vec<bool>,
    /// Reuse the partitioned build table across edges sharing an
    /// (inner table, key column, inner filter, bushy reduction)
    /// signature. On by default; the differential battery turns it off
    /// to prove reuse is invisible in the bytes.
    pub reuse_builds: bool,
}

impl JoinTreePlan {
    /// Execute in spec order under the given per-edge strategies.
    pub fn in_spec_order(inners: Vec<InnerStrategy>) -> JoinTreePlan {
        JoinTreePlan {
            order: (0..inners.len()).collect(),
            inners,
            bushy: Vec::new(),
            reuse_builds: true,
        }
    }

    /// Whether edge `ei` (spec index) executes bushy.
    pub fn is_bushy(&self, ei: usize) -> bool {
        self.bushy.get(ei).copied().unwrap_or(false)
    }

    /// Check the plan fits `spec`: one strategy per edge, `order` a
    /// dependency-respecting permutation, and bushy flags only on
    /// snowflake edges.
    pub fn validate(&self, spec: &JoinTreeSpec) -> Result<()> {
        let n = spec.edges.len();
        if self.inners.len() != n {
            return Err(Error::invalid(format!(
                "join tree plan: {} strategies for {n} edges",
                self.inners.len()
            )));
        }
        if !self.bushy.is_empty() && self.bushy.len() != n {
            return Err(Error::invalid(format!(
                "join tree plan: {} bushy flags for {n} edges",
                self.bushy.len()
            )));
        }
        let mut seen = vec![false; n];
        for &ei in &self.order {
            if ei >= n || seen[ei] {
                return Err(Error::invalid(
                    "join tree plan: order must be a permutation of the edges",
                ));
            }
            if let JoinKeySource::Edge(j) = spec.key_source(ei)? {
                if !seen[j] {
                    return Err(Error::invalid(format!(
                        "join tree plan: edge {ei} keys through edge {j}, \
                         which has not executed yet"
                    )));
                }
            } else if self.is_bushy(ei) {
                return Err(Error::invalid(format!(
                    "join tree plan: edge {ei} is marked bushy but probes the \
                     base table (only snowflake edges can reduce a parent build)"
                )));
            }
            seen[ei] = true;
        }
        if seen.iter().any(|s| !s) {
            return Err(Error::invalid(
                "join tree plan: order must cover every edge",
            ));
        }
        Ok(())
    }
}

/// The build-cache signature: two edges share one [`SharedBuild`] only
/// when the inner table, key column, pushed-down inner filter, *and*
/// the set of bushy children reducing the build all agree — anything
/// less would let a reduced table serve an edge whose probes must see
/// the reduced-out rows.
type BuildKey = (TableId, usize, Option<(usize, Predicate)>, Vec<usize>);

/// Everything one edge's probe needs, shared read-only by all workers.
struct EdgeRun {
    /// The (possibly cache-shared) hash table + decoded keys.
    shared: Arc<SharedBuild>,
    /// The per-edge right output representation.
    rep: InnerRep,
    /// Where this edge's probe keys come from.
    source: KeyFetch,
}

/// Resolved key source: a base-column reader, or the decoded key column
/// of an earlier edge's inner table (by execution slot).
enum KeyFetch {
    Base(ColumnReader),
    Prev { slot: usize, keys: Arc<Vec<Value>> },
}

/// One span's probe keys for one edge, in whichever domain that edge's
/// build hashes: u32 dictionary codes when the span's key blocks carry
/// the build's shared dictionary, decoded values otherwise.
enum ProbeKeys {
    Values(Vec<Value>),
    Codes(Vec<u32>),
}

impl ProbeKeys {
    fn len(&self) -> usize {
        match self {
            ProbeKeys::Values(v) => v.len(),
            ProbeKeys::Codes(c) => c.len(),
        }
    }
}

/// Build (or fetch from cache) edge `ei`'s [`SharedBuild`], first
/// building every bushy child reducing it. Memoized per spec index, so
/// the probe loop later finds every build ready whatever order the
/// recursion produced them in.
#[allow(clippy::too_many_arguments)]
fn ensure_shared(
    store: &Store,
    spec: &JoinTreeSpec,
    plan: &JoinTreePlan,
    opts: &ExecOptions,
    sink: &IoSink,
    bushy_children: &[Vec<usize>],
    cache: &mut HashMap<BuildKey, Arc<SharedBuild>>,
    shared_by_spec: &mut Vec<Option<Arc<SharedBuild>>>,
    stats: &mut JoinTreeStats,
    ei: usize,
) -> Result<Arc<SharedBuild>> {
    if let Some(s) = &shared_by_spec[ei] {
        return Ok(Arc::clone(s));
    }
    let mut child_builds: Vec<(usize, Arc<SharedBuild>)> = Vec::new();
    for &c in &bushy_children[ei] {
        let cb = ensure_shared(
            store,
            spec,
            plan,
            opts,
            sink,
            bushy_children,
            cache,
            shared_by_spec,
            stats,
            c,
        )?;
        child_builds.push((c, cb));
    }
    let edge = &spec.edges[ei];
    let key: BuildKey = (
        edge.right,
        edge.right_key,
        edge.right_filter,
        bushy_children[ei].clone(),
    );
    let shared = match cache.get(&key) {
        Some(s) if plan.reuse_builds => {
            stats.build_reuses += 1;
            Arc::clone(s)
        }
        _ => {
            let mut reducers: Vec<BuildReducer<'_>> = edge
                .right_filter
                .iter()
                .map(|&(c, p)| BuildReducer::Filter(c, p))
                .collect();
            for (c, cb) in &child_builds {
                reducers.push(BuildReducer::SemiJoin {
                    col: spec.edges[*c].left_key,
                    child: cb,
                });
            }
            let s = Arc::new(SharedBuild::build(
                store,
                edge.right,
                edge.right_key,
                &reducers,
                opts,
                Some(sink),
            )?);
            stats.builds += 1;
            cache.insert(key, Arc::clone(&s));
            s
        }
    };
    shared_by_spec[ei] = Some(Arc::clone(&shared));
    Ok(shared)
}

/// Where one flat spec-order output column's values come from.
#[derive(Clone, Copy)]
enum OutCol {
    /// Index into edge 0's `left_output` (a base column).
    Base(usize),
    /// Column `col` of edge `spec_idx`'s right output.
    Edge { spec_idx: usize, col: usize },
}

/// Resolve flat output index `idx` (validated < output width) to its
/// source column.
fn resolve_out_col(spec: &JoinTreeSpec, idx: usize) -> OutCol {
    let base_w = spec.edges[0].left_output.len();
    if idx < base_w {
        return OutCol::Base(idx);
    }
    let mut off = base_w;
    for (ei, e) in spec.edges.iter().enumerate() {
        if idx < off + e.right_output.len() {
            return OutCol::Edge {
                spec_idx: ei,
                col: idx - off,
            };
        }
        off += e.right_output.len();
    }
    unreachable!("output index validated against output_width")
}

/// The aggregate's columns resolved to their fetch sources.
struct AggCols {
    spec: AggSpec,
    group: OutCol,
    value: OutCol,
}

/// One span's contribution: row-major output values, or a partial
/// aggregate when the tree is topped by a GROUP BY — plus the span's
/// zone-map block skips.
struct TreeFragment {
    flat: Vec<Value>,
    agg: Option<Aggregator>,
    zone_skips: u64,
}

/// Execute the tree in spec order under per-edge strategies, with
/// default options.
pub fn hash_join_tree(
    store: &Store,
    spec: &JoinTreeSpec,
    inners: &[InnerStrategy],
) -> Result<QueryResult> {
    Ok(hash_join_tree_with_options(
        store,
        spec,
        &JoinTreePlan::in_spec_order(inners.to_vec()),
        &ExecOptions::default(),
    )?
    .0)
}

/// Execute the tree under an explicit [`JoinTreePlan`] and
/// [`ExecOptions`], returning the result and the tree-level
/// measurements. Byte-identical at any worker count for a fixed plan.
pub fn hash_join_tree_with_options(
    store: &Store,
    spec: &JoinTreeSpec,
    plan: &JoinTreePlan,
    opts: &ExecOptions,
) -> Result<(QueryResult, JoinTreeStats)> {
    spec.validate()?;
    plan.validate(spec)?;
    let base = spec.base();
    let (base_info, base_delta) = store.scan_snapshot(base)?;
    let edge0 = &spec.edges[0];

    // Output shape in spec order, validated before any I/O.
    let mut names: Vec<String> = Vec::with_capacity(spec.output_width());
    for &c in &edge0.left_output {
        names.push(base_info.column(c)?.name.clone());
    }
    for e in &spec.edges {
        let right_info = store.projection(e.right)?;
        for &c in &e.right_output {
            names.push(right_info.column(c)?.name.clone());
        }
    }
    if names.is_empty() {
        return Err(Error::invalid("join tree must output at least one column"));
    }

    let t0 = Instant::now();
    // Per-query I/O: every pipeline run and build fan-out below harvests
    // its threads' meter state into this sink, so `stats.io` is exactly
    // this query's reads even with other sessions running concurrently
    // (a global-meter diff would interleave theirs). First drop any
    // residue an errored-out previous execution left on this thread.
    store.meter().forget_current_thread();
    let sink = IoSink::new();
    let mut stats = JoinTreeStats::default();

    // ---- Build phase, in execution order --------------------------------
    // One SharedBuild per distinct build signature (see [`BuildKey`]);
    // the per-edge representation is always edge-local (outputs and
    // strategy differ per edge; re-fetches of shared columns are pool
    // hits). A bushy edge's table is built *before* its parent's — the
    // recursion in [`ensure_shared`] — so the parent build can
    // semi-reduce against it.
    let n_edges = spec.edges.len();
    let mut bushy_children: Vec<Vec<usize>> = vec![Vec::new(); n_edges];
    for ei in 0..n_edges {
        if plan.is_bushy(ei) {
            if let JoinKeySource::Edge(p) = spec.key_source(ei)? {
                bushy_children[p].push(ei);
            }
        }
    }
    let mut cache: HashMap<BuildKey, Arc<SharedBuild>> = HashMap::new();
    let mut shared_by_spec: Vec<Option<Arc<SharedBuild>>> = vec![None; n_edges];
    for &ei in &plan.order {
        ensure_shared(
            store,
            spec,
            plan,
            opts,
            &sink,
            &bushy_children,
            &mut cache,
            &mut shared_by_spec,
            &mut stats,
            ei,
        )?;
    }
    let mut spec_to_slot = vec![usize::MAX; n_edges];
    let mut runs: Vec<EdgeRun> = Vec::with_capacity(n_edges);
    for &ei in &plan.order {
        let edge = &spec.edges[ei];
        let shared = Arc::clone(shared_by_spec[ei].as_ref().expect("built above"));
        let rep = InnerRep::build(
            store,
            &shared,
            &edge.right_output,
            plan.inners[ei],
            opts.query_token,
            Some(&sink),
        )?;
        let source = match spec.key_source(ei)? {
            JoinKeySource::Base => {
                KeyFetch::Base(store.reader_for(base_info.column(edge.left_key)?)?)
            }
            JoinKeySource::Edge(j) => {
                let j_slot = spec_to_slot[j];
                debug_assert_ne!(j_slot, usize::MAX, "plan validated above");
                let through = &runs[j_slot];
                // Keying through the column the table was hashed on
                // reuses its decoded keys; any other column decodes once
                // here — base rows from the through-table's snapshot
                // files, delta inserts appended in stamp order so the
                // array stays indexable by logical position — shared
                // read-only by every probe worker.
                let keys = if spec.edges[j].right_key == edge.left_key {
                    Arc::clone(&through.shared.keys)
                } else {
                    let ts = &through.shared;
                    let mut v = Vec::with_capacity(ts.rows as usize);
                    if ts.base_rows > 0 {
                        let reader = store.reader_for(ts.info.column(edge.left_key)?)?;
                        let mini = MiniColumn::fetch(&reader, PosRange::new(0, ts.base_rows))?;
                        mini.decode(&mut v)?;
                    }
                    if let Some(d) = &ts.delta {
                        v.extend(d.inserts.iter().map(|row| row[edge.left_key]));
                    }
                    Arc::new(v)
                };
                KeyFetch::Prev { slot: j_slot, keys }
            }
        };
        spec_to_slot[ei] = runs.len();
        runs.push(EdgeRun {
            shared,
            rep,
            source,
        });
    }

    // Base-side readers, pinned to the base snapshot, shared by every
    // probe worker.
    let base_filter_reader = match &edge0.left_filter {
        Some((col, _)) => Some(store.reader_for(base_info.column(*col)?)?),
        None => None,
    };
    let base_out_readers: Vec<ColumnReader> = edge0
        .left_output
        .iter()
        .map(|&c| store.reader_for(base_info.column(c)?))
        .collect::<Result<_>>()?;
    let base_deletes: Vec<u64> = base_delta
        .as_ref()
        .map_or(Vec::new(), |d| d.base_deletes().to_vec());

    // The aggregate's columns, resolved once (validated by
    // `spec.validate`).
    let agg_cols: Option<AggCols> = spec.aggregate.map(|a| AggCols {
        spec: a,
        group: resolve_out_col(spec, a.group_col),
        value: resolve_out_col(spec, a.value_col),
    });

    // ---- Probe phase: span-parallel over the base table's base rows -----
    let pipeline = FragmentPipeline::new(
        base_info.num_rows,
        opts.granule.max(1),
        opts.parallelism.max(1),
    );
    let token = opts.query_token;
    let zone_maps = opts.zone_maps;
    let (fragments, steals) = pipeline.run_counted_sunk(store.meter(), Some(&sink), |span| {
        set_thread_query_token(token);
        probe_tree_span(
            spec,
            &runs,
            &spec_to_slot,
            &base_filter_reader,
            &base_out_readers,
            &base_deletes,
            agg_cols.as_ref(),
            zone_maps,
            span,
        )
    })?;

    // Fragments are row-major and runs merge in global granule order, so
    // concatenation reproduces the serial row order byte for byte;
    // partial aggregates merge associatively, so the merged accumulator
    // equals the serial stream's.
    let mut fragments = fragments.into_iter();
    let first = fragments.next().expect("at least one span");
    let mut flat = first.flat;
    let mut agg_acc = first.agg;
    stats.zone_skips = first.zone_skips;
    for frag in fragments {
        stats.zone_skips += frag.zone_skips;
        match (&mut agg_acc, frag.agg) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => flat.extend(frag.flat),
            _ => unreachable!("fragments share the aggregate mode"),
        }
    }
    // ---- Base delta pass: serial, in stamp order ------------------------
    // Row-oriented base-table inserts run the same probe pipeline after
    // every base fragment — exactly where those rows sit in position
    // order. Under an aggregate the delta rows feed the accumulator
    // tuple-at-a-time (the delta is row-oriented already).
    if let Some(d) = &base_delta {
        let drows = probe_tree_delta(spec, &runs, &spec_to_slot, &plan.order, d)?;
        match (&mut agg_acc, &agg_cols) {
            (Some(a), Some(ac)) => {
                for row in drows.chunks_exact(spec.output_width()) {
                    a.add(row[ac.spec.group_col], row[ac.spec.value_col]);
                }
            }
            _ => flat.extend(drows),
        }
    }
    let result = match (agg_acc, &agg_cols) {
        (Some(a), Some(ac)) => {
            // Output shape matches the scan executor's aggregation:
            // (group, func_value), rows sorted by group — canonical, so
            // every plan shape produces identical bytes.
            let out_names = vec![
                names[ac.spec.group_col].clone(),
                format!("{}_{}", ac.spec.func.name(), names[ac.spec.value_col]),
            ];
            let mut agg_flat = Vec::with_capacity(a.num_groups() * 2);
            for (g, v) in a.finish() {
                agg_flat.push(g);
                agg_flat.push(v);
            }
            QueryResult::from_flat(out_names, agg_flat)
        }
        _ => QueryResult::from_flat(names, flat),
    };
    stats.steals = steals;
    stats.rows_out = result.num_rows() as u64;
    stats.wall = t0.elapsed();
    stats.io = sink.total();
    Ok((result, stats))
}

/// Run the full filter→probe→…→probe→fetch→stitch pipeline over one
/// base-table span, returning the span's row-major output fragment — or,
/// under an aggregate, a partial accumulator built from just the group
/// and value columns (everything else is never fetched).
#[allow(clippy::too_many_arguments)]
fn probe_tree_span(
    spec: &JoinTreeSpec,
    runs: &[EdgeRun],
    spec_to_slot: &[usize],
    base_filter_reader: &Option<ColumnReader>,
    base_out_readers: &[ColumnReader],
    base_deletes: &[u64],
    agg: Option<&AggCols>,
    zone_maps: bool,
    span: PosRange,
) -> Result<TreeFragment> {
    let edge0 = &spec.edges[0];
    let mut zone_skips = 0u64;
    // ---- Base side, span-local ------------------------------------------
    let desc = match (&edge0.left_filter, base_filter_reader) {
        (Some((_, pred)), Some(reader)) => {
            // Zone maps: blocks whose min/max range cannot satisfy the
            // predicate are never read. The pruned mini scans the blocks
            // that remain; a skipped block contributes no positions, which
            // is exactly what scanning it would have produced.
            let mini = if zone_maps {
                let (mini, pruned) = MiniColumn::fetch_pruned(reader, span, pred)?;
                zone_skips = pruned;
                mini
            } else {
                MiniColumn::fetch(reader, span)?
            };
            mini.scan_positions(pred)
        }
        _ => PosList::full(span),
    };
    // Deleted base rows never reach the probes (nor any value fetch).
    let lo = base_deletes.partition_point(|&p| p < span.start);
    let hi = base_deletes.partition_point(|&p| p < span.end);
    let desc = filter_deleted(desc, &base_deletes[lo..hi]);

    // ---- The pipelined position intermediate ----------------------------
    // Row i of the intermediate is (base_pos[i], rights[0][i], ...,
    // rights[slot-1][i]); every probe extends it in place.
    let mut base_pos: Vec<Pos> = desc.iter().collect();
    let mut rights: Vec<Vec<u32>> = Vec::with_capacity(runs.len());
    for run in runs {
        let keys: ProbeKeys = match &run.source {
            KeyFetch::Base(reader) => {
                let mini = MiniColumn::fetch(reader, span)?;
                // Compressed probe: key blocks sharing the build's
                // dictionary (fingerprint, then the dictionary itself)
                // probe with gathered u32 codes — no key decodes.
                let code_probe = run.shared.code_dict().is_some_and(|(fp, dict)| {
                    mini.shared_dict_fingerprint() == Some(fp) && mini.shared_dict() == Some(dict)
                });
                if code_probe {
                    let codes = fetch_codes_expanded(&mini, &base_pos)?;
                    matstrat_common::codeops::add(codes.len() as u64);
                    ProbeKeys::Codes(codes)
                } else {
                    ProbeKeys::Values(fetch_expanded(&mini, &base_pos)?)
                }
            }
            KeyFetch::Prev { slot: j, keys } => {
                ProbeKeys::Values(rights[*j].iter().map(|&rp| keys[rp as usize]).collect())
            }
        };
        // Fan out: base positions ascend and each key's match list
        // ascends, so row order stays the nested-loop order of the
        // execution sequence.
        let mut new_base = Vec::with_capacity(base_pos.len());
        let mut new_rights: Vec<Vec<u32>> =
            rights.iter().map(|r| Vec::with_capacity(r.len())).collect();
        let mut this_right: Vec<u32> = Vec::with_capacity(base_pos.len());
        for i in 0..keys.len() {
            let rps = match &keys {
                ProbeKeys::Values(v) => run.shared.probe(v[i]),
                ProbeKeys::Codes(c) => run.shared.probe_code(c[i]),
            };
            if let Some(rps) = rps {
                for &rp in rps {
                    new_base.push(base_pos[i]);
                    for (c, col) in new_rights.iter_mut().enumerate() {
                        col.push(rights[c][i]);
                    }
                    this_right.push(rp);
                }
            }
        }
        base_pos = new_base;
        rights = new_rights;
        rights.push(this_right);
    }
    let out_rows = base_pos.len();

    // ---- Aggregate mode: fold, never stitch -----------------------------
    // Only the group column (and the value column, when the function
    // reads values) are ever materialized; the other output columns are
    // never fetched. Adjacent equal groups fold as one run.
    if let Some(ac) = agg {
        let mut gathered: Vec<Option<Vec<Vec<Value>>>> = vec![None; runs.len()];
        let groups = fetch_out_col(
            &ac.group,
            base_out_readers,
            runs,
            spec_to_slot,
            &base_pos,
            &rights,
            span,
            &mut gathered,
        )?;
        let mut acc = Aggregator::new_fn(ac.spec.func);
        if ac.spec.func.needs_values() {
            let vals = fetch_out_col(
                &ac.value,
                base_out_readers,
                runs,
                spec_to_slot,
                &base_pos,
                &rights,
                span,
                &mut gathered,
            )?;
            let mut i = 0;
            while i < out_rows {
                let g = groups[i];
                let mut j = i + 1;
                while j < out_rows && groups[j] == g {
                    j += 1;
                }
                acc.add_slice(g, &vals[i..j]);
                i = j;
            }
        } else {
            let mut i = 0;
            while i < out_rows {
                let g = groups[i];
                let mut j = i + 1;
                while j < out_rows && groups[j] == g {
                    j += 1;
                }
                acc.add_count(g, (j - i) as u64);
                i = j;
            }
        }
        return Ok(TreeFragment {
            flat: Vec::new(),
            agg: Some(acc),
            zone_skips,
        });
    }

    // ---- Value fetch, once, at the top ----------------------------------
    // Base output values: merge on the sorted (duplicated) positions.
    let mut base_cols: Vec<Vec<Value>> = Vec::with_capacity(base_out_readers.len());
    for reader in base_out_readers {
        let mini = MiniColumn::fetch(reader, span)?;
        base_cols.push(fetch_expanded(&mini, &base_pos)?);
    }
    // Right output values per edge, by that edge's strategy.
    let mut right_cols: Vec<Vec<Vec<Value>>> = Vec::with_capacity(runs.len());
    for (slot, run) in runs.iter().enumerate() {
        right_cols.push(run.rep.gather(&rights[slot])?);
    }

    // ---- Final tuple stitching, columns in spec order --------------------
    let width = base_cols.len() + runs.iter().map(|r| r.rep.width()).sum::<usize>();
    let mut flat = Vec::with_capacity(out_rows * width);
    for i in 0..out_rows {
        for col in &base_cols {
            flat.push(col[i]);
        }
        for ei in 0..spec.edges.len() {
            for col in &right_cols[spec_to_slot[ei]] {
                flat.push(col[i]);
            }
        }
    }
    Ok(TreeFragment {
        flat,
        agg: None,
        zone_skips,
    })
}

/// Materialize one output column of the join tree for the current
/// intermediate: a base column merges on the (sorted, duplicated) base
/// positions; an edge column gathers through that edge's inner
/// representation, memoized per slot so a group and value on the same
/// edge gather once.
#[allow(clippy::too_many_arguments)]
fn fetch_out_col(
    oc: &OutCol,
    base_out_readers: &[ColumnReader],
    runs: &[EdgeRun],
    spec_to_slot: &[usize],
    base_pos: &[Pos],
    rights: &[Vec<u32>],
    span: PosRange,
    gathered: &mut [Option<Vec<Vec<Value>>>],
) -> Result<Vec<Value>> {
    match *oc {
        OutCol::Base(i) => {
            let mini = MiniColumn::fetch(&base_out_readers[i], span)?;
            fetch_expanded(&mini, base_pos)
        }
        OutCol::Edge { spec_idx, col } => {
            let slot = spec_to_slot[spec_idx];
            if gathered[slot].is_none() {
                gathered[slot] = Some(runs[slot].rep.gather(&rights[slot])?);
            }
            Ok(gathered[slot].as_ref().unwrap()[col].clone())
        }
    }
}

/// Probe every live base-table delta-insert row through the whole edge
/// sequence, serially, in stamp order — the delta counterpart of
/// [`probe_tree_span`]. Keys come straight from the row-oriented insert
/// (base key columns) or from a previous slot's key array (which covers
/// delta positions of *that* table too), so the fan-out nesting matches
/// the span path's exactly.
fn probe_tree_delta(
    spec: &JoinTreeSpec,
    runs: &[EdgeRun],
    spec_to_slot: &[usize],
    slot_to_spec: &[usize],
    delta: &TableDelta,
) -> Result<Vec<Value>> {
    let edge0 = &spec.edges[0];
    let mut flat = Vec::new();
    for (i, row) in delta.inserts.iter().enumerate() {
        if delta.is_deleted(delta.base_rows + i as u64) {
            continue;
        }
        if let Some((c, pred)) = &edge0.left_filter {
            if !pred.matches(row[*c]) {
                continue;
            }
        }
        // One combo per surviving intermediate row: the matched right
        // position per completed slot. Every probe extends the set in
        // nested-loop order, exactly as the span path's fan-out does.
        let mut combos: Vec<Vec<u32>> = vec![Vec::new()];
        for (slot, run) in runs.iter().enumerate() {
            let mut next: Vec<Vec<u32>> = Vec::new();
            for combo in &combos {
                let key = match &run.source {
                    KeyFetch::Base(_) => row[spec.edges[slot_to_spec[slot]].left_key],
                    KeyFetch::Prev { slot: j, keys } => keys[combo[*j] as usize],
                };
                if let Some(rps) = run.shared.probe(key) {
                    for &rp in rps {
                        let mut c = combo.clone();
                        c.push(rp);
                        next.push(c);
                    }
                }
            }
            combos = next;
            if combos.is_empty() {
                break;
            }
        }
        if combos.is_empty() {
            continue;
        }
        let mut right_cols: Vec<Vec<Vec<Value>>> = Vec::with_capacity(runs.len());
        for (slot, run) in runs.iter().enumerate() {
            let rps: Vec<u32> = combos.iter().map(|c| c[slot]).collect();
            right_cols.push(run.rep.gather(&rps)?);
        }
        for ci in 0..combos.len() {
            for &c in &edge0.left_output {
                flat.push(row[c]);
            }
            for ei in 0..spec.edges.len() {
                for col in &right_cols[spec_to_slot[ei]] {
                    flat.push(col[ci]);
                }
            }
        }
    }
    Ok(flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::join::{hash_join, JoinSpec};
    use crate::AggFunc;
    use matstrat_common::Predicate;
    use matstrat_storage::{EncodingKind as Ek, ProjectionSpec, SortOrder, Store};

    /// orders(custkey, datekey, shipdate) star-joined to customer and a
    /// date dimension; customer snowflakes to nation.
    fn setup() -> (Store, JoinTreeSpec) {
        let store = Store::in_memory();
        let n = 90i64;
        let custkey: Vec<Value> = (0..n).map(|i| i % 15).collect();
        let datekey: Vec<Value> = (0..n).map(|i| (i * 7) % 10).collect();
        let shipdate: Vec<Value> = (0..n).collect();
        let orders = store
            .load_projection(
                &ProjectionSpec::new("orders")
                    .column("custkey", Ek::Plain, SortOrder::None)
                    .column("datekey", Ek::Plain, SortOrder::None)
                    .column("shipdate", Ek::Plain, SortOrder::None),
                &[&custkey, &datekey, &shipdate],
            )
            .unwrap();
        let ck: Vec<Value> = (0..15).collect();
        let nationkey: Vec<Value> = (0..15).map(|i| i % 4).collect();
        let customer = store
            .load_projection(
                &ProjectionSpec::new("customer")
                    .column("custkey", Ek::Plain, SortOrder::Primary)
                    .column("nationkey", Ek::Plain, SortOrder::None),
                &[&ck, &nationkey],
            )
            .unwrap();
        let dk: Vec<Value> = (0..10).collect();
        let dname: Vec<Value> = (0..10).map(|i| 100 + i).collect();
        let date = store
            .load_projection(
                &ProjectionSpec::new("date")
                    .column("datekey", Ek::Plain, SortOrder::Primary)
                    .column("dname", Ek::Plain, SortOrder::None),
                &[&dk, &dname],
            )
            .unwrap();
        let nk: Vec<Value> = (0..4).collect();
        let region: Vec<Value> = (0..4).map(|i| i * 1000).collect();
        let nation = store
            .load_projection(
                &ProjectionSpec::new("nation")
                    .column("nationkey", Ek::Plain, SortOrder::Primary)
                    .column("region", Ek::Plain, SortOrder::None),
                &[&nk, &region],
            )
            .unwrap();
        let spec = JoinTreeSpec::new(vec![
            JoinSpec {
                left: orders,
                right: customer,
                left_key: 0,
                right_key: 0,
                left_filter: Some((0, Predicate::lt(12))),
                right_filter: None,
                left_output: vec![2],
                right_output: vec![1],
            },
            JoinSpec {
                left: orders,
                right: date,
                left_key: 1,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![1],
            },
            JoinSpec {
                left: customer,
                right: nation,
                left_key: 1,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![1],
            },
        ]);
        (store, spec)
    }

    /// Row-level oracle straight from the generators.
    fn reference_rows() -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for i in 0..90i64 {
            let ck = i % 15;
            if ck >= 12 {
                continue;
            }
            let nk = ck % 4;
            rows.push(vec![i, nk, 100 + (i * 7) % 10, nk * 1000]);
        }
        rows.sort_unstable();
        rows
    }

    #[test]
    fn three_edge_tree_matches_row_oracle_for_all_strategies() {
        let (store, spec) = setup();
        for inner in InnerStrategy::ALL {
            let r = hash_join_tree(&store, &spec, &[inner; 3]).unwrap();
            assert_eq!(
                r.column_names,
                vec!["shipdate", "nationkey", "dname", "region"],
                "columns in spec order"
            );
            assert_eq!(r.sorted_rows(), reference_rows(), "{inner:?}");
        }
    }

    #[test]
    fn single_edge_tree_is_byte_identical_to_hash_join() {
        let (store, spec) = setup();
        let one = JoinTreeSpec::new(vec![spec.edges[0].clone()]);
        for inner in InnerStrategy::ALL {
            let tree = hash_join_tree(&store, &one, &[inner]).unwrap();
            let single = hash_join(&store, &spec.edges[0], inner).unwrap();
            assert_eq!(tree.flat(), single.flat(), "{inner:?}");
            assert_eq!(tree.column_names, single.column_names);
        }
    }

    #[test]
    fn execution_order_changes_rows_not_the_row_set_or_columns() {
        let (store, spec) = setup();
        let inners = [InnerStrategy::MultiColumn; 3];
        let spec_order = hash_join_tree(&store, &spec, &inners).unwrap();
        // date first, then customer, then nation (still dependency-valid).
        let plan = JoinTreePlan {
            order: vec![1, 0, 2],
            inners: inners.to_vec(),
            bushy: Vec::new(),
            reuse_builds: true,
        };
        let reordered = hash_join_tree_with_options(&store, &spec, &plan, &ExecOptions::default())
            .unwrap()
            .0;
        assert_eq!(reordered.column_names, spec_order.column_names);
        assert_eq!(reordered.sorted_rows(), spec_order.sorted_rows());
    }

    #[test]
    fn snowflake_before_its_parent_is_rejected() {
        let (store, spec) = setup();
        let plan = JoinTreePlan {
            order: vec![2, 0, 1], // nation keys through customer: invalid first
            inners: vec![InnerStrategy::MultiColumn; 3],
            bushy: Vec::new(),
            reuse_builds: true,
        };
        let err =
            hash_join_tree_with_options(&store, &spec, &plan, &ExecOptions::default()).unwrap_err();
        assert!(err.to_string().contains("has not executed yet"), "{err}");
    }

    #[test]
    fn validation_rejects_malformed_trees() {
        let (store, spec) = setup();
        // Later edge with a filter.
        let mut bad = spec.clone();
        bad.edges[1].left_filter = Some((0, Predicate::lt(3)));
        assert!(hash_join_tree(&store, &bad, &[InnerStrategy::MultiColumn; 3]).is_err());
        // Later edge with base outputs.
        let mut bad = spec.clone();
        bad.edges[2].left_output = vec![0];
        assert!(hash_join_tree(&store, &bad, &[InnerStrategy::MultiColumn; 3]).is_err());
        // Unresolvable key source: nation joined through a table that is
        // in no earlier edge.
        let mut bad = spec.clone();
        bad.edges[2].left = bad.edges[2].right;
        assert!(hash_join_tree(&store, &bad, &[InnerStrategy::MultiColumn; 3]).is_err());
        // Strategy count mismatch.
        assert!(hash_join_tree(&store, &spec, &[InnerStrategy::MultiColumn; 2]).is_err());
        // Empty tree.
        assert!(hash_join_tree(&store, &JoinTreeSpec::new(vec![]), &[]).is_err());
    }

    #[test]
    fn duplicate_inner_table_builds_once_and_reuse_is_invisible() {
        // The date dimension probed on two different base columns: one
        // build, two probes — and the bytes match a rebuild-per-edge run.
        let store = Store::in_memory();
        let n = 200i64;
        let odate: Vec<Value> = (0..n).map(|i| i % 10).collect();
        let sdate: Vec<Value> = (0..n).map(|i| (i * 3) % 10).collect();
        let orders = store
            .load_projection(
                &ProjectionSpec::new("orders")
                    .column("odate", Ek::Plain, SortOrder::None)
                    .column("sdate", Ek::Plain, SortOrder::None),
                &[&odate, &sdate],
            )
            .unwrap();
        let dk: Vec<Value> = (0..10).collect();
        let dname: Vec<Value> = (0..10).map(|i| 100 + i).collect();
        let date = store
            .load_projection(
                &ProjectionSpec::new("date")
                    .column("datekey", Ek::Plain, SortOrder::Primary)
                    .column("dname", Ek::Plain, SortOrder::None),
                &[&dk, &dname],
            )
            .unwrap();
        let spec = JoinTreeSpec::new(vec![
            JoinSpec {
                left: orders,
                right: date,
                left_key: 0,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![0, 1],
                right_output: vec![1],
            },
            JoinSpec {
                left: orders,
                right: date,
                left_key: 1,
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![1],
            },
        ]);
        let inners = vec![InnerStrategy::MultiColumn; 2];
        let reuse = JoinTreePlan::in_spec_order(inners.clone());
        let (r1, s1) =
            hash_join_tree_with_options(&store, &spec, &reuse, &ExecOptions::default()).unwrap();
        assert_eq!(s1.builds, 1, "one build for two edges");
        assert_eq!(s1.build_reuses, 1);
        let rebuild = JoinTreePlan {
            reuse_builds: false,
            ..reuse
        };
        let (r2, s2) =
            hash_join_tree_with_options(&store, &spec, &rebuild, &ExecOptions::default()).unwrap();
        assert_eq!(s2.builds, 2, "rebuild per edge when reuse is off");
        assert_eq!(s2.build_reuses, 0);
        assert_eq!(r1.flat(), r2.flat(), "reuse is invisible in the bytes");
        assert_eq!(r1.num_rows() as u64, s1.rows_out);
        // Every order row matches both date probes: n rows out.
        assert_eq!(r1.num_rows(), 200);
    }

    #[test]
    fn bushy_snowflake_edge_is_byte_identical_to_deep_execution() {
        let (store, spec) = setup();
        let inners = vec![InnerStrategy::MultiColumn; 3];
        let deep = JoinTreePlan::in_spec_order(inners.clone());
        let bushy = JoinTreePlan {
            bushy: vec![false, false, true], // nation folds into customer's build
            ..JoinTreePlan::in_spec_order(inners)
        };
        for workers in [1usize, 4] {
            let opts = ExecOptions {
                granule: 16,
                parallelism: workers,
                ..ExecOptions::default()
            };
            let d = hash_join_tree_with_options(&store, &spec, &deep, &opts)
                .unwrap()
                .0;
            let b = hash_join_tree_with_options(&store, &spec, &bushy, &opts)
                .unwrap()
                .0;
            assert_eq!(b.flat(), d.flat(), "workers={workers}");
            assert_eq!(b.column_names, d.column_names);
        }
    }

    #[test]
    fn bushy_flag_on_a_star_edge_is_rejected() {
        let (store, spec) = setup();
        let plan = JoinTreePlan {
            bushy: vec![true, false, false], // edge 0 probes the base
            ..JoinTreePlan::in_spec_order(vec![InnerStrategy::MultiColumn; 3])
        };
        let err =
            hash_join_tree_with_options(&store, &spec, &plan, &ExecOptions::default()).unwrap_err();
        assert!(err.to_string().contains("bushy"), "{err}");
    }

    #[test]
    fn dimension_predicate_pushdown_matches_the_post_filter_oracle() {
        let (store, mut spec) = setup();
        // Keep only nations {0, 1}: push the predicate into customer's
        // build, versus filtering the unpushed result on the nationkey
        // output column (index 1 in spec order).
        spec.edges[0].right_filter = Some((1, Predicate::lt(2)));
        let mut unpushed = spec.clone();
        unpushed.edges[0].right_filter = None;
        for inner in InnerStrategy::ALL {
            let pushed = hash_join_tree(&store, &spec, &[inner; 3]).unwrap();
            let oracle: Vec<Vec<Value>> = hash_join_tree(&store, &unpushed, &[inner; 3])
                .unwrap()
                .rows()
                .map(|r| r.to_vec())
                .filter(|r| r[1] < 2)
                .collect();
            let mut got: Vec<Vec<Value>> = pushed.rows().map(|r| r.to_vec()).collect();
            let mut want = oracle;
            got.sort_unstable();
            want.sort_unstable();
            assert!(!want.is_empty(), "oracle must keep some rows");
            assert_eq!(got, want, "{inner:?}");
        }
    }

    #[test]
    fn aggregate_over_tree_matches_manual_aggregation_of_the_flat_result() {
        let (store, spec) = setup();
        let inners = [InnerStrategy::MultiColumn; 3];
        let flat = hash_join_tree(&store, &spec, &inners).unwrap();
        // GROUP BY nationkey (col 1), aggregate over dname (col 2).
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let agg_spec = spec.clone().aggregate_fn(1, 2, func);
            let got = hash_join_tree(&store, &agg_spec, &inners).unwrap();
            let mut groups: std::collections::BTreeMap<Value, Vec<Value>> =
                std::collections::BTreeMap::new();
            for row in flat.rows() {
                groups.entry(row[1]).or_default().push(row[2]);
            }
            let want: Vec<Vec<Value>> = groups
                .into_iter()
                .map(|(g, vs)| {
                    let v = match func {
                        AggFunc::Sum => vs.iter().sum(),
                        AggFunc::Count => vs.len() as Value,
                        AggFunc::Min => *vs.iter().min().unwrap(),
                        AggFunc::Max => *vs.iter().max().unwrap(),
                    };
                    vec![g, v]
                })
                .collect();
            let rows: Vec<Vec<Value>> = got.rows().map(|r| r.to_vec()).collect();
            assert_eq!(rows, want, "{func:?}");
            assert_eq!(got.column_names[0], "nationkey", "{func:?}");
        }
    }

    #[test]
    fn parallel_tree_is_byte_identical() {
        let (store, spec) = setup();
        for inner in InnerStrategy::ALL {
            let opts = |workers| ExecOptions {
                granule: 16,
                parallelism: workers,
                ..ExecOptions::default()
            };
            let plan = JoinTreePlan::in_spec_order(vec![inner; 3]);
            let serial = hash_join_tree_with_options(&store, &spec, &plan, &opts(1))
                .unwrap()
                .0;
            for workers in [2, 3, 8] {
                let par = hash_join_tree_with_options(&store, &spec, &plan, &opts(workers))
                    .unwrap()
                    .0;
                assert_eq!(par.flat(), serial.flat(), "{inner:?} workers={workers}");
            }
        }
    }
}
