//! GROUP BY aggregation, in both input shapes.
//!
//! Early-materialization plans hand the aggregator constructed tuples; it
//! pays a tuple-iterator step per input row ([`Aggregator::add`]).
//! Late-materialization plans hand it a position descriptor, the
//! compressed group column, and the summed values — the aggregator then
//! consumes whole *runs* of the group column at a time
//! ([`aggregate_runs`]), which is the §4.2 "operate directly on
//! compressed data" win: an RLE run of 10,000 equal group values costs
//! one accumulator update per run boundary, not 10,000.
//!
//! The paper's experiments use SUM; COUNT, MIN and MAX are provided as
//! extensions (COUNT additionally lets LM plans skip fetching the value
//! column entirely).

use std::collections::HashMap;

use matstrat_common::{PosRange, Result, Value};
use matstrat_poslist::PosList;

use crate::multicol::MiniColumn;

/// Upper bound on the dense-array domain span (8 Mi groups ≈ 64 MB).
const DENSE_LIMIT: i64 = 1 << 23;

/// The aggregate function applied per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of the value column (the paper's experiments).
    Sum,
    /// Count of surviving rows; the value column is never fetched by
    /// LM plans.
    Count,
    /// Minimum of the value column.
    Min,
    /// Maximum of the value column.
    Max,
}

impl AggFunc {
    /// Name used for the output column (`sum_x`, `count_x`, …).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Whether the function needs the value column's values at all.
    pub fn needs_values(self) -> bool {
        !matches!(self, AggFunc::Count)
    }

    #[inline]
    fn identity(self) -> Value {
        match self {
            AggFunc::Sum | AggFunc::Count => 0,
            AggFunc::Min => Value::MAX,
            AggFunc::Max => Value::MIN,
        }
    }

    #[inline]
    fn combine(self, acc: Value, x: Value) -> Value {
        match self {
            AggFunc::Sum | AggFunc::Count => acc.wrapping_add(x),
            AggFunc::Min => acc.min(x),
            AggFunc::Max => acc.max(x),
        }
    }

    /// Fold a slice of values into one partial aggregate (for `Count`
    /// the slice length is the contribution).
    #[inline]
    fn fold_slice(self, vals: &[Value]) -> Value {
        match self {
            AggFunc::Count => vals.len() as Value,
            _ => vals
                .iter()
                .fold(self.identity(), |a, &v| self.combine(a, v)),
        }
    }
}

enum Repr {
    /// Groups fall in a small dense domain: flat array indexed by
    /// `group - offset`.
    Dense {
        offset: Value,
        accs: Vec<Value>,
        seen: Vec<bool>,
    },
    /// General case.
    Sparse(HashMap<Value, Value>),
}

/// Streaming per-group accumulator.
pub struct Aggregator {
    func: AggFunc,
    repr: Repr,
}

/// The paper's SUM accumulator, kept as a convenient alias.
pub type SumAggregator = Aggregator;

impl Aggregator {
    /// Accumulator for groups known to lie in `[min, max]`; picks the
    /// dense array when the span is small (the common case for TPC-H
    /// attributes like SHIPDATE), otherwise a hash map.
    pub fn with_domain_fn(func: AggFunc, min: Value, max: Value) -> Aggregator {
        let span = max.checked_sub(min).unwrap_or(i64::MAX);
        if max >= min && span < DENSE_LIMIT {
            let n = (span + 1) as usize;
            Aggregator {
                func,
                repr: Repr::Dense {
                    offset: min,
                    accs: vec![func.identity(); n],
                    seen: vec![false; n],
                },
            }
        } else {
            Aggregator::new_fn(func)
        }
    }

    /// SUM accumulator over a known domain.
    pub fn with_domain(min: Value, max: Value) -> Aggregator {
        Aggregator::with_domain_fn(AggFunc::Sum, min, max)
    }

    /// Hash-map accumulator for unknown domains.
    pub fn new_fn(func: AggFunc) -> Aggregator {
        Aggregator {
            func,
            repr: Repr::Sparse(HashMap::new()),
        }
    }

    /// SUM accumulator for unknown domains.
    pub fn new() -> Aggregator {
        Aggregator::new_fn(AggFunc::Sum)
    }

    /// The aggregate function.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Add one (group, value) pair — the tuple-at-a-time EM path.
    #[inline]
    pub fn add(&mut self, group: Value, v: Value) {
        let contribution = match self.func {
            AggFunc::Count => 1,
            _ => v,
        };
        self.merge_partial(group, contribution);
    }

    /// Add a whole run of values for one group — the run-at-a-time LM
    /// path: one fold over the slice, one accumulator update.
    #[inline]
    pub fn add_slice(&mut self, group: Value, vals: &[Value]) {
        if vals.is_empty() {
            return;
        }
        let partial = self.func.fold_slice(vals);
        self.merge_partial(group, partial);
    }

    /// Add `count` surviving rows for `group` without values (COUNT's
    /// value-free LM path).
    #[inline]
    pub fn add_count(&mut self, group: Value, count: u64) {
        if count == 0 {
            return;
        }
        debug_assert_eq!(self.func, AggFunc::Count);
        self.merge_partial(group, count as Value);
    }

    /// Add a run of `len` copies of value `v` for `group` in O(1): the
    /// compressed-execution path that never materializes the run. SUM
    /// contributes `v × len` (`wrapping_mul` equals `len` wrapping adds
    /// in two's complement, so it matches the decoded path bit-for-bit),
    /// COUNT contributes `len`, MIN/MAX contribute `v` once.
    #[inline]
    pub fn add_run(&mut self, group: Value, v: Value, len: u64) {
        if len == 0 {
            return;
        }
        let partial = match self.func {
            AggFunc::Sum => v.wrapping_mul(len as Value),
            AggFunc::Count => len as Value,
            AggFunc::Min | AggFunc::Max => v,
        };
        self.merge_partial(group, partial);
    }

    #[inline]
    fn merge_partial(&mut self, group: Value, partial: Value) {
        let func = self.func;
        match &mut self.repr {
            Repr::Dense { offset, accs, seen } => {
                let idx = (group - *offset) as usize;
                accs[idx] = func.combine(accs[idx], partial);
                seen[idx] = true;
            }
            Repr::Sparse(map) => {
                let e = map.entry(group).or_insert_with(|| func.identity());
                *e = func.combine(*e, partial);
            }
        }
    }

    /// Fold another accumulator of the same function into this one — the
    /// parallel executor's merge of per-worker partial aggregates. Every
    /// [`AggFunc`] combines associatively and commutatively (SUM/COUNT
    /// add, MIN/MAX lattice-join), so merging worker partials in any
    /// order equals aggregating the whole stream serially.
    pub fn merge(&mut self, other: Aggregator) {
        debug_assert_eq!(self.func, other.func, "partials of one aggregation");
        for (group, partial) in other.finish() {
            self.merge_partial(group, partial);
        }
    }

    /// Number of distinct groups seen so far.
    pub fn num_groups(&self) -> usize {
        match &self.repr {
            Repr::Dense { seen, .. } => seen.iter().filter(|&&s| s).count(),
            Repr::Sparse(map) => map.len(),
        }
    }

    /// Finish into `(group, aggregate)` rows sorted by group.
    pub fn finish(self) -> Vec<(Value, Value)> {
        match self.repr {
            Repr::Dense { offset, accs, seen } => accs
                .into_iter()
                .zip(seen)
                .enumerate()
                .filter(|(_, (_, s))| *s)
                .map(|(i, (acc, _))| (offset + i as Value, acc))
                .collect(),
            Repr::Sparse(map) => {
                let mut rows: Vec<(Value, Value)> = map.into_iter().collect();
                rows.sort_unstable_by_key(|&(g, _)| g);
                rows
            }
        }
    }
}

impl Default for Aggregator {
    fn default() -> Aggregator {
        Aggregator::new()
    }
}

/// Column-input aggregation (the LM path): walk the descriptor's valid
/// positions merged against the group column's equal-value runs, folding
/// `vals` (the agg column's values in descriptor order; pass `&[]` for
/// COUNT).
///
/// Each (group-run × descriptor-run) overlap costs one slice fold and one
/// accumulator update, independent of the run length.
pub fn aggregate_runs(
    desc: &PosList,
    group_col: &MiniColumn,
    vals: &[Value],
    agg: &mut Aggregator,
) -> Result<()> {
    let counting = !agg.func().needs_values();
    debug_assert!(counting || desc.count() as usize == vals.len());
    if desc.is_empty() {
        return Ok(());
    }
    // Group runs overlapping the descriptor's covering range.
    let mut runs: Vec<(Value, PosRange)> = Vec::new();
    group_col.for_each_run(|v, r| runs.push((v, r)));
    let mut ri = 0usize;
    let mut vi = 0usize; // cursor into vals
    for dr in desc.to_ranges().ranges() {
        let mut at = dr.start;
        while at < dr.end {
            while ri < runs.len() && runs[ri].1.end <= at {
                ri += 1;
            }
            let (gv, gr) = runs[ri];
            debug_assert!(
                gr.contains(at),
                "descriptor position {at} outside group runs"
            );
            let end = dr.end.min(gr.end);
            let k = (end - at) as usize;
            if counting {
                agg.add_count(gv, k as u64);
            } else {
                agg.add_slice(gv, &vals[vi..vi + k]);
            }
            vi += k;
            at = end;
        }
    }
    Ok(())
}

/// Fully compressed aggregation: both the group column *and* the value
/// column are consumed run-at-a-time, so no value vector is ever
/// materialized. Each (descriptor-range × group-run × value-run) overlap
/// costs one [`Aggregator::add_run`] — for RLE inputs that is one
/// accumulator update per run boundary regardless of run length.
///
/// Byte-identical to gathering the values and calling
/// [`aggregate_runs`]: SUM folds `v × len` with wrapping arithmetic,
/// which equals `len` wrapping adds.
///
/// Each run overlap consumed is charged to the code-path ledger
/// (`matstrat_common::codeops`).
pub fn aggregate_runs_compressed(
    desc: &PosList,
    group_col: &MiniColumn,
    val_col: &MiniColumn,
    agg: &mut Aggregator,
) -> Result<()> {
    debug_assert!(agg.func().needs_values(), "COUNT never fetches values");
    if desc.is_empty() {
        return Ok(());
    }
    let mut gruns: Vec<(Value, PosRange)> = Vec::new();
    group_col.for_each_run(|v, r| gruns.push((v, r)));
    let mut vruns: Vec<(Value, PosRange)> = Vec::new();
    val_col.for_each_run(|v, r| vruns.push((v, r)));
    let mut gi = 0usize;
    let mut vi = 0usize;
    let mut ops = 0u64;
    for dr in desc.to_ranges().ranges() {
        let mut at = dr.start;
        while at < dr.end {
            while gi < gruns.len() && gruns[gi].1.end <= at {
                gi += 1;
            }
            while vi < vruns.len() && vruns[vi].1.end <= at {
                vi += 1;
            }
            let (gv, gr) = gruns[gi];
            let (vv, vr) = vruns[vi];
            debug_assert!(gr.contains(at) && vr.contains(at));
            let end = dr.end.min(gr.end).min(vr.end);
            agg.add_run(gv, vv, end - at);
            ops += 1;
            at = end;
        }
    }
    matstrat_common::codeops::add(ops);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::Predicate;
    use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder, Store};

    #[test]
    fn dense_and_sparse_agree() {
        let pairs: Vec<(Value, Value)> = (0..1000).map(|i| (i % 7, i)).collect();
        let mut dense = Aggregator::with_domain(0, 6);
        let mut sparse = Aggregator::new();
        for &(g, v) in &pairs {
            dense.add(g, v);
            sparse.add(g, v);
        }
        assert_eq!(dense.num_groups(), 7);
        assert_eq!(dense.finish(), sparse.finish());
    }

    #[test]
    fn wide_domain_falls_back_to_sparse() {
        let mut agg = Aggregator::with_domain(i64::MIN, i64::MAX);
        agg.add(i64::MIN, 1);
        agg.add(i64::MAX, 2);
        assert_eq!(agg.finish(), vec![(i64::MIN, 1), (i64::MAX, 2)]);
    }

    #[test]
    fn add_slice_equals_repeated_add_for_every_func() {
        let vals: Vec<Value> = vec![5, -2, 9, 9, 0, 3];
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let mut a = Aggregator::with_domain_fn(func, 0, 10);
            let mut b = Aggregator::with_domain_fn(func, 0, 10);
            for &v in &vals {
                a.add(3, v);
            }
            b.add_slice(3, &vals);
            b.add_slice(4, &[]); // no-op
            assert_eq!(a.finish(), b.finish(), "{func:?}");
        }
    }

    #[test]
    fn merged_partials_equal_serial_aggregation() {
        let pairs: Vec<(Value, Value)> = (0..999).map(|i| ((i * 31) % 11, i - 400)).collect();
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let mut serial = Aggregator::with_domain_fn(func, 0, 10);
            for &(g, v) in &pairs {
                serial.add(g, v);
            }
            // Split the stream three ways, aggregate independently, merge.
            let mut parts: Vec<Aggregator> = (0..3)
                .map(|_| Aggregator::with_domain_fn(func, 0, 10))
                .collect();
            for (i, &(g, v)) in pairs.iter().enumerate() {
                parts[i % 3].add(g, v);
            }
            let mut merged = parts.remove(0);
            for p in parts {
                merged.merge(p);
            }
            assert_eq!(merged.finish(), serial.finish(), "{func:?}");
        }
    }

    #[test]
    fn merge_across_representations() {
        // A dense self absorbing a sparse other (and vice versa).
        let mut dense = Aggregator::with_domain(0, 9);
        dense.add(3, 5);
        let mut sparse = Aggregator::new();
        sparse.add(3, 7);
        sparse.add(8, 1);
        dense.merge(sparse);
        assert_eq!(dense.finish(), vec![(3, 12), (8, 1)]);
    }

    #[test]
    fn func_semantics() {
        let vals = [4, -1, 7];
        assert_eq!(AggFunc::Sum.fold_slice(&vals), 10);
        assert_eq!(AggFunc::Count.fold_slice(&vals), 3);
        assert_eq!(AggFunc::Min.fold_slice(&vals), -1);
        assert_eq!(AggFunc::Max.fold_slice(&vals), 7);
        assert!(!AggFunc::Count.needs_values());
        assert!(AggFunc::Min.needs_values());
        assert_eq!(AggFunc::Max.name(), "max");
    }

    #[test]
    fn add_count_accumulates() {
        let mut agg = Aggregator::new_fn(AggFunc::Count);
        agg.add_count(5, 10);
        agg.add_count(5, 7);
        agg.add_count(9, 0); // no-op
        assert_eq!(agg.finish(), vec![(5, 17)]);
    }

    #[test]
    fn finish_sorted_by_group() {
        let mut agg = Aggregator::new();
        agg.add(5, 1);
        agg.add(-3, 2);
        agg.add(0, 3);
        assert_eq!(agg.finish(), vec![(-3, 2), (0, 3), (5, 1)]);
    }

    #[test]
    fn aggregate_runs_matches_tuple_aggregation_all_funcs() {
        // Group column: i / 50 over 1000 rows (RLE-friendly);
        // values: i % 9; descriptor: positions where i % 3 == 0.
        let store = Store::in_memory();
        let g: Vec<Value> = (0..1000).map(|i| i / 50).collect();
        let v: Vec<Value> = (0..1000).map(|i| i % 9).collect();
        let spec = ProjectionSpec::new("t")
            .column("g", EncodingKind::Rle, SortOrder::Primary)
            .column("v", EncodingKind::Plain, SortOrder::None);
        let id = store.load_projection(&spec, &[&g, &v]).unwrap();
        let rg = store.reader(id, 0).unwrap();
        let rv = store.reader(id, 1).unwrap();
        let window = matstrat_common::PosRange::new(0, 1000);
        let mg = MiniColumn::fetch(&rg, window).unwrap();
        let mv = MiniColumn::fetch(&rv, window).unwrap();

        let desc = mv
            .scan_positions(&Predicate::eq(0))
            .or(&mv.scan_positions(&Predicate::eq(3)))
            .or(&mv.scan_positions(&Predicate::eq(6)));
        let mut vals = Vec::new();
        mv.gather(&desc, &mut vals).unwrap();

        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let mut lm = Aggregator::with_domain_fn(func, 0, 19);
            let slice: &[Value] = if func.needs_values() { &vals } else { &[] };
            aggregate_runs(&desc, &mg, slice, &mut lm).unwrap();

            let mut em = Aggregator::with_domain_fn(func, 0, 19);
            for p in desc.iter() {
                em.add(g[p as usize], v[p as usize]);
            }
            assert_eq!(lm.finish(), em.finish(), "{func:?}");
        }
    }

    #[test]
    fn add_run_equals_repeated_add_for_every_func() {
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            for (v, len) in [(7, 1u64), (-3, 1000), (Value::MAX, 3), (0, 5)] {
                let mut a = Aggregator::new_fn(func);
                let mut b = Aggregator::new_fn(func);
                for _ in 0..len {
                    a.add(1, v);
                }
                b.add_run(1, v, len);
                b.add_run(2, v, 0); // no-op
                assert_eq!(a.finish(), b.finish(), "{func:?} v={v} len={len}");
            }
        }
    }

    #[test]
    fn aggregate_runs_compressed_matches_decoded_path() {
        // Both columns RLE-friendly with misaligned run boundaries, and
        // a descriptor that fragments both.
        let store = Store::in_memory();
        let g: Vec<Value> = (0..2000).map(|i| i / 70).collect();
        let v: Vec<Value> = (0..2000).map(|i| (i / 45) % 6 - 2).collect();
        let spec = ProjectionSpec::new("t")
            .column("g", EncodingKind::Rle, SortOrder::Primary)
            .column("v", EncodingKind::Rle, SortOrder::None);
        let id = store.load_projection(&spec, &[&g, &v]).unwrap();
        let window = matstrat_common::PosRange::new(0, 2000);
        let mg = MiniColumn::fetch(&store.reader(id, 0).unwrap(), window).unwrap();
        let mv = MiniColumn::fetch(&store.reader(id, 1).unwrap(), window).unwrap();
        let desc = mv.scan_positions(&Predicate::ne(1));
        let mut vals = Vec::new();
        mv.gather(&desc, &mut vals).unwrap();

        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let mut decoded = Aggregator::with_domain_fn(func, 0, 30);
            aggregate_runs(&desc, &mg, &vals, &mut decoded).unwrap();
            let before = matstrat_common::codeops::snapshot();
            let mut compressed = Aggregator::with_domain_fn(func, 0, 30);
            aggregate_runs_compressed(&desc, &mg, &mv, &mut compressed).unwrap();
            assert!(
                matstrat_common::codeops::snapshot() > before,
                "compressed path must charge the code-op ledger"
            );
            assert_eq!(compressed.finish(), decoded.finish(), "{func:?}");
        }
    }

    #[test]
    fn aggregate_runs_empty_descriptor() {
        let store = Store::in_memory();
        let g: Vec<Value> = vec![1; 10];
        let spec = ProjectionSpec::new("t").column("g", EncodingKind::Rle, SortOrder::Primary);
        let id = store.load_projection(&spec, &[&g]).unwrap();
        let rg = store.reader(id, 0).unwrap();
        let mg = MiniColumn::fetch(&rg, matstrat_common::PosRange::new(0, 10)).unwrap();
        let mut agg = Aggregator::new();
        aggregate_runs(&PosList::empty(), &mg, &[], &mut agg).unwrap();
        assert_eq!(agg.num_groups(), 0);
    }
}
