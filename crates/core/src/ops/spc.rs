//! SPC: Scan, Predicate, and Construct — the EM-parallel leaf (Figure 6).
//!
//! Reads every provided column over the window, applies the predicates
//! with short-circuiting (a column's values are only extracted at
//! positions that survived all earlier predicates), and constructs full
//! row-major tuples immediately.

use matstrat_common::{Pos, Predicate, Result, Value};
use matstrat_poslist::{PosList, PosVec};

use crate::multicol::MiniColumn;

/// Output of one SPC granule: surviving positions plus row-major tuples
/// over the provided columns, in input column order.
#[derive(Debug, Default)]
pub struct SpcOutput {
    /// Surviving positions, ascending.
    pub positions: Vec<Pos>,
    /// Row-major tuples, `positions.len() * width` values.
    pub tuples: Vec<Value>,
    /// Tuple width (number of input columns).
    pub width: usize,
    /// Whether any column required the bit-vector decompression fallback.
    pub decompressed: bool,
}

/// Run SPC over one window. `cols` pairs each mini-column with its
/// optional predicate; tuple layout follows `cols` order.
pub fn spc_scan(cols: &[(MiniColumn, Option<Predicate>)]) -> Result<SpcOutput> {
    let mut out = SpcOutput {
        width: cols.len(),
        ..SpcOutput::default()
    };
    let Some(((first_mini, first_pred), rest)) = cols.split_first() else {
        return Ok(out);
    };

    // Leaf column: scan (pos, value) pairs.
    let mut positions: Vec<Pos> = Vec::new();
    let mut tuples: Vec<Value> = Vec::new();
    match first_pred {
        Some(p) => first_mini.scan_pairs(p, &mut positions, &mut tuples),
        None => first_mini.scan_pairs(&Predicate::always_true(), &mut positions, &mut tuples),
    }

    // Each later column: fetch values at surviving positions, test the
    // predicate, and widen the tuples (copying — this is EM's cost).
    let mut width = 1usize;
    for (mini, pred) in rest {
        if positions.is_empty() {
            break;
        }
        let pl = PosList::Explicit(PosVec::from_sorted(positions.clone()));
        let mut vals = Vec::with_capacity(positions.len());
        let kind = mini.fetch_values(&pl, &mut vals)?;
        if kind == crate::multicol::FetchKind::Decompressed {
            out.decompressed = true;
        }
        let mut new_positions = Vec::with_capacity(positions.len());
        let mut new_tuples = Vec::with_capacity(tuples.len() + vals.len());
        for (i, &v) in vals.iter().enumerate() {
            if pred.is_none_or(|p| p.matches(v)) {
                new_positions.push(positions[i]);
                new_tuples.extend_from_slice(&tuples[i * width..(i + 1) * width]);
                new_tuples.push(v);
            }
        }
        positions = new_positions;
        tuples = new_tuples;
        width += 1;
    }

    // A predicate chain that emptied out still yields width = cols.len().
    if positions.is_empty() {
        out.positions.clear();
        out.tuples.clear();
        return Ok(out);
    }
    // If we broke early (positions empty mid-chain) we never get here, so
    // width == cols.len() holds.
    debug_assert_eq!(width, out.width);
    out.positions = positions;
    out.tuples = tuples;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::PosRange;
    use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder, Store};

    fn setup() -> (Vec<Value>, Vec<Value>, MiniColumn, MiniColumn) {
        let store = Store::in_memory();
        let a: Vec<Value> = (0..500).map(|i| i / 50).collect();
        let b: Vec<Value> = (0..500).map(|i| i % 7).collect();
        let spec = ProjectionSpec::new("t")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None);
        let id = store.load_projection(&spec, &[&a, &b]).unwrap();
        let w = PosRange::new(0, 500);
        let ma = MiniColumn::fetch(&store.reader(id, 0).unwrap(), w).unwrap();
        let mb = MiniColumn::fetch(&store.reader(id, 1).unwrap(), w).unwrap();
        (a, b, ma, mb)
    }

    #[test]
    fn spc_two_predicates_matches_reference() {
        let (a, b, ma, mb) = setup();
        let out = spc_scan(&[(ma, Some(Predicate::lt(5))), (mb, Some(Predicate::lt(3)))]).unwrap();
        let expected: Vec<(Pos, Value, Value)> = (0..500u64)
            .filter(|&i| a[i as usize] < 5 && b[i as usize] < 3)
            .map(|i| (i, a[i as usize], b[i as usize]))
            .collect();
        assert_eq!(out.positions.len(), expected.len());
        assert_eq!(out.width, 2);
        for (i, &(p, va, vb)) in expected.iter().enumerate() {
            assert_eq!(out.positions[i], p);
            assert_eq!(&out.tuples[i * 2..i * 2 + 2], &[va, vb]);
        }
    }

    #[test]
    fn spc_output_column_without_predicate() {
        let (a, b, ma, mb) = setup();
        let out = spc_scan(&[(ma, Some(Predicate::eq(2))), (mb, None)]).unwrap();
        let expected: Vec<Pos> = (0..500u64).filter(|&i| a[i as usize] == 2).collect();
        assert_eq!(out.positions, expected);
        for (i, &p) in expected.iter().enumerate() {
            assert_eq!(out.tuples[i * 2 + 1], b[p as usize]);
        }
    }

    #[test]
    fn spc_empty_result_and_empty_input() {
        let (_, _, ma, mb) = setup();
        let out = spc_scan(&[(ma, Some(Predicate::lt(-1))), (mb, None)]).unwrap();
        assert!(out.positions.is_empty());
        assert!(out.tuples.is_empty());
        let out = spc_scan(&[]).unwrap();
        assert_eq!(out.width, 0);
    }

    #[test]
    fn spc_flags_bitvec_decompression() {
        let store = Store::in_memory();
        let a: Vec<Value> = (0..100).map(|i| i / 10).collect();
        let c: Vec<Value> = (0..100).map(|i| i % 5).collect();
        let spec = ProjectionSpec::new("t")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("c", EncodingKind::BitVec, SortOrder::None);
        let id = store.load_projection(&spec, &[&a, &c]).unwrap();
        let w = PosRange::new(0, 100);
        let ma = MiniColumn::fetch(&store.reader(id, 0).unwrap(), w).unwrap();
        let mc = MiniColumn::fetch(&store.reader(id, 1).unwrap(), w).unwrap();
        let out = spc_scan(&[(ma, Some(Predicate::lt(3))), (mc, Some(Predicate::lt(2)))]).unwrap();
        assert!(out.decompressed);
        let expected: Vec<Pos> = (0..100u64)
            .filter(|&i| a[i as usize] < 3 && c[i as usize] < 2)
            .collect();
        assert_eq!(out.positions, expected);
    }
}
