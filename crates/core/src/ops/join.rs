//! Hash join with the three inner-table materialization strategies of
//! §4.3.
//!
//! The join probes the **left** (outer) relation against a hash table
//! built on the **right** (inner) relation's key column. Left positions
//! exit the join in sorted order, so left output columns are fetched with
//! a cheap merge on position. The right side is where strategy matters:
//!
//! * [`InnerStrategy::Materialized`] — right tuples are fully constructed
//!   *before* the join (early materialization): the build phase decodes
//!   every right output column into row-major tuples.
//! * [`InnerStrategy::MultiColumn`] — the right side stays compressed in
//!   mini-columns; when a probe matches, the matched position indexes the
//!   mini-columns and the tuple is constructed on the fly.
//! * [`InnerStrategy::SingleColumn`] — "pure" late materialization: only
//!   the key column enters the join, which emits (left pos, right pos)
//!   pairs. Right positions come out **unsorted**, so fetching right
//!   output values costs an extra sort + gather + scatter — the Figure 13
//!   penalty.
//!
//! # Parallel build
//!
//! The build side is itself parallel. The right key column is scanned
//! span-parallel on the [`FragmentPipeline`] substrate, each worker
//! scattering its `(position, key)` pairs into per-worker **radix
//! partitions** by key hash; one worker per partition then folds the
//! scattered buckets — in ascending fragment order — into that
//! partition's hash map. A key lives in exactly one partition, and the
//! folds visit positions ascending, so every key's position list is
//! identical to the one a serial 0..n insertion loop produces; the
//! probe simply hashes a key to its partition before the map lookup.
//! The right output representations are built column-parallel the same
//! way the projection loader encodes columns (decodes, bit-vector
//! fallbacks, and the Materialized row-major flatten all split across
//! workers), which changes nothing observable: each column file is
//! still read once, sequentially, by exactly one worker.
//!
//! # Parallel probe
//!
//! Once built, the build side is shared read-only, so the probe side
//! runs on the same [`FragmentPipeline`] substrate as the scan
//! executor: [`ExecOptions::parallelism`] workers start on contiguous,
//! granule-aligned spans of the left position range, run the full
//! filter→probe→fetch→stitch pipeline over chunk-sized granule runs
//! (work-stealing runs from loaded siblings when their own span
//! drains), and the per-run row fragments concatenate in global granule
//! order. Left positions are ascending within each run and runs are
//! merged ascending, so the output is **byte-identical** to the serial
//! run at any worker count — for every [`InnerStrategy`] — and cold
//! `block_reads` stay exact: run-local fetches touch the same distinct
//! blocks a full-window fetch does, and the buffer pool single-flights
//! concurrent misses.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use matstrat_common::{Error, Pos, PosRange, Predicate, Result, TableId, Value};
use matstrat_model::plans::JoinInnerKind;
use matstrat_poslist::{PosList, PosListBuilder, PosVec};
use matstrat_storage::{
    set_thread_query_token, ColumnReader, IoMeter, IoSink, IoStats, ProjectionInfo, Store,
    TableDelta,
};

use crate::exec::ExecOptions;
use crate::multicol::MiniColumn;
use crate::pipeline::FragmentPipeline;
use crate::query::{QueryResult, QueryStats};

/// How the inner (right) table is represented inside the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerStrategy {
    /// Right tuples constructed before the join (EM).
    Materialized,
    /// Right columns shipped compressed; tuples built per match (hybrid).
    MultiColumn,
    /// Only the key column enters; values fetched by position afterwards
    /// (pure LM).
    SingleColumn,
}

impl InnerStrategy {
    /// All three strategies, in the paper's Figure 13 order.
    pub const ALL: [InnerStrategy; 3] = [
        InnerStrategy::Materialized,
        InnerStrategy::MultiColumn,
        InnerStrategy::SingleColumn,
    ];

    /// Display name matching Figure 13's legend.
    pub fn name(self) -> &'static str {
        match self {
            InnerStrategy::Materialized => "Right Table Materialized",
            InnerStrategy::MultiColumn => "Right Table Multi-Column",
            InnerStrategy::SingleColumn => "Right Table Single Column",
        }
    }

    /// The cost-model join plan this strategy corresponds to.
    pub fn plan_kind(self) -> JoinInnerKind {
        match self {
            InnerStrategy::Materialized => JoinInnerKind::Materialized,
            InnerStrategy::MultiColumn => JoinInnerKind::MultiColumn,
            InnerStrategy::SingleColumn => JoinInnerKind::SingleColumn,
        }
    }
}

/// An equi-join between two projections with optional predicates on
/// either side:
///
/// ```sql
/// SELECT l.<left_output...>, r.<right_output...>
/// FROM left l, right r
/// WHERE l.<left_key> = r.<right_key> [AND l.<filter col> <op> const]
///                                    [AND r.<filter col> <op> const]
/// ```
///
/// The right-side predicate is applied at **build** time as a semi-join
/// reduction: failing inner rows never enter the hash table, so the
/// probe never sees them and pays nothing per probe for the filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Outer (probe) projection.
    pub left: TableId,
    /// Inner (build) projection.
    pub right: TableId,
    /// Join key column index in the left projection.
    pub left_key: usize,
    /// Join key column index in the right projection.
    pub right_key: usize,
    /// Optional predicate on a left column.
    pub left_filter: Option<(usize, Predicate)>,
    /// Optional predicate on a right column, pushed into the build.
    pub right_filter: Option<(usize, Predicate)>,
    /// Left columns to output.
    pub left_output: Vec<usize>,
    /// Right columns to output.
    pub right_output: Vec<usize>,
}

/// A hash-table key the partitioned build can scatter: the decoded
/// value on the classic path, or the u32 dictionary code on the
/// compressed path (§ compressed execution) — same radix machinery,
/// narrower key.
pub(crate) trait JoinKey: Copy + Eq + std::hash::Hash + Send + Sync {
    /// The bits the Fibonacci partition mixer consumes.
    fn mix(self) -> u64;
}

impl JoinKey for Value {
    #[inline]
    fn mix(self) -> u64 {
        self as u64
    }
}

impl JoinKey for u32 {
    #[inline]
    fn mix(self) -> u64 {
        self as u64
    }
}

/// The shared read-only hash table on the right key: one plain map when
/// the build ran serial, or `workers` radix partitions by key hash when
/// it ran parallel. Each key's position list is ascending — identical to
/// a serial 0..n insertion — in either shape, so the partitioning is
/// invisible to the probe's output.
pub(crate) struct PartitionedTable<K: JoinKey = Value> {
    parts: Vec<HashMap<K, Vec<u32>>>,
}

/// The radix partition a key belongs to, shared by build and probe.
/// A Fibonacci multiply-shift mixer, not a full hash pass: the probe
/// pays this once per surviving row *on top of* the partition map's own
/// SipHash, so the partition choice must be nearly free — it needs
/// determinism and spread, not DoS resistance (the map lookup keeps
/// SipHash for that).
#[inline]
fn partition_of<K: JoinKey>(key: K, parts: usize) -> usize {
    let mix = key.mix().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mix >> 32) as usize) % parts
}

impl<K: JoinKey> PartitionedTable<K> {
    /// Build the table over `keys` on the pipeline's workers: serial
    /// insertion for a single-span plan, otherwise a span-parallel
    /// scatter into per-fragment radix buckets followed by a
    /// partition-parallel fold. Fragments arrive in global granule
    /// order and every fold walks them in that order, so each key's
    /// position list ascends exactly as the serial loop's does.
    fn build(
        keys: &[K],
        deletes: &[u64],
        pipeline: &FragmentPipeline,
        meter: &IoMeter,
        sink: Option<&IoSink>,
    ) -> Result<PartitionedTable<K>> {
        let parts_n = pipeline.workers();
        if parts_n <= 1 {
            let mut table: HashMap<K, Vec<u32>> = HashMap::with_capacity(keys.len());
            let mut di = 0usize;
            for (pos, &k) in keys.iter().enumerate() {
                while di < deletes.len() && deletes[di] < pos as u64 {
                    di += 1;
                }
                if di < deletes.len() && deletes[di] == pos as u64 {
                    continue;
                }
                table.entry(k).or_default().push(pos as u32);
            }
            return Ok(PartitionedTable { parts: vec![table] });
        }
        // Phase A: scatter. Each granule run hashes its keys into
        // `parts_n` buckets; pure CPU, so the scheduler's stealing can
        // rebalance it freely. (The run still harvests meter state into
        // the query's sink: the calling thread's forget sweeps up the key
        // column reads the surrounding build just made.)
        let buckets: Vec<Vec<Vec<(u32, K)>>> = pipeline
            .run_counted_sunk(meter, sink, |span| {
                let mut local: Vec<Vec<(u32, K)>> = vec![Vec::new(); parts_n];
                let mut di = deletes.partition_point(|&p| p < span.start);
                for pos in span.start..span.end {
                    while di < deletes.len() && deletes[di] < pos {
                        di += 1;
                    }
                    if di < deletes.len() && deletes[di] == pos {
                        continue;
                    }
                    let k = keys[pos as usize];
                    local[partition_of(k, parts_n)].push((pos as u32, k));
                }
                Ok(local)
            })?
            .0;
        // Phase B: fold, one worker per partition (pure CPU: no meter
        // state to clean up).
        let parts = matstrat_common::par_map_indexed(
            parts_n,
            parts_n,
            |p| -> Result<HashMap<K, Vec<u32>>> {
                let cap = buckets.iter().map(|frag| frag[p].len()).sum();
                let mut m: HashMap<K, Vec<u32>> = HashMap::with_capacity(cap);
                for frag in &buckets {
                    for &(pos, k) in &frag[p] {
                        m.entry(k).or_default().push(pos);
                    }
                }
                Ok(m)
            },
            || {},
        )?;
        Ok(PartitionedTable { parts })
    }

    /// The ascending right positions holding `key`, if any.
    #[inline]
    pub(crate) fn get(&self, key: K) -> Option<&Vec<u32>> {
        if self.parts.len() == 1 {
            self.parts[0].get(&key)
        } else {
            self.parts[partition_of(key, self.parts.len())].get(&key)
        }
    }
}

/// The build side's hash table, in one of two key domains.
///
/// `Codes` is the compressed-execution path: when every base block of
/// the right key column carries one shared, sorted dictionary *and*
/// every delta-insert key encodes under it, the table hashes the u32
/// dictionary codes instead of decoded values. A probe whose key column
/// shares that exact dictionary then probes with gathered codes and
/// never decodes a key; probes arriving with decoded values translate
/// through the sorted dictionary by binary search (a key absent from
/// the dictionary matches nothing — sound, because the build proved
/// every right key encodes). `Values` is the decoded fallback,
/// byte-identical in output.
pub(crate) enum KeyTable {
    Values(PartitionedTable<Value>),
    Codes {
        table: PartitionedTable<u32>,
        /// The shared dictionary, sorted strictly ascending.
        dict: Arc<Vec<Value>>,
        /// The dictionary's FNV fingerprint, compared against probe-side
        /// blocks before any code is trusted.
        fingerprint: u64,
    },
}

/// The strategy-independent half of a join's build side: the partitioned
/// hash table on one (inner table, key column) pair plus the decoded key
/// values it was built from. This is the piece the join-tree executor
/// caches and reuses when the same inner table is probed by multiple
/// edges — the table depends only on the key column, never on an edge's
/// output columns or inner strategy — and the decoded keys double as the
/// zero-I/O key source for snowflake edges that join *through* this
/// table on the same column.
pub(crate) struct SharedBuild {
    /// right key → ascending right positions holding it, keyed on u32
    /// dictionary codes when the key column carries a shared sorted
    /// dictionary (see [`KeyTable`]). Deleted right positions never
    /// enter the table.
    pub(crate) table: KeyTable,
    /// The decoded key column, indexable by **logical** right position:
    /// immutable base rows first, then every delta-insert row in stamp
    /// order (deleted rows included, so indexing stays positional).
    pub(crate) keys: Arc<Vec<Value>>,
    /// Workers the build pipeline ran with (the skew guard applied to
    /// the *right* table) — also the radix partition count when > 1.
    pub(crate) build_workers: usize,
    /// Logical right table row count (base + delta inserts).
    pub(crate) rows: u64,
    /// Immutable right rows at snapshot time; positions `>= base_rows`
    /// live in the delta.
    pub(crate) base_rows: u64,
    /// The right projection at snapshot time: [`InnerRep::build`] pins
    /// its column fetches to these files so build and rep read one
    /// consistent epoch even while a compaction swaps the catalog.
    pub(crate) info: ProjectionInfo,
    /// The right table's delta at the same snapshot.
    pub(crate) delta: Option<Arc<TableDelta>>,
}

/// A build-time reduction on the inner table: rows it rejects never
/// enter the hash table (the decoded `keys` stay full-length, so
/// positional indexing by snowflake edges is unaffected). Both variants
/// are output-invariant for the queries that use them — a filtered row
/// fails its own predicate, and a semi-reduced row would die at the
/// child edge's probe anyway.
pub(crate) enum BuildReducer<'a> {
    /// Exclude rows where column `0` fails predicate `1` (pushed-down
    /// inner-table WHERE).
    Filter(usize, Predicate),
    /// Exclude rows whose value in column `col` has no match in
    /// `child`'s hash table — the bushy-plan reduction that joins a
    /// dimension subtree before the fact side probes it.
    SemiJoin {
        /// Key column of *this* table the child edge joins through.
        col: usize,
        /// The child edge's already-built hash table.
        child: &'a SharedBuild,
    },
}

impl BuildReducer<'_> {
    /// The column this reducer inspects.
    fn col(&self) -> usize {
        match self {
            BuildReducer::Filter(c, _) => *c,
            BuildReducer::SemiJoin { col, .. } => *col,
        }
    }

    /// Whether the row holding `v` in the inspected column survives.
    fn keeps(&self, v: Value) -> bool {
        match self {
            BuildReducer::Filter(_, pred) => pred.matches(v),
            BuildReducer::SemiJoin { child, .. } => child.probe(v).is_some(),
        }
    }
}

impl SharedBuild {
    /// Scan + decode the key column and build the partitioned hash table
    /// on the pipeline's workers (serial insertion for a single-span
    /// plan). Takes one consistent snapshot of the right table: base
    /// keys come from the snapshot's column files, delta-insert keys are
    /// appended in stamp order, and deleted positions — plus every
    /// position a [`BuildReducer`] rejects — are skipped by the
    /// hash-table build.
    pub(crate) fn build(
        store: &Store,
        right: TableId,
        right_key: usize,
        reducers: &[BuildReducer<'_>],
        opts: &ExecOptions,
        sink: Option<&IoSink>,
    ) -> Result<SharedBuild> {
        let (info, delta) = store.scan_snapshot(right)?;
        let base_rows = info.num_rows;
        let insert_rows = delta.as_ref().map_or(0, |d| d.inserts.len());
        let mut keys = Vec::with_capacity(base_rows as usize + insert_rows);
        // Shared-dictionary base codes, harvested alongside the decode
        // when every base block agrees on one sorted dictionary. The
        // decoded keys are kept regardless: snowflake edges index them
        // by position ([`KeyFetch::Prev`]) whichever domain the table
        // hashes.
        let mut code_build: Option<(u64, Vec<Value>, Vec<u32>)> = None;
        if base_rows > 0 {
            let rkey_reader = store.reader_for(info.column(right_key)?)?;
            let window = PosRange::new(0, base_rows);
            let rkey_mini = MiniColumn::fetch(&rkey_reader, window)?;
            rkey_mini.decode(&mut keys)?;
            if let (Some(fp), Some(dict)) =
                (rkey_mini.shared_dict_fingerprint(), rkey_mini.shared_dict())
            {
                // Binary-search translation below needs sorted codes;
                // the shared-dict loader guarantees this, a per-block
                // first-appearance dictionary that happens to span one
                // block does not.
                if dict.windows(2).all(|w| w[0] < w[1]) {
                    let mut codes = Vec::with_capacity(base_rows as usize);
                    rkey_mini.gather_codes(&PosList::full(window), &mut codes)?;
                    code_build = Some((fp, dict.to_vec(), codes));
                }
            }
        }
        if let Some(d) = &delta {
            keys.extend(d.inserts.iter().map(|row| row[right_key]));
            // Delta keys are raw values; translate each through the
            // dictionary. One untranslatable key sinks the code path —
            // the value table is always correct.
            if let Some((_, dict, codes)) = &mut code_build {
                for row in &d.inserts {
                    match dict.binary_search(&row[right_key]) {
                        Ok(c) => codes.push(c as u32),
                        Err(_) => {
                            code_build = None;
                            break;
                        }
                    }
                }
            }
        }
        let rows = keys.len() as u64;
        // Positions the hash table must never hold: the snapshot's
        // deletes plus every row a reducer rejects. Reducers read the
        // same snapshot the keys came from (the key decode is reused
        // when a reducer inspects the key column), so the exclusion
        // list is consistent with `keys` by construction.
        let mut excluded: Vec<u64> = delta.as_ref().map_or(Vec::new(), |d| d.deletes.to_vec());
        if !reducers.is_empty() {
            let mut col_vals: HashMap<usize, Vec<Value>> = HashMap::new();
            for r in reducers {
                let col = r.col();
                if col != right_key && !col_vals.contains_key(&col) {
                    let mut vals = Vec::with_capacity(rows as usize);
                    if base_rows > 0 {
                        let reader = store.reader_for(info.column(col)?)?;
                        let mini = MiniColumn::fetch(&reader, PosRange::new(0, base_rows))?;
                        mini.decode(&mut vals)?;
                    }
                    if let Some(d) = &delta {
                        vals.extend(d.inserts.iter().map(|row| row[col]));
                    }
                    col_vals.insert(col, vals);
                }
            }
            for r in reducers {
                let vals: &[Value] = if r.col() == right_key {
                    &keys
                } else {
                    &col_vals[&r.col()]
                };
                for (pos, &v) in vals.iter().enumerate() {
                    if !r.keeps(v) {
                        excluded.push(pos as u64);
                    }
                }
            }
            excluded.sort_unstable();
            excluded.dedup();
        }
        // The build's worker count obeys the same skew guard as the
        // probe's, applied to the *right* table: a one-granule inner
        // table builds serially no matter the knob, and the planner
        // prices build CPU with exactly this count.
        let pipeline = FragmentPipeline::new(rows, opts.granule.max(1), opts.parallelism.max(1));
        let build_workers = pipeline.workers();
        let table = match code_build {
            Some((fingerprint, dict, codes)) => {
                let table =
                    PartitionedTable::build(&codes, &excluded, &pipeline, store.meter(), sink)?;
                matstrat_common::codeops::add(codes.len() as u64);
                KeyTable::Codes {
                    table,
                    dict: Arc::new(dict),
                    fingerprint,
                }
            }
            None => KeyTable::Values(PartitionedTable::build(
                &keys,
                &excluded,
                &pipeline,
                store.meter(),
                sink,
            )?),
        };
        Ok(SharedBuild {
            table,
            keys: Arc::new(keys),
            build_workers,
            rows,
            base_rows,
            info,
            delta,
        })
    }

    /// Probe with a decoded key value, whichever domain the table hashes.
    /// On the code-keyed table an absent dictionary entry matches
    /// nothing: the build proved every right key encodes, so a value
    /// outside the dictionary cannot equal any right key.
    #[inline]
    pub(crate) fn probe(&self, key: Value) -> Option<&Vec<u32>> {
        match &self.table {
            KeyTable::Values(t) => t.get(key),
            KeyTable::Codes { table, dict, .. } => match dict.binary_search(&key) {
                Ok(c) => table.get(c as u32),
                Err(_) => None,
            },
        }
    }

    /// Probe with a dictionary code — valid only when the probe side
    /// verified its blocks share the build dictionary (see
    /// [`SharedBuild::code_dict`]).
    #[inline]
    pub(crate) fn probe_code(&self, code: u32) -> Option<&Vec<u32>> {
        match &self.table {
            KeyTable::Codes { table, .. } => table.get(code),
            KeyTable::Values(_) => unreachable!("probe_code on a value-keyed table"),
        }
    }

    /// The code table's (fingerprint, dictionary), when the build took
    /// the code-keyed path. Probe sides compare both — fingerprint for
    /// the cheap reject, the dictionary itself to rule out a
    /// fingerprint collision — before gathering codes.
    #[inline]
    pub(crate) fn code_dict(&self) -> Option<(u64, &[Value])> {
        match &self.table {
            KeyTable::Codes {
                dict, fingerprint, ..
            } => Some((*fingerprint, dict.as_slice())),
            KeyTable::Values(_) => None,
        }
    }
}

/// The per-edge, strategy-dependent right-side representation: the
/// compressed mini-columns of the output columns, plus the Materialized
/// row-major flatten or the SingleColumn bit-vector decodes where the
/// strategy calls for them. Built column-parallel on `build_workers`
/// scoped threads, exactly as the projection loader encodes columns.
pub(crate) struct InnerRep {
    /// Right output columns as compressed mini-columns over the
    /// **immutable base** rows (all strategies fetch these blocks at
    /// build time; empty when the base is empty).
    minis: Vec<MiniColumn>,
    /// Row-major right tuples over the base rows (Materialized only).
    materialized: Option<Vec<Value>>,
    /// Per right output column: fully decoded values when the codec
    /// cannot fetch by position (bit-vector; SingleColumn only). Decoded
    /// once at build so parallel workers share the work.
    decoded: Vec<Option<Vec<Value>>>,
    /// Delta-insert rows projected to the output columns, indexable by
    /// `logical position - base_rows`. Row-oriented already, so every
    /// strategy gathers them the same way.
    delta_vals: Vec<Vec<Value>>,
    /// Immutable right rows; gather positions at or above this index the
    /// delta values.
    base_rows: u64,
    /// Output width (delta rows may exist where `minis` is empty).
    out_width: usize,
    /// The strategy the representation was built for.
    inner: InnerStrategy,
}

impl InnerRep {
    /// Fetch (and decode, where `inner` needs it) the right output
    /// columns from the build's snapshot: base columns from the
    /// snapshot's files, delta inserts projected row-major.
    pub(crate) fn build(
        store: &Store,
        shared: &SharedBuild,
        right_output: &[usize],
        inner: InnerStrategy,
        token: u64,
        sink: Option<&IoSink>,
    ) -> Result<InnerRep> {
        let base_rows = shared.base_rows;
        let window = PosRange::new(0, base_rows);
        let rwidth = right_output.len();
        let build_workers = shared.build_workers;
        let minis: Vec<MiniColumn> = if base_rows > 0 {
            par_indexed(rwidth, build_workers, token, store.meter(), sink, |c| {
                MiniColumn::fetch(
                    &store.reader_for(shared.info.column(right_output[c])?)?,
                    window,
                )
            })?
        } else {
            Vec::new()
        };
        // Materialized: construct every base right tuple up front
        // (row-major). Delta tuples are already row-major in delta_vals.
        let materialized: Option<Vec<Value>> = match inner {
            InnerStrategy::Materialized if base_rows > 0 => {
                let cols: Vec<Vec<Value>> =
                    par_indexed(rwidth, build_workers, token, store.meter(), sink, |c| {
                        let mut v = Vec::with_capacity(base_rows as usize);
                        minis[c].decode(&mut v)?;
                        Ok(v)
                    })?;
                Some(flatten_row_major(&cols, base_rows as usize, build_workers))
            }
            InnerStrategy::Materialized => Some(Vec::new()),
            _ => None,
        };
        // Single-column right fetch cannot gather from bit-vector blocks
        // (value_at would rescan k bit-strings per probe): decompress
        // such columns once, shared read-only by every probe worker.
        let decoded: Vec<Option<Vec<Value>>> = match inner {
            InnerStrategy::SingleColumn if base_rows > 0 => {
                par_indexed(rwidth, build_workers, token, store.meter(), sink, |c| {
                    if minis[c].supports_position_fetch() {
                        Ok(None)
                    } else {
                        let mut v = Vec::with_capacity(base_rows as usize);
                        minis[c].decode(&mut v)?;
                        Ok(Some(v))
                    }
                })?
            }
            _ => vec![None; rwidth],
        };
        let delta_vals: Vec<Vec<Value>> = match &shared.delta {
            Some(d) => d
                .inserts
                .iter()
                .map(|row| right_output.iter().map(|&c| row[c]).collect())
                .collect(),
            None => Vec::new(),
        };
        Ok(InnerRep {
            minis,
            materialized,
            decoded,
            delta_vals,
            base_rows,
            out_width: rwidth,
            inner,
        })
    }

    /// Output width (number of right output columns).
    pub(crate) fn width(&self) -> usize {
        self.out_width
    }

    /// Fetch the output values at the matched right positions, one
    /// column-major vector per output column, by the representation's
    /// strategy: an array index into the row-major tuples for
    /// Materialized, a positional probe into the compressed mini-columns
    /// for MultiColumn, and the same positional probes over *unsorted*
    /// positions (via the build-time decodes for bit-vector columns) for
    /// SingleColumn — the Figure 13 penalty.
    pub(crate) fn gather(&self, right_pos: &[u32]) -> Result<Vec<Vec<Value>>> {
        let rwidth = self.width();
        let out_rows = right_pos.len();
        let base_rows = self.base_rows;
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(out_rows); rwidth];
        match self.inner {
            InnerStrategy::Materialized => {
                let flat = self.materialized.as_ref().expect("built above");
                for &rp in right_pos {
                    if (rp as u64) < base_rows {
                        let base = rp as usize * rwidth;
                        for (c, col) in cols.iter_mut().enumerate() {
                            col.push(flat[base + c]);
                        }
                    } else {
                        let row = &self.delta_vals[(rp as u64 - base_rows) as usize];
                        for (c, col) in cols.iter_mut().enumerate() {
                            col.push(row[c]);
                        }
                    }
                }
            }
            InnerStrategy::MultiColumn => {
                // Construct right tuples on the fly from the compressed
                // mini-columns at each matched position (row-oriented
                // delta rows are already constructed).
                for &rp in right_pos {
                    if (rp as u64) < base_rows {
                        for (c, mini) in self.minis.iter().enumerate() {
                            cols[c].push(mini.value_at(rp as u64)?);
                        }
                    } else {
                        let row = &self.delta_vals[(rp as u64 - base_rows) as usize];
                        for (c, col) in cols.iter_mut().enumerate() {
                            col.push(row[c]);
                        }
                    }
                }
            }
            InnerStrategy::SingleColumn => {
                // Pure LM: the join emitted only positions, and the right
                // positions are *unsorted* — "a merge-join on position
                // cannot be used to fetch column values" (§4.3). The
                // extra positional join is a second pass over the matches
                // probing each right column at a random position per
                // output row.
                for (c, col) in cols.iter_mut().enumerate() {
                    for &rp in right_pos {
                        if (rp as u64) >= base_rows {
                            col.push(self.delta_vals[(rp as u64 - base_rows) as usize][c]);
                            continue;
                        }
                        match &self.decoded[c] {
                            None => col.push(self.minis[c].value_at(rp as u64)?),
                            // Bit-vector right column: indexed into the
                            // shared build-time decode.
                            Some(decoded) => col.push(decoded[rp as usize]),
                        }
                    }
                }
            }
        }
        Ok(cols)
    }
}

/// Fetch one span-local column at a **sorted, possibly duplicated**
/// position list: gather over the deduplicated list, then expand the
/// duplicates by walking both lists. The shape every merge-on-position
/// fetch in the join paths uses (left output values, join-tree base
/// keys): positions exit the probe sorted, duplicates come from
/// non-unique right keys.
pub(crate) fn fetch_expanded(mini: &MiniColumn, positions: &[Pos]) -> Result<Vec<Value>> {
    let mut uniq = positions.to_vec();
    uniq.dedup();
    let pl = PosList::Explicit(PosVec::from_sorted(uniq.clone()));
    let mut vals = Vec::with_capacity(uniq.len());
    mini.fetch_values(&pl, &mut vals)?;
    if uniq.len() == positions.len() {
        return Ok(vals);
    }
    // Expand duplicates by walking both lists.
    let mut expanded = Vec::with_capacity(positions.len());
    let mut ui = 0usize;
    for &p in positions {
        while uniq[ui] != p {
            ui += 1;
        }
        expanded.push(vals[ui]);
    }
    Ok(expanded)
}

/// [`fetch_expanded`] in the code domain: gather u32 dictionary codes —
/// never decoded values — at a sorted, possibly duplicated position
/// list. Only valid on a mini-column whose blocks all share one
/// dictionary (the caller verified it against the build's).
pub(crate) fn fetch_codes_expanded(mini: &MiniColumn, positions: &[Pos]) -> Result<Vec<u32>> {
    let mut uniq = positions.to_vec();
    uniq.dedup();
    let pl = PosList::Explicit(PosVec::from_sorted(uniq.clone()));
    let mut codes = Vec::with_capacity(uniq.len());
    mini.gather_codes(&pl, &mut codes)?;
    if uniq.len() == positions.len() {
        return Ok(codes);
    }
    let mut expanded = Vec::with_capacity(positions.len());
    let mut ui = 0usize;
    for &p in positions {
        while uniq[ui] != p {
            ui += 1;
        }
        expanded.push(codes[ui]);
    }
    Ok(expanded)
}

/// Run `f` over indices `0..n` on the shared claim-counter fan-out
/// ([`matstrat_common::par_map_indexed`], the projection loader's
/// pattern), dropping each spawned worker's per-thread meter state on
/// exit — harvested into `sink` when the surrounding query is keeping
/// per-query I/O. The calling thread keeps its meter state: its reads
/// belong to the surrounding query and are swept into the sink by the
/// next pipeline run's forget, exactly as on the serial path.
fn par_indexed<T: Send>(
    n: usize,
    workers: usize,
    token: u64,
    meter: &IoMeter,
    sink: Option<&IoSink>,
    f: impl Fn(usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    matstrat_common::par_map_indexed(
        n,
        workers,
        |i| {
            // Tag each worker with the owning query's token so the
            // buffer pool can credit single-flight fills it waits on to
            // this query's meters.
            set_thread_query_token(token);
            f(i)
        },
        || {
            let dropped = meter.forget_current_thread();
            if let Some(sink) = sink {
                sink.add(dropped);
            }
        },
    )
}

/// Drop the positions in `deletes` (sorted ascending) from `desc`. Both
/// probe paths use this to hide deleted base rows from the outer side of
/// a join before any key or output value is fetched.
pub(crate) fn filter_deleted(desc: PosList, deletes: &[u64]) -> PosList {
    if deletes.is_empty() {
        return desc;
    }
    let mut b = PosListBuilder::new();
    let mut di = 0usize;
    for p in desc.iter() {
        while di < deletes.len() && deletes[di] < p {
            di += 1;
        }
        if di < deletes.len() && deletes[di] == p {
            continue;
        }
        b.push(p);
    }
    b.finish()
}

/// Flatten decoded columns into row-major tuples — the Materialized
/// strategy's up-front tuple construction — splitting the row range
/// across up to `workers` scoped threads. Each worker writes a disjoint
/// slice of the output, so the result is identical to the serial double
/// loop at any worker count.
fn flatten_row_major(cols: &[Vec<Value>], rows: usize, workers: usize) -> Vec<Value> {
    let width = cols.len();
    if rows == 0 || width == 0 {
        return Vec::new();
    }
    let mut flat = vec![0 as Value; rows * width];
    let workers = workers.min(rows).max(1);
    let chunk_rows = rows.div_ceil(workers);
    let fill = |chunk_idx: usize, chunk: &mut [Value]| {
        let base = chunk_idx * chunk_rows;
        for (r, row) in chunk.chunks_exact_mut(width).enumerate() {
            for (c, col) in cols.iter().enumerate() {
                row[c] = col[base + r];
            }
        }
    };
    std::thread::scope(|scope| {
        let fill = &fill;
        let mut chunks = flat.chunks_mut(chunk_rows * width).enumerate();
        let (first_idx, first_chunk) = chunks.next().expect("rows > 0");
        let handles: Vec<_> = chunks
            .map(|(ci, chunk)| scope.spawn(move || fill(ci, chunk)))
            .collect();
        fill(first_idx, first_chunk);
        for h in handles {
            matstrat_common::join_unwinding(h);
        }
    });
    flat
}

/// The immutable build-side state every probe worker shares: the hash
/// table on the right key, the right output representation, and the
/// opened left-side readers.
struct BuildSide {
    /// The strategy-independent hash table + decoded keys.
    shared: SharedBuild,
    /// The per-strategy right output representation.
    rep: InnerRep,
    /// Left-side readers: filter column (when filtered), key column,
    /// output columns. Pinned to the left snapshot's files.
    left_filter_reader: Option<ColumnReader>,
    left_key_reader: ColumnReader,
    left_out_readers: Vec<ColumnReader>,
    /// Deleted positions among the left snapshot's **base** rows, sorted
    /// ascending; probe spans hide them before fetching keys.
    left_deletes: Vec<u64>,
}

/// Execute the join under the chosen inner-table strategy with default
/// options (the `MATSTRAT_THREADS` worker default).
pub fn hash_join(store: &Store, spec: &JoinSpec, inner: InnerStrategy) -> Result<QueryResult> {
    hash_join_with_options(store, spec, inner, &ExecOptions::default())
}

/// Execute the join with explicit [`ExecOptions`] (`parallelism` workers
/// over `granule`-aligned probe spans). The result is byte-identical at
/// any worker count.
pub fn hash_join_with_options(
    store: &Store,
    spec: &JoinSpec,
    inner: InnerStrategy,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    Ok(hash_join_with_stats(store, spec, inner, opts)?.0)
}

/// [`hash_join_with_options`], additionally reporting the I/O **this
/// query** caused. The counters are harvested per thread (see
/// [`IoSink`]), not diffed off the global meter, so they stay exact when
/// several sessions run concurrently on one store.
pub fn hash_join_with_io(
    store: &Store,
    spec: &JoinSpec,
    inner: InnerStrategy,
    opts: &ExecOptions,
) -> Result<(QueryResult, IoStats)> {
    let (result, stats) = hash_join_with_stats(store, spec, inner, opts)?;
    Ok((result, stats.io))
}

/// [`hash_join_with_options`], reporting the unified [`QueryStats`] the
/// single-statement API surfaces: wall time, exact per-query I/O, rows
/// out, build/steal/zone-skip counters.
pub fn hash_join_with_stats(
    store: &Store,
    spec: &JoinSpec,
    inner: InnerStrategy,
    opts: &ExecOptions,
) -> Result<(QueryResult, QueryStats)> {
    // Drop any residue a previous, errored-out execution left on this
    // thread: it must not be billed to this query.
    store.meter().forget_current_thread();
    let sink = IoSink::new();
    hash_join_sunk(store, spec, inner, opts, &sink)
}

fn hash_join_sunk(
    store: &Store,
    spec: &JoinSpec,
    inner: InnerStrategy,
    opts: &ExecOptions,
    sink: &IoSink,
) -> Result<(QueryResult, QueryStats)> {
    let t0 = Instant::now();
    let (left_info, left_delta) = store.scan_snapshot(spec.left)?;
    let right_info = store.projection(spec.right)?;

    // Output shape, validated before any I/O. (Schema is
    // compaction-invariant, so the pre-build right lookup cannot diverge
    // from the snapshot the build takes below.)
    let mut names: Vec<String> =
        Vec::with_capacity(spec.left_output.len() + spec.right_output.len());
    for &c in &spec.left_output {
        names.push(left_info.column(c)?.name.clone());
    }
    for &c in &spec.right_output {
        names.push(right_info.column(c)?.name.clone());
    }
    if names.is_empty() {
        return Err(Error::invalid("join must output at least one column"));
    }

    // ---- Build phase (right/inner table, span- and column-parallel) ----
    // Strategy-independent half (hash table + decoded keys), then the
    // per-strategy right output representation — the same two pieces the
    // join-tree executor builds per edge, with the first cached across
    // edges that share an inner table. Both halves read the one right
    // snapshot `SharedBuild::build` takes.
    let reducers: Vec<BuildReducer<'_>> = spec
        .right_filter
        .iter()
        .map(|&(c, p)| BuildReducer::Filter(c, p))
        .collect();
    let shared = SharedBuild::build(
        store,
        spec.right,
        spec.right_key,
        &reducers,
        opts,
        Some(sink),
    )?;
    let rep = InnerRep::build(
        store,
        &shared,
        &spec.right_output,
        inner,
        opts.query_token,
        Some(sink),
    )?;

    let build = BuildSide {
        shared,
        rep,
        left_filter_reader: match &spec.left_filter {
            Some((col, _)) => Some(store.reader_for(left_info.column(*col)?)?),
            None => None,
        },
        left_key_reader: store.reader_for(left_info.column(spec.left_key)?)?,
        left_out_readers: spec
            .left_output
            .iter()
            .map(|&c| store.reader_for(left_info.column(c)?))
            .collect::<Result<_>>()?,
        left_deletes: left_delta
            .as_ref()
            .map_or(Vec::new(), |d| d.base_deletes().to_vec()),
    };

    // ---- Probe phase: span-parallel over the left base rows ------------
    let pipeline = FragmentPipeline::new(
        left_info.num_rows,
        opts.granule.max(1),
        opts.parallelism.max(1),
    );
    let token = opts.query_token;
    let zone_maps = opts.zone_maps;
    let (fragments, steals): (Vec<(Vec<Value>, u64)>, u64) =
        pipeline.run_counted_sunk(store.meter(), Some(sink), |span| {
            set_thread_query_token(token);
            probe_span(spec, &build, zone_maps, span)
        })?;

    // Fragments are row-major and spans ascend, so concatenation
    // reproduces the serial row order byte for byte.
    let mut zone_skips = 0u64;
    let mut fragments = fragments.into_iter();
    let (mut flat, zs) = fragments.next().expect("at least one span");
    zone_skips += zs;
    for (frag, zs) in fragments {
        flat.extend(frag);
        zone_skips += zs;
    }

    // ---- Left delta pass: serial, in stamp order ------------------------
    // Row-oriented delta inserts probe the same shared hash table after
    // every base fragment — exactly where those rows sit in position
    // order — so the merged output equals a serial run over the logical
    // table.
    if let Some(d) = &left_delta {
        let mut drows: Vec<(&Vec<Value>, u32)> = Vec::new();
        for (i, row) in d.inserts.iter().enumerate() {
            if d.is_deleted(d.base_rows + i as u64) {
                continue;
            }
            if let Some((c, pred)) = &spec.left_filter {
                if !pred.matches(row[*c]) {
                    continue;
                }
            }
            if let Some(rps) = build.shared.probe(row[spec.left_key]) {
                for &rp in rps {
                    drows.push((row, rp));
                }
            }
        }
        if !drows.is_empty() {
            let rps: Vec<u32> = drows.iter().map(|&(_, rp)| rp).collect();
            let right_cols = build.rep.gather(&rps)?;
            for (i, (row, _)) in drows.iter().enumerate() {
                for &c in &spec.left_output {
                    flat.push(row[c]);
                }
                for col in &right_cols {
                    flat.push(col[i]);
                }
            }
        }
    }
    let result = QueryResult::from_flat(names, flat);
    let stats = QueryStats {
        wall: t0.elapsed(),
        io: sink.total(),
        rows_out: result.num_rows() as u64,
        steals,
        builds: 1,
        zone_skips,
        ..QueryStats::default()
    };
    Ok((result, stats))
}

/// Run the full filter→probe→fetch→stitch pipeline over one left span,
/// returning the span's row-major output fragment and the number of
/// zone-map-pruned filter blocks.
fn probe_span(
    spec: &JoinSpec,
    build: &BuildSide,
    zone_maps: bool,
    span: PosRange,
) -> Result<(Vec<Value>, u64)> {
    let mut zone_skips = 0u64;
    // ---- Left (outer) side, span-local ---------------------------------
    let desc = match (&spec.left_filter, &build.left_filter_reader) {
        (Some((_, pred)), Some(reader)) => {
            // Zone-rejected blocks contribute no positions — skipping the
            // read leaves the descriptor (and every later fetch) unchanged.
            let mini = if zone_maps {
                let (mini, pruned) = MiniColumn::fetch_pruned(reader, span, pred)?;
                zone_skips = pruned;
                mini
            } else {
                MiniColumn::fetch(reader, span)?
            };
            mini.scan_positions(pred)
        }
        _ => PosList::full(span),
    };
    // Deleted base rows never reach the probe (nor the key fetch).
    let lo = build.left_deletes.partition_point(|&p| p < span.start);
    let hi = build.left_deletes.partition_point(|&p| p < span.end);
    let desc = filter_deleted(desc, &build.left_deletes[lo..hi]);
    let lkey_mini = MiniColumn::fetch(&build.left_key_reader, span)?;

    // ---- Probe ----------------------------------------------------------
    // Matched left positions (sorted, since desc is iterated in order) and
    // the matched right position per output row. When the build hashed
    // dictionary codes and this span's key blocks carry the *same*
    // dictionary (fingerprint matched, then the dictionary itself to
    // rule out a collision), the probe gathers u32 codes and never
    // decodes a key — same blocks read either way, so I/O is unchanged.
    let mut left_pos: Vec<Pos> = Vec::new();
    let mut right_pos: Vec<u32> = Vec::new();
    let code_probe = build.shared.code_dict().is_some_and(|(fp, dict)| {
        lkey_mini.shared_dict_fingerprint() == Some(fp) && lkey_mini.shared_dict() == Some(dict)
    });
    if code_probe {
        let mut lcodes = Vec::with_capacity(desc.count() as usize);
        lkey_mini.gather_codes(&desc, &mut lcodes)?;
        matstrat_common::codeops::add(lcodes.len() as u64);
        for (i, p) in desc.iter().enumerate() {
            if let Some(rps) = build.shared.probe_code(lcodes[i]) {
                for &rp in rps {
                    left_pos.push(p);
                    right_pos.push(rp);
                }
            }
        }
    } else {
        let mut lkeys = Vec::with_capacity(desc.count() as usize);
        lkey_mini.fetch_values(&desc, &mut lkeys)?;
        for (i, p) in desc.iter().enumerate() {
            if let Some(rps) = build.shared.probe(lkeys[i]) {
                for &rp in rps {
                    left_pos.push(p);
                    right_pos.push(rp);
                }
            }
        }
    }
    let out_rows = left_pos.len();

    // ---- Left output values: merge on sorted positions ------------------
    // left_pos may contain duplicates (non-unique right keys); gather
    // over the deduplicated sorted list, then expand.
    let lwidth = spec.left_output.len();
    let mut left_cols: Vec<Vec<Value>> = Vec::with_capacity(lwidth);
    for reader in &build.left_out_readers {
        let mini = MiniColumn::fetch(reader, span)?;
        left_cols.push(fetch_expanded(&mini, &left_pos)?);
    }

    // ---- Right output values, per strategy ------------------------------
    let rwidth = spec.right_output.len();
    let right_cols = build.rep.gather(&right_pos)?;

    // ---- Final tuple stitching ------------------------------------------
    let width = lwidth + rwidth;
    let mut flat = Vec::with_capacity(out_rows * width);
    for i in 0..out_rows {
        for col in &left_cols {
            flat.push(col[i]);
        }
        for col in &right_cols {
            flat.push(col[i]);
        }
    }
    Ok((flat, zone_skips))
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_storage::{EncodingKind as Ek, ProjectionSpec, SortOrder, Store};

    /// left: 60 orders (custkey = i % 20, shipdate = i); right: 20
    /// customers (custkey = 0..20 PK, nation = custkey * 10).
    fn setup() -> (Store, JoinSpec) {
        let store = Store::in_memory();
        let n = 60i64;
        let custkey: Vec<Value> = (0..n).map(|i| i % 20).collect();
        let shipdate: Vec<Value> = (0..n).collect();
        // Orders sorted by nothing in particular — declare no sort key.
        let orders = ProjectionSpec::new("orders")
            .column("custkey", Ek::Plain, SortOrder::None)
            .column("shipdate", Ek::Plain, SortOrder::None);
        let left = store
            .load_projection(&orders, &[&custkey, &shipdate])
            .unwrap();

        let ckey: Vec<Value> = (0..20).collect();
        let nation: Vec<Value> = (0..20).map(|i| i * 10).collect();
        let customer = ProjectionSpec::new("customer")
            .column("custkey", Ek::Plain, SortOrder::Primary)
            .column("nation", Ek::Plain, SortOrder::None);
        let right = store.load_projection(&customer, &[&ckey, &nation]).unwrap();

        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: Some((0, Predicate::lt(10))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        (store, spec)
    }

    fn reference_rows() -> Vec<Vec<Value>> {
        // custkey = i % 20 < 10 → join nation = (i % 20) * 10.
        let mut rows: Vec<Vec<Value>> = (0..60i64)
            .filter(|i| i % 20 < 10)
            .map(|i| vec![i, (i % 20) * 10])
            .collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn all_three_strategies_agree_with_reference() {
        let (store, spec) = setup();
        for inner in InnerStrategy::ALL {
            let res = hash_join(&store, &spec, inner).unwrap();
            assert_eq!(res.column_names, vec!["shipdate", "nation"]);
            assert_eq!(res.sorted_rows(), reference_rows(), "{inner:?}");
        }
    }

    #[test]
    fn join_without_filter_is_full_fk_join() {
        let (store, mut spec) = setup();
        spec.left_filter = None;
        for inner in InnerStrategy::ALL {
            let res = hash_join(&store, &spec, inner).unwrap();
            assert_eq!(res.num_rows(), 60, "{inner:?}");
        }
    }

    #[test]
    fn parallel_probe_is_byte_identical() {
        let (store, spec) = setup();
        for inner in InnerStrategy::ALL {
            let serial = hash_join_with_options(
                &store,
                &spec,
                inner,
                &ExecOptions {
                    granule: 8,
                    parallelism: 1,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            for workers in [2, 3, 8] {
                let par = hash_join_with_options(
                    &store,
                    &spec,
                    inner,
                    &ExecOptions {
                        granule: 8,
                        parallelism: workers,
                        ..ExecOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(par.flat(), serial.flat(), "{inner:?} workers={workers}");
                assert_eq!(par.column_names, serial.column_names);
            }
        }
    }

    #[test]
    fn join_with_unmatched_left_keys() {
        // Left keys 0..40, right only 0..20: half the left rows drop out.
        let store = Store::in_memory();
        let lk: Vec<Value> = (0..40).collect();
        let lv: Vec<Value> = (0..40).map(|i| i + 100).collect();
        let left = store
            .load_projection(
                &ProjectionSpec::new("l")
                    .column("k", Ek::Plain, SortOrder::Primary)
                    .column("v", Ek::Plain, SortOrder::None),
                &[&lk, &lv],
            )
            .unwrap();
        let rk: Vec<Value> = (0..20).collect();
        let rv: Vec<Value> = (0..20).map(|i| i * 2).collect();
        let right = store
            .load_projection(
                &ProjectionSpec::new("r")
                    .column("k", Ek::Plain, SortOrder::Primary)
                    .column("v", Ek::Plain, SortOrder::None),
                &[&rk, &rv],
            )
            .unwrap();
        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![0, 1],
            right_output: vec![1],
        };
        for inner in InnerStrategy::ALL {
            let res = hash_join(&store, &spec, inner).unwrap();
            assert_eq!(res.num_rows(), 20, "{inner:?}");
            let rows = res.sorted_rows();
            assert_eq!(rows[5], vec![5, 105, 10], "{inner:?}");
        }
    }

    #[test]
    fn join_with_duplicate_right_keys() {
        // Right has duplicate keys: each left match fans out.
        let store = Store::in_memory();
        let lk: Vec<Value> = vec![1, 2, 3];
        let left = store
            .load_projection(
                &ProjectionSpec::new("l").column("k", Ek::Plain, SortOrder::Primary),
                &[&lk],
            )
            .unwrap();
        let rk: Vec<Value> = vec![1, 1, 2];
        let rv: Vec<Value> = vec![10, 11, 20];
        let right = store
            .load_projection(
                &ProjectionSpec::new("r")
                    .column("k", Ek::Plain, SortOrder::Primary)
                    .column("v", Ek::Plain, SortOrder::None),
                &[&rk, &rv],
            )
            .unwrap();
        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![0],
            right_output: vec![1],
        };
        for inner in InnerStrategy::ALL {
            let res = hash_join(&store, &spec, inner).unwrap();
            let rows = res.sorted_rows();
            assert_eq!(
                rows,
                vec![vec![1, 10], vec![1, 11], vec![2, 20]],
                "{inner:?}"
            );
        }
    }

    #[test]
    fn strategy_names_match_figure13() {
        assert_eq!(
            InnerStrategy::Materialized.name(),
            "Right Table Materialized"
        );
        assert_eq!(
            InnerStrategy::MultiColumn.name(),
            "Right Table Multi-Column"
        );
        assert_eq!(
            InnerStrategy::SingleColumn.name(),
            "Right Table Single Column"
        );
    }

    #[test]
    fn plan_kind_mapping_is_bijective() {
        use std::collections::HashSet;
        let kinds: HashSet<_> = InnerStrategy::ALL.iter().map(|s| s.plan_kind()).collect();
        assert_eq!(kinds.len(), 3);
    }

    /// Both key columns over the identical ten-value domain, loaded with
    /// shared dictionaries — identical sorted dictionaries, identical
    /// fingerprints, so build and probe both run in the code domain.
    fn shared_dict_setup(store: &Store) -> (TableId, TableId) {
        let n = 3000i64;
        let lk: Vec<Value> = (0..n).map(|i| ((i * 7) % 10) * 10).collect();
        let lv: Vec<Value> = (0..n).collect();
        let left = store
            .load_projection(
                &ProjectionSpec::new("l_dict")
                    .column_shared_dict("k", SortOrder::None)
                    .column("v", Ek::Plain, SortOrder::None),
                &[&lk, &lv],
            )
            .unwrap();
        let rk: Vec<Value> = (0..10).map(|i| i * 10).collect();
        let rv: Vec<Value> = (0..10).map(|i| i + 500).collect();
        let right = store
            .load_projection(
                &ProjectionSpec::new("r_dict")
                    .column_shared_dict("k", SortOrder::Primary)
                    .column("v", Ek::Plain, SortOrder::None),
                &[&rk, &rv],
            )
            .unwrap();
        (left, right)
    }

    #[test]
    fn code_keyed_join_matches_value_path_and_charges_code_ops() {
        let store = Store::in_memory();
        let (left, right) = shared_dict_setup(&store);
        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: Some((1, Predicate::lt(2000))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        // Oracle: the row set from first principles.
        let expected: Vec<Vec<Value>> = (0..2000i64).map(|i| vec![i, (i * 7) % 10 + 500]).collect();
        let serial = ExecOptions {
            granule: 256,
            parallelism: 1,
            ..ExecOptions::default()
        };
        for inner in InnerStrategy::ALL {
            let ops0 = matstrat_common::codeops::snapshot();
            let res = hash_join_with_options(&store, &spec, inner, &serial).unwrap();
            let ops = matstrat_common::codeops::snapshot().wrapping_sub(ops0);
            let mut rows = res.sorted_rows();
            rows.sort_unstable();
            assert_eq!(rows, expected, "{inner:?}");
            // Build charged 10 right rows, the probe one op per
            // surviving left row — all on this thread in serial mode.
            assert!(ops >= 2000, "{inner:?}: code path must run, got {ops} ops");
        }
        // Parallel runs stay byte-identical to serial.
        let serial_flat =
            hash_join_with_options(&store, &spec, InnerStrategy::MultiColumn, &serial)
                .unwrap()
                .flat()
                .to_vec();
        for workers in [2, 4, 8] {
            let par = hash_join_with_options(
                &store,
                &spec,
                InnerStrategy::MultiColumn,
                &ExecOptions {
                    granule: 256,
                    parallelism: workers,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(par.flat(), serial_flat, "workers={workers}");
        }
    }

    #[test]
    fn delta_key_outside_dict_falls_back_to_value_build() {
        let store = Store::in_memory();
        let (left, right) = shared_dict_setup(&store);
        // 999 encodes under neither dictionary: the right build must
        // fall back to decoded keys, and both inserted rows still join.
        store.insert_rows(right, &[vec![999, 777]]).unwrap();
        store.insert_rows(left, &[vec![999, 5000]]).unwrap();
        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: Some((1, Predicate::ge(5000))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        for inner in InnerStrategy::ALL {
            let res = hash_join(&store, &spec, inner).unwrap();
            assert_eq!(res.sorted_rows(), vec![vec![5000, 777]], "{inner:?}");
        }
    }

    #[test]
    fn left_delta_probe_translates_values_through_the_code_table() {
        let store = Store::in_memory();
        let (left, right) = shared_dict_setup(&store);
        // Left-side inserts probe the code-keyed table with raw values:
        // 30 translates and matches, 31 is absent from the (verified
        // complete) dictionary and must match nothing.
        store
            .insert_rows(left, &[vec![30, 6000], vec![31, 6001]])
            .unwrap();
        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: Some((1, Predicate::ge(6000))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        for inner in InnerStrategy::ALL {
            let res = hash_join(&store, &spec, inner).unwrap();
            assert_eq!(res.sorted_rows(), vec![vec![6000, 503]], "{inner:?}");
        }
    }
}
