//! The C-Store operator set (§3.1).
//!
//! The paper's operators map onto this crate as follows:
//!
//! | paper operator | implementation |
//! |---|---|
//! | DS1 (scan → positions) | [`MiniColumn::scan_positions`](crate::MiniColumn::scan_positions) |
//! | DS2 (scan → (pos, value)) | [`MiniColumn::scan_pairs`](crate::MiniColumn::scan_pairs) |
//! | DS3 (positions → values) | [`MiniColumn::gather`](crate::MiniColumn::gather) / [`fetch_values`](crate::MiniColumn::fetch_values) |
//! | DS4 (tuples + column → wider tuples) | [`probe::ds4_extend`] |
//! | AND | [`PosList::and`](matstrat_poslist::PosList::and) / [`MultiColumn::and`](crate::MultiColumn::and) |
//! | MERGE | [`merge::merge_columns`] |
//! | SPC | [`spc::spc_scan`] |
//! | aggregator | [`agg::SumAggregator`] (tuple- and column-input forms) |
//! | join | [`join`] (three inner-table strategies, §4.3) |
//! | join tree | [`join_tree`] (left-deep multi-way joins, position-list pipelined) |

pub mod agg;
pub mod join;
pub mod join_tree;
pub mod merge;
pub mod probe;
pub mod spc;
