//! A naive row-store reference executor.
//!
//! Serves two purposes: the **test oracle** every materialization
//! strategy is checked against (they must all return the same multiset of
//! tuples), and the **row-store baseline** a column store is implicitly
//! compared to throughout the paper — full tuples in memory, predicates
//! applied tuple-at-a-time.

use std::collections::HashMap;

use matstrat_common::{Error, Result, Value};

use crate::ops::agg::AggFunc;
use crate::query::{QueryResult, QuerySpec};

/// An in-memory row table: one `Vec<Value>` per row.
#[derive(Debug, Clone)]
pub struct RowTable {
    column_names: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl RowTable {
    /// Build from columns (transposing into rows).
    pub fn from_columns(column_names: Vec<String>, columns: &[&[Value]]) -> Result<RowTable> {
        if column_names.len() != columns.len() {
            return Err(Error::invalid("names/columns mismatch"));
        }
        let n = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != n) {
            return Err(Error::invalid("columns must have equal length"));
        }
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(columns.iter().map(|c| c[i]).collect());
        }
        Ok(RowTable { column_names, rows })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column names.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Execute a [`QuerySpec`] naively: filter each row against every
    /// predicate, then project or aggregate.
    pub fn run(&self, q: &QuerySpec) -> Result<QueryResult> {
        let ncols = self.column_names.len();
        for (c, _) in &q.filters {
            if *c >= ncols {
                return Err(Error::invalid(format!("filter column {c} out of range")));
            }
        }
        let surviving = self
            .rows
            .iter()
            .filter(|row| q.filters.iter().all(|(c, p)| p.matches(row[*c])));
        match q.aggregate {
            Some(a) => {
                if a.group_col >= ncols || a.value_col >= ncols {
                    return Err(Error::invalid("aggregate column out of range"));
                }
                // Independent (non-Aggregator) implementation: the oracle
                // must not share code with the executor under test.
                let mut groups: HashMap<Value, Vec<Value>> = HashMap::new();
                for row in surviving {
                    groups
                        .entry(row[a.group_col])
                        .or_default()
                        .push(row[a.value_col]);
                }
                let mut pairs: Vec<(Value, Value)> = groups
                    .into_iter()
                    .map(|(g, vs)| {
                        let agg = match a.func {
                            AggFunc::Sum => vs.iter().sum(),
                            AggFunc::Count => vs.len() as Value,
                            AggFunc::Min => *vs.iter().min().unwrap(),
                            AggFunc::Max => *vs.iter().max().unwrap(),
                        };
                        (g, agg)
                    })
                    .collect();
                pairs.sort_unstable_by_key(|&(g, _)| g);
                let names = vec![
                    self.column_names[a.group_col].clone(),
                    format!("{}_{}", a.func.name(), self.column_names[a.value_col]),
                ];
                let mut flat = Vec::with_capacity(pairs.len() * 2);
                for (g, s) in pairs {
                    flat.push(g);
                    flat.push(s);
                }
                Ok(QueryResult::from_flat(names, flat))
            }
            None => {
                for &c in &q.output {
                    if c >= ncols {
                        return Err(Error::invalid(format!("output column {c} out of range")));
                    }
                }
                if q.output.is_empty() {
                    return Err(Error::invalid("non-aggregated query must output columns"));
                }
                let names: Vec<String> = q
                    .output
                    .iter()
                    .map(|&c| self.column_names[c].clone())
                    .collect();
                let mut flat = Vec::new();
                for row in surviving {
                    for &c in &q.output {
                        flat.push(row[c]);
                    }
                }
                Ok(QueryResult::from_flat(names, flat))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::{Predicate, TableId};

    fn table() -> RowTable {
        let a: Vec<Value> = (0..100).map(|i| i / 10).collect();
        let b: Vec<Value> = (0..100).map(|i| i % 4).collect();
        RowTable::from_columns(vec!["a".into(), "b".into()], &[&a, &b]).unwrap()
    }

    #[test]
    fn selection_reference() {
        let t = table();
        let q = QuerySpec::select(TableId(0), vec![0, 1])
            .filter(0, Predicate::lt(3))
            .filter(1, Predicate::eq(1));
        let r = t.run(&q).unwrap();
        // a<3 → rows 0..30; b==1 → i%4==1 → 8 rows total (1,5,...,29).
        assert_eq!(r.num_rows(), 8);
        assert!(r.rows().all(|row| row[0] < 3 && row[1] == 1));
    }

    #[test]
    fn aggregation_reference() {
        let t = table();
        let q = QuerySpec::select(TableId(0), vec![]).aggregate_sum(0, 1);
        let r = t.run(&q).unwrap();
        assert_eq!(r.num_rows(), 10);
        // Compare each group's sum to a directly computed reference.
        for row in r.rows() {
            let g = row[0];
            let expected: Value = (0..100).filter(|i| i / 10 == g).map(|i| i % 4).sum();
            assert_eq!(row[1], expected, "group {g}");
        }
        assert_eq!(r.column_names, vec!["a".to_string(), "sum_b".to_string()]);
    }

    #[test]
    fn out_of_range_columns_rejected() {
        let t = table();
        assert!(t.run(&QuerySpec::select(TableId(0), vec![5])).is_err());
        assert!(t
            .run(&QuerySpec::select(TableId(0), vec![0]).filter(9, Predicate::lt(1)))
            .is_err());
        assert!(t
            .run(&QuerySpec::select(TableId(0), vec![]).aggregate_sum(0, 9))
            .is_err());
        assert!(t.run(&QuerySpec::select(TableId(0), vec![])).is_err());
    }

    #[test]
    fn from_columns_validates() {
        let a = vec![1, 2];
        let b = vec![1];
        assert!(RowTable::from_columns(vec!["a".into(), "b".into()], &[&a, &b]).is_err());
        assert!(RowTable::from_columns(vec!["a".into()], &[&a, &b]).is_err());
    }
}
