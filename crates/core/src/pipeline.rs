//! The fragment pipeline: one parallel execution substrate for every
//! operator that decomposes into independent position spans.
//!
//! PR 2 inlined a morsel-style worker pool in the scan executor; PR 3
//! extracted it here; this revision replaces the blind span-per-worker
//! dispatch with a **work-stealing granule scheduler**. The engine's
//! parallelism contract rests on four invariants, all owned by this
//! module:
//!
//! * **Partitioning** — the position range `[0, rows)` splits into
//!   contiguous, granule-aligned spans of near-equal granule counts, one
//!   per worker. The skew guard lives here and only here: when the table
//!   has fewer granules than the knob requests workers, the pipeline
//!   collapses to granule-count workers, so a one-granule table runs
//!   serially no matter the setting and every caller (executor, join,
//!   planner pricing) observes the same effective worker count.
//! * **Work stealing** — a worker *starts* on its own span and claims
//!   chunk-sized granule runs from the span's **head**, so its read
//!   stream stays sequential and the per-(file, worker) seek accounting
//!   of the I/O meter keeps meaning. A worker whose span is drained
//!   turns thief: it steals a chunk-sized granule run from the **tail**
//!   of the most loaded worker's remaining span, and exits only when
//!   every span is empty. Clustered selectivity can no longer strand one
//!   worker with all the matches while its siblings idle.
//! * **Granule-ordered merge** — every claimed run produces one
//!   fragment tagged with its start position; [`FragmentPipeline::run`]
//!   sorts the fragments into **global granule order** before returning
//!   them. Runs are contiguous, granule-aligned, and disjoint, and
//!   together they partition `[0, rows)`, so concatenating the fragments
//!   reproduces the serial output byte for byte at any worker count —
//!   stealing moves *who* computes a granule, never *what* or *where in
//!   the output* it lands. Cold `block_reads` stay exact for the same
//!   reason: the same granule windows are fetched exactly once each
//!   (the buffer pool single-flights concurrent misses).
//! * **Meter hygiene** — worker threads are per query; the pipeline
//!   drops each worker's [`IoMeter`] thread state when the worker (not
//!   each run) completes, so a long-lived store never accumulates
//!   entries for dead threads and a worker's stream stays one stream
//!   across its claims. The serial path runs on the calling thread and
//!   gets the same cleanup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use matstrat_common::{PosRange, Result};
use matstrat_storage::{IoMeter, IoSink};

/// Granule runs each worker is expected to claim over its lifetime: the
/// scheduler sizes its chunk as `num_granules / (workers ×
/// CHUNKS_PER_WORKER)` (clamped to ≥ 1 granule), so claim bookkeeping
/// stays a ~16th-order overhead while the tail of every span remains
/// fine-grained enough to steal. The cost model mirrors this constant
/// when pricing scheduler overhead (`CostModel::steal_overhead`).
pub const CHUNKS_PER_WORKER: u64 = 16;

/// A reusable span-parallel execution plan over a position range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentPipeline {
    spans: Vec<PosRange>,
    granule: u64,
    /// Granules per claim/steal.
    chunk: u64,
}

/// Remaining granule range `[head, tail)` of one worker's span, on the
/// global granule grid. The owner claims from `head`; thieves steal
/// from `tail`.
type SpanQueue = Mutex<(u64, u64)>;

impl FragmentPipeline {
    /// Plan `[0, rows)` as contiguous, granule-aligned spans for up to
    /// `workers` workers. `granule` and `workers` are clamped to ≥ 1; the
    /// worker count is capped by the granule count (the skew guard).
    pub fn new(rows: u64, granule: u64, workers: usize) -> FragmentPipeline {
        let granule = granule.max(1);
        let num_granules = rows.div_ceil(granule);
        let workers = Self::effective_workers(rows, granule, workers) as u64;
        let per = num_granules / workers;
        let rem = num_granules % workers;
        let mut spans = Vec::with_capacity(workers as usize);
        let mut at = 0u64; // in granules
        for w in 0..workers {
            let take = per + u64::from(w < rem);
            let start = at * granule;
            let end = ((at + take) * granule).min(rows);
            spans.push(PosRange::new(start, end.max(start)));
            at += take;
        }
        let chunk = (num_granules / (workers * CHUNKS_PER_WORKER)).max(1);
        FragmentPipeline {
            spans,
            granule,
            chunk,
        }
    }

    /// The worker count a `rows`/`granule`/`workers` pipeline actually
    /// runs with: `workers` clamped to `[1, ceil(rows / granule)]`. The
    /// single source of truth for the skew guard — the planner prices
    /// plans with this so CPU terms never divide by threads that will
    /// not spawn.
    pub fn effective_workers(rows: u64, granule: u64, workers: usize) -> usize {
        let num_granules = rows.div_ceil(granule.max(1)).max(1);
        (workers as u64).clamp(1, num_granules) as usize
    }

    /// The planned spans, in ascending position order. Spans partition
    /// `[0, rows)` exactly. With stealing, a span names where its worker
    /// *starts*, not everything it will execute.
    pub fn spans(&self) -> &[PosRange] {
        &self.spans
    }

    /// The effective worker count (number of spans).
    pub fn workers(&self) -> usize {
        self.spans.len()
    }

    /// Granules per scheduler claim/steal.
    pub fn chunk_granules(&self) -> u64 {
        self.chunk
    }

    /// Run `task` over the position range and return the fragments **in
    /// global granule order** (see [`Self::run_counted`] for the steal
    /// counter). Concatenating the fragments reproduces the serial
    /// output byte for byte at any worker count.
    pub fn run<T, F>(&self, meter: &IoMeter, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(PosRange) -> Result<T> + Sync,
    {
        Ok(self.run_counted(meter, task)?.0)
    }

    /// [`Self::run`] with per-query I/O harvesting: every
    /// `forget_current_thread` this run performs — each worker thread's
    /// on exit, and the calling thread's at the end — folds the dropped
    /// counters into `sink`. Because the calling thread's forget also
    /// sweeps up reads it made *before* this run (readers opened, build
    /// columns fetched between pipelines), a query that funnels all its
    /// pipeline runs into one sink ends with the sink holding exactly
    /// the query's own I/O, concurrency-proof (see
    /// [`matstrat_storage::IoSink`]).
    pub fn run_sunk<T, F>(&self, meter: &IoMeter, sink: &IoSink, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(PosRange) -> Result<T> + Sync,
    {
        Ok(self.run_counted_sunk(meter, Some(sink), task)?.0)
    }

    /// [`Self::run`], additionally reporting how many granule runs were
    /// **stolen** — claimed from the tail of another worker's span by a
    /// worker that had drained its own. A single-span (serial) plan
    /// never steals; a multi-span plan steals exactly when the work is
    /// skewed enough (or the host slow enough) for some worker to go
    /// idle while another still holds unclaimed granules.
    ///
    /// The first span runs on the calling thread; the remaining spans
    /// run on scoped worker threads, one per span, so an N-span plan
    /// occupies exactly N threads. Each worker processes chunk-sized
    /// granule runs: its own span head-first (sequential read stream),
    /// then stolen tail runs. Each thread's per-thread [`IoMeter`] state
    /// is dropped when the thread finishes all its runs (the global
    /// counters are unaffected). The first error in granule order wins;
    /// worker panics propagate to the caller; every granule runs even
    /// when an earlier one errors (matching the serial executor's
    /// whole-range semantics under the differential batteries).
    pub fn run_counted<T, F>(&self, meter: &IoMeter, task: F) -> Result<(Vec<T>, u64)>
    where
        T: Send,
        F: Fn(PosRange) -> Result<T> + Sync,
    {
        self.run_counted_sunk(meter, None, task)
    }

    /// [`Self::run_counted`] with the optional per-query [`IoSink`] of
    /// [`Self::run_sunk`].
    pub fn run_counted_sunk<T, F>(
        &self,
        meter: &IoMeter,
        sink: Option<&IoSink>,
        task: F,
    ) -> Result<(Vec<T>, u64)>
    where
        T: Send,
        F: Fn(PosRange) -> Result<T> + Sync,
    {
        let forget = |meter: &IoMeter| {
            let dropped = meter.forget_current_thread();
            if let Some(sink) = sink {
                sink.add(dropped);
            }
        };
        // The constructor always plans at least one (possibly empty)
        // span; a single span belongs to the calling thread, runs whole
        // (no chunking overhead), and cannot steal.
        if self.spans.len() <= 1 {
            let out = task(self.spans[0]);
            forget(meter);
            return Ok((vec![out?], 0));
        }

        let rows = self.spans.last().expect("planned above").end;
        let queues: Vec<SpanQueue> = self
            .spans
            .iter()
            .map(|s| Mutex::new((s.start / self.granule, s.end.div_ceil(self.granule))))
            .collect();
        let steals = AtomicU64::new(0);

        let worker = |w: usize| -> Vec<(u64, Result<T>)> {
            let mut frags = Vec::new();
            while let Some((g0, g1)) = self.claim(&queues, w, &steals) {
                let span = PosRange::new(g0 * self.granule, (g1 * self.granule).min(rows));
                frags.push((span.start, task(span)));
            }
            forget(meter);
            frags
        };

        let mut tagged: Vec<(u64, Result<T>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..self.spans.len())
                .map(|w| {
                    let worker = &worker;
                    scope.spawn(move || worker(w))
                })
                .collect();
            let mut all = worker(0);
            for h in handles {
                all.extend(matstrat_common::join_unwinding(h));
            }
            all
        });

        // Global granule order: runs are disjoint and granule-aligned,
        // so sorting by start position restores the serial layout.
        tagged.sort_unstable_by_key(|&(start, _)| start);
        debug_assert!(
            tagged.windows(2).all(|w| w[0].0 < w[1].0),
            "claimed runs must be disjoint"
        );
        let mut out = Vec::with_capacity(tagged.len());
        for (_, r) in tagged {
            out.push(r?);
        }
        Ok((out, steals.load(Ordering::Relaxed)))
    }

    /// Claim the next chunk-sized granule run for worker `w`: from the
    /// head of its own span while any remains, otherwise stolen from the
    /// tail of the most loaded span. `None` when every span is drained.
    fn claim(&self, queues: &[SpanQueue], w: usize, steals: &AtomicU64) -> Option<(u64, u64)> {
        {
            let mut q = queues[w].lock().expect("span queue poisoned");
            let (head, tail) = *q;
            if head < tail {
                let take = self.chunk.min(tail - head);
                q.0 = head + take;
                return Some((head, head + take));
            }
        }
        loop {
            // Pick the victim with the most unclaimed granules — the
            // best rebalance per steal, and the span least likely to be
            // drained by the time we lock it.
            let mut best: Option<(usize, u64)> = None;
            for (i, q) in queues.iter().enumerate() {
                if i == w {
                    continue;
                }
                let (head, tail) = *q.lock().expect("span queue poisoned");
                let remaining = tail.saturating_sub(head);
                if remaining > 0 && best.is_none_or(|(_, r)| remaining > r) {
                    best = Some((i, remaining));
                }
            }
            let (victim, _) = best?;
            let mut q = queues[victim].lock().expect("span queue poisoned");
            let (head, tail) = *q;
            if head < tail {
                let take = self.chunk.min(tail - head);
                q.1 = tail - take;
                steals.fetch_add(1, Ordering::Relaxed);
                return Some((tail - take, tail));
            }
            // Lost the race for this victim; rescan for another.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spans_partition_range_exactly() {
        for (rows, granule, workers) in [
            (10_000u64, 128u64, 4usize),
            (10_000, 128, 7),
            (1, 128, 8),
            (0, 128, 8),
            (999, 1, 3),
        ] {
            let p = FragmentPipeline::new(rows, granule, workers);
            let spans = p.spans();
            assert_eq!(spans.first().map(|s| s.start), Some(0));
            assert_eq!(spans.last().map(|s| s.end), Some(rows));
            for w in spans.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(w[1].start % granule == 0, "granule aligned");
            }
            let total: u64 = spans.iter().map(|s| s.len()).sum();
            assert_eq!(total, rows);
        }
    }

    #[test]
    fn skew_guard_caps_workers_at_granule_count() {
        // 3 granules, 8 requested workers: 3 spans.
        let p = FragmentPipeline::new(3 * 64, 64, 8);
        assert_eq!(p.workers(), 3);
        assert_eq!(FragmentPipeline::effective_workers(3 * 64, 64, 8), 3);
        // One-granule table runs serially no matter the knob.
        assert_eq!(FragmentPipeline::effective_workers(10, 64, 8), 1);
        // Degenerate inputs clamp rather than panic.
        assert_eq!(FragmentPipeline::effective_workers(0, 64, 8), 1);
        assert_eq!(FragmentPipeline::effective_workers(100, 0, 0), 1);
        assert_eq!(FragmentPipeline::new(0, 64, 4).workers(), 1);
    }

    #[test]
    fn near_equal_granule_counts() {
        // 10 granules over 4 workers: 3,3,2,2.
        let p = FragmentPipeline::new(10 * 32, 32, 4);
        let counts: Vec<u64> = p.spans().iter().map(|s| s.len() / 32).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn chunking_policy_matches_cost_model() {
        // The model prices scheduler bookkeeping from its mirror of the
        // chunking constant; the two must not drift apart.
        assert_eq!(
            CHUNKS_PER_WORKER as f64,
            matstrat_model::plans::SCHED_CHUNKS_PER_WORKER
        );
    }

    #[test]
    fn chunk_scales_with_granules_per_worker() {
        // Few granules: chunk clamps to one granule.
        assert_eq!(FragmentPipeline::new(10 * 32, 32, 4).chunk_granules(), 1);
        // Many granules: ~CHUNKS_PER_WORKER claims per worker.
        let p = FragmentPipeline::new(1280 * 32, 32, 4);
        assert_eq!(p.chunk_granules(), 1280 / (4 * CHUNKS_PER_WORKER));
    }

    #[test]
    fn degenerate_parallelism_never_spins_or_emits_zero_chunks() {
        // The session layer lets callers ask for any worker count, so the
        // scheduler must stay well-formed at the degenerate corners:
        // workers = 0 and granule counts of 0, 1, and workers − 1 — all
        // far below the `workers × CHUNKS_PER_WORKER` chunking regime.
        // Every configuration must (a) clamp to ≥ 1 worker, (b) never
        // plan a zero-sized steal chunk, and (c) run to completion with
        // each granule executed exactly once (an idle-spinning worker
        // would either hang the scope or double-claim a granule).
        let meter = IoMeter::new();
        const GRANULE: u64 = 32;
        for workers in [0usize, 1, 4, 8] {
            for granules in [0u64, 1, workers.saturating_sub(1) as u64] {
                let rows = granules * GRANULE;
                let p = FragmentPipeline::new(rows, GRANULE, workers);
                assert!(p.workers() >= 1, "w={workers} g={granules}: worker clamp");
                assert!(
                    p.workers() as u64 <= granules.max(1),
                    "w={workers} g={granules}: skew guard"
                );
                assert!(
                    p.chunk_granules() >= 1,
                    "w={workers} g={granules}: zero-sized steal chunk"
                );
                let hits = AtomicUsize::new(0);
                let (frags, _steals) = p
                    .run_counted(&meter, |span| {
                        hits.fetch_add(span.len().div_ceil(GRANULE) as usize, Ordering::Relaxed);
                        Ok(span)
                    })
                    .unwrap();
                assert_eq!(
                    hits.load(Ordering::Relaxed) as u64,
                    granules,
                    "w={workers} g={granules}: every granule exactly once"
                );
                // Fragments concatenate back to [0, rows) exactly.
                let covered: u64 = frags.iter().map(|s| s.len()).sum();
                assert_eq!(covered, rows, "w={workers} g={granules}");
            }
        }
        // workers = 0 with a non-trivial table behaves as serial.
        let p = FragmentPipeline::new(10 * GRANULE, GRANULE, 0);
        assert_eq!(p.workers(), 1);
        let (frags, steals) = p.run_counted(&meter, Ok).unwrap();
        assert_eq!(steals, 0, "serial plans cannot steal");
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], PosRange::new(0, 10 * GRANULE));
    }

    #[test]
    fn run_returns_fragments_in_global_granule_order() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(1000, 10, 8);
        let frags = p.run(&meter, Ok).unwrap();
        // Fragments partition [0, 1000) in ascending position order,
        // chunked on the granule grid — regardless of who ran them.
        assert_eq!(frags.first().map(|s| s.start), Some(0));
        assert_eq!(frags.last().map(|s| s.end), Some(1000));
        for w in frags.windows(2) {
            assert_eq!(w[0].end, w[1].start, "contiguous in position order");
            assert_eq!(w[1].start % 10, 0, "granule aligned");
        }
    }

    #[test]
    fn run_serial_uses_calling_thread_and_never_steals() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(100, 64 * 1024, 8);
        assert_eq!(p.workers(), 1);
        let caller = std::thread::current().id();
        let (frags, steals) = p
            .run_counted(&meter, |_| Ok(std::thread::current().id()))
            .unwrap();
        assert_eq!(frags, vec![caller]);
        assert_eq!(steals, 0);
    }

    #[test]
    fn run_multi_span_uses_worker_threads() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(400, 100, 4);
        let caller = std::thread::current().id();
        let done = AtomicUsize::new(0);
        // Park granule 0's runner until the rest ran. If the caller
        // parks, the other three granules ran on worker threads; if a
        // worker parks (it stole granule 0 first), that worker is the
        // non-caller participant. Either way ≥ 1 granule provably ran
        // off the calling thread.
        let ids = p
            .run(&meter, |span| {
                if span.start == 0 {
                    while done.load(Ordering::SeqCst) < 3 {
                        std::thread::yield_now();
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
                Ok(std::thread::current().id())
            })
            .unwrap();
        assert_eq!(ids.len(), 4);
        assert!(
            ids.iter().any(|id| *id != caller),
            "worker threads participated"
        );
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_span() {
        // Two workers, two granules each, chunk = 1. The task for
        // granule 0 blocks until three other granules completed: worker
        // 0 claims granule 0 (its own head — heads are never stolen) and
        // parks in it, so granule 1 can only ever be executed by worker
        // 1 stealing it from worker 0's tail. Deterministic: worker 1
        // exits only when every span queue is empty, and worker 0's
        // queue still holds granule 1 while worker 0 is parked.
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(4 * 64, 64, 2);
        assert_eq!(p.chunk_granules(), 1);
        let done = AtomicUsize::new(0);
        let (frags, steals) = p
            .run_counted(&meter, |span| {
                if span.start == 0 {
                    while done.load(Ordering::SeqCst) < 3 {
                        std::thread::yield_now();
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
                Ok(span.start)
            })
            .unwrap();
        assert_eq!(frags, vec![0, 64, 128, 192], "global granule order");
        assert!(steals >= 1, "granule 64 must have been stolen");
    }

    #[test]
    fn stolen_results_merge_in_granule_order() {
        // Same gating trick at a larger scale: worker 0 parks on its
        // first granule until everything else ran (mostly via steals),
        // and the merged output must still be the serial layout.
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(64 * 16, 16, 4);
        let total_granules = 64usize;
        let done = AtomicUsize::new(0);
        let (frags, steals) = p
            .run_counted(&meter, |span| {
                if span.start == 0 {
                    while done.load(Ordering::SeqCst) < total_granules - 1 {
                        std::thread::yield_now();
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
                Ok(span)
            })
            .unwrap();
        let rejoined: Vec<u64> = frags.iter().map(|s| s.start).collect();
        let mut expect = rejoined.clone();
        expect.sort_unstable();
        assert_eq!(rejoined, expect, "fragments in ascending position order");
        assert_eq!(frags.iter().map(|s| s.len()).sum::<u64>(), 64 * 16);
        assert!(steals >= 1, "worker 0's span tail must have been stolen");
    }

    #[test]
    fn run_propagates_first_error_in_granule_order() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(400, 100, 4);
        let calls = AtomicUsize::new(0);
        let err = p
            .run(&meter, |span| {
                calls.fetch_add(1, Ordering::SeqCst);
                if span.start >= 100 {
                    Err(matstrat_common::Error::invalid(format!(
                        "boom@{}",
                        span.start
                    )))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(
            err.to_string().contains("boom@100"),
            "first error in granule order wins: {err}"
        );
        assert_eq!(calls.load(Ordering::SeqCst), 4, "all granules still ran");
    }

    #[test]
    fn run_forgets_worker_meter_state() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(400, 100, 4);
        p.run(&meter, |span| {
            meter.record_read("f", span.start, 10);
            Ok(())
        })
        .unwrap();
        // Global counters survive; per-thread state is gone, so a fresh
        // thread snapshot on this thread is empty.
        assert_eq!(meter.snapshot().block_reads, 4);
        assert_eq!(meter.thread_snapshot(), Default::default());
    }
}
