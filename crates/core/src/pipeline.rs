//! The fragment pipeline: one parallel execution substrate for every
//! operator that decomposes into independent position spans.
//!
//! PR 2 inlined a morsel-style worker pool in the scan executor; this
//! module extracts it so scans, the hash-join probe, and any future
//! span-decomposable operator share one implementation of the three
//! invariants the engine's parallelism contract rests on:
//!
//! * **Partitioning** — the position range `[0, rows)` splits into
//!   contiguous, granule-aligned spans of near-equal granule counts, one
//!   per worker. The skew guard lives here and only here: when the table
//!   has fewer granules than the knob requests workers, the pipeline
//!   collapses to granule-count workers, so a one-granule table runs
//!   serially no matter the setting and every caller (executor, join,
//!   planner pricing) observes the same effective worker count.
//! * **Span-ordered merge** — [`FragmentPipeline::run`] returns the
//!   per-span fragments in span order. Spans are contiguous and
//!   ascending, so concatenating fragments reproduces the serial output
//!   byte for byte at any worker count.
//! * **Meter hygiene** — worker threads are per query; the pipeline
//!   drops each worker's [`IoMeter`] thread state when its span
//!   completes, so a long-lived store never accumulates entries for dead
//!   threads (the global counters survive). The serial path runs on the
//!   calling thread and gets the same cleanup.

use matstrat_common::{PosRange, Result};
use matstrat_storage::IoMeter;

/// A reusable span-parallel execution plan over a position range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentPipeline {
    spans: Vec<PosRange>,
}

impl FragmentPipeline {
    /// Plan `[0, rows)` as contiguous, granule-aligned spans for up to
    /// `workers` workers. `granule` and `workers` are clamped to ≥ 1; the
    /// worker count is capped by the granule count (the skew guard).
    pub fn new(rows: u64, granule: u64, workers: usize) -> FragmentPipeline {
        let granule = granule.max(1);
        let num_granules = rows.div_ceil(granule);
        let workers = Self::effective_workers(rows, granule, workers) as u64;
        let per = num_granules / workers;
        let rem = num_granules % workers;
        let mut spans = Vec::with_capacity(workers as usize);
        let mut at = 0u64; // in granules
        for w in 0..workers {
            let take = per + u64::from(w < rem);
            let start = at * granule;
            let end = ((at + take) * granule).min(rows);
            spans.push(PosRange::new(start, end.max(start)));
            at += take;
        }
        FragmentPipeline { spans }
    }

    /// The worker count a `rows`/`granule`/`workers` pipeline actually
    /// runs with: `workers` clamped to `[1, ceil(rows / granule)]`. The
    /// single source of truth for the skew guard — the planner prices
    /// plans with this so CPU terms never divide by threads that will
    /// not spawn.
    pub fn effective_workers(rows: u64, granule: u64, workers: usize) -> usize {
        let num_granules = rows.div_ceil(granule.max(1)).max(1);
        (workers as u64).clamp(1, num_granules) as usize
    }

    /// The planned spans, in ascending position order. Spans partition
    /// `[0, rows)` exactly.
    pub fn spans(&self) -> &[PosRange] {
        &self.spans
    }

    /// The effective worker count (number of spans).
    pub fn workers(&self) -> usize {
        self.spans.len()
    }

    /// Run `task` over every span and return the fragments **in span
    /// order**. The first span runs on the calling thread; the remaining
    /// spans run on scoped worker threads, one per span, so an N-span
    /// plan occupies exactly N threads. Each thread's per-thread
    /// [`IoMeter`] state is dropped when its span completes (the global
    /// counters are unaffected). The first error in span order wins;
    /// worker panics propagate to the caller.
    pub fn run<T, F>(&self, meter: &IoMeter, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(PosRange) -> Result<T> + Sync,
    {
        let run_one = |span: PosRange| {
            let out = task(span);
            meter.forget_current_thread();
            out
        };
        // The constructor always plans at least one (possibly empty)
        // span; it belongs to the calling thread.
        if self.spans.len() <= 1 {
            return Ok(vec![run_one(self.spans[0])?]);
        }
        let outs: Vec<Result<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self.spans[1..]
                .iter()
                .map(|&span| {
                    let run_one = &run_one;
                    scope.spawn(move || run_one(span))
                })
                .collect();
            let mut outs = Vec::with_capacity(self.spans.len());
            outs.push(run_one(self.spans[0]));
            outs.extend(handles.into_iter().map(matstrat_common::join_unwinding));
            outs
        });
        outs.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spans_partition_range_exactly() {
        for (rows, granule, workers) in [
            (10_000u64, 128u64, 4usize),
            (10_000, 128, 7),
            (1, 128, 8),
            (0, 128, 8),
            (999, 1, 3),
        ] {
            let p = FragmentPipeline::new(rows, granule, workers);
            let spans = p.spans();
            assert_eq!(spans.first().map(|s| s.start), Some(0));
            assert_eq!(spans.last().map(|s| s.end), Some(rows));
            for w in spans.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(w[1].start % granule == 0, "granule aligned");
            }
            let total: u64 = spans.iter().map(|s| s.len()).sum();
            assert_eq!(total, rows);
        }
    }

    #[test]
    fn skew_guard_caps_workers_at_granule_count() {
        // 3 granules, 8 requested workers: 3 spans.
        let p = FragmentPipeline::new(3 * 64, 64, 8);
        assert_eq!(p.workers(), 3);
        assert_eq!(FragmentPipeline::effective_workers(3 * 64, 64, 8), 3);
        // One-granule table runs serially no matter the knob.
        assert_eq!(FragmentPipeline::effective_workers(10, 64, 8), 1);
        // Degenerate inputs clamp rather than panic.
        assert_eq!(FragmentPipeline::effective_workers(0, 64, 8), 1);
        assert_eq!(FragmentPipeline::effective_workers(100, 0, 0), 1);
        assert_eq!(FragmentPipeline::new(0, 64, 4).workers(), 1);
    }

    #[test]
    fn near_equal_granule_counts() {
        // 10 granules over 4 workers: 3,3,2,2.
        let p = FragmentPipeline::new(10 * 32, 32, 4);
        let counts: Vec<u64> = p.spans().iter().map(|s| s.len() / 32).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn run_returns_fragments_in_span_order() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(1000, 10, 8);
        let frags = p.run(&meter, |span| Ok(span.start)).unwrap();
        let starts: Vec<u64> = p.spans().iter().map(|s| s.start).collect();
        assert_eq!(frags, starts, "fragments arrive in span order");
    }

    #[test]
    fn run_serial_uses_calling_thread() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(100, 64 * 1024, 8);
        assert_eq!(p.workers(), 1);
        let caller = std::thread::current().id();
        let frags = p.run(&meter, |_| Ok(std::thread::current().id())).unwrap();
        assert_eq!(frags, vec![caller]);
    }

    #[test]
    fn run_multi_span_runs_first_span_on_caller() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(400, 100, 4);
        let caller = std::thread::current().id();
        let ids = p.run(&meter, |_| Ok(std::thread::current().id())).unwrap();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], caller, "first span belongs to the caller");
        for id in &ids[1..] {
            assert_ne!(*id, caller, "remaining spans run on workers");
        }
    }

    #[test]
    fn run_propagates_first_error() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(400, 100, 4);
        let calls = AtomicUsize::new(0);
        let err = p
            .run(&meter, |span| {
                calls.fetch_add(1, Ordering::SeqCst);
                if span.start == 100 {
                    Err(matstrat_common::Error::invalid("boom"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        assert_eq!(calls.load(Ordering::SeqCst), 4, "all spans still ran");
    }

    #[test]
    fn run_forgets_worker_meter_state() {
        let meter = IoMeter::new();
        let p = FragmentPipeline::new(400, 100, 4);
        p.run(&meter, |span| {
            meter.record_read("f", span.start, 10);
            Ok(())
        })
        .unwrap();
        // Global counters survive; per-thread state is gone, so a fresh
        // thread snapshot on this thread is empty.
        assert_eq!(meter.snapshot().block_reads, 4);
        assert_eq!(meter.thread_snapshot(), Default::default());
    }
}
