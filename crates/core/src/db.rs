//! The `Database` facade: storage + executor + planner + joins.

use std::path::Path;

use matstrat_common::{PosRange, Predicate, Result, TableId, Value};
use matstrat_model::Constants;
use matstrat_poslist::PosList;
use matstrat_storage::{CompactorHandle, ProjectionSpec, Store};

use crate::multicol::MiniColumn;

use crate::exec::{default_parallelism, execute_with_options, ExecOptions};
use crate::ops::join::{hash_join_with_options, InnerStrategy, JoinSpec};
use crate::ops::join_tree::{hash_join_tree_with_options, JoinTreePlan};
use crate::planner::{JoinChoice, JoinTreeChoice, PlanChoice, Planner};
use crate::query::{ExecStats, JoinTreeSpec, JoinTreeStats, QueryResult, QuerySpec};
use crate::strategy::Strategy;

/// A column-store database with pluggable materialization strategies.
///
/// ```
/// use matstrat_common::Predicate;
/// use matstrat_core::{Database, QuerySpec, Strategy};
/// use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};
///
/// let db = Database::in_memory();
/// let a: Vec<i64> = (0..1000).map(|i| i / 100).collect();
/// let b: Vec<i64> = (0..1000).map(|i| i % 7).collect();
/// let spec = ProjectionSpec::new("demo")
///     .column("a", EncodingKind::Rle, SortOrder::Primary)
///     .column("b", EncodingKind::Plain, SortOrder::None);
/// let t = db.load_projection(&spec, &[&a, &b]).unwrap();
///
/// let q = QuerySpec::select(t, vec![0, 1])
///     .filter(0, Predicate::lt(5))
///     .filter(1, Predicate::lt(3));
/// let lm = db.run(&q, Strategy::LmParallel).unwrap();
/// let em = db.run(&q, Strategy::EmParallel).unwrap();
/// assert_eq!(lm.sorted_rows(), em.sorted_rows());
/// ```
pub struct Database {
    store: Store,
    planner: Planner,
    /// Worker threads per query; every `run*` entry point and the planner
    /// use this unless overridden by explicit [`ExecOptions`].
    parallelism: usize,
}

impl Database {
    /// An in-memory database.
    pub fn in_memory() -> Database {
        Database::with_store(Store::in_memory())
    }

    /// A database persisted under `dir` (catalog and data survive reopen).
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Ok(Database::with_store(Store::open_dir(dir)?))
    }

    /// Wrap an existing store. The executor worker count starts at the
    /// `MATSTRAT_THREADS` default; see [`Database::set_parallelism`].
    pub fn with_store(store: Store) -> Database {
        let parallelism = default_parallelism();
        Database {
            store,
            planner: Planner::with_parallelism(Constants::host_defaults(), parallelism),
            parallelism,
        }
    }

    /// Replace the planner's model constants (e.g. after calibration).
    pub fn set_model_constants(&mut self, constants: Constants) {
        self.planner = Planner::with_parallelism(constants, self.parallelism);
    }

    /// Set the executor worker count for every subsequent query (clamped
    /// to ≥ 1) and re-price the planner accordingly. Results are
    /// identical at any setting; only wall time changes.
    ///
    /// When the new worker count outgrows the buffer pool's stripe
    /// count (chosen at store construction from `MATSTRAT_POOL_SHARDS`,
    /// defaulting to the `MATSTRAT_THREADS` worker default), the pool is
    /// **re-sharded in place** to match: cached entries rehash into the
    /// wider striping and the summed [`PoolStats`] counters are
    /// preserved exactly
    /// ([`matstrat_storage::BufferPool::reshard_at_least`], which makes
    /// the grow-or-not decision under the stripe write lock so two
    /// sessions sharing one store can race this call safely).
    /// Shrinking the knob never narrows the pool — extra stripes only
    /// cost a few bytes. The only residual mismatch is a pool whose
    /// *capacity* is smaller than the worker count (a stripe must own at
    /// least one block); that corner still surfaces through
    /// [`Database::pool_undersharded`] / [`PoolStats::shards`] and a
    /// debug-build log line.
    ///
    /// [`PoolStats`]: matstrat_storage::PoolStats
    /// [`PoolStats::shards`]: matstrat_storage::PoolStats
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
        let constants = *self.planner.model().constants();
        self.planner = Planner::with_parallelism(constants, self.parallelism);
        // Grow-only, decided under the pool's stripe write lock: a
        // check-then-act against `num_shards()` here would race a second
        // session sharing this store (its stale read could re-shard the
        // pool *narrower* after we widened it).
        self.store.pool().reshard_at_least(self.parallelism);
        if cfg!(debug_assertions) {
            if let Some((workers, shards)) = self.pool_undersharded() {
                eprintln!(
                    "matstrat (debug): worker knob ({workers}) exceeds the buffer pool's \
                     {shards}-stripe maximum (capacity-capped: every stripe owns ≥ 1 \
                     block); lookups of distinct blocks may contend."
                );
            }
        }
    }

    /// `Some((workers, shards))` when the executor worker knob exceeds
    /// the buffer pool's stripe count. Since [`Database::set_parallelism`]
    /// re-shards the pool in place, this is only reachable when the pool
    /// *capacity* caps the stripe count below the knob (every stripe must
    /// own at least one block). `None` when the pool is striped at least
    /// as wide as the knob. The same stripe count is visible on every
    /// [`matstrat_storage::PoolStats`] snapshot.
    pub fn pool_undersharded(&self) -> Option<(usize, usize)> {
        let shards = self.store.pool().num_shards();
        (self.parallelism > shards).then_some((self.parallelism, shards))
    }

    /// The executor worker count queries run with.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The executor options `run`/`run_with_stats` use: defaults plus
    /// this database's parallelism.
    pub fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            parallelism: self.parallelism,
            ..ExecOptions::default()
        }
    }

    /// The underlying store (buffer pool, I/O meter, catalog).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Load a projection from column slices.
    pub fn load_projection(&self, spec: &ProjectionSpec, columns: &[&[Value]]) -> Result<TableId> {
        self.store.load_projection(spec, columns)
    }

    /// Insert rows (row-major, projection arity) into `table`: logged to
    /// the WAL, then applied to the in-memory delta. Durable when this
    /// returns; visible to every subsequent query on any session.
    /// Returns the position stamp of the first inserted row.
    pub fn insert(&self, table: TableId, rows: &[Vec<Value>]) -> Result<u64> {
        self.store.insert_rows(table, rows)
    }

    /// Delete every row of `table` matching all of `filters` (an empty
    /// list deletes every row). Returns how many rows were newly marked
    /// deleted. See [`delete_where`].
    pub fn delete_where(&self, table: TableId, filters: &[(usize, Predicate)]) -> Result<u64> {
        delete_where(&self.store, table, filters)
    }

    /// Fold `table`'s delta into fresh immutable blocks (no-op on a
    /// clean table). Queries racing this stay byte-identical.
    pub fn compact(&self, table: TableId) -> Result<bool> {
        self.store.compact(table)
    }

    /// [`Database::compact`] for every dirty table; returns how many
    /// were folded.
    pub fn compact_all(&self) -> Result<usize> {
        self.store.compact_all()
    }

    /// Start a background compactor that folds dirty tables every
    /// `interval`. Stops when the handle drops.
    pub fn spawn_compactor(&self, interval: std::time::Duration) -> CompactorHandle {
        self.store.spawn_compactor(interval)
    }

    /// Run a query under an explicit strategy.
    pub fn run(&self, q: &QuerySpec, strategy: Strategy) -> Result<QueryResult> {
        Ok(self.run_with_stats(q, strategy)?.0)
    }

    /// Run a query under an explicit strategy, returning measurements.
    pub fn run_with_stats(
        &self,
        q: &QuerySpec,
        strategy: Strategy,
    ) -> Result<(QueryResult, ExecStats)> {
        execute_with_options(&self.store, q, strategy, &self.exec_options())
    }

    /// Run with explicit executor options (ablation experiments).
    pub fn run_with_options(
        &self,
        q: &QuerySpec,
        strategy: Strategy,
        opts: &ExecOptions,
    ) -> Result<(QueryResult, ExecStats)> {
        execute_with_options(&self.store, q, strategy, opts)
    }

    /// Ask the planner to pick a strategy (without running).
    pub fn plan(&self, q: &QuerySpec) -> Result<PlanChoice> {
        self.planner.choose(&self.store, q)
    }

    /// Plan, then run under the chosen strategy.
    pub fn run_auto(&self, q: &QuerySpec) -> Result<(PlanChoice, QueryResult)> {
        let choice = self.plan(q)?;
        let result = self.run(q, choice.strategy)?;
        Ok((choice, result))
    }

    /// Run an equi-join under the chosen inner-table strategy (§4.3).
    /// The probe side runs on this database's worker count; results are
    /// identical at any setting.
    pub fn run_join(&self, spec: &JoinSpec, inner: InnerStrategy) -> Result<QueryResult> {
        hash_join_with_options(&self.store, spec, inner, &self.exec_options())
    }

    /// Run a join with explicit executor options (worker count, probe
    /// granule).
    pub fn run_join_with_options(
        &self,
        spec: &JoinSpec,
        inner: InnerStrategy,
        opts: &ExecOptions,
    ) -> Result<QueryResult> {
        hash_join_with_options(&self.store, spec, inner, opts)
    }

    /// Run a join and report wall/I/O measurements. The I/O counters are
    /// this query's own (per-thread harvest, not a global meter diff), so
    /// they stay exact when other sessions run concurrently.
    pub fn run_join_with_stats(
        &self,
        spec: &JoinSpec,
        inner: InnerStrategy,
    ) -> Result<(QueryResult, std::time::Duration, matstrat_storage::IoStats)> {
        let t0 = std::time::Instant::now();
        let (r, io) =
            crate::ops::join::hash_join_with_io(&self.store, spec, inner, &self.exec_options())?;
        Ok((r, t0.elapsed(), io))
    }

    /// Ask the planner to pick an inner-table strategy (without running).
    pub fn plan_join(&self, spec: &JoinSpec) -> Result<JoinChoice> {
        self.planner.choose_join(&self.store, spec)
    }

    /// Plan, then run the join under the chosen inner-table strategy.
    pub fn run_join_auto(&self, spec: &JoinSpec) -> Result<(JoinChoice, QueryResult)> {
        let choice = self.plan_join(spec)?;
        let result = self.run_join(spec, choice.inner)?;
        Ok((choice, result))
    }

    /// Run a multi-way join tree in spec order under explicit per-edge
    /// inner-table strategies, on this database's worker count.
    pub fn run_join_tree(
        &self,
        spec: &JoinTreeSpec,
        inners: &[InnerStrategy],
    ) -> Result<QueryResult> {
        Ok(self
            .run_join_tree_with_options(
                spec,
                &JoinTreePlan::in_spec_order(inners.to_vec()),
                &self.exec_options(),
            )?
            .0)
    }

    /// Run a join tree under an explicit [`JoinTreePlan`] (edge order,
    /// per-edge strategies, build-reuse switch) and executor options,
    /// returning the tree-level measurements ([`JoinTreeStats`]) —
    /// `builds` vs `build_reuses` shows the partitioned-build cache at
    /// work when one inner table feeds several edges.
    pub fn run_join_tree_with_options(
        &self,
        spec: &JoinTreeSpec,
        plan: &JoinTreePlan,
        opts: &ExecOptions,
    ) -> Result<(QueryResult, JoinTreeStats)> {
        hash_join_tree_with_options(&self.store, spec, plan, opts)
    }

    /// Ask the planner for a join-tree plan (edge order + per-edge
    /// strategies) without running it.
    pub fn plan_join_tree(&self, spec: &JoinTreeSpec) -> Result<JoinTreeChoice> {
        self.planner.choose_join_tree(&self.store, spec)
    }

    /// Plan, then run the join tree under the chosen edge order and
    /// per-edge strategies. A single-edge tree delegates to the plain
    /// join planner ([`Planner::choose_join`]), so the two auto paths
    /// can never disagree on an ordinary join.
    pub fn run_join_tree_auto(
        &self,
        spec: &JoinTreeSpec,
    ) -> Result<(JoinTreeChoice, QueryResult, JoinTreeStats)> {
        let choice = self.plan_join_tree(spec)?;
        let (result, stats) =
            self.run_join_tree_with_options(spec, &choice.plan(), &self.exec_options())?;
        Ok((choice, result, stats))
    }
}

/// Resolve every row of `table` matching all of `filters` and mark it
/// deleted (an empty list deletes every row). Returns how many rows
/// were newly marked.
///
/// Find-then-delete is epoch-guarded: positions are resolved against
/// one [`Store::scan_snapshot`] — granule DS1 scans ANDed on the
/// immutable side, row-at-a-time over the live delta — and applied with
/// [`Store::delete_positions_at_epoch`], which refuses (and this
/// function rescans) if a compaction rewrote the position space in
/// between.
pub fn delete_where(store: &Store, table: TableId, filters: &[(usize, Predicate)]) -> Result<u64> {
    loop {
        let (proj, delta) = store.scan_snapshot(table)?;
        let mut doomed: Vec<u64> = Vec::new();
        if proj.num_rows > 0 {
            let readers = filters
                .iter()
                .map(|(c, _)| store.reader_for(proj.column(*c)?))
                .collect::<Result<Vec<_>>>()?;
            let mut at = 0u64;
            while at < proj.num_rows {
                let window = PosRange::new(at, (at + crate::GRANULE).min(proj.num_rows));
                at = window.end;
                let mut desc = PosList::full(window);
                for (reader, (_, pred)) in readers.iter().zip(filters) {
                    if desc.is_empty() {
                        break;
                    }
                    let mini = MiniColumn::fetch(reader, window)?;
                    desc = desc.and(&mini.scan_positions(pred));
                }
                doomed.extend(desc.iter());
            }
        }
        if let Some(d) = &delta {
            // Already-deleted positions may re-match on the base side;
            // `delete_positions` skips them, so only the delta loop
            // bothers to pre-filter.
            for (i, row) in d.inserts.iter().enumerate() {
                let pos = d.base_rows + i as u64;
                if !d.is_deleted(pos) && filters.iter().all(|(c, p)| p.matches(row[*c])) {
                    doomed.push(pos);
                }
            }
        }
        if doomed.is_empty() {
            return Ok(0);
        }
        if let Some(n) = store.delete_positions_at_epoch(table, proj.wal_epoch, &doomed)? {
            return Ok(n);
        }
        // A compaction swapped the table between resolve and apply;
        // the positions are stale — resolve again.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_storage::{EncodingKind, SortOrder};

    fn demo_db() -> (Database, TableId) {
        let db = Database::in_memory();
        let a: Vec<Value> = (0..2000).map(|i| i / 200).collect();
        let b: Vec<Value> = (0..2000).map(|i| i % 7).collect();
        let spec = ProjectionSpec::new("demo")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None);
        let t = db.load_projection(&spec, &[&a, &b]).unwrap();
        (db, t)
    }

    #[test]
    fn run_with_stats_reports_rows() {
        let (db, t) = demo_db();
        let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(3));
        let (r, stats) = db.run_with_stats(&q, Strategy::LmParallel).unwrap();
        assert_eq!(r.num_rows(), 600);
        assert_eq!(stats.rows_out, 600);
        assert_eq!(stats.positions_matched, 600);
        assert_eq!(stats.strategy, Strategy::LmParallel);
    }

    #[test]
    fn run_auto_plans_and_runs() {
        let (db, t) = demo_db();
        let q = QuerySpec::select(t, vec![])
            .filter(0, Predicate::lt(5))
            .filter(1, Predicate::lt(6))
            .aggregate_sum(0, 1);
        let (choice, result) = db.run_auto(&q).unwrap();
        assert!(choice.strategy.is_late());
        assert_eq!(result.num_rows(), 5);
    }

    #[test]
    fn parallelism_knob_keeps_results_identical() {
        let (mut db, t) = demo_db();
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(4));
        // Small granule so 2000 rows actually split across workers.
        let opts = |workers| ExecOptions {
            granule: 128,
            parallelism: workers,
            ..ExecOptions::default()
        };
        let (serial, s1) = db
            .run_with_options(&q, Strategy::LmParallel, &opts(1))
            .unwrap();
        for workers in [2, 3, 8] {
            let (par, sp) = db
                .run_with_options(&q, Strategy::LmParallel, &opts(workers))
                .unwrap();
            assert_eq!(par.flat(), serial.flat(), "byte-identical at {workers}");
            assert_eq!(sp.positions_matched, s1.positions_matched);
            assert_eq!(sp.rows_out, s1.rows_out);
        }
        // The database-level knob feeds run() and the planner.
        db.set_parallelism(4);
        assert_eq!(db.parallelism(), 4);
        assert_eq!(db.exec_options().parallelism, 4);
        assert_eq!(db.planner().parallelism(), 4);
        let r = db.run(&q, Strategy::EmPipelined).unwrap();
        db.set_parallelism(1);
        assert_eq!(r.flat(), db.run(&q, Strategy::EmPipelined).unwrap().flat());
    }

    #[test]
    fn set_parallelism_zero_clamps_to_one_worker() {
        let (mut db, t) = demo_db();
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(4));
        let expect = db.run(&q, Strategy::LmParallel).unwrap();
        db.set_parallelism(0);
        assert_eq!(db.parallelism(), 1, "knob clamps to ≥ 1");
        assert_eq!(db.exec_options().parallelism, 1);
        assert_eq!(db.planner().parallelism(), 1);
        // And the clamped executor still answers correctly.
        let got = db.run(&q, Strategy::LmParallel).unwrap();
        assert_eq!(got.flat(), expect.flat());
    }

    #[test]
    fn set_parallelism_reshards_the_pool_in_place() {
        let (mut db, t) = demo_db();
        let shards = db.store().pool().num_shards();
        // Pool striped at least as wide as the knob: nothing to do.
        db.set_parallelism(shards);
        assert_eq!(db.pool_undersharded(), None);
        assert_eq!(db.store().pool().num_shards(), shards);
        // Warm the pool so the reshard has entries to move, and snapshot
        // the counters it must preserve.
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(4));
        let warm = db.run(&q, Strategy::LmParallel).unwrap();
        let before = db.store().pool().stats();
        // Outgrowing the stripe count now re-shards in place instead of
        // warning: the knob and the striping agree again, counters carry
        // over exactly, and the new width shows on PoolStats.
        db.set_parallelism(shards + 3);
        assert_eq!(db.pool_undersharded(), None, "re-sharded, not surfaced");
        let pool = db.store().pool();
        assert_eq!(pool.num_shards(), shards + 3);
        let after = pool.stats();
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.shards, (shards + 3) as u64);
        // Results stay identical across the reshard, and the moved
        // entries still serve hits (a warm re-run does no extra reads).
        let wide = db.run(&q, Strategy::LmParallel).unwrap();
        assert_eq!(wide.flat(), warm.flat());
        assert_eq!(db.store().pool().stats().misses, before.misses);
        // Shrinking the knob never narrows the pool.
        db.set_parallelism(1);
        assert_eq!(db.pool_undersharded(), None);
        assert_eq!(db.store().pool().num_shards(), shards + 3);
        assert_eq!(
            wide.flat(),
            db.run(&q, Strategy::LmParallel).unwrap().flat()
        );
    }

    #[test]
    fn persistent_database_reopens() {
        let dir = std::env::temp_dir().join(format!("matstrat-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a: Vec<Value> = (0..100).collect();
        {
            let db = Database::open(&dir).unwrap();
            let spec =
                ProjectionSpec::new("t").column("a", EncodingKind::Plain, SortOrder::Primary);
            db.load_projection(&spec, &[&a]).unwrap();
        }
        let db = Database::open(&dir).unwrap();
        let t = db.store().projection_by_name("t").unwrap().id;
        let q = QuerySpec::select(t, vec![0]).filter(0, Predicate::ge(90));
        let r = db.run(&q, Strategy::EmParallel).unwrap();
        assert_eq!(r.num_rows(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
