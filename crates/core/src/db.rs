//! The `Database` facade: storage + executor + planner + joins.

use std::path::Path;

use matstrat_common::{Error, PosRange, Predicate, Result, TableId, Value};
use matstrat_model::plans::JoinTreeCost;
use matstrat_model::{Constants, CostBreakdown};
use matstrat_poslist::PosList;
use matstrat_storage::{CompactorHandle, ProjectionSpec, Store};

use crate::multicol::MiniColumn;

use crate::exec::{default_parallelism, execute_with_options, ExecOptions};
use crate::ops::join::{InnerStrategy, JoinSpec};
use crate::ops::join_tree::{hash_join_tree_with_options, JoinTreePlan};
use crate::planner::{JoinChoice, JoinTreeChoice, PlanChoice, Planner};
use crate::query::{
    ExecStats, JoinTreeSpec, JoinTreeStats, QueryResult, QuerySpec, QueryStats, Statement,
};
use crate::strategy::Strategy;

/// The planner's answer for one [`Statement`]: which executable shape it
/// takes, with every estimate and rejected alternative behind the pick.
/// Produced by [`Database::plan`], consumed by
/// [`Database::execute_planned`].
#[derive(Debug, Clone)]
pub enum QueryPlan {
    /// A materialization-strategy choice for a single-table scan.
    Scan(PlanChoice),
    /// Edge order, per-edge inner strategies, and bushy flags for a join
    /// tree (a single join is a one-edge tree).
    Tree(JoinTreeChoice),
    /// Writes execute as themselves; there is nothing to choose.
    Write,
}

impl QueryPlan {
    /// One-line EXPLAIN-style summary.
    pub fn describe(&self) -> String {
        match self {
            QueryPlan::Scan(c) => c.describe(),
            QueryPlan::Tree(c) => c.describe(),
            QueryPlan::Write => "write: logged to the WAL, applied to the delta store".into(),
        }
    }

    /// A hand-built scan plan that pins `strategy` (no model pricing) —
    /// for benchmarks and differential tests that sweep strategies
    /// explicitly instead of asking the planner.
    pub fn forced_scan(strategy: Strategy) -> QueryPlan {
        QueryPlan::Scan(PlanChoice {
            strategy,
            estimate: None,
            alternatives: Vec::new(),
            reason: format!("forced {strategy}"),
        })
    }

    /// A hand-built left-deep tree plan that pins the edge order and the
    /// per-edge inner strategies (no model pricing, no bushy subtrees).
    pub fn forced_tree(order: Vec<usize>, inners: Vec<InnerStrategy>) -> QueryPlan {
        QueryPlan::Tree(JoinTreeChoice {
            order,
            inners,
            bushy: Vec::new(),
            estimate: CostBreakdown::default(),
            tree: JoinTreeCost {
                edges: Vec::new(),
                cards: Vec::new(),
                total: CostBreakdown::default(),
            },
            edge_alternatives: Vec::new(),
            candidates: Vec::new(),
            reason: "forced inner strategies".into(),
        })
    }
}

/// Everything one executed [`Statement`] produced: the rows, one unified
/// [`QueryStats`], and the [`QueryPlan`] that ran. A write's `rows` is a
/// single `rows_affected` cell.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result rows (byte-identical at any worker count).
    pub rows: QueryResult,
    /// Unified measurements: wall, exact per-query I/O, matched/output
    /// cardinalities, steal/build/zone-skip counters.
    pub stats: QueryStats,
    /// The plan that produced the rows.
    pub choice: QueryPlan,
}

impl QueryOutcome {
    /// The materialized result, whatever the statement shape (a one-cell
    /// `rows_affected` table for writes).
    pub fn result(&self) -> &QueryResult {
        &self.rows
    }

    /// Rows a write affected; `None` for read outcomes.
    pub fn rows_affected(&self) -> Option<u64> {
        match self.choice {
            QueryPlan::Write => Some(self.stats.rows_out),
            _ => None,
        }
    }

    /// This query's simulated-disk block reads — per-thread harvest, so
    /// exact under concurrency (write acknowledgements carry 0).
    pub fn block_reads(&self) -> u64 {
        self.stats.io.block_reads
    }
}

/// A column-store database with pluggable materialization strategies.
///
/// ```
/// use matstrat_common::Predicate;
/// use matstrat_core::{Database, QuerySpec, Statement};
/// use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};
///
/// let db = Database::in_memory();
/// let a: Vec<i64> = (0..1000).map(|i| i / 100).collect();
/// let b: Vec<i64> = (0..1000).map(|i| i % 7).collect();
/// let spec = ProjectionSpec::new("demo")
///     .column("a", EncodingKind::Rle, SortOrder::Primary)
///     .column("b", EncodingKind::Plain, SortOrder::None);
/// let t = db.load_projection(&spec, &[&a, &b]).unwrap();
///
/// let stmt = Statement::Select(
///     QuerySpec::select(t, vec![0, 1])
///         .filter(0, Predicate::lt(5))
///         .filter(1, Predicate::lt(3)),
/// );
/// let out = db.execute(&stmt).unwrap();
/// assert_eq!(out.rows.num_rows(), 216);
/// assert!(out.stats.strategy.is_some(), "the plan picked a strategy");
/// println!("{}", out.choice.describe());
/// ```
pub struct Database {
    store: Store,
    planner: Planner,
    /// Worker threads per query; every `run*` entry point and the planner
    /// use this unless overridden by explicit [`ExecOptions`].
    parallelism: usize,
}

impl Database {
    /// An in-memory database.
    pub fn in_memory() -> Database {
        Database::with_store(Store::in_memory())
    }

    /// A database persisted under `dir` (catalog and data survive reopen).
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Ok(Database::with_store(Store::open_dir(dir)?))
    }

    /// Wrap an existing store. The executor worker count starts at the
    /// `MATSTRAT_THREADS` default; see [`Database::set_parallelism`].
    pub fn with_store(store: Store) -> Database {
        let parallelism = default_parallelism();
        Database {
            store,
            planner: Planner::with_parallelism(Constants::host_defaults(), parallelism),
            parallelism,
        }
    }

    /// Replace the planner's model constants (e.g. after calibration).
    pub fn set_model_constants(&mut self, constants: Constants) {
        self.planner = Planner::with_parallelism(constants, self.parallelism);
    }

    /// Set the executor worker count for every subsequent query (clamped
    /// to ≥ 1) and re-price the planner accordingly. Results are
    /// identical at any setting; only wall time changes.
    ///
    /// When the new worker count outgrows the buffer pool's stripe
    /// count (chosen at store construction from `MATSTRAT_POOL_SHARDS`,
    /// defaulting to the `MATSTRAT_THREADS` worker default), the pool is
    /// **re-sharded in place** to match: cached entries rehash into the
    /// wider striping and the summed [`PoolStats`] counters are
    /// preserved exactly
    /// ([`matstrat_storage::BufferPool::reshard_at_least`], which makes
    /// the grow-or-not decision under the stripe write lock so two
    /// sessions sharing one store can race this call safely).
    /// Shrinking the knob never narrows the pool — extra stripes only
    /// cost a few bytes. The only residual mismatch is a pool whose
    /// *capacity* is smaller than the worker count (a stripe must own at
    /// least one block); that corner still surfaces through
    /// [`Database::pool_undersharded`] / [`PoolStats::shards`] and a
    /// debug-build log line.
    ///
    /// [`PoolStats`]: matstrat_storage::PoolStats
    /// [`PoolStats::shards`]: matstrat_storage::PoolStats
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
        let constants = *self.planner.model().constants();
        self.planner = Planner::with_parallelism(constants, self.parallelism);
        // Grow-only, decided under the pool's stripe write lock: a
        // check-then-act against `num_shards()` here would race a second
        // session sharing this store (its stale read could re-shard the
        // pool *narrower* after we widened it).
        self.store.pool().reshard_at_least(self.parallelism);
        if cfg!(debug_assertions) {
            if let Some((workers, shards)) = self.pool_undersharded() {
                eprintln!(
                    "matstrat (debug): worker knob ({workers}) exceeds the buffer pool's \
                     {shards}-stripe maximum (capacity-capped: every stripe owns ≥ 1 \
                     block); lookups of distinct blocks may contend."
                );
            }
        }
    }

    /// `Some((workers, shards))` when the executor worker knob exceeds
    /// the buffer pool's stripe count. Since [`Database::set_parallelism`]
    /// re-shards the pool in place, this is only reachable when the pool
    /// *capacity* caps the stripe count below the knob (every stripe must
    /// own at least one block). `None` when the pool is striped at least
    /// as wide as the knob. The same stripe count is visible on every
    /// [`matstrat_storage::PoolStats`] snapshot.
    pub fn pool_undersharded(&self) -> Option<(usize, usize)> {
        let shards = self.store.pool().num_shards();
        (self.parallelism > shards).then_some((self.parallelism, shards))
    }

    /// The executor worker count queries run with.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The executor options `run`/`run_with_stats` use: defaults plus
    /// this database's parallelism.
    pub fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            parallelism: self.parallelism,
            ..ExecOptions::default()
        }
    }

    /// The underlying store (buffer pool, I/O meter, catalog).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Load a projection from column slices.
    pub fn load_projection(&self, spec: &ProjectionSpec, columns: &[&[Value]]) -> Result<TableId> {
        self.store.load_projection(spec, columns)
    }

    /// Insert rows (row-major, projection arity) into `table`: logged to
    /// the WAL, then applied to the in-memory delta. Durable when this
    /// returns; visible to every subsequent query on any session.
    /// Returns the position stamp of the first inserted row.
    pub fn insert(&self, table: TableId, rows: &[Vec<Value>]) -> Result<u64> {
        self.store.insert_rows(table, rows)
    }

    /// Delete every row of `table` matching all of `filters` (an empty
    /// list deletes every row). Returns how many rows were newly marked
    /// deleted. See [`delete_where`].
    pub fn delete_where(&self, table: TableId, filters: &[(usize, Predicate)]) -> Result<u64> {
        delete_where(&self.store, table, filters)
    }

    /// Fold `table`'s delta into fresh immutable blocks (no-op on a
    /// clean table). Queries racing this stay byte-identical.
    pub fn compact(&self, table: TableId) -> Result<bool> {
        self.store.compact(table)
    }

    /// [`Database::compact`] for every dirty table; returns how many
    /// were folded.
    pub fn compact_all(&self) -> Result<usize> {
        self.store.compact_all()
    }

    /// Start a background compactor that folds dirty tables every
    /// `interval`. Stops when the handle drops.
    pub fn spawn_compactor(&self, interval: std::time::Duration) -> CompactorHandle {
        self.store.spawn_compactor(interval)
    }

    // ------------------------------------------------------------------
    // The unified entry point: Statement → QueryPlan → QueryOutcome.
    // ------------------------------------------------------------------

    /// Plan one statement without running it: `Select` → a
    /// materialization-strategy choice, `JoinTree` → edge order +
    /// per-edge inner strategies + bushy flags, writes →
    /// [`QueryPlan::Write`]. A single-edge tree delegates to the plain
    /// join planner ([`Planner::choose_join`]), so a tree of one edge and
    /// an ordinary join can never disagree.
    pub fn plan(&self, stmt: &Statement) -> Result<QueryPlan> {
        Ok(match stmt {
            Statement::Select(q) => QueryPlan::Scan(self.planner.choose(&self.store, q)?),
            Statement::JoinTree(spec) => {
                QueryPlan::Tree(self.planner.choose_join_tree(&self.store, spec)?)
            }
            Statement::Insert { .. } | Statement::Delete { .. } => QueryPlan::Write,
        })
    }

    /// Plan, then run, one statement on this database's worker count —
    /// the single entry point every query takes. The old `run*`/`plan_*`
    /// matrix survives as deprecated delegates of this method.
    pub fn execute(&self, stmt: &Statement) -> Result<QueryOutcome> {
        self.execute_with_options(stmt, &self.exec_options())
    }

    /// [`Database::execute`] with explicit executor options (worker
    /// count, granule, zone-map switch, forced representation).
    pub fn execute_with_options(
        &self,
        stmt: &Statement,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome> {
        let plan = self.plan(stmt)?;
        self.execute_planned(stmt, &plan, opts)
    }

    /// Run a statement under an explicit — possibly hand-built — plan
    /// and executor options. Errors when the plan's shape does not match
    /// the statement's (e.g. a scan choice handed a join tree).
    pub fn execute_planned(
        &self,
        stmt: &Statement,
        plan: &QueryPlan,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome> {
        match (stmt, plan) {
            (Statement::Select(q), QueryPlan::Scan(choice)) => {
                let (rows, stats) = execute_with_options(&self.store, q, choice.strategy, opts)?;
                Ok(QueryOutcome {
                    rows,
                    stats,
                    choice: plan.clone(),
                })
            }
            (Statement::JoinTree(spec), QueryPlan::Tree(choice)) => {
                let (rows, stats) =
                    hash_join_tree_with_options(&self.store, spec, &choice.plan(), opts)?;
                Ok(QueryOutcome {
                    rows,
                    stats,
                    choice: plan.clone(),
                })
            }
            (Statement::Insert { table, rows }, QueryPlan::Write) => {
                let t0 = std::time::Instant::now();
                self.store.insert_rows(*table, rows)?;
                Ok(Self::write_outcome(rows.len() as u64, t0))
            }
            (Statement::Delete { table, filters }, QueryPlan::Write) => {
                let t0 = std::time::Instant::now();
                let n = delete_where(&self.store, *table, filters)?;
                Ok(Self::write_outcome(n, t0))
            }
            _ => Err(Error::invalid(
                "plan shape does not match the statement (re-plan with Database::plan)",
            )),
        }
    }

    pub(crate) fn write_outcome(affected: u64, t0: std::time::Instant) -> QueryOutcome {
        QueryOutcome {
            rows: QueryResult::from_flat(vec!["rows_affected".into()], vec![affected as Value]),
            stats: QueryStats {
                wall: t0.elapsed(),
                rows_out: affected,
                ..QueryStats::default()
            },
            choice: QueryPlan::Write,
        }
    }

    // ------------------------------------------------------------------
    // Deprecated pre-`execute` surface: thin delegates, kept one release
    // so callers migrate at their own pace.
    // ------------------------------------------------------------------

    /// Run a query under an explicit strategy.
    #[deprecated(note = "use Database::execute_planned with a forced QueryPlan::Scan")]
    pub fn run(&self, q: &QuerySpec, strategy: Strategy) -> Result<QueryResult> {
        let stmt = Statement::Select(q.clone());
        let out = self.execute_planned(
            &stmt,
            &QueryPlan::forced_scan(strategy),
            &self.exec_options(),
        )?;
        Ok(out.rows)
    }

    /// Run a query under an explicit strategy, returning measurements.
    #[deprecated(note = "use Database::execute_planned; QueryOutcome carries the stats")]
    pub fn run_with_stats(
        &self,
        q: &QuerySpec,
        strategy: Strategy,
    ) -> Result<(QueryResult, ExecStats)> {
        let stmt = Statement::Select(q.clone());
        let out = self.execute_planned(
            &stmt,
            &QueryPlan::forced_scan(strategy),
            &self.exec_options(),
        )?;
        Ok((out.rows, out.stats))
    }

    /// Run with explicit executor options (ablation experiments).
    #[deprecated(note = "use Database::execute_planned; QueryOutcome carries the stats")]
    pub fn run_with_options(
        &self,
        q: &QuerySpec,
        strategy: Strategy,
        opts: &ExecOptions,
    ) -> Result<(QueryResult, ExecStats)> {
        let stmt = Statement::Select(q.clone());
        let out = self.execute_planned(&stmt, &QueryPlan::forced_scan(strategy), opts)?;
        Ok((out.rows, out.stats))
    }

    /// Plan, then run under the chosen strategy.
    #[deprecated(note = "use Database::execute; QueryOutcome carries the choice")]
    pub fn run_auto(&self, q: &QuerySpec) -> Result<(PlanChoice, QueryResult)> {
        let out = self.execute(&Statement::Select(q.clone()))?;
        match out.choice {
            QueryPlan::Scan(choice) => Ok((choice, out.rows)),
            _ => unreachable!("Select plans as Scan"),
        }
    }

    /// Run an equi-join under the chosen inner-table strategy (§4.3).
    #[deprecated(note = "use Database::execute_planned on a one-edge Statement::JoinTree")]
    pub fn run_join(&self, spec: &JoinSpec, inner: InnerStrategy) -> Result<QueryResult> {
        let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()]));
        let plan = QueryPlan::forced_tree(vec![0], vec![inner]);
        Ok(self
            .execute_planned(&stmt, &plan, &self.exec_options())?
            .rows)
    }

    /// Run a join with explicit executor options (worker count, probe
    /// granule).
    #[deprecated(note = "use Database::execute_planned on a one-edge Statement::JoinTree")]
    pub fn run_join_with_options(
        &self,
        spec: &JoinSpec,
        inner: InnerStrategy,
        opts: &ExecOptions,
    ) -> Result<QueryResult> {
        let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()]));
        let plan = QueryPlan::forced_tree(vec![0], vec![inner]);
        Ok(self.execute_planned(&stmt, &plan, opts)?.rows)
    }

    /// Run a join and report wall/I/O measurements. The I/O counters are
    /// this query's own (per-thread harvest, not a global meter diff), so
    /// they stay exact when other sessions run concurrently.
    #[deprecated(note = "use Database::execute_planned; QueryStats carries wall and io")]
    pub fn run_join_with_stats(
        &self,
        spec: &JoinSpec,
        inner: InnerStrategy,
    ) -> Result<(QueryResult, std::time::Duration, matstrat_storage::IoStats)> {
        let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()]));
        let plan = QueryPlan::forced_tree(vec![0], vec![inner]);
        let out = self.execute_planned(&stmt, &plan, &self.exec_options())?;
        Ok((out.rows, out.stats.wall, out.stats.io))
    }

    /// Ask the planner to pick an inner-table strategy (without running).
    #[deprecated(note = "use Database::plan on a one-edge Statement::JoinTree")]
    pub fn plan_join(&self, spec: &JoinSpec) -> Result<JoinChoice> {
        self.planner.choose_join(&self.store, spec)
    }

    /// Plan, then run the join under the chosen inner-table strategy.
    #[deprecated(note = "use Database::execute on a one-edge Statement::JoinTree")]
    pub fn run_join_auto(&self, spec: &JoinSpec) -> Result<(JoinChoice, QueryResult)> {
        let choice = self.planner.choose_join(&self.store, spec)?;
        let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()]));
        let plan = QueryPlan::forced_tree(vec![0], vec![choice.inner]);
        let out = self.execute_planned(&stmt, &plan, &self.exec_options())?;
        Ok((choice, out.rows))
    }

    /// Run a multi-way join tree in spec order under explicit per-edge
    /// inner-table strategies, on this database's worker count.
    #[deprecated(note = "use Database::execute_planned with a forced QueryPlan::Tree")]
    pub fn run_join_tree(
        &self,
        spec: &JoinTreeSpec,
        inners: &[InnerStrategy],
    ) -> Result<QueryResult> {
        let plan = QueryPlan::forced_tree((0..spec.edges.len()).collect(), inners.to_vec());
        Ok(self
            .execute_planned(
                &Statement::JoinTree(spec.clone()),
                &plan,
                &self.exec_options(),
            )?
            .rows)
    }

    /// Run a join tree under an explicit [`JoinTreePlan`] (edge order,
    /// per-edge strategies, bushy flags, build-reuse switch) and executor
    /// options, returning the tree-level measurements — `builds` vs
    /// `build_reuses` shows the partitioned-build cache at work when one
    /// inner table feeds several edges. This is the one legacy entry
    /// point that bypasses [`QueryPlan`]: a raw [`JoinTreePlan`] can pin
    /// `reuse_builds: false`, which a planner choice never does.
    #[deprecated(note = "use Database::execute_planned with a QueryPlan::Tree")]
    pub fn run_join_tree_with_options(
        &self,
        spec: &JoinTreeSpec,
        plan: &JoinTreePlan,
        opts: &ExecOptions,
    ) -> Result<(QueryResult, JoinTreeStats)> {
        hash_join_tree_with_options(&self.store, spec, plan, opts)
    }

    /// Ask the planner for a join-tree plan (edge order + per-edge
    /// strategies) without running it.
    #[deprecated(note = "use Database::plan; QueryPlan::Tree carries the choice")]
    pub fn plan_join_tree(&self, spec: &JoinTreeSpec) -> Result<JoinTreeChoice> {
        self.planner.choose_join_tree(&self.store, spec)
    }

    /// Plan, then run the join tree under the chosen edge order and
    /// per-edge strategies.
    #[deprecated(note = "use Database::execute; QueryOutcome carries choice, rows, and stats")]
    pub fn run_join_tree_auto(
        &self,
        spec: &JoinTreeSpec,
    ) -> Result<(JoinTreeChoice, QueryResult, JoinTreeStats)> {
        let out = self.execute(&Statement::JoinTree(spec.clone()))?;
        match out.choice {
            QueryPlan::Tree(choice) => Ok((choice, out.rows, out.stats)),
            _ => unreachable!("JoinTree plans as Tree"),
        }
    }
}

/// Resolve every row of `table` matching all of `filters` and mark it
/// deleted (an empty list deletes every row). Returns how many rows
/// were newly marked.
///
/// Find-then-delete is epoch-guarded: positions are resolved against
/// one [`Store::scan_snapshot`] — granule DS1 scans ANDed on the
/// immutable side, row-at-a-time over the live delta — and applied with
/// [`Store::delete_positions_at_epoch`], which refuses (and this
/// function rescans) if a compaction rewrote the position space in
/// between.
pub fn delete_where(store: &Store, table: TableId, filters: &[(usize, Predicate)]) -> Result<u64> {
    loop {
        let (proj, delta) = store.scan_snapshot(table)?;
        let mut doomed: Vec<u64> = Vec::new();
        if proj.num_rows > 0 {
            let readers = filters
                .iter()
                .map(|(c, _)| store.reader_for(proj.column(*c)?))
                .collect::<Result<Vec<_>>>()?;
            let mut at = 0u64;
            while at < proj.num_rows {
                let window = PosRange::new(at, (at + crate::GRANULE).min(proj.num_rows));
                at = window.end;
                let mut desc = PosList::full(window);
                for (reader, (_, pred)) in readers.iter().zip(filters) {
                    if desc.is_empty() {
                        break;
                    }
                    let mini = MiniColumn::fetch(reader, window)?;
                    desc = desc.and(&mini.scan_positions(pred));
                }
                doomed.extend(desc.iter());
            }
        }
        if let Some(d) = &delta {
            // Already-deleted positions may re-match on the base side;
            // `delete_positions` skips them, so only the delta loop
            // bothers to pre-filter.
            for (i, row) in d.inserts.iter().enumerate() {
                let pos = d.base_rows + i as u64;
                if !d.is_deleted(pos) && filters.iter().all(|(c, p)| p.matches(row[*c])) {
                    doomed.push(pos);
                }
            }
        }
        if doomed.is_empty() {
            return Ok(0);
        }
        if let Some(n) = store.delete_positions_at_epoch(table, proj.wal_epoch, &doomed)? {
            return Ok(n);
        }
        // A compaction swapped the table between resolve and apply;
        // the positions are stale — resolve again.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_storage::{EncodingKind, SortOrder};

    fn demo_db() -> (Database, TableId) {
        let db = Database::in_memory();
        let a: Vec<Value> = (0..2000).map(|i| i / 200).collect();
        let b: Vec<Value> = (0..2000).map(|i| i % 7).collect();
        let spec = ProjectionSpec::new("demo")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None);
        let t = db.load_projection(&spec, &[&a, &b]).unwrap();
        (db, t)
    }

    /// Execute `q` with a pinned strategy through the unified surface.
    fn forced(db: &Database, q: &QuerySpec, s: Strategy, opts: &ExecOptions) -> QueryOutcome {
        db.execute_planned(
            &Statement::Select(q.clone()),
            &QueryPlan::forced_scan(s),
            opts,
        )
        .unwrap()
    }

    #[test]
    fn execute_forced_scan_reports_rows() {
        let (db, t) = demo_db();
        let q = QuerySpec::select(t, vec![0, 1]).filter(0, Predicate::lt(3));
        let stmt = Statement::Select(q);
        let out = db
            .execute_planned(
                &stmt,
                &QueryPlan::forced_scan(Strategy::LmParallel),
                &db.exec_options(),
            )
            .unwrap();
        assert_eq!(out.rows.num_rows(), 600);
        assert_eq!(out.stats.rows_out, 600);
        assert_eq!(out.stats.positions_matched, 600);
        assert_eq!(out.stats.strategy, Some(Strategy::LmParallel));
        match out.choice {
            QueryPlan::Scan(c) => assert_eq!(c.strategy, Strategy::LmParallel),
            other => panic!("expected a scan choice, got {other:?}"),
        }
    }

    #[test]
    fn execute_plans_and_runs() {
        let (db, t) = demo_db();
        let q = QuerySpec::select(t, vec![])
            .filter(0, Predicate::lt(5))
            .filter(1, Predicate::lt(6))
            .aggregate_sum(0, 1);
        let out = db.execute(&Statement::Select(q)).unwrap();
        match &out.choice {
            QueryPlan::Scan(choice) => assert!(choice.strategy.is_late()),
            other => panic!("expected a scan choice, got {other:?}"),
        }
        assert_eq!(out.rows.num_rows(), 5);
    }

    #[test]
    fn execute_writes_report_rows_affected() {
        let (db, t) = demo_db();
        let insert = Statement::Insert {
            table: t,
            rows: vec![vec![99, 1], vec![99, 2]],
        };
        assert!(matches!(db.plan(&insert).unwrap(), QueryPlan::Write));
        let out = db.execute(&insert).unwrap();
        assert_eq!(out.rows.column_names, ["rows_affected"]);
        assert_eq!(out.rows.flat(), &[2]);
        assert_eq!(out.stats.rows_out, 2);
        let delete = Statement::Delete {
            table: t,
            filters: vec![(0, Predicate::eq(99))],
        };
        let out = db.execute(&delete).unwrap();
        assert_eq!(out.rows.flat(), &[2]);
        let q = QuerySpec::select(t, vec![0]).filter(0, Predicate::eq(99));
        assert_eq!(
            db.execute(&Statement::Select(q)).unwrap().rows.num_rows(),
            0
        );
    }

    #[test]
    fn execute_planned_rejects_mismatched_shapes() {
        let (db, t) = demo_db();
        let q = QuerySpec::select(t, vec![0]);
        let err = db
            .execute_planned(&Statement::Select(q), &QueryPlan::Write, &db.exec_options())
            .unwrap_err();
        assert!(err.to_string().contains("plan shape"), "{err}");
    }

    #[test]
    fn parallelism_knob_keeps_results_identical() {
        let (mut db, t) = demo_db();
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(4));
        // Small granule so 2000 rows actually split across workers.
        let opts = |workers| ExecOptions {
            granule: 128,
            parallelism: workers,
            ..ExecOptions::default()
        };
        let serial = forced(&db, &q, Strategy::LmParallel, &opts(1));
        for workers in [2, 3, 8] {
            let par = forced(&db, &q, Strategy::LmParallel, &opts(workers));
            assert_eq!(
                par.rows.flat(),
                serial.rows.flat(),
                "byte-identical at {workers}"
            );
            assert_eq!(par.stats.positions_matched, serial.stats.positions_matched);
            assert_eq!(par.stats.rows_out, serial.stats.rows_out);
        }
        // The database-level knob feeds execute() and the planner.
        db.set_parallelism(4);
        assert_eq!(db.parallelism(), 4);
        assert_eq!(db.exec_options().parallelism, 4);
        assert_eq!(db.planner().parallelism(), 4);
        let r = forced(&db, &q, Strategy::EmPipelined, &db.exec_options());
        db.set_parallelism(1);
        assert_eq!(
            r.rows.flat(),
            forced(&db, &q, Strategy::EmPipelined, &db.exec_options())
                .rows
                .flat()
        );
    }

    #[test]
    fn set_parallelism_zero_clamps_to_one_worker() {
        let (mut db, t) = demo_db();
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(4));
        let expect = forced(&db, &q, Strategy::LmParallel, &db.exec_options());
        db.set_parallelism(0);
        assert_eq!(db.parallelism(), 1, "knob clamps to ≥ 1");
        assert_eq!(db.exec_options().parallelism, 1);
        assert_eq!(db.planner().parallelism(), 1);
        // And the clamped executor still answers correctly.
        let got = forced(&db, &q, Strategy::LmParallel, &db.exec_options());
        assert_eq!(got.rows.flat(), expect.rows.flat());
    }

    #[test]
    fn set_parallelism_reshards_the_pool_in_place() {
        let (mut db, t) = demo_db();
        let shards = db.store().pool().num_shards();
        // Pool striped at least as wide as the knob: nothing to do.
        db.set_parallelism(shards);
        assert_eq!(db.pool_undersharded(), None);
        assert_eq!(db.store().pool().num_shards(), shards);
        // Warm the pool so the reshard has entries to move, and snapshot
        // the counters it must preserve.
        let q = QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(4));
        let warm = forced(&db, &q, Strategy::LmParallel, &db.exec_options()).rows;
        let before = db.store().pool().stats();
        // Outgrowing the stripe count now re-shards in place instead of
        // warning: the knob and the striping agree again, counters carry
        // over exactly, and the new width shows on PoolStats.
        db.set_parallelism(shards + 3);
        assert_eq!(db.pool_undersharded(), None, "re-sharded, not surfaced");
        let pool = db.store().pool();
        assert_eq!(pool.num_shards(), shards + 3);
        let after = pool.stats();
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.shards, (shards + 3) as u64);
        // Results stay identical across the reshard, and the moved
        // entries still serve hits (a warm re-run does no extra reads).
        let wide = forced(&db, &q, Strategy::LmParallel, &db.exec_options()).rows;
        assert_eq!(wide.flat(), warm.flat());
        assert_eq!(db.store().pool().stats().misses, before.misses);
        // Shrinking the knob never narrows the pool.
        db.set_parallelism(1);
        assert_eq!(db.pool_undersharded(), None);
        assert_eq!(db.store().pool().num_shards(), shards + 3);
        assert_eq!(
            wide.flat(),
            forced(&db, &q, Strategy::LmParallel, &db.exec_options())
                .rows
                .flat()
        );
    }

    #[test]
    fn persistent_database_reopens() {
        let dir = std::env::temp_dir().join(format!("matstrat-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a: Vec<Value> = (0..100).collect();
        {
            let db = Database::open(&dir).unwrap();
            let spec =
                ProjectionSpec::new("t").column("a", EncodingKind::Plain, SortOrder::Primary);
            db.load_projection(&spec, &[&a]).unwrap();
        }
        let db = Database::open(&dir).unwrap();
        let t = db.store().projection_by_name("t").unwrap().id;
        let q = QuerySpec::select(t, vec![0]).filter(0, Predicate::ge(90));
        let r = forced(&db, &q, Strategy::EmParallel, &db.exec_options());
        assert_eq!(r.rows.num_rows(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
