//! Property tests for the join: the three inner-table materialization
//! strategies must agree with a naive nested-loop oracle on arbitrary
//! data — including duplicate keys, unmatched keys, filters, and
//! bit-vector right columns.

use matstrat_common::{Predicate, Value};
use matstrat_core::{
    Database, InnerStrategy, JoinSpec, JoinTreeSpec, QueryPlan, QueryResult, Statement,
};

fn run_join(
    db: &Database,
    spec: &JoinSpec,
    inner: InnerStrategy,
) -> matstrat_common::Result<QueryResult> {
    Ok(db
        .execute_planned(
            &Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()])),
            &QueryPlan::forced_tree(vec![0], vec![inner]),
            &db.exec_options(),
        )?
        .rows)
}
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

#[derive(Debug, Clone)]
struct JoinCase {
    left_keys: Vec<Value>,
    left_payload: Vec<Value>,
    right_keys: Vec<Value>,
    right_payload: Vec<Value>,
    filter_cutoff: Value,
    right_enc: EncodingKind,
}

fn arb_case() -> impl PropStrategy<Value = JoinCase> {
    (
        prop::collection::vec((0i64..30, 0i64..100), 1..120),
        prop::collection::vec((0i64..30, 0i64..8), 1..60),
        0i64..32,
        prop::sample::select(
            &[
                EncodingKind::Plain,
                EncodingKind::Rle,
                EncodingKind::BitVec,
                EncodingKind::Dict,
            ][..],
        ),
    )
        .prop_map(|(left, mut right, filter_cutoff, right_enc)| {
            // Right table sorted by key (its declared primary key order).
            right.sort_unstable();
            JoinCase {
                left_keys: left.iter().map(|r| r.0).collect(),
                left_payload: left.iter().map(|r| r.1).collect(),
                right_keys: right.iter().map(|r| r.0).collect(),
                right_payload: right.iter().map(|r| r.1).collect(),
                filter_cutoff,
                right_enc,
            }
        })
}

fn oracle(case: &JoinCase) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for (i, &lk) in case.left_keys.iter().enumerate() {
        if lk >= case.filter_cutoff {
            continue;
        }
        for (j, &rk) in case.right_keys.iter().enumerate() {
            if lk == rk {
                rows.push(vec![case.left_payload[i], case.right_payload[j]]);
            }
        }
    }
    rows.sort_unstable();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn join_strategies_match_nested_loop_oracle(case in arb_case()) {
        let db = Database::in_memory();
        let left = db
            .load_projection(
                &ProjectionSpec::new("l")
                    .column("k", EncodingKind::Plain, SortOrder::None)
                    .column("v", EncodingKind::Plain, SortOrder::None),
                &[&case.left_keys, &case.left_payload],
            )
            .unwrap();
        // Right payload in the case's encoding; keys sorted → Plain PK.
        let right = db
            .load_projection(
                &ProjectionSpec::new("r")
                    .column("k", EncodingKind::Plain, SortOrder::Primary)
                    .column("v", case.right_enc, SortOrder::None),
                &[&case.right_keys, &case.right_payload],
            )
            .unwrap();
        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: Some((0, Predicate::lt(case.filter_cutoff))),
            right_filter: None,
            left_output: vec![1],
            right_output: vec![1],
        };
        let expected = oracle(&case);
        for inner in InnerStrategy::ALL {
            let got = run_join(&db, &spec, inner).unwrap().sorted_rows();
            prop_assert_eq!(
                &got,
                &expected,
                "{:?} right_enc={:?}",
                inner,
                case.right_enc
            );
        }
    }

    #[test]
    fn join_without_filter_or_left_output(case in arb_case()) {
        let db = Database::in_memory();
        let left = db
            .load_projection(
                &ProjectionSpec::new("l")
                    .column("k", EncodingKind::Plain, SortOrder::None),
                &[&case.left_keys],
            )
            .unwrap();
        let right = db
            .load_projection(
                &ProjectionSpec::new("r")
                    .column("k", EncodingKind::Plain, SortOrder::Primary)
                    .column("v", case.right_enc, SortOrder::None),
                &[&case.right_keys, &case.right_payload],
            )
            .unwrap();
        let spec = JoinSpec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![1],
        };
        // Oracle: every right payload matched per left key occurrence.
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for &lk in &case.left_keys {
            for (j, &rk) in case.right_keys.iter().enumerate() {
                if lk == rk {
                    expected.push(vec![case.right_payload[j]]);
                }
            }
        }
        expected.sort_unstable();
        for inner in InnerStrategy::ALL {
            let got = run_join(&db, &spec, inner).unwrap().sorted_rows();
            prop_assert_eq!(&got, &expected, "{:?}", inner);
        }
    }
}

#[test]
fn join_rejects_empty_output() {
    let db = Database::in_memory();
    let keys: Vec<Value> = vec![1, 2, 3];
    let t = db
        .load_projection(
            &ProjectionSpec::new("t").column("k", EncodingKind::Plain, SortOrder::Primary),
            &[&keys],
        )
        .unwrap();
    let spec = JoinSpec {
        left: t,
        right: t,
        left_key: 0,
        right_key: 0,
        left_filter: None,
        right_filter: None,
        left_output: vec![],
        right_output: vec![],
    };
    assert!(run_join(&db, &spec, InnerStrategy::Materialized).is_err());
}

#[test]
fn join_with_empty_match_set() {
    let db = Database::in_memory();
    let lk: Vec<Value> = vec![100, 200];
    let rk: Vec<Value> = vec![1, 2];
    let left = db
        .load_projection(
            &ProjectionSpec::new("l").column("k", EncodingKind::Plain, SortOrder::Primary),
            &[&lk],
        )
        .unwrap();
    let right = db
        .load_projection(
            &ProjectionSpec::new("r").column("k", EncodingKind::Plain, SortOrder::Primary),
            &[&rk],
        )
        .unwrap();
    let spec = JoinSpec {
        left,
        right,
        left_key: 0,
        right_key: 0,
        left_filter: None,
        right_filter: None,
        left_output: vec![0],
        right_output: vec![0],
    };
    for inner in InnerStrategy::ALL {
        assert_eq!(
            run_join(&db, &spec, inner).unwrap().num_rows(),
            0,
            "{inner:?}"
        );
    }
}
