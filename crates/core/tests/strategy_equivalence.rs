//! The paper's central correctness invariant: materialization strategy is
//! a *performance* choice, never a *semantics* choice.
//!
//! For arbitrary data, encodings, predicates and query shapes, all four
//! strategies must return exactly the multiset of tuples the naive
//! row-store oracle returns (bit-vector columns legitimately exclude
//! LM-pipelined, as in the paper).

use matstrat_common::{Error, Predicate, Value};
use matstrat_core::rowstore::RowTable;
use matstrat_core::{Database, ExecOptions, QueryPlan, QuerySpec, Statement, Strategy};

fn forced(
    db: &Database,
    q: &QuerySpec,
    s: Strategy,
    opts: &ExecOptions,
) -> matstrat_common::Result<matstrat_core::QueryOutcome> {
    db.execute_planned(
        &Statement::Select(q.clone()),
        &QueryPlan::forced_scan(s),
        opts,
    )
}
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

/// Load a 3-column projection (a: sorted primary, b, c) with the given
/// encodings; returns the database, table id, and the oracle.
fn load(
    enc_a: EncodingKind,
    enc_b: EncodingKind,
    enc_c: EncodingKind,
    rows: &[(Value, Value, Value)],
) -> (Database, matstrat_common::TableId, RowTable) {
    let mut sorted = rows.to_vec();
    sorted.sort_unstable();
    let a: Vec<Value> = sorted.iter().map(|r| r.0).collect();
    let b: Vec<Value> = sorted.iter().map(|r| r.1).collect();
    let c: Vec<Value> = sorted.iter().map(|r| r.2).collect();
    let db = Database::in_memory();
    let spec = ProjectionSpec::new("t")
        .column("a", enc_a, SortOrder::Primary)
        .column("b", enc_b, SortOrder::Secondary)
        .column("c", enc_c, SortOrder::None);
    let id = db.load_projection(&spec, &[&a, &b, &c]).unwrap();
    let oracle =
        RowTable::from_columns(vec!["a".into(), "b".into(), "c".into()], &[&a, &b, &c]).unwrap();
    (db, id, oracle)
}

fn check_all_strategies(
    db: &Database,
    id: matstrat_common::TableId,
    oracle: &RowTable,
    q: &QuerySpec,
) {
    let mut q = q.clone();
    q.table = id;
    let expected = oracle.run(&q).unwrap().sorted_rows();
    for s in Strategy::ALL {
        match forced(db, &q, s, &db.exec_options()) {
            Ok(matstrat_core::QueryOutcome { rows: r, stats, .. }) => {
                assert_eq!(
                    r.sorted_rows(),
                    expected,
                    "strategy {s} disagrees with the row-store oracle"
                );
                assert_eq!(r.num_rows() as u64, stats.rows_out);
            }
            Err(Error::Unsupported(_)) if s == Strategy::LmPipelined => {
                // Legal only when a later filter column is bit-vector.
            }
            Err(e) => panic!("strategy {s} failed: {e}"),
        }
    }
}

const ENCODINGS: [EncodingKind; 4] = [
    EncodingKind::Plain,
    EncodingKind::Rle,
    EncodingKind::BitVec,
    EncodingKind::Dict,
];

fn arb_encoding() -> impl PropStrategy<Value = EncodingKind> {
    prop::sample::select(&ENCODINGS[..])
}

fn arb_pred() -> impl PropStrategy<Value = Predicate> {
    (0i64..16, 0i64..16, 0usize..7).prop_map(|(x, y, op)| match op {
        0 => Predicate::lt(x),
        1 => Predicate::le(x),
        2 => Predicate::gt(x),
        3 => Predicate::ge(x),
        4 => Predicate::eq(x),
        5 => Predicate::ne(x),
        _ => Predicate::between(x.min(y), x.max(y)),
    })
}

fn arb_rows() -> impl PropStrategy<Value = Vec<(Value, Value, Value)>> {
    prop::collection::vec((0i64..8, 0i64..12, 0i64..16), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn selection_two_predicates_all_encodings(
        rows in arb_rows(),
        ea in arb_encoding(),
        eb in arb_encoding(),
        ec in arb_encoding(),
        p1 in arb_pred(),
        p2 in arb_pred(),
    ) {
        let (db, id, oracle) = load(ea, eb, ec, &rows);
        let q = QuerySpec::select(id, vec![1, 2])
            .filter(1, p1)
            .filter(2, p2);
        check_all_strategies(&db, id, &oracle, &q);
    }

    #[test]
    fn aggregation_all_encodings(
        rows in arb_rows(),
        ea in arb_encoding(),
        eb in arb_encoding(),
        ec in arb_encoding(),
        p1 in arb_pred(),
        p2 in arb_pred(),
    ) {
        let (db, id, oracle) = load(ea, eb, ec, &rows);
        let q = QuerySpec::select(id, vec![])
            .filter(1, p1)
            .filter(2, p2)
            .aggregate_sum(1, 2);
        check_all_strategies(&db, id, &oracle, &q);
    }

    #[test]
    fn single_and_triple_predicates(
        rows in arb_rows(),
        eb in arb_encoding(),
        p0 in arb_pred(),
        p1 in arb_pred(),
        p2 in arb_pred(),
    ) {
        let (db, id, oracle) = load(EncodingKind::Rle, eb, EncodingKind::Plain, &rows);
        // One predicate.
        let q1 = QuerySpec::select(id, vec![0, 1, 2]).filter(1, p1);
        check_all_strategies(&db, id, &oracle, &q1);
        // Three predicates (one per column).
        let q3 = QuerySpec::select(id, vec![0, 2])
            .filter(0, p0)
            .filter(1, p1)
            .filter(2, p2);
        check_all_strategies(&db, id, &oracle, &q3);
    }

    #[test]
    fn no_predicates_full_scan(
        rows in arb_rows(),
        ea in arb_encoding(),
        ec in arb_encoding(),
    ) {
        let (db, id, oracle) = load(ea, EncodingKind::Plain, ec, &rows);
        let q = QuerySpec::select(id, vec![2, 0]);
        check_all_strategies(&db, id, &oracle, &q);
    }

    #[test]
    fn repeated_predicates_on_one_column(
        rows in arb_rows(),
        eb in arb_encoding(),
        lo in 0i64..8,
        hi in 4i64..14,
    ) {
        let (db, id, oracle) = load(EncodingKind::Rle, eb, EncodingKind::Plain, &rows);
        // Two predicates on the same column express a range.
        let q = QuerySpec::select(id, vec![1])
            .filter(1, Predicate::ge(lo))
            .filter(1, Predicate::le(hi));
        check_all_strategies(&db, id, &oracle, &q);
    }

    #[test]
    fn all_aggregate_functions(
        rows in arb_rows(),
        eb in arb_encoding(),
        p in arb_pred(),
        func_idx in 0usize..4,
    ) {
        use matstrat_core::AggFunc;
        let func = [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][func_idx];
        let (db, id, oracle) = load(EncodingKind::Rle, eb, EncodingKind::Plain, &rows);
        let q = QuerySpec::select(id, vec![])
            .filter(2, p)
            .aggregate_fn(1, 2, func);
        check_all_strategies(&db, id, &oracle, &q);
    }

    #[test]
    fn ablation_options_never_change_results(
        rows in arb_rows(),
        eb in arb_encoding(),
        p1 in arb_pred(),
        p2 in arb_pred(),
        reuse in proptest::bool::ANY,
        repr_idx in 0usize..4,
        granule_exp in 4u32..18,
    ) {
        use matstrat_poslist::Repr;
        let force_repr = [None, Some(Repr::Ranges), Some(Repr::Bitmap), Some(Repr::Explicit)][repr_idx];
        let opts = ExecOptions {
            multicolumn_reuse: reuse,
            force_repr,
            granule: 1u64 << granule_exp,
            ..ExecOptions::default()
        };
        let (db, id, oracle) = load(EncodingKind::Rle, eb, EncodingKind::Plain, &rows);
        let mut q = QuerySpec::select(id, vec![1, 2])
            .filter(1, p1)
            .filter(2, p2);
        q.table = id;
        let expected = oracle.run(&q).unwrap().sorted_rows();
        for s in Strategy::ALL {
            match forced(&db, &q, s, &opts) {
                Ok(matstrat_core::QueryOutcome { rows: r, .. }) => prop_assert_eq!(
                    r.sorted_rows(),
                    expected.clone(),
                    "strategy {} opts {:?}",
                    s,
                    opts
                ),
                Err(Error::Unsupported(_)) if s == Strategy::LmPipelined => {}
                Err(e) => panic!("strategy {s} failed: {e}"),
            }
        }
    }
}

#[test]
fn output_column_not_filtered() {
    // Output a column with no predicate on it, filter on the others.
    let rows: Vec<(Value, Value, Value)> =
        (0..500).map(|i| (i / 100, i % 10, (i * 3) % 14)).collect();
    let (db, id, oracle) = load(
        EncodingKind::Rle,
        EncodingKind::Plain,
        EncodingKind::Dict,
        &rows,
    );
    let q = QuerySpec::select(id, vec![2])
        .filter(0, Predicate::le(3))
        .filter(1, Predicate::lt(5));
    check_all_strategies(&db, id, &oracle, &q);
}

#[test]
fn zero_selectivity_and_full_selectivity() {
    let rows: Vec<(Value, Value, Value)> = (0..300).map(|i| (i / 50, i % 5, i % 3)).collect();
    let (db, id, oracle) = load(
        EncodingKind::Rle,
        EncodingKind::BitVec,
        EncodingKind::Plain,
        &rows,
    );
    // Nothing matches.
    let q = QuerySpec::select(id, vec![0, 1]).filter(1, Predicate::lt(-5));
    check_all_strategies(&db, id, &oracle, &q);
    // Everything matches.
    let q = QuerySpec::select(id, vec![0, 1])
        .filter(1, Predicate::ge(0))
        .filter(2, Predicate::le(100));
    check_all_strategies(&db, id, &oracle, &q);
}

#[test]
fn lm_pipelined_rejects_bitvec_later_filter() {
    let rows: Vec<(Value, Value, Value)> = (0..100).map(|i| (0, i % 5, i % 3)).collect();
    let (db, id, _) = load(
        EncodingKind::Rle,
        EncodingKind::Plain,
        EncodingKind::BitVec,
        &rows,
    );
    let q = QuerySpec::select(id, vec![1])
        .filter(1, Predicate::lt(3))
        .filter(2, Predicate::lt(2));
    let err = forced(&db, &q, Strategy::LmPipelined, &db.exec_options()).unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)));
    // But bit-vector as the *first* filter column is fine.
    let q = QuerySpec::select(id, vec![1])
        .filter(2, Predicate::lt(2))
        .filter(1, Predicate::lt(3));
    forced(&db, &q, Strategy::LmPipelined, &db.exec_options()).unwrap();
}

#[test]
fn multi_granule_tables() {
    // More rows than one granule (64 Ki) to cross granule boundaries.
    let n = (matstrat_core::GRANULE + 1000) as i64;
    let rows: Vec<(Value, Value, Value)> =
        (0..n).map(|i| (i / (n / 4 + 1), i % 7, i % 3)).collect();
    let (db, id, oracle) = load(
        EncodingKind::Rle,
        EncodingKind::Plain,
        EncodingKind::Plain,
        &rows,
    );
    let q = QuerySpec::select(id, vec![1, 2])
        .filter(1, Predicate::lt(3))
        .filter(2, Predicate::gt(0));
    check_all_strategies(&db, id, &oracle, &q);
    let qa = QuerySpec::select(id, vec![])
        .filter(1, Predicate::lt(5))
        .aggregate_sum(0, 1);
    check_all_strategies(&db, id, &oracle, &qa);
}
