//! Shared primitives for the `matstrat` column-store.
//!
//! This crate defines the vocabulary types used by every layer of the
//! system: logical values and positions, SARGable predicates that can be
//! pushed into column scans, and the crate-wide error type.
//!
//! The design follows the C-Store executor described in *Abadi, Myers,
//! DeWitt, Madden: "Materialization Strategies in a Column-Oriented DBMS"*
//! (ICDE 2007): every attribute is stored as a separate column of
//! fixed-width integer-coded values, addressed by 0-based *positions*.

pub mod codeops;
pub mod error;
pub mod par;
pub mod pred;
pub mod types;

pub use error::{Error, Result};
pub use par::{default_parallelism, env_worker_count, join_unwinding, par_map_indexed};
pub use pred::{CodePredicate, CompareOp, Predicate};
pub use types::{ColumnId, Pos, PosRange, TableId, Value, Width};
