//! Process-wide worker-count defaults, shared by every parallel
//! subsystem (the granule-parallel executor, the parallel join probe,
//! the column-parallel projection loader, and the sharded buffer pool).

/// Parse a worker-count setting: `0` means "all available cores",
/// unparsable or absent values fall back to `fallback` rather than
/// failing.
fn parse_worker_count(value: Option<&str>, fallback: usize) -> usize {
    match value {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(fallback),
            Ok(n) => n,
            Err(_) => fallback,
        },
        None => fallback,
    }
}

/// Read a worker-count environment variable through
/// [`parse_worker_count`]'s rules. Callers cache the result once per
/// process (queries must not change behavior because something mutated
/// the environment mid-flight); this helper itself reads the
/// environment on every call.
pub fn env_worker_count(var: &str, fallback: usize) -> usize {
    parse_worker_count(std::env::var(var).ok().as_deref(), fallback)
}

/// The worker-count default: `MATSTRAT_THREADS` when set (`0` means "all
/// available cores"), otherwise 1 (serial, the paper's configuration).
/// Read once per process.
pub fn default_parallelism() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| env_worker_count("MATSTRAT_THREADS", 1))
}

/// Join a scoped worker, re-raising its panic on the calling thread —
/// the one subtle line every scoped worker pool (the fragment pipeline,
/// the column-parallel loader) must get right, kept in one place.
pub fn join_unwinding<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// Run `f` over indices `0..n` on up to `workers` scoped threads, each
/// claiming indices from a shared counter (independent items vary
/// wildly in cost — column encodings, decode fallbacks — so striding
/// would skew), and reassemble the results **by index**, so the output
/// is identical to a serial pass. The calling thread participates as
/// one of the workers and keeps its thread-local state; each *spawned*
/// worker runs `worker_exit` before finishing (per-thread cleanup such
/// as `IoMeter::forget_current_thread`). The first error in index order
/// wins; worker panics propagate to the caller.
///
/// This is the one claim-counter fan-out shared by the column-parallel
/// projection loader and the join build's column-parallel
/// representations.
pub fn par_map_indexed<T, E>(
    n: usize,
    workers: usize,
    f: impl Fn(usize) -> std::result::Result<T, E> + Sync,
    worker_exit: impl Fn() + Sync,
) -> std::result::Result<Vec<T>, E>
where
    T: Send,
    E: Send,
{
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let run = |spawned: bool| {
        let mut mine = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            mine.push((i, f(i)));
        }
        if spawned {
            worker_exit();
        }
        mine
    };
    let per_worker: Vec<Vec<(usize, std::result::Result<T, E>)>> = std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = (1..workers)
            .map(|_| scope.spawn(move || run(true)))
            .collect();
        let mut all = Vec::with_capacity(workers);
        all.push(run(false));
        all.extend(handles.into_iter().map(join_unwinding));
        all
    });
    let mut slots: Vec<Option<std::result::Result<T, E>>> = Vec::new();
    slots.resize_with(n, || None);
    for (i, out) in per_worker.into_iter().flatten() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parallelism_is_stable_and_positive() {
        let first = default_parallelism();
        assert!(first >= 1);
        // OnceLock: the value never changes within a process, even if the
        // environment does.
        assert_eq!(default_parallelism(), first);
    }

    #[test]
    fn par_map_indexed_matches_serial_at_any_worker_count() {
        let f = |i: usize| Ok::<_, ()>(i * i);
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 4, 8, 64] {
            assert_eq!(par_map_indexed(37, workers, f, || {}).unwrap(), expect);
        }
        assert_eq!(par_map_indexed(0, 4, f, || {}).unwrap(), Vec::new());
    }

    #[test]
    fn par_map_indexed_first_error_in_index_order_wins() {
        let f = |i: usize| if i >= 3 { Err(i) } else { Ok(i) };
        for workers in [1, 2, 4] {
            assert_eq!(par_map_indexed(8, workers, f, || {}).unwrap_err(), 3);
        }
    }

    #[test]
    fn par_map_indexed_runs_worker_exit_on_spawned_threads_only() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let exits = AtomicUsize::new(0);
        let caller = std::thread::current().id();
        par_map_indexed(
            16,
            4,
            |_| Ok::<_, ()>(()),
            || {
                exits.fetch_add(1, Ordering::SeqCst);
                assert_ne!(std::thread::current().id(), caller);
            },
        )
        .unwrap();
        assert_eq!(exits.load(Ordering::SeqCst), 3, "workers - 1 spawned");
        // Serial path spawns nothing and cleans nothing.
        exits.store(0, Ordering::SeqCst);
        par_map_indexed(
            4,
            1,
            |_| Ok::<_, ()>(()),
            || {
                exits.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();
        assert_eq!(exits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn worker_count_parses_and_falls_back() {
        // Pure parsing — no environment mutation (set_var races getenv
        // in the multi-threaded test harness).
        assert_eq!(parse_worker_count(None, 7), 7);
        assert_eq!(parse_worker_count(Some("not-a-number"), 3), 3);
        assert_eq!(parse_worker_count(Some(" 12 "), 3), 12);
        assert!(parse_worker_count(Some("0"), 3) >= 1);
        assert_eq!(env_worker_count("MATSTRAT_NO_SUCH_VAR", 5), 5);
    }
}
