//! Process-wide worker-count defaults, shared by every parallel
//! subsystem (the granule-parallel executor, the parallel join probe,
//! the column-parallel projection loader, and the sharded buffer pool).

/// Parse a worker-count setting: `0` means "all available cores",
/// unparsable or absent values fall back to `fallback` rather than
/// failing.
fn parse_worker_count(value: Option<&str>, fallback: usize) -> usize {
    match value {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(fallback),
            Ok(n) => n,
            Err(_) => fallback,
        },
        None => fallback,
    }
}

/// Read a worker-count environment variable through
/// [`parse_worker_count`]'s rules. Callers cache the result once per
/// process (queries must not change behavior because something mutated
/// the environment mid-flight); this helper itself reads the
/// environment on every call.
pub fn env_worker_count(var: &str, fallback: usize) -> usize {
    parse_worker_count(std::env::var(var).ok().as_deref(), fallback)
}

/// The worker-count default: `MATSTRAT_THREADS` when set (`0` means "all
/// available cores"), otherwise 1 (serial, the paper's configuration).
/// Read once per process.
pub fn default_parallelism() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| env_worker_count("MATSTRAT_THREADS", 1))
}

/// Join a scoped worker, re-raising its panic on the calling thread —
/// the one subtle line every scoped worker pool (the fragment pipeline,
/// the column-parallel loader) must get right, kept in one place.
pub fn join_unwinding<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parallelism_is_stable_and_positive() {
        let first = default_parallelism();
        assert!(first >= 1);
        // OnceLock: the value never changes within a process, even if the
        // environment does.
        assert_eq!(default_parallelism(), first);
    }

    #[test]
    fn worker_count_parses_and_falls_back() {
        // Pure parsing — no environment mutation (set_var races getenv
        // in the multi-threaded test harness).
        assert_eq!(parse_worker_count(None, 7), 7);
        assert_eq!(parse_worker_count(Some("not-a-number"), 3), 3);
        assert_eq!(parse_worker_count(Some(" 12 "), 3), 12);
        assert!(parse_worker_count(Some("0"), 3) >= 1);
        assert_eq!(env_worker_count("MATSTRAT_NO_SUCH_VAR", 5), 5);
    }
}
