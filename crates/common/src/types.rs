//! Core scalar types: positions, values, identifiers.

use std::fmt;

/// A 0-based ordinal offset of a value within a column.
///
/// Positions are the glue of a column store: to reconstruct the logical
/// tuple at position `p`, take the value at position `p` from each of the
/// relation's columns. All columns of a C-Store projection are stored in
/// the same position order, so tuple reconstruction is a merge on position.
pub type Pos = u64;

/// A logical column value.
///
/// Every attribute in the experiments of the paper is integer-coded
/// (dates as day numbers, flags as small codes), so the executor operates
/// on `i64` throughout. Wider types (strings) are dictionary-encoded down
/// to `i64` codes by the storage layer.
pub type Value = i64;

/// Identifier of a column within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col#{}", self.0)
    }
}

/// Identifier of a table (or C-Store projection) within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// Physical byte width of an encoded value (1, 2, 4 or 8 bytes).
///
/// Uncompressed blocks pack values at this width; narrower widths let a
/// 64 KB block hold more values, which matters for the I/O cost model
/// (`|Ci|`, the number of blocks in a column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte per value; domain must fit in `i8`.
    W1,
    /// 2 bytes per value; domain must fit in `i16`.
    W2,
    /// 4 bytes per value; domain must fit in `i32`.
    W4,
    /// 8 bytes per value; full `i64` domain.
    W8,
}

impl Width {
    /// Number of bytes a value occupies at this width.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// Smallest width that can represent every value in `[min, max]`.
    pub fn fitting(min: Value, max: Value) -> Width {
        if min >= i8::MIN as i64 && max <= i8::MAX as i64 {
            Width::W1
        } else if min >= i16::MIN as i64 && max <= i16::MAX as i64 {
            Width::W2
        } else if min >= i32::MIN as i64 && max <= i32::MAX as i64 {
            Width::W4
        } else {
            Width::W8
        }
    }

    /// Whether `v` is representable at this width.
    pub fn fits(self, v: Value) -> bool {
        match self {
            Width::W1 => v >= i8::MIN as i64 && v <= i8::MAX as i64,
            Width::W2 => v >= i16::MIN as i64 && v <= i16::MAX as i64,
            Width::W4 => v >= i32::MIN as i64 && v <= i32::MAX as i64,
            Width::W8 => true,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// A half-open range of positions `[start, end)`.
///
/// The paper presents ranges inclusively (`[startpos, endpos]`); we use
/// half-open ranges internally because they compose without off-by-one
/// adjustments. `PosRange` is the covering range of a multi-column and the
/// unit of the ranged position-list representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PosRange {
    /// First position covered.
    pub start: Pos,
    /// One past the last position covered.
    pub end: Pos,
}

impl PosRange {
    /// Create a range; `start > end` is normalized to the empty range at `start`.
    #[inline]
    pub fn new(start: Pos, end: Pos) -> PosRange {
        PosRange {
            start,
            end: end.max(start),
        }
    }

    /// The empty range anchored at position 0.
    #[inline]
    pub const fn empty() -> PosRange {
        PosRange { start: 0, end: 0 }
    }

    /// Number of positions covered.
    #[inline]
    pub const fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no positions.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `pos` falls inside the range.
    #[inline]
    pub const fn contains(&self, pos: Pos) -> bool {
        pos >= self.start && pos < self.end
    }

    /// Intersection of two ranges (possibly empty).
    #[inline]
    pub fn intersect(&self, other: &PosRange) -> PosRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        PosRange::new(start, end)
    }

    /// Smallest range covering both inputs (the convex hull).
    #[inline]
    pub fn hull(&self, other: &PosRange) -> PosRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        PosRange::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Whether two ranges share at least one position.
    #[inline]
    pub fn overlaps(&self, other: &PosRange) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Iterate over the covered positions.
    pub fn iter(&self) -> impl Iterator<Item = Pos> + '_ {
        self.start..self.end
    }
}

impl fmt::Display for PosRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_fitting_picks_narrowest() {
        assert_eq!(Width::fitting(0, 100), Width::W1);
        assert_eq!(Width::fitting(-129, 0), Width::W2);
        assert_eq!(Width::fitting(0, 70_000), Width::W4);
        assert_eq!(Width::fitting(0, i64::MAX), Width::W8);
    }

    #[test]
    fn width_fits_matches_bounds() {
        assert!(Width::W1.fits(127));
        assert!(!Width::W1.fits(128));
        assert!(Width::W2.fits(-32768));
        assert!(!Width::W2.fits(32768));
        assert!(Width::W4.fits(2_147_483_647));
        assert!(!Width::W4.fits(2_147_483_648));
        assert!(Width::W8.fits(i64::MIN));
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W1.bytes(), 1);
        assert_eq!(Width::W2.bytes(), 2);
        assert_eq!(Width::W4.bytes(), 4);
        assert_eq!(Width::W8.bytes(), 8);
    }

    #[test]
    fn range_basic_ops() {
        let r = PosRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.is_empty());
        assert!(PosRange::empty().is_empty());
    }

    #[test]
    fn range_new_normalizes_inverted() {
        let r = PosRange::new(20, 10);
        assert!(r.is_empty());
        assert_eq!(r.start, 20);
    }

    #[test]
    fn range_intersect() {
        let a = PosRange::new(0, 100);
        let b = PosRange::new(50, 150);
        assert_eq!(a.intersect(&b), PosRange::new(50, 100));
        let c = PosRange::new(200, 300);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn range_hull() {
        let a = PosRange::new(0, 10);
        let b = PosRange::new(20, 30);
        assert_eq!(a.hull(&b), PosRange::new(0, 30));
        assert_eq!(PosRange::empty().hull(&b), b);
        assert_eq!(b.hull(&PosRange::empty()), b);
    }

    #[test]
    fn range_overlaps() {
        assert!(PosRange::new(0, 10).overlaps(&PosRange::new(9, 20)));
        assert!(!PosRange::new(0, 10).overlaps(&PosRange::new(10, 20)));
    }

    #[test]
    fn range_iter_yields_all() {
        let r = PosRange::new(3, 6);
        let v: Vec<Pos> = r.iter().collect();
        assert_eq!(v, vec![3, 4, 5]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ColumnId(3).to_string(), "col#3");
        assert_eq!(TableId(1).to_string(), "table#1");
        assert_eq!(Width::W4.to_string(), "4B");
        assert_eq!(PosRange::new(1, 5).to_string(), "[1, 5)");
    }
}
