//! Thread-local ledger of compressed-execution work.
//!
//! Operators that act directly on the encoded representation — code
//! compares in dictionary scans, one-comparison-per-run RLE evaluation,
//! run-granular aggregation, code-keyed hash probes — record how many
//! such operations they performed here. The executor harvests the
//! counter per worker span exactly like the per-thread I/O meter
//! snapshot: take [`snapshot`] before the span, subtract it from the
//! snapshot after, and fold the difference into the query's stats.
//!
//! The counter is monotonically increasing per thread and never reset,
//! so concurrent queries sharing a worker pool each see only their own
//! delta. Counts depend only on the data a span processes, not on
//! scheduling, so fragment merges sum to the same total at any worker
//! count.

use std::cell::Cell;

thread_local! {
    static CODE_OPS: Cell<u64> = const { Cell::new(0) };
}

/// Record `n` operations performed directly on encoded data.
#[inline]
pub fn add(n: u64) {
    CODE_OPS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// The calling thread's cumulative code-domain operation count.
#[inline]
pub fn snapshot() -> u64 {
    CODE_OPS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_thread() {
        let before = snapshot();
        add(3);
        add(4);
        assert_eq!(snapshot() - before, 7);
        // Another thread's ledger starts independently.
        std::thread::spawn(|| {
            let t0 = snapshot();
            add(1);
            assert_eq!(snapshot() - t0, 1);
        })
        .join()
        .unwrap();
        assert_eq!(snapshot() - before, 7, "other threads don't bleed in");
    }
}
