//! Crate-wide error type.

use std::fmt;
use std::io;

/// Errors produced anywhere in the matstrat stack.
#[derive(Debug)]
pub enum Error {
    /// Underlying file-system failure.
    Io(io::Error),
    /// A persisted block or file failed validation.
    Corrupt(String),
    /// The requested operation is not defined for this encoding or plan.
    ///
    /// The flagship case from the paper: the DS3 operator (fetch values at
    /// given positions) is not supported on bit-vector encoded columns,
    /// because one cannot know which bit-string holds a given position
    /// without scanning them all.
    Unsupported(String),
    /// A catalog lookup failed.
    NotFound(String),
    /// Caller supplied an argument violating a documented invariant.
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

/// Convenience alias used across all matstrat crates.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Construct a `Corrupt` error from any displayable message.
    pub fn corrupt(msg: impl fmt::Display) -> Error {
        Error::Corrupt(msg.to_string())
    }

    /// Construct an `Unsupported` error from any displayable message.
    pub fn unsupported(msg: impl fmt::Display) -> Error {
        Error::Unsupported(msg.to_string())
    }

    /// Construct a `NotFound` error from any displayable message.
    pub fn not_found(msg: impl fmt::Display) -> Error {
        Error::NotFound(msg.to_string())
    }

    /// Construct an `InvalidArgument` error from any displayable message.
    pub fn invalid(msg: impl fmt::Display) -> Error {
        Error::InvalidArgument(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        assert!(Error::corrupt("bad magic")
            .to_string()
            .contains("bad magic"));
        assert!(Error::unsupported("DS3 on bitvec")
            .to_string()
            .contains("unsupported"));
        assert!(Error::not_found("col x").to_string().contains("col x"));
        assert!(Error::invalid("width").to_string().contains("width"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        use std::error::Error as _;
        assert!(e.source().is_some());
        assert!(Error::corrupt("x").source().is_none());
    }
}
