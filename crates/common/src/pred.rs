//! SARGable predicates.
//!
//! C-Store data sources accept *search-argument* (SARG) predicates
//! (Selinger et al. [15] in the paper) so that filtering happens inside
//! the scan, against encoded data, instead of in a separate operator.
//! A predicate is a single comparison of a column value against one or
//! two constants; conjunctions are expressed as one predicate per column,
//! combined by the positional AND operator.

use crate::types::Value;

/// Comparison operator of a SARGable predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `column < c`
    Lt,
    /// `column <= c`
    Le,
    /// `column > c`
    Gt,
    /// `column >= c`
    Ge,
    /// `column == c`
    Eq,
    /// `column != c`
    Ne,
    /// `lo <= column <= hi` (both bounds inclusive)
    Between,
}

/// A single-column SARGable predicate.
///
/// `Between` uses both operands; every other operator uses only `operand`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Comparison operator.
    pub op: CompareOp,
    /// Primary constant operand (lower bound for `Between`).
    pub operand: Value,
    /// Upper bound for `Between`; ignored otherwise.
    pub operand2: Value,
}

impl Predicate {
    /// `column < c`
    pub fn lt(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Lt,
            operand: c,
            operand2: c,
        }
    }

    /// `column <= c`
    pub fn le(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Le,
            operand: c,
            operand2: c,
        }
    }

    /// `column > c`
    pub fn gt(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Gt,
            operand: c,
            operand2: c,
        }
    }

    /// `column >= c`
    pub fn ge(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Ge,
            operand: c,
            operand2: c,
        }
    }

    /// `column == c`
    pub fn eq(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Eq,
            operand: c,
            operand2: c,
        }
    }

    /// `column != c`
    pub fn ne(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Ne,
            operand: c,
            operand2: c,
        }
    }

    /// `lo <= column <= hi` (inclusive). `lo > hi` matches nothing.
    pub fn between(lo: Value, hi: Value) -> Predicate {
        Predicate {
            op: CompareOp::Between,
            operand: lo,
            operand2: hi,
        }
    }

    /// A predicate that matches every value (`column <= i64::MAX`).
    pub fn always_true() -> Predicate {
        Predicate::le(Value::MAX)
    }

    /// Evaluate the predicate against a single value.
    #[inline(always)]
    pub fn matches(&self, v: Value) -> bool {
        match self.op {
            CompareOp::Lt => v < self.operand,
            CompareOp::Le => v <= self.operand,
            CompareOp::Gt => v > self.operand,
            CompareOp::Ge => v >= self.operand,
            CompareOp::Eq => v == self.operand,
            CompareOp::Ne => v != self.operand,
            CompareOp::Between => v >= self.operand && v <= self.operand2,
        }
    }

    /// The matching value interval as inclusive `[lo, hi]` bounds, or
    /// `None` when the predicate is not a contiguous interval (`Ne`).
    ///
    /// Bit-vector scans use this to decide which per-value bit-strings to
    /// OR together, and sorted-column scans use it to binary-search run
    /// boundaries.
    pub fn value_interval(&self) -> Option<(Value, Value)> {
        match self.op {
            CompareOp::Lt => {
                if self.operand == Value::MIN {
                    Some((0, -1)) // empty interval
                } else {
                    Some((Value::MIN, self.operand - 1))
                }
            }
            CompareOp::Le => Some((Value::MIN, self.operand)),
            CompareOp::Gt => {
                if self.operand == Value::MAX {
                    Some((0, -1))
                } else {
                    Some((self.operand + 1, Value::MAX))
                }
            }
            CompareOp::Ge => Some((self.operand, Value::MAX)),
            CompareOp::Eq => Some((self.operand, self.operand)),
            CompareOp::Ne => None,
            CompareOp::Between => Some((self.operand, self.operand2)),
        }
    }

    /// Estimated fraction of values matching, assuming a uniform domain
    /// `[min, max]` (inclusive). Used by the planner for selectivity (SF)
    /// estimates fed into the analytical model.
    pub fn uniform_selectivity(&self, min: Value, max: Value) -> f64 {
        if max < min {
            return 0.0;
        }
        let n = (max - min + 1) as f64;
        match self.value_interval() {
            Some((lo, hi)) => {
                let lo = lo.max(min);
                let hi = hi.min(max);
                if hi < lo {
                    0.0
                } else {
                    ((hi - lo + 1) as f64 / n).clamp(0.0, 1.0)
                }
            }
            // Ne: everything except one domain value.
            None => ((n - 1.0) / n).clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_all_ops() {
        assert!(Predicate::lt(5).matches(4));
        assert!(!Predicate::lt(5).matches(5));
        assert!(Predicate::le(5).matches(5));
        assert!(!Predicate::le(5).matches(6));
        assert!(Predicate::gt(5).matches(6));
        assert!(!Predicate::gt(5).matches(5));
        assert!(Predicate::ge(5).matches(5));
        assert!(!Predicate::ge(5).matches(4));
        assert!(Predicate::eq(5).matches(5));
        assert!(!Predicate::eq(5).matches(6));
        assert!(Predicate::ne(5).matches(6));
        assert!(!Predicate::ne(5).matches(5));
        assert!(Predicate::between(2, 4).matches(2));
        assert!(Predicate::between(2, 4).matches(4));
        assert!(!Predicate::between(2, 4).matches(5));
        assert!(!Predicate::between(4, 2).matches(3));
    }

    #[test]
    fn always_true_matches_extremes() {
        let p = Predicate::always_true();
        assert!(p.matches(Value::MIN));
        assert!(p.matches(0));
        assert!(p.matches(Value::MAX));
    }

    #[test]
    fn value_interval_agrees_with_matches() {
        let preds = [
            Predicate::lt(10),
            Predicate::le(10),
            Predicate::gt(10),
            Predicate::ge(10),
            Predicate::eq(10),
            Predicate::between(3, 17),
        ];
        for p in preds {
            let (lo, hi) = p.value_interval().unwrap();
            for v in -30..30 {
                assert_eq!(p.matches(v), v >= lo && v <= hi, "pred {p:?} value {v}");
            }
        }
        assert!(Predicate::ne(10).value_interval().is_none());
    }

    #[test]
    fn value_interval_extreme_operands() {
        // `< MIN` matches nothing; interval must be empty.
        let (lo, hi) = Predicate::lt(Value::MIN).value_interval().unwrap();
        assert!(hi < lo);
        // `> MAX` matches nothing.
        let (lo, hi) = Predicate::gt(Value::MAX).value_interval().unwrap();
        assert!(hi < lo);
    }

    #[test]
    fn uniform_selectivity_basics() {
        // domain 0..=9, pred < 5 matches {0..4} = 0.5
        assert!((Predicate::lt(5).uniform_selectivity(0, 9) - 0.5).abs() < 1e-12);
        assert!((Predicate::eq(3).uniform_selectivity(0, 9) - 0.1).abs() < 1e-12);
        assert!((Predicate::ne(3).uniform_selectivity(0, 9) - 0.9).abs() < 1e-12);
        assert_eq!(Predicate::lt(0).uniform_selectivity(0, 9), 0.0);
        assert_eq!(Predicate::le(9).uniform_selectivity(0, 9), 1.0);
        // Degenerate domain.
        assert_eq!(Predicate::eq(5).uniform_selectivity(9, 0), 0.0);
    }

    #[test]
    fn uniform_selectivity_clips_to_domain() {
        // between 100..200 on domain 0..=9 matches nothing
        assert_eq!(Predicate::between(100, 200).uniform_selectivity(0, 9), 0.0);
        // between -5..4 on domain 0..=9 matches half
        assert!((Predicate::between(-5, 4).uniform_selectivity(0, 9) - 0.5).abs() < 1e-12);
    }
}
