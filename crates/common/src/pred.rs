//! SARGable predicates.
//!
//! C-Store data sources accept *search-argument* (SARG) predicates
//! (Selinger et al. [15] in the paper) so that filtering happens inside
//! the scan, against encoded data, instead of in a separate operator.
//! A predicate is a single comparison of a column value against one or
//! two constants; conjunctions are expressed as one predicate per column,
//! combined by the positional AND operator.

use crate::types::Value;

/// Comparison operator of a SARGable predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `column < c`
    Lt,
    /// `column <= c`
    Le,
    /// `column > c`
    Gt,
    /// `column >= c`
    Ge,
    /// `column == c`
    Eq,
    /// `column != c`
    Ne,
    /// `lo <= column <= hi` (both bounds inclusive)
    Between,
}

/// A single-column SARGable predicate.
///
/// `Between` uses both operands; every other operator uses only `operand`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Comparison operator.
    pub op: CompareOp,
    /// Primary constant operand (lower bound for `Between`).
    pub operand: Value,
    /// Upper bound for `Between`; ignored otherwise.
    pub operand2: Value,
}

impl Predicate {
    /// `column < c`
    pub fn lt(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Lt,
            operand: c,
            operand2: c,
        }
    }

    /// `column <= c`
    pub fn le(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Le,
            operand: c,
            operand2: c,
        }
    }

    /// `column > c`
    pub fn gt(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Gt,
            operand: c,
            operand2: c,
        }
    }

    /// `column >= c`
    pub fn ge(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Ge,
            operand: c,
            operand2: c,
        }
    }

    /// `column == c`
    pub fn eq(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Eq,
            operand: c,
            operand2: c,
        }
    }

    /// `column != c`
    pub fn ne(c: Value) -> Predicate {
        Predicate {
            op: CompareOp::Ne,
            operand: c,
            operand2: c,
        }
    }

    /// `lo <= column <= hi` (inclusive). `lo > hi` matches nothing.
    pub fn between(lo: Value, hi: Value) -> Predicate {
        Predicate {
            op: CompareOp::Between,
            operand: lo,
            operand2: hi,
        }
    }

    /// A predicate that matches every value (`column <= i64::MAX`).
    pub fn always_true() -> Predicate {
        Predicate::le(Value::MAX)
    }

    /// Evaluate the predicate against a single value.
    #[inline(always)]
    pub fn matches(&self, v: Value) -> bool {
        match self.op {
            CompareOp::Lt => v < self.operand,
            CompareOp::Le => v <= self.operand,
            CompareOp::Gt => v > self.operand,
            CompareOp::Ge => v >= self.operand,
            CompareOp::Eq => v == self.operand,
            CompareOp::Ne => v != self.operand,
            CompareOp::Between => v >= self.operand && v <= self.operand2,
        }
    }

    /// The matching value interval as inclusive `[lo, hi]` bounds, or
    /// `None` when the predicate is not a contiguous interval (`Ne`).
    ///
    /// Bit-vector scans use this to decide which per-value bit-strings to
    /// OR together, and sorted-column scans use it to binary-search run
    /// boundaries.
    pub fn value_interval(&self) -> Option<(Value, Value)> {
        match self.op {
            CompareOp::Lt => {
                if self.operand == Value::MIN {
                    Some((0, -1)) // empty interval
                } else {
                    Some((Value::MIN, self.operand - 1))
                }
            }
            CompareOp::Le => Some((Value::MIN, self.operand)),
            CompareOp::Gt => {
                if self.operand == Value::MAX {
                    Some((0, -1))
                } else {
                    Some((self.operand + 1, Value::MAX))
                }
            }
            CompareOp::Ge => Some((self.operand, Value::MAX)),
            CompareOp::Eq => Some((self.operand, self.operand)),
            CompareOp::Ne => None,
            CompareOp::Between => Some((self.operand, self.operand2)),
        }
    }

    /// Translate the predicate into the code domain of `dict`: the
    /// returned [`CodePredicate`] matches code `c` exactly when `self`
    /// matches `dict[c]`.
    ///
    /// This is what lets dictionary blocks filter without decoding:
    /// equality and inequality collapse to a single code compare (or to
    /// `None`/`All` when the operand is absent from the dictionary),
    /// range operators collapse to a code range when the dictionary is
    /// sorted, and only an unsorted dictionary falls back to a per-code
    /// match table — still one predicate evaluation per *distinct* value
    /// instead of one per row.
    pub fn to_code_domain(&self, dict: &[Value]) -> CodePredicate {
        let k = dict.len() as u32;
        match self.op {
            CompareOp::Eq => match dict.iter().position(|&d| d == self.operand) {
                Some(c) => CodePredicate::Eq(c as u32),
                None => CodePredicate::None,
            },
            CompareOp::Ne => match dict.iter().position(|&d| d == self.operand) {
                Some(c) if k == 1 => {
                    debug_assert_eq!(c, 0);
                    CodePredicate::None
                }
                Some(c) => CodePredicate::Ne(c as u32),
                None => {
                    if k == 0 {
                        CodePredicate::None
                    } else {
                        CodePredicate::All
                    }
                }
            },
            _ => {
                let (lo, hi) = self
                    .value_interval()
                    .expect("every non-Ne operator is an interval");
                if hi < lo || k == 0 {
                    return CodePredicate::None;
                }
                if dict.windows(2).all(|w| w[0] < w[1]) {
                    // Sorted dictionary: the matching codes are contiguous.
                    let lo_c = dict.partition_point(|&d| d < lo) as u32;
                    let hi_c = dict.partition_point(|&d| d <= hi) as u32;
                    CodePredicate::from_range(lo_c, hi_c, k)
                } else {
                    CodePredicate::from_table(dict.iter().map(|&d| self.matches(d)).collect())
                }
            }
        }
    }

    /// Whether *any* value in the inclusive range `[min, max]` can match —
    /// the zone-map pruning test: a block (or granule) whose stored
    /// min/max fails this cannot contain a matching row and is skipped
    /// without being read. Conservative by construction: `true` means
    /// "maybe", never "definitely".
    pub fn overlaps_range(&self, min: Value, max: Value) -> bool {
        if max < min {
            return false;
        }
        match self.value_interval() {
            Some((lo, hi)) => lo.max(min) <= hi.min(max),
            // Ne: only an all-`operand` zone is excluded.
            None => !(min == max && min == self.operand),
        }
    }

    /// Estimated fraction of values matching, assuming a uniform domain
    /// `[min, max]` (inclusive). Used by the planner for selectivity (SF)
    /// estimates fed into the analytical model.
    pub fn uniform_selectivity(&self, min: Value, max: Value) -> f64 {
        if max < min {
            return 0.0;
        }
        let n = (max - min + 1) as f64;
        match self.value_interval() {
            Some((lo, hi)) => {
                let lo = lo.max(min);
                let hi = hi.min(max);
                if hi < lo {
                    0.0
                } else {
                    ((hi - lo + 1) as f64 / n).clamp(0.0, 1.0)
                }
            }
            // Ne: everything except one domain value.
            None => ((n - 1.0) / n).clamp(0.0, 1.0),
        }
    }
}

/// A [`Predicate`] translated into a dictionary's code domain
/// (see [`Predicate::to_code_domain`]).
///
/// Codes are dictionary indices, so `matches_code(c)` is defined for
/// `c < dict.len()` and conservatively `false` beyond it. The variants
/// are normalized: a table that matches everything becomes `All`, one
/// that matches nothing becomes `None`, and single-code (or
/// single-exclusion) tables become `Eq`/`Ne`, so scans can dispatch on
/// the cheapest possible comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodePredicate {
    /// No code matches.
    None,
    /// Every code matches.
    All,
    /// Exactly one code matches.
    Eq(u32),
    /// Every code except one matches.
    Ne(u32),
    /// Codes in `lo..=hi` match (sorted dictionaries).
    Range(u32, u32),
    /// Per-code match table (unsorted dictionaries).
    Table(Vec<bool>),
}

impl CodePredicate {
    /// Normalize the half-open code range `[lo, hi)` over a `k`-entry
    /// dictionary into the cheapest equivalent variant.
    pub fn from_range(lo: u32, hi: u32, k: u32) -> CodePredicate {
        if hi <= lo {
            CodePredicate::None
        } else if lo == 0 && hi >= k {
            CodePredicate::All
        } else if hi == lo + 1 {
            CodePredicate::Eq(lo)
        } else if lo == 0 && hi + 1 == k {
            CodePredicate::Ne(k - 1)
        } else if lo == 1 && hi >= k {
            CodePredicate::Ne(0)
        } else {
            CodePredicate::Range(lo, hi - 1)
        }
    }

    /// Normalize a per-code match table into the cheapest equivalent
    /// variant.
    pub fn from_table(table: Vec<bool>) -> CodePredicate {
        let hits = table.iter().filter(|&&m| m).count();
        match hits {
            0 => CodePredicate::None,
            n if n == table.len() => CodePredicate::All,
            1 => {
                let c = table.iter().position(|&m| m).expect("one hit") as u32;
                CodePredicate::Eq(c)
            }
            n if n + 1 == table.len() => {
                let c = table.iter().position(|&m| !m).expect("one miss") as u32;
                CodePredicate::Ne(c)
            }
            _ => CodePredicate::Table(table),
        }
    }

    /// Evaluate against a single code.
    #[inline(always)]
    pub fn matches_code(&self, c: u32) -> bool {
        match self {
            CodePredicate::None => false,
            CodePredicate::All => true,
            CodePredicate::Eq(c0) => c == *c0,
            CodePredicate::Ne(c0) => c != *c0,
            CodePredicate::Range(lo, hi) => c >= *lo && c <= *hi,
            CodePredicate::Table(t) => t.get(c as usize).copied().unwrap_or(false),
        }
    }

    /// Whether no code can match (scans skip the block entirely).
    pub fn matches_nothing(&self) -> bool {
        matches!(self, CodePredicate::None)
    }

    /// Whether every code matches (scans emit the whole window).
    pub fn matches_everything(&self) -> bool {
        matches!(self, CodePredicate::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_all_ops() {
        assert!(Predicate::lt(5).matches(4));
        assert!(!Predicate::lt(5).matches(5));
        assert!(Predicate::le(5).matches(5));
        assert!(!Predicate::le(5).matches(6));
        assert!(Predicate::gt(5).matches(6));
        assert!(!Predicate::gt(5).matches(5));
        assert!(Predicate::ge(5).matches(5));
        assert!(!Predicate::ge(5).matches(4));
        assert!(Predicate::eq(5).matches(5));
        assert!(!Predicate::eq(5).matches(6));
        assert!(Predicate::ne(5).matches(6));
        assert!(!Predicate::ne(5).matches(5));
        assert!(Predicate::between(2, 4).matches(2));
        assert!(Predicate::between(2, 4).matches(4));
        assert!(!Predicate::between(2, 4).matches(5));
        assert!(!Predicate::between(4, 2).matches(3));
    }

    #[test]
    fn always_true_matches_extremes() {
        let p = Predicate::always_true();
        assert!(p.matches(Value::MIN));
        assert!(p.matches(0));
        assert!(p.matches(Value::MAX));
    }

    #[test]
    fn value_interval_agrees_with_matches() {
        let preds = [
            Predicate::lt(10),
            Predicate::le(10),
            Predicate::gt(10),
            Predicate::ge(10),
            Predicate::eq(10),
            Predicate::between(3, 17),
        ];
        for p in preds {
            let (lo, hi) = p.value_interval().unwrap();
            for v in -30..30 {
                assert_eq!(p.matches(v), v >= lo && v <= hi, "pred {p:?} value {v}");
            }
        }
        assert!(Predicate::ne(10).value_interval().is_none());
    }

    #[test]
    fn value_interval_extreme_operands() {
        // `< MIN` matches nothing; interval must be empty.
        let (lo, hi) = Predicate::lt(Value::MIN).value_interval().unwrap();
        assert!(hi < lo);
        // `> MAX` matches nothing.
        let (lo, hi) = Predicate::gt(Value::MAX).value_interval().unwrap();
        assert!(hi < lo);
    }

    #[test]
    fn uniform_selectivity_basics() {
        // domain 0..=9, pred < 5 matches {0..4} = 0.5
        assert!((Predicate::lt(5).uniform_selectivity(0, 9) - 0.5).abs() < 1e-12);
        assert!((Predicate::eq(3).uniform_selectivity(0, 9) - 0.1).abs() < 1e-12);
        assert!((Predicate::ne(3).uniform_selectivity(0, 9) - 0.9).abs() < 1e-12);
        assert_eq!(Predicate::lt(0).uniform_selectivity(0, 9), 0.0);
        assert_eq!(Predicate::le(9).uniform_selectivity(0, 9), 1.0);
        // Degenerate domain.
        assert_eq!(Predicate::eq(5).uniform_selectivity(9, 0), 0.0);
    }

    /// Oracle check: the code-domain translation must agree with
    /// value-domain evaluation on every dictionary entry.
    fn assert_code_domain_agrees(pred: &Predicate, dict: &[Value]) {
        let cp = pred.to_code_domain(dict);
        for (c, &v) in dict.iter().enumerate() {
            assert_eq!(
                cp.matches_code(c as u32),
                pred.matches(v),
                "pred {pred:?} dict {dict:?} code {c} value {v} via {cp:?}"
            );
        }
        // A match table is conservative beyond the dictionary (codes out
        // of range cannot occur in well-formed blocks anyway).
        if matches!(cp, CodePredicate::Table(_)) {
            assert!(!cp.matches_code(dict.len() as u32 + 7));
        }
    }

    #[test]
    fn code_domain_eq_ne_collapse_to_single_compare() {
        let dict = [30, 10, 20]; // first-appearance order, unsorted
        assert_eq!(
            Predicate::eq(10).to_code_domain(&dict),
            CodePredicate::Eq(1)
        );
        assert_eq!(
            Predicate::ne(20).to_code_domain(&dict),
            CodePredicate::Ne(2)
        );
        // Absent operands: eq matches nothing, ne matches everything.
        assert_eq!(Predicate::eq(99).to_code_domain(&dict), CodePredicate::None);
        assert_eq!(Predicate::ne(99).to_code_domain(&dict), CodePredicate::All);
        // A one-entry dictionary: ne of the entry matches nothing.
        assert_eq!(Predicate::ne(5).to_code_domain(&[5]), CodePredicate::None);
        assert_eq!(Predicate::eq(5).to_code_domain(&[]), CodePredicate::None);
    }

    #[test]
    fn code_domain_ranges_on_sorted_dict() {
        let dict = [10, 20, 30, 40];
        assert_eq!(
            Predicate::between(15, 35).to_code_domain(&dict),
            CodePredicate::Range(1, 2)
        );
        assert_eq!(Predicate::lt(10).to_code_domain(&dict), CodePredicate::None);
        assert_eq!(Predicate::le(40).to_code_domain(&dict), CodePredicate::All);
        assert_eq!(
            Predicate::ge(40).to_code_domain(&dict),
            CodePredicate::Eq(3)
        );
        assert_eq!(
            Predicate::lt(40).to_code_domain(&dict),
            CodePredicate::Ne(3)
        );
        assert_eq!(
            Predicate::gt(10).to_code_domain(&dict),
            CodePredicate::Ne(0)
        );
        assert_eq!(
            Predicate::between(4, 2).to_code_domain(&dict),
            CodePredicate::None
        );
    }

    #[test]
    fn code_domain_table_on_unsorted_dict() {
        let dict = [30, 10, 40, 20];
        let cp = Predicate::le(25).to_code_domain(&dict);
        assert_eq!(cp, CodePredicate::Table(vec![false, true, false, true]));
        assert_code_domain_agrees(&Predicate::le(25), &dict);
    }

    #[test]
    fn code_domain_agrees_for_every_op() {
        let dicts: [&[Value]; 4] = [
            &[10, 20, 30, 40], // sorted
            &[30, 10, 40, 20], // unsorted
            &[7],              // singleton
            &[Value::MIN, 0, Value::MAX],
        ];
        for dict in dicts {
            for c in [Value::MIN, -1, 0, 7, 10, 25, 40, Value::MAX] {
                for p in [
                    Predicate::lt(c),
                    Predicate::le(c),
                    Predicate::gt(c),
                    Predicate::ge(c),
                    Predicate::eq(c),
                    Predicate::ne(c),
                    Predicate::between(c, c.saturating_add(15)),
                    Predicate::between(c, c),
                ] {
                    assert_code_domain_agrees(&p, dict);
                }
            }
        }
    }

    #[test]
    fn overlaps_range_agrees_with_matches() {
        let preds = [
            Predicate::lt(10),
            Predicate::le(10),
            Predicate::gt(10),
            Predicate::ge(10),
            Predicate::eq(10),
            Predicate::ne(10),
            Predicate::between(3, 17),
            Predicate::between(17, 3),
        ];
        for p in preds {
            for lo in -25..25 {
                for hi in lo..25 {
                    let any = (lo..=hi).any(|v| p.matches(v));
                    assert_eq!(
                        p.overlaps_range(lo, hi),
                        any,
                        "pred {p:?} zone [{lo}, {hi}]"
                    );
                }
                // Inverted zones never overlap.
                assert!(!p.overlaps_range(lo, lo - 1));
            }
        }
    }

    #[test]
    fn uniform_selectivity_clips_to_domain() {
        // between 100..200 on domain 0..=9 matches nothing
        assert_eq!(Predicate::between(100, 200).uniform_selectivity(0, 9), 0.0);
        // between -5..4 on domain 0..=9 matches half
        assert!((Predicate::between(-5, 4).uniform_selectivity(0, 9) - 0.5).abs() < 1e-12);
    }
}
