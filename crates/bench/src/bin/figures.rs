//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p matstrat-bench --bin figures -- all
//! cargo run --release -p matstrat-bench --bin figures -- fig11 --scale 0.1 --points 11
//! ```
//!
//! Subcommands: `table2`, `fig10`, `fig11`, `fig12`, `fig13`, `all`.
//! Output goes to stdout and, as CSV, to `results/<experiment>.csv`.

use std::fs;
use std::process::ExitCode;

use matstrat_bench::{
    format_csv, format_table, format_table2, selectivity_points, Harness, Point, LINENUM_ENCODINGS,
};

struct Args {
    command: String,
    scale: f64,
    points: usize,
    out_dir: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "all".to_string(),
        scale: 0.1,
        points: 11,
        out_dir: "results".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut command_set = false;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = argv
                    .get(i)
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--points" => {
                i += 1;
                args.points = argv
                    .get(i)
                    .ok_or("--points needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --points: {e}"))?;
            }
            "--out" => {
                i += 1;
                args.out_dir = argv.get(i).ok_or("--out needs a value")?.clone();
            }
            cmd if !command_set && !cmd.starts_with("--") => {
                args.command = cmd.to_string();
                command_set = true;
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn save(out_dir: &str, name: &str, points: &[Point]) {
    let _ = fs::create_dir_all(out_dir);
    let path = format!("{out_dir}/{name}.csv");
    if let Err(e) = fs::write(&path, format_csv(points)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("  (csv written to {path})");
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: figures [table2|fig10|fig11|fig12|fig13|all] [--scale S] [--points N] [--out DIR]");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "matstrat figure harness — scale factor {} ({} lineitem rows), {} sweep points",
        args.scale,
        (6_000_000.0 * args.scale) as u64,
        args.points
    );
    println!("building database (generation + load + calibration)...");
    let h = match Harness::new(args.scale) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to build harness: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sweep = selectivity_points(args.points);
    let run = |name: &str| args.command == name || args.command == "all";
    let mut ran_any = false;

    if run("table2") {
        ran_any = true;
        println!("\n== Table 2: analytical model constants ==");
        print!("{}", format_table2(&h.constants));
    }

    if run("fig10") {
        ran_any = true;
        println!("\n== Figure 10: predicted vs. actual, selection query, RLE columns ==");
        match h.model_vs_measured(&sweep) {
            Ok((real, model)) => {
                let lm: Vec<Point> = real
                    .iter()
                    .chain(&model)
                    .filter(|p| p.series.starts_with("LM"))
                    .cloned()
                    .collect();
                let em: Vec<Point> = real
                    .iter()
                    .chain(&model)
                    .filter(|p| p.series.starts_with("EM"))
                    .cloned()
                    .collect();
                println!("-- (a) late materialization --");
                print!("{}", format_table(&lm));
                println!("-- (b) early materialization --");
                print!("{}", format_table(&em));
                save(&args.out_dir, "fig10a_lm", &lm);
                save(&args.out_dir, "fig10b_em", &em);
            }
            Err(e) => eprintln!("fig10 failed: {e}"),
        }
    }

    for (fig, aggregated) in [("fig11", false), ("fig12", true)] {
        if !run(fig) {
            continue;
        }
        ran_any = true;
        let what = if aggregated {
            "aggregation"
        } else {
            "selection"
        };
        println!(
            "\n== Figure {}: {} query, four strategies ==",
            &fig[3..],
            what
        );
        for (panel, enc) in ["a", "b", "c"].iter().zip(LINENUM_ENCODINGS) {
            println!("-- ({panel}) LINENUM {} --", enc.name());
            match h.selection_figure(enc, aggregated, &sweep) {
                Ok(points) => {
                    print!("{}", format_table(&points));
                    save(
                        &args.out_dir,
                        &format!("{fig}{panel}_{}", enc.name()),
                        &points,
                    );
                }
                Err(e) => eprintln!("{fig}({panel}) failed: {e}"),
            }
        }
    }

    if run("fig13") {
        ran_any = true;
        println!("\n== Figure 13: join inner-table materialization strategies ==");
        match h.join_figure(&sweep) {
            Ok(points) => {
                print!("{}", format_table(&points));
                save(&args.out_dir, "fig13_join", &points);
            }
            Err(e) => eprintln!("fig13 failed: {e}"),
        }
    }

    if !ran_any {
        eprintln!("unknown experiment '{}'", args.command);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
