//! Figure-regeneration harness.
//!
//! Each function reproduces one experiment of the paper's evaluation
//! (§3.7 and §4) and returns the series as plain rows, which the
//! `figures` binary prints in the same layout as the paper's plots and
//! writes as CSV. Absolute milliseconds differ from a 2006 Pentium 4 —
//! the claims under test are *shapes*: who wins at which selectivity, by
//! roughly what factor, and where the curves cross.
//!
//! Reported time = measured wall time (CPU; the pool is reset before
//! every run so block decode costs are included) + *modeled* cold-disk
//! time (seeks/reads counted by the I/O meter, priced with Table 2's
//! SEEK/READ constants). See `DESIGN.md` §4 for why this substitution
//! preserves the paper's trade-offs.

use matstrat_common::{Predicate, Result, TableId};
use matstrat_core::{
    Database, InnerStrategy, JoinSpec, JoinTreeSpec, QueryOutcome, QueryPlan, QuerySpec, Statement,
    Strategy,
};
use matstrat_model::plans::QueryParams;
use matstrat_model::{calibrate, ColumnParams, Constants, CostModel};
use matstrat_storage::EncodingKind;
use matstrat_tpch::lineitem::{cols, LineitemData, LineitemGen};
use matstrat_tpch::{JoinTables, TpchConfig};

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct Point {
    /// Requested predicate selectivity (x-axis).
    pub selectivity: f64,
    /// Series label (strategy name).
    pub series: String,
    /// Measured wall-clock milliseconds (warm-CPU component).
    pub wall_ms: f64,
    /// Modeled cold-disk milliseconds from the I/O meter.
    pub io_ms: f64,
    /// Result rows produced.
    pub rows_out: u64,
}

impl Point {
    /// Total reported time.
    pub fn total_ms(&self) -> f64 {
        self.wall_ms + self.io_ms
    }
}

/// The three LINENUM encodings of Figures 11/12, in panel order.
pub const LINENUM_ENCODINGS: [EncodingKind; 3] =
    [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::BitVec];

/// Default x-axis: selectivities from ~0 to ~1 like the paper's sweeps.
pub fn selectivity_points(n: usize) -> Vec<f64> {
    let n = n.max(2);
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            (0.01 + 0.98 * f).clamp(0.0, 1.0)
        })
        .collect()
}

/// Shared experiment context: one database with the lineitem projection
/// loaded once per LINENUM encoding, plus the join tables.
pub struct Harness {
    /// The database under test.
    pub db: Database,
    /// Generated lineitem data (for exact selectivity cutoffs).
    pub lineitem: LineitemData,
    /// lineitem projection per LINENUM encoding.
    pub tables: Vec<(EncodingKind, TableId)>,
    /// Join tables (orders ⋈ customer).
    pub join: JoinTables,
    /// orders table id.
    pub orders: TableId,
    /// customer table id.
    pub customer: TableId,
    /// nation dimension table id (snowflake behind customer).
    pub nation: TableId,
    /// date dimension table id (star on orderdate).
    pub date: TableId,
    /// Model constants: paper disk numbers + host-calibrated CPU numbers.
    pub constants: Constants,
}

impl Harness {
    /// Build everything at the given scale factor (paper: 10; default
    /// harness runs use 0.05–0.5 depending on time budget).
    pub fn new(scale: f64) -> Result<Harness> {
        let cfg = TpchConfig {
            scale,
            ..TpchConfig::default()
        };
        let db = Database::in_memory();
        let lineitem = LineitemGen::new(cfg).generate();
        let mut tables = Vec::new();
        for enc in LINENUM_ENCODINGS {
            let id = lineitem.load(&db, &format!("lineitem_{}", enc.name()), enc)?;
            tables.push((enc, id));
        }
        let join = JoinTables::generate(cfg);
        let orders = join.load_orders(&db, "orders")?;
        let customer = join.load_customer(&db, "customer")?;
        let nation = join.load_nation(&db, "nation")?;
        let date = join.load_date(&db, "date")?;
        let constants = calibrate::calibrate(Constants::host_defaults());
        Ok(Harness {
            db,
            lineitem,
            tables,
            join,
            orders,
            customer,
            nation,
            date,
            constants,
        })
    }

    /// Table id for a LINENUM encoding.
    pub fn table(&self, enc: EncodingKind) -> TableId {
        self.tables
            .iter()
            .find(|(e, _)| *e == enc)
            .map(|(_, t)| *t)
            .expect("encoding loaded")
    }

    /// The paper's selection query at the given SHIPDATE selectivity
    /// (LINENUM predicate fixed at `< 7`, 96 %).
    pub fn selection_query(&self, table: TableId, sf: f64) -> QuerySpec {
        let x = self.lineitem.shipdate_cutoff(sf);
        QuerySpec::select(table, vec![cols::SHIPDATE, cols::LINENUM])
            .filter(cols::SHIPDATE, Predicate::lt(x))
            .filter(cols::LINENUM, Predicate::lt(7))
    }

    /// The aggregation variant (GROUP BY SHIPDATE, SUM(LINENUM)).
    pub fn aggregation_query(&self, table: TableId, sf: f64) -> QuerySpec {
        self.selection_query(table, sf)
            .aggregate_sum(cols::SHIPDATE, cols::LINENUM)
    }

    /// Run one scan under a pinned strategy through the unified entry
    /// point (the figures sweep strategies; the planner stays out of it).
    pub fn run_forced(&self, q: &QuerySpec, strategy: Strategy) -> Result<QueryOutcome> {
        self.db.execute_planned(
            &Statement::Select(q.clone()),
            &QueryPlan::forced_scan(strategy),
            &self.db.exec_options(),
        )
    }

    /// Run one (query, strategy) cold and return its point: median wall
    /// time of [`Self::REPS`] cold runs (single runs are too noisy for
    /// curve shapes).
    pub fn measure(&self, q: &QuerySpec, strategy: Strategy, sf: f64) -> Result<Point> {
        let mut walls = Vec::with_capacity(Self::REPS);
        let mut io_ms = 0.0;
        let mut rows_out = 0u64;
        for _ in 0..Self::REPS {
            self.db.store().cold_reset();
            let out = self.run_forced(q, strategy)?;
            walls.push(out.stats.wall.as_secs_f64() * 1e3);
            io_ms = out
                .stats
                .io
                .modeled_micros(self.constants.seek, self.constants.read)
                / 1e3;
            rows_out = out.rows.num_rows() as u64;
        }
        walls.sort_by(f64::total_cmp);
        Ok(Point {
            selectivity: sf,
            series: strategy.name().to_string(),
            wall_ms: walls[walls.len() / 2],
            io_ms,
            rows_out,
        })
    }

    /// Cold runs per measured point (median reported).
    pub const REPS: usize = 3;

    /// Figures 11(a–c) / 12(a–c): the four strategies across the
    /// selectivity sweep for one LINENUM encoding.
    pub fn selection_figure(
        &self,
        enc: EncodingKind,
        aggregated: bool,
        sweep: &[f64],
    ) -> Result<Vec<Point>> {
        let table = self.table(enc);
        let mut points = Vec::new();
        for &sf in sweep {
            let q = if aggregated {
                self.aggregation_query(table, sf)
            } else {
                self.selection_query(table, sf)
            };
            for s in Strategy::ALL {
                // LM-pipelined is undefined over bit-vector LINENUM (§4.1).
                if s == Strategy::LmPipelined && enc == EncodingKind::BitVec {
                    continue;
                }
                points.push(self.measure(&q, s, sf)?);
            }
        }
        Ok(points)
    }

    /// Figure 10: analytical model vs. measured runtime on the RLE
    /// projection. Returns (measured, modeled) point sets; modeled points
    /// use the host-calibrated CPU constants and F=1 (warm buffer pool),
    /// matching the measured warm-CPU wall time.
    pub fn model_vs_measured(&self, sweep: &[f64]) -> Result<(Vec<Point>, Vec<Point>)> {
        let enc = EncodingKind::Rle;
        let table = self.table(enc);
        let model = CostModel::new(self.constants);
        let mut measured = Vec::new();
        let mut modeled = Vec::new();
        for &sf in sweep {
            let q = self.selection_query(table, sf);
            for s in Strategy::ALL {
                // Warm-up then measure, so measured ≈ CPU (matching F=1).
                let _ = self.run_forced(&q, s)?;
                let mut walls = Vec::with_capacity(Self::REPS);
                let mut rows_out = 0u64;
                for _ in 0..Self::REPS {
                    let out = self.run_forced(&q, s)?;
                    walls.push(out.stats.wall.as_secs_f64() * 1e3);
                    rows_out = out.rows.num_rows() as u64;
                }
                walls.sort_by(f64::total_cmp);
                measured.push(Point {
                    selectivity: sf,
                    series: format!("{} Real", s.name()),
                    wall_ms: walls[walls.len() / 2],
                    io_ms: 0.0,
                    rows_out,
                });
            }
            // Model parameters from the catalog, with F=1.
            let mut params = self.db.planner().query_params(self.db.store(), &q)?;
            params.c1.resident = 1.0;
            params.c2.resident = 1.0;
            for s in Strategy::ALL {
                if let Some(est) = model.estimate(s.plan_kind(), &params) {
                    modeled.push(Point {
                        selectivity: sf,
                        series: format!("{} Model", s.name()),
                        wall_ms: est.cpu_us / 1e3,
                        io_ms: est.io_us / 1e3,
                        rows_out: 0,
                    });
                }
            }
        }
        Ok((measured, modeled))
    }

    /// Figure 13: the join with each inner-table strategy across the
    /// orders-predicate selectivity sweep.
    pub fn join_figure(&self, sweep: &[f64]) -> Result<Vec<Point>> {
        use matstrat_tpch::join_tables::{customer_cols, orders_cols};
        let mut points = Vec::new();
        for &sf in sweep {
            let x = self.join.custkey_cutoff(sf);
            let spec = JoinSpec {
                left: self.orders,
                right: self.customer,
                left_key: orders_cols::CUSTKEY,
                right_key: customer_cols::CUSTKEY,
                left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
                right_filter: None,
                left_output: vec![orders_cols::SHIPDATE],
                right_output: vec![customer_cols::NATIONCODE],
            };
            let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()]));
            for inner in InnerStrategy::ALL {
                let plan = QueryPlan::forced_tree(vec![0], vec![inner]);
                let mut walls = Vec::with_capacity(Self::REPS);
                let mut io_ms = 0.0;
                let mut rows_out = 0u64;
                for _ in 0..Self::REPS {
                    self.db.store().cold_reset();
                    let out = self
                        .db
                        .execute_planned(&stmt, &plan, &self.db.exec_options())?;
                    walls.push(out.stats.wall.as_secs_f64() * 1e3);
                    io_ms = out
                        .stats
                        .io
                        .modeled_micros(self.constants.seek, self.constants.read)
                        / 1e3;
                    rows_out = out.rows.num_rows() as u64;
                }
                walls.sort_by(f64::total_cmp);
                points.push(Point {
                    selectivity: sf,
                    series: inner.name().to_string(),
                    wall_ms: walls[walls.len() / 2],
                    io_ms,
                    rows_out,
                });
            }
        }
        Ok(points)
    }
}

/// Render points as an aligned text table, one series per column —
/// the shape of the paper's plots.
pub fn format_table(points: &[Point]) -> String {
    let mut series: Vec<String> = Vec::new();
    for p in points {
        if !series.contains(&p.series) {
            series.push(p.series.clone());
        }
    }
    let mut sels: Vec<f64> = Vec::new();
    for p in points {
        if !sels.iter().any(|&s| (s - p.selectivity).abs() < 1e-12) {
            sels.push(p.selectivity);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:>12}", "selectivity"));
    for s in &series {
        out.push_str(&format!("  {s:>26}"));
    }
    out.push('\n');
    for &sel in &sels {
        out.push_str(&format!("{sel:>12.3}"));
        for s in &series {
            match points
                .iter()
                .find(|p| p.series == *s && (p.selectivity - sel).abs() < 1e-12)
            {
                Some(p) => out.push_str(&format!("  {:>23.2} ms", p.total_ms())),
                None => out.push_str(&format!("  {:>26}", "—")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render points as CSV (`selectivity,series,wall_ms,io_ms,total_ms,rows`).
pub fn format_csv(points: &[Point]) -> String {
    let mut out = String::from("selectivity,series,wall_ms,io_ms,total_ms,rows\n");
    for p in points {
        out.push_str(&format!(
            "{:.4},{},{:.4},{:.4},{:.4},{}\n",
            p.selectivity,
            p.series,
            p.wall_ms,
            p.io_ms,
            p.total_ms(),
            p.rows_out
        ));
    }
    out
}

/// Table 2: paper constants next to host-calibrated ones.
pub fn format_table2(host: &Constants) -> String {
    let paper = Constants::paper();
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} {:>14} {:>14}\n",
        "constant", "paper (µs)", "this host (µs)"
    ));
    for (name, p, h) in [
        ("BIC", paper.bic, host.bic),
        ("TIC_TUP", paper.tic_tup, host.tic_tup),
        ("TIC_COL", paper.tic_col, host.tic_col),
        ("FC", paper.fc, host.fc),
        ("PF", paper.pf, host.pf),
        ("SEEK", paper.seek, host.seek),
        ("READ", paper.read, host.read),
    ] {
        out.push_str(&format!("{name:>10} {p:>14.4} {h:>14.4}\n"));
    }
    out
}

/// Build the model parameters used in the unit tests of the paper-scale
/// shapes (scale-10 RLE setup of §3.7) — exposed for the ablation bench.
pub fn paper_scale_rle_params(sf1: f64) -> QueryParams {
    let n = 60_000_000.0;
    let c1 = ColumnParams {
        blocks: 1.0,
        rows: n,
        run_len: n / 3800.0,
        resident: 0.0,
        code_width: 8.0,
        shared_dict: false,
    };
    let c2 = ColumnParams {
        blocks: 5.0,
        rows: n,
        run_len: n / 26_726.0,
        resident: 0.0,
        code_width: 8.0,
        shared_dict: false,
    };
    let mut q = QueryParams::selection(n, c1, c2, sf1, 27.0 / 28.0);
    q.pos_run_len1 = (n * sf1 / 3.0).max(1.0);
    q.pos_run_len2 = (n * q.sf2 / 26_726.0).max(1.0);
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_points_span_0_to_1() {
        let p = selectivity_points(5);
        assert_eq!(p.len(), 5);
        assert!(p[0] < 0.02 && p[4] > 0.98);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn harness_small_scale_end_to_end() {
        let h = Harness::new(0.002).unwrap();
        // All three lineitem encodings loaded.
        assert_eq!(h.tables.len(), 3);
        // One selection point for each strategy on RLE.
        let pts = h
            .selection_figure(EncodingKind::Rle, false, &[0.5])
            .unwrap();
        assert_eq!(pts.len(), 4);
        // All four strategies return the same row count.
        let rows: Vec<u64> = pts.iter().map(|p| p.rows_out).collect();
        assert!(rows.windows(2).all(|w| w[0] == w[1]), "{rows:?}");
        // Bit-vector panel drops LM-pipelined.
        let pts = h
            .selection_figure(EncodingKind::BitVec, false, &[0.5])
            .unwrap();
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn join_figure_counts_match_selectivity() {
        let h = Harness::new(0.002).unwrap();
        let pts = h.join_figure(&[0.4]).unwrap();
        assert_eq!(pts.len(), 3);
        let n_orders = h.join.orders.custkey.len() as f64;
        for p in &pts {
            let sel = p.rows_out as f64 / n_orders;
            assert!((sel - 0.4).abs() < 0.05, "{}: {sel}", p.series);
        }
    }

    #[test]
    fn formatting_round_trips_series() {
        let pts = vec![
            Point {
                selectivity: 0.1,
                series: "A".into(),
                wall_ms: 1.0,
                io_ms: 2.0,
                rows_out: 5,
            },
            Point {
                selectivity: 0.1,
                series: "B".into(),
                wall_ms: 3.0,
                io_ms: 0.0,
                rows_out: 5,
            },
        ];
        let t = format_table(&pts);
        assert!(t.contains("A") && t.contains("B") && t.contains("3.00 ms"));
        let c = format_csv(&pts);
        assert!(c.lines().count() == 3);
        assert!(c.contains("0.1000,A,1.0000,2.0000,3.0000,5"));
    }

    #[test]
    fn model_vs_measured_has_all_series() {
        let h = Harness::new(0.002).unwrap();
        let (real, model) = h.model_vs_measured(&[0.3]).unwrap();
        assert_eq!(real.len(), 4);
        assert_eq!(model.len(), 4);
        assert!(model.iter().any(|p| p.series == "LM-parallel Model"));
    }
}
