//! Strategy-level benchmarks: the criterion counterpart of Figures 11
//! and 12, at three selectivity points per LINENUM encoding.
//!
//! `cargo bench -p matstrat-bench --bench strategies` reports the same
//! comparisons the `figures` binary sweeps, with criterion's statistics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_core::Strategy;
use matstrat_storage::EncodingKind;

use matstrat_bench::Harness;

fn harness() -> Harness {
    // 60 K lineitem rows: large enough for stable per-strategy ratios,
    // small enough for criterion's iteration counts.
    Harness::new(0.01).expect("harness")
}

fn bench_selection(c: &mut Criterion) {
    let h = harness();
    for enc in [EncodingKind::Plain, EncodingKind::Rle, EncodingKind::BitVec] {
        let mut g = c.benchmark_group(format!("fig11_selection_{}", enc.name()));
        let table = h.table(enc);
        for sf in [0.1, 0.5, 0.9] {
            let q = h.selection_query(table, sf);
            for s in Strategy::ALL {
                if s == Strategy::LmPipelined && enc == EncodingKind::BitVec {
                    continue;
                }
                g.bench_with_input(
                    BenchmarkId::new(s.name(), format!("sf={sf}")),
                    &q,
                    |b, q| b.iter(|| black_box(h.run_forced(q, s).unwrap().rows).num_rows()),
                );
            }
        }
        g.finish();
    }
}

fn bench_aggregation(c: &mut Criterion) {
    let h = harness();
    for enc in [EncodingKind::Plain, EncodingKind::Rle] {
        let mut g = c.benchmark_group(format!("fig12_aggregation_{}", enc.name()));
        let table = h.table(enc);
        for sf in [0.1, 0.9] {
            let q = h.aggregation_query(table, sf);
            for s in Strategy::ALL {
                g.bench_with_input(
                    BenchmarkId::new(s.name(), format!("sf={sf}")),
                    &q,
                    |b, q| b.iter(|| black_box(h.run_forced(q, s).unwrap().rows).num_rows()),
                );
            }
        }
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_selection, bench_aggregation
}
criterion_main!(benches);
