//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the §3.6 **multi-column optimization** (re-use of mini-columns at
//!   DS3 re-access) on vs. off;
//! * the **position-list representation** forced to ranges, bitmaps, or
//!   explicit lists (vs. the per-codec default);
//! * the pipeline **granule size**;
//! * **run-based vs. tuple-based aggregation** (operate-on-compressed-
//!   data, §4.2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::{PosRange, Predicate, Value};
use matstrat_core::ops::agg::{aggregate_runs, Aggregator};
use matstrat_core::MiniColumn;
use matstrat_core::{AggFunc, Database, ExecOptions, QueryPlan, QuerySpec, Statement, Strategy};
use matstrat_storage::EncodingKind;

use matstrat_bench::Harness;

fn bench_multicolumn_reuse(c: &mut Criterion) {
    let h = Harness::new(0.01).expect("harness");
    let table = h.table(EncodingKind::Rle);
    let stmt = Statement::Select(h.selection_query(table, 0.5));
    let plan = QueryPlan::forced_scan(Strategy::LmParallel);
    let mut g = c.benchmark_group("ablation_multicolumn_reuse");
    for (name, reuse) in [("on", true), ("off", false)] {
        let opts = ExecOptions {
            multicolumn_reuse: reuse,
            ..ExecOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &stmt, |b, stmt| {
            b.iter(|| black_box(h.db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows())
        });
    }
    g.finish();
}

fn bench_position_representation(c: &mut Criterion) {
    use matstrat_poslist::Repr;
    let h = Harness::new(0.01).expect("harness");
    let table = h.table(EncodingKind::Rle);
    let stmt = Statement::Select(h.selection_query(table, 0.5));
    let plan = QueryPlan::forced_scan(Strategy::LmParallel);
    let mut g = c.benchmark_group("ablation_poslist_repr");
    for (name, repr) in [
        ("default", None),
        ("ranges", Some(Repr::Ranges)),
        ("bitmap", Some(Repr::Bitmap)),
        ("explicit", Some(Repr::Explicit)),
    ] {
        let opts = ExecOptions {
            force_repr: repr,
            ..ExecOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &stmt, |b, stmt| {
            b.iter(|| black_box(h.db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows())
        });
    }
    g.finish();
}

fn bench_granule_size(c: &mut Criterion) {
    let h = Harness::new(0.01).expect("harness");
    let table = h.table(EncodingKind::Rle);
    let stmt = Statement::Select(h.selection_query(table, 0.5));
    let plan = QueryPlan::forced_scan(Strategy::LmParallel);
    let mut g = c.benchmark_group("ablation_granule");
    for shift in [12u32, 14, 16, 18] {
        let opts = ExecOptions {
            granule: 1 << shift,
            ..ExecOptions::default()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{shift}")),
            &stmt,
            |b, stmt| {
                b.iter(|| {
                    black_box(h.db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows()
                })
            },
        );
    }
    g.finish();
}

fn bench_run_vs_tuple_aggregation(c: &mut Criterion) {
    // Long-run group column: run-based aggregation should win big.
    let n = 500_000usize;
    let group: Vec<Value> = (0..n).map(|i| (i / 1000) as Value).collect();
    let vals: Vec<Value> = (0..n).map(|i| (i % 100) as Value).collect();
    let db = Database::in_memory();
    let spec = matstrat_storage::ProjectionSpec::new("t")
        .column("g", EncodingKind::Rle, matstrat_storage::SortOrder::Primary)
        .column("v", EncodingKind::Plain, matstrat_storage::SortOrder::None);
    let id = db.load_projection(&spec, &[&group, &vals]).unwrap();
    let rg = db.store().reader(id, 0).unwrap();
    let rv = db.store().reader(id, 1).unwrap();
    let window = PosRange::new(0, n as u64);
    let mg = MiniColumn::fetch(&rg, window).unwrap();
    let mv = MiniColumn::fetch(&rv, window).unwrap();
    let desc = mv.scan_positions(&Predicate::lt(90)); // 90 % survive
    let mut fetched = Vec::new();
    mv.gather(&desc, &mut fetched).unwrap();
    let group_lookup = group.clone();

    let mut g = c.benchmark_group("ablation_aggregation_input");
    g.bench_function("run_based_lm", |b| {
        b.iter(|| {
            let mut agg = Aggregator::with_domain_fn(AggFunc::Sum, 0, (n / 1000) as Value);
            aggregate_runs(&desc, &mg, &fetched, &mut agg).unwrap();
            black_box(agg.num_groups())
        })
    });
    g.bench_function("tuple_based_em", |b| {
        b.iter(|| {
            let mut agg = Aggregator::with_domain_fn(AggFunc::Sum, 0, (n / 1000) as Value);
            for (i, p) in desc.iter().enumerate() {
                agg.add(group_lookup[p as usize], fetched[i]);
            }
            black_box(agg.num_groups())
        })
    });
    g.finish();

    // End-to-end: Figure 12's LM flattening, as one criterion comparison.
    let mut g = c.benchmark_group("ablation_agg_end_to_end");
    let stmt = Statement::Select(
        QuerySpec::select(id, vec![])
            .filter(1, Predicate::lt(90))
            .aggregate_sum(0, 1),
    );
    for s in [Strategy::LmParallel, Strategy::EmParallel] {
        let plan = QueryPlan::forced_scan(s);
        let opts = db.exec_options();
        g.bench_with_input(BenchmarkId::from_parameter(s.name()), &stmt, |b, stmt| {
            b.iter(|| black_box(db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows())
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_multicolumn_reuse,
        bench_position_representation,
        bench_granule_size,
        bench_run_vs_tuple_aggregation
}
criterion_main!(benches);
