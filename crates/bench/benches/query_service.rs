//! Query-service benchmarks: dialect compilation cost and multi-session
//! batch throughput at 1–8 client threads over one shared server.
//!
//! The client matrix holds the work fixed (one 8-query mixed batch on a
//! warm pool) and varies only how many sessions submit it, so the curve
//! isolates admission/fair-share overhead and buffer-pool sharing from
//! query cost. Results are byte-identical across the row — the
//! concurrency battery (`tests/concurrent_diff.rs`) pins that; this
//! bench only times it.
//!
//! The `net_service` group runs the *same* batch through the TCP
//! frontend (loopback sockets, one `Client` per thread): the delta
//! against `query_service` at the same client count is the whole wire
//! stack — framing, compile-per-request, response rendering, and two
//! socket hops. `tests/net_diff.rs` pins that this path is
//! byte-identical; this bench prices it.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_client::Client;
use matstrat_common::Value;
use matstrat_core::{Request, Server, ServerConfig};
use matstrat_lang::compile;
use matstrat_net::{NetConfig, NetServer};
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder, Store};

const ROWS: i64 = 100_000;
const DIM_ROWS: i64 = 1024;

fn build_store() -> Store {
    let store = Store::in_memory();
    let k: Vec<Value> = (0..ROWS).collect();
    let v: Vec<Value> = (0..ROWS).map(|i| (i * 7919) % 101).collect();
    let g: Vec<Value> = (0..ROWS).map(|i| i / 4000).collect();
    let fk: Vec<Value> = (0..ROWS).map(|i| (i * 31) % DIM_ROWS).collect();
    let spec = ProjectionSpec::new("fact")
        .column("k", EncodingKind::Plain, SortOrder::Primary)
        .column("v", EncodingKind::Plain, SortOrder::None)
        .column("g", EncodingKind::Plain, SortOrder::None)
        .column("fk", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&spec, &[&k, &v, &g, &fk]).unwrap();

    let dk: Vec<Value> = (0..DIM_ROWS).collect();
    let x: Vec<Value> = (0..DIM_ROWS).map(|i| i * 3 + 1).collect();
    let spec = ProjectionSpec::new("dim")
        .column("dk", EncodingKind::Plain, SortOrder::Primary)
        .column("x", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&spec, &[&dk, &x]).unwrap();
    store
}

const SCAN_SQL: &str = "SELECT k, v FROM fact WHERE v < 60 AND g != 3";
const JOIN_SQL: &str =
    "SELECT fact.v, dim.x FROM fact JOIN dim ON fact.fk = dim.dk WHERE fact.v < 40";

/// Lexer + parser + catalog lowering, end to end.
fn bench_compile(c: &mut Criterion) {
    let store = build_store();
    let mut g = c.benchmark_group("lang_compile");
    g.bench_function("scan", |b| {
        b.iter(|| compile(&store, black_box(SCAN_SQL)).unwrap())
    });
    g.bench_function("join", |b| {
        b.iter(|| compile(&store, black_box(JOIN_SQL)).unwrap())
    });
    g.finish();
}

/// The mixed batch both transport arms share.
const BATCH_SQL: [&str; 8] = [
    SCAN_SQL,
    "SELECT g, SUM(v) FROM fact WHERE v > 10 GROUP BY g",
    "SELECT v, k FROM fact WHERE k BETWEEN 10000 AND 60000",
    JOIN_SQL,
    "SELECT g, COUNT(v) FROM fact GROUP BY g",
    "SELECT fact.v, dim.x FROM fact JOIN dim ON fact.fk = dim.dk",
    "SELECT k, v, g FROM fact WHERE v = 7",
    "SELECT g, MAX(v) FROM fact WHERE g < 20 GROUP BY g",
];

/// One mixed batch through N concurrent sessions, warm pool.
fn bench_service(c: &mut Criterion) {
    let store = build_store();
    let batch: Vec<Request> = BATCH_SQL
        .iter()
        .map(|sql| compile(&store, sql).unwrap())
        .collect();
    let batch = Arc::new(batch);

    let mut g = c.benchmark_group("query_service");
    for clients in [1usize, 2, 4, 8] {
        let server = Server::new(
            store.clone(),
            ServerConfig {
                max_concurrent: clients,
                worker_budget: clients.max(2),
            },
        );
        // Warm the pool once so the matrix times execution, not I/O.
        let warm = server.connect();
        for req in batch.iter() {
            warm.run(req).unwrap();
        }
        g.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..clients {
                            let server = &server;
                            let batch = Arc::clone(&batch);
                            scope.spawn(move || {
                                let session = server.connect();
                                for req in batch.iter().skip(t).step_by(clients) {
                                    black_box(session.run(req).unwrap());
                                }
                            });
                        }
                    })
                })
            },
        );
    }
    g.finish();
}

/// The same batch over loopback TCP: one persistent `Client` per
/// thread, statements as text, responses fully drained. Compare with
/// `query_service` at the same client count to price the wire stack.
fn bench_net(c: &mut Criterion) {
    let store = build_store();
    let mut g = c.benchmark_group("net_service");
    for clients in [1usize, 2, 4, 8] {
        let service = Server::new(
            store.clone(),
            ServerConfig {
                max_concurrent: clients,
                worker_budget: clients.max(2),
            },
        );
        // Warm the pool so the matrix times transport, not I/O.
        let warm = service.connect();
        for sql in BATCH_SQL {
            warm.run(&compile(&store, sql).unwrap()).unwrap();
        }
        let net = NetServer::serve(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                max_conns: clients,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = net.local_addr();
        g.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                // Connections persist across iterations — the bench
                // prices per-statement wire cost, not TCP handshakes.
                let mut conns: Vec<Client> = (0..clients)
                    .map(|_| Client::connect(addr).unwrap())
                    .collect();
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for (t, client) in conns.iter_mut().enumerate() {
                            scope.spawn(move || {
                                for sql in BATCH_SQL.iter().skip(t).step_by(clients) {
                                    black_box(client.query(sql).unwrap());
                                }
                            });
                        }
                    })
                })
            },
        );
        net.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_service, bench_net);
criterion_main!(benches);
