//! Micro-benchmarks for the data-source access paths per codec
//! (DS1/DS2/DS3/decode of §3.2).
//!
//! The figure-level results decompose into these costs: RLE's DS1 is
//! per-run, plain's is per-value; bit-vector answers predicates with
//! word ORs but pays full decompression for value access.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::{PosRange, Predicate, Value};
use matstrat_core::MiniColumn;
use matstrat_poslist::PosList;
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder, Store};

const ROWS: usize = 500_000;

/// Load one column of semi-sorted low-cardinality data per encoding.
fn setup() -> Vec<(EncodingKind, Store, matstrat_common::TableId)> {
    // Runs of average length 50 over 7 distinct values.
    let values: Vec<Value> = (0..ROWS).map(|i| ((i / 50) % 7) as Value).collect();
    [
        EncodingKind::Plain,
        EncodingKind::Rle,
        EncodingKind::BitVec,
        EncodingKind::Dict,
    ]
    .into_iter()
    .map(|enc| {
        let store = Store::in_memory();
        let spec = ProjectionSpec::new("c").column("v", enc, SortOrder::None);
        let id = store.load_projection(&spec, &[&values]).unwrap();
        (enc, store, id)
    })
    .collect()
}

fn mini(store: &Store, id: matstrat_common::TableId) -> MiniColumn {
    MiniColumn::fetch(&store.reader(id, 0).unwrap(), PosRange::new(0, ROWS as u64)).unwrap()
}

fn bench_ds1(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds1_scan_positions");
    for (enc, store, id) in setup() {
        let m = mini(&store, id);
        g.bench_with_input(BenchmarkId::from_parameter(enc.name()), &m, |b, m| {
            b.iter(|| black_box(m.scan_positions(&Predicate::lt(4))).count())
        });
    }
    g.finish();
}

fn bench_ds2(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds2_scan_pairs");
    for (enc, store, id) in setup() {
        let m = mini(&store, id);
        g.bench_with_input(BenchmarkId::from_parameter(enc.name()), &m, |b, m| {
            b.iter(|| {
                let mut pos = Vec::new();
                let mut val = Vec::new();
                m.scan_pairs(&Predicate::lt(4), &mut pos, &mut val);
                black_box(pos.len())
            })
        });
    }
    g.finish();
}

fn bench_ds3(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds3_fetch_values");
    // Fetch at 10% of positions, clustered (range-representable).
    let ranges: Vec<PosRange> = (0..(ROWS as u64 / 5000))
        .map(|i| PosRange::new(i * 5000, i * 5000 + 500))
        .collect();
    let pl = PosList::Ranges(matstrat_poslist::RangeList::from_ranges(ranges));
    for (enc, store, id) in setup() {
        let m = mini(&store, id);
        g.bench_with_input(BenchmarkId::from_parameter(enc.name()), &m, |b, m| {
            b.iter(|| {
                let mut out = Vec::new();
                // fetch_values decompresses for bit-vector (its only path).
                m.fetch_values(&pl, &mut out).unwrap();
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_ds4_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds4_value_at");
    let probes: Vec<u64> = (0..ROWS as u64).step_by(97).collect();
    for (enc, store, id) in setup() {
        let m = mini(&store, id);
        g.bench_with_input(BenchmarkId::from_parameter(enc.name()), &m, |b, m| {
            b.iter(|| {
                let mut acc = 0i64;
                for &p in &probes {
                    acc = acc.wrapping_add(m.value_at(p).unwrap());
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_full");
    for (enc, store, id) in setup() {
        let m = mini(&store, id);
        g.bench_with_input(BenchmarkId::from_parameter(enc.name()), &m, |b, m| {
            b.iter(|| {
                let mut out = Vec::with_capacity(ROWS);
                m.decode(&mut out).unwrap();
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ds1, bench_ds2, bench_ds3, bench_ds4_probe, bench_decode
}
criterion_main!(benches);
