//! Multi-way join-tree benchmarks: edge-count × thread matrix over the
//! TPC-H-style star/snowflake (orders ⋈ customer ⋈ date, customer ⋈
//! nation), plus the planner's auto path and the build-reuse win.
//!
//! The serial CI leg runs this in `--quick` mode with
//! `BENCH_JSON=BENCH_join_tree.json`, archiving the medians as a perf
//! trend artifact next to the scan and single-join numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::Predicate;
use matstrat_core::{
    hash_join_tree_with_options, ExecOptions, InnerStrategy, JoinSpec, JoinTreePlan, JoinTreeSpec,
    QueryPlan, Statement,
};
use matstrat_tpch::join_tables::{customer_cols, date_cols, nation_cols, orders_cols};

use matstrat_bench::Harness;

/// Up to three edges: customer (filtered star), date (star), nation
/// (snowflake through customer).
fn tree_spec(h: &Harness, edges: usize) -> JoinTreeSpec {
    let x = h.join.custkey_cutoff(0.5);
    let mut spec = vec![JoinSpec {
        left: h.orders,
        right: h.customer,
        left_key: orders_cols::CUSTKEY,
        right_key: customer_cols::CUSTKEY,
        left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
        right_filter: None,
        left_output: vec![orders_cols::SHIPDATE],
        right_output: vec![customer_cols::NATIONCODE],
    }];
    if edges >= 2 {
        spec.push(JoinSpec {
            left: h.orders,
            right: h.date,
            left_key: orders_cols::ORDERDATE,
            right_key: date_cols::DATEKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![date_cols::MONTH],
        });
    }
    if edges >= 3 {
        spec.push(JoinSpec {
            left: h.customer,
            right: h.nation,
            left_key: customer_cols::NATIONCODE,
            right_key: nation_cols::NATIONKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![nation_cols::REGIONKEY],
        });
    }
    JoinTreeSpec::new(spec)
}

/// Edge-count × thread matrix on a warm pool: the tree executor's
/// scaling surface. Results are byte-identical across each row — only
/// wall time moves.
fn bench_tree_matrix(c: &mut Criterion) {
    let h = Harness::new(0.05).expect("harness"); // 75 K orders
    let mut g = c.benchmark_group("join_tree");
    for edges in [1usize, 2, 3] {
        let stmt = Statement::JoinTree(tree_spec(&h, edges));
        let plan = QueryPlan::forced_tree(
            (0..edges).collect(),
            vec![InnerStrategy::MultiColumn; edges],
        );
        for threads in [1usize, 2, 4, 8] {
            let opts = ExecOptions {
                granule: 8 * 1024,
                parallelism: threads,
                ..ExecOptions::default()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("edges={edges}"), format!("threads={threads}")),
                &stmt,
                |b, stmt| {
                    b.iter(|| {
                        black_box(h.db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows()
                    })
                },
            );
        }
    }
    g.finish();
}

/// The planner's full auto path (order + per-edge strategy enumeration
/// + execution) vs a fixed spec-order MultiColumn plan.
fn bench_tree_auto(c: &mut Criterion) {
    let h = Harness::new(0.05).expect("harness");
    let stmt = Statement::JoinTree(tree_spec(&h, 3));
    let mut g = c.benchmark_group("join_tree_auto");
    g.bench_function("plan_only", |b| {
        b.iter(|| match black_box(h.db.plan(&stmt).unwrap()) {
            QueryPlan::Tree(c) => c.estimate.total_us(),
            _ => unreachable!("a join tree plans as a tree"),
        })
    });
    g.bench_function("auto", |b| {
        b.iter(|| black_box(h.db.execute(&stmt).unwrap().rows).num_rows())
    });
    g.finish();
}

/// Build-table reuse: the same date dimension probed on two columns,
/// with the partitioned build cached vs rebuilt per edge.
fn bench_build_reuse(c: &mut Criterion) {
    let h = Harness::new(0.05).expect("harness");
    let spec = JoinTreeSpec::new(vec![
        JoinSpec {
            left: h.orders,
            right: h.date,
            left_key: orders_cols::ORDERDATE,
            right_key: date_cols::DATEKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![orders_cols::SHIPDATE],
            right_output: vec![date_cols::MONTH],
        },
        JoinSpec {
            left: h.orders,
            right: h.date,
            left_key: orders_cols::SHIPDATE,
            right_key: date_cols::DATEKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![date_cols::MONTH],
        },
    ]);
    let mut g = c.benchmark_group("join_tree_build_reuse");
    for (label, reuse) in [("reuse", true), ("rebuild", false)] {
        // `reuse_builds: false` exists only on the raw executor plan, so
        // this ablation drives `hash_join_tree_with_options` directly.
        let plan = JoinTreePlan {
            order: vec![0, 1],
            inners: vec![InnerStrategy::MultiColumn; 2],
            bushy: Vec::new(),
            reuse_builds: reuse,
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    hash_join_tree_with_options(
                        h.db.store(),
                        &spec,
                        &plan,
                        &ExecOptions::default(),
                    )
                    .unwrap(),
                )
                .0
                .num_rows()
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tree_matrix, bench_tree_auto, bench_build_reuse
}
criterion_main!(benches);
