//! Join inner-table strategy benchmarks: the criterion counterpart of
//! Figure 13 at three orders-predicate selectivities, plus the probe
//! thread-scaling matrix of the parallel join.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::Predicate;
use matstrat_core::{ExecOptions, InnerStrategy, JoinSpec, JoinTreeSpec, QueryPlan, Statement};
use matstrat_tpch::join_tables::{customer_cols, orders_cols};

use matstrat_bench::Harness;

fn join_spec(h: &Harness, sf: f64) -> JoinSpec {
    let x = h.join.custkey_cutoff(sf);
    JoinSpec {
        left: h.orders,
        right: h.customer,
        left_key: orders_cols::CUSTKEY,
        right_key: customer_cols::CUSTKEY,
        left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
        right_filter: None,
        left_output: vec![orders_cols::SHIPDATE],
        right_output: vec![customer_cols::NATIONCODE],
    }
}

fn bench_join(c: &mut Criterion) {
    let h = Harness::new(0.01).expect("harness"); // 15 K orders, 1.5 K customers
    let mut g = c.benchmark_group("fig13_join_inner");
    for sf in [0.1, 0.5, 0.9] {
        let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![join_spec(&h, sf)]));
        for inner in InnerStrategy::ALL {
            let plan = QueryPlan::forced_tree(vec![0], vec![inner]);
            let opts = h.db.exec_options();
            g.bench_with_input(
                BenchmarkId::new(inner.name().replace(' ', "_"), format!("sf={sf}")),
                &stmt,
                |b, stmt| {
                    b.iter(|| {
                        black_box(h.db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows()
                    })
                },
            );
        }
    }
    g.finish();
}

/// Probe thread scaling on a warm pool at a large scale: each inner
/// strategy × worker count, with a small probe granule so every worker
/// really owns spans. Results are byte-identical across the row — only
/// wall time moves.
fn bench_join_threads(c: &mut Criterion) {
    let h = Harness::new(0.1).expect("harness"); // 150 K orders, 15 K customers
    let stmt = Statement::JoinTree(JoinTreeSpec::new(vec![join_spec(&h, 0.5)]));
    let mut g = c.benchmark_group("join_probe_threads");
    for inner in InnerStrategy::ALL {
        let plan = QueryPlan::forced_tree(vec![0], vec![inner]);
        for threads in [1usize, 2, 4, 8] {
            let opts = ExecOptions {
                granule: 8 * 1024,
                parallelism: threads,
                ..ExecOptions::default()
            };
            g.bench_with_input(
                BenchmarkId::new(inner.name().replace(' ', "_"), format!("threads={threads}")),
                &stmt,
                |b, stmt| {
                    b.iter(|| {
                        black_box(h.db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows()
                    })
                },
            );
        }
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_join, bench_join_threads
}
criterion_main!(benches);
