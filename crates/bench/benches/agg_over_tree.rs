//! Aggregation over join trees: the pipelined tree-with-aggregate
//! executor (partial aggregates per granule, no materialized join
//! output) against the serial composition — flat tree first, aggregate
//! over its rows second — plus the thread-scaling surface and the
//! zone-map ablation on the filtered base column.
//!
//! The serial CI leg runs this in `--quick` mode with
//! `BENCH_JSON=BENCH_pipeline.json`, archiving the medians as a perf
//! trend artifact next to the scan and join numbers.

use std::collections::BTreeMap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::{Predicate, Value};
use matstrat_core::{
    AggFunc, ExecOptions, InnerStrategy, JoinSpec, JoinTreeSpec, QueryPlan, Statement,
};
use matstrat_tpch::join_tables::{customer_cols, date_cols, nation_cols, orders_cols};

use matstrat_bench::Harness;

/// The three-edge star/snowflake: orders ⋈ customer (filtered) ⋈ date,
/// customer ⋈ nation. Flat spec-order output:
/// [shipdate, nationcode, month, regionkey].
fn tree_spec(h: &Harness) -> JoinTreeSpec {
    let x = h.join.custkey_cutoff(0.5);
    JoinTreeSpec::new(vec![
        JoinSpec {
            left: h.orders,
            right: h.customer,
            left_key: orders_cols::CUSTKEY,
            right_key: customer_cols::CUSTKEY,
            left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
            right_filter: None,
            left_output: vec![orders_cols::SHIPDATE],
            right_output: vec![customer_cols::NATIONCODE],
        },
        JoinSpec {
            left: h.orders,
            right: h.date,
            left_key: orders_cols::ORDERDATE,
            right_key: date_cols::DATEKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![date_cols::MONTH],
        },
        JoinSpec {
            left: h.customer,
            right: h.nation,
            left_key: customer_cols::NATIONCODE,
            right_key: nation_cols::NATIONKEY,
            left_filter: None,
            right_filter: None,
            left_output: vec![],
            right_output: vec![nation_cols::REGIONKEY],
        },
    ])
}

/// GROUP BY month, SUM(shipdate) over the flat output above.
fn agg_spec(h: &Harness) -> JoinTreeSpec {
    tree_spec(h).aggregate_fn(2, 0, AggFunc::Sum)
}

fn forced_plan() -> QueryPlan {
    QueryPlan::forced_tree(vec![0, 1, 2], vec![InnerStrategy::MultiColumn; 3])
}

/// Pipelined aggregate vs the serial composition it must equal: the
/// pipeline merges partial accumulators and never materializes the
/// joined rows; the composition pays the full flat result first.
fn bench_pipeline_vs_composition(c: &mut Criterion) {
    let h = Harness::new(0.05).expect("harness");
    let agg = Statement::JoinTree(agg_spec(&h));
    let flat = Statement::JoinTree(tree_spec(&h));
    let plan = forced_plan();
    let opts = ExecOptions::default();
    let mut g = c.benchmark_group("agg_over_tree");
    g.bench_function("pipelined", |b| {
        b.iter(|| black_box(h.db.execute_planned(&agg, &plan, &opts).unwrap().rows).num_rows())
    });
    g.bench_function("composed", |b| {
        b.iter(|| {
            let rows = h.db.execute_planned(&flat, &plan, &opts).unwrap().rows;
            let mut groups: BTreeMap<Value, Value> = BTreeMap::new();
            for row in rows.rows() {
                *groups.entry(row[2]).or_insert(0) += row[0];
            }
            black_box(groups.len())
        })
    });
    g.bench_function("auto", |b| {
        b.iter(|| black_box(h.db.execute(&agg).unwrap().rows).num_rows())
    });
    g.finish();
}

/// Thread scaling of the aggregated pipeline: partial accumulators
/// merge associatively, so the bytes never move — only wall time.
fn bench_agg_thread_scaling(c: &mut Criterion) {
    let h = Harness::new(0.05).expect("harness");
    let agg = Statement::JoinTree(agg_spec(&h));
    let plan = forced_plan();
    let mut g = c.benchmark_group("agg_over_tree_threads");
    for threads in [1usize, 2, 4, 8] {
        let opts = ExecOptions {
            granule: 8 * 1024,
            parallelism: threads,
            ..ExecOptions::default()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &agg,
            |b, stmt| {
                b.iter(|| {
                    black_box(h.db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows()
                })
            },
        );
    }
    g.finish();
}

/// Zone maps on the filtered base column, cold every iteration: with
/// maps on, blocks outside the predicate's value band are never read.
fn bench_zone_map_ablation(c: &mut Criterion) {
    let h = Harness::new(0.05).expect("harness");
    let agg = Statement::JoinTree(agg_spec(&h));
    let plan = forced_plan();
    let mut g = c.benchmark_group("agg_over_tree_zone_maps");
    for (label, zone_maps) in [("on", true), ("off", false)] {
        let opts = ExecOptions {
            zone_maps,
            ..ExecOptions::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                h.db.store().cold_reset();
                black_box(h.db.execute_planned(&agg, &plan, &opts).unwrap().rows).num_rows()
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pipeline_vs_composition, bench_agg_thread_scaling, bench_zone_map_ablation
}
criterion_main!(benches);
