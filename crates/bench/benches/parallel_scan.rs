//! Granule-parallel executor scaling: the same warm scan at 1/2/4/8
//! workers, for the pipelined strategies on a ≥1M-row projection.
//!
//! `cargo bench -p matstrat-bench --bench parallel_scan` prints the
//! per-thread-count medians; on a machine with ≥4 cores the 4-thread
//! EM-pipelined scan should beat the 1-thread run by well over 1.8× (the
//! granule spans are independent and the buffer pool is warm, so the
//! work is almost purely CPU). On a single-core container the numbers
//! collapse to ~1× — that is the hardware, not the executor; the
//! differential suite (`tests/parallel_diff.rs`) proves the results stay
//! byte-identical either way.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::{Predicate, TableId, Value};
use matstrat_core::{Database, ExecOptions, QueryPlan, QuerySpec, Statement, Strategy};
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};

/// 1 Mi rows: 16 granules at the default 64 Ki granule, so even 8 workers
/// own two granules each.
const ROWS: usize = 1 << 20;

fn setup() -> (Database, TableId) {
    let db = Database::in_memory();
    let a: Vec<Value> = (0..ROWS).map(|i| (i / (ROWS / 64)) as Value).collect();
    let b: Vec<Value> = (0..ROWS).map(|i| ((i * 7919) % 1000) as Value).collect();
    let spec = ProjectionSpec::new("scan")
        .column("a", EncodingKind::Rle, SortOrder::Primary)
        .column("b", EncodingKind::Plain, SortOrder::None);
    let t = db.load_projection(&spec, &[&a, &b]).unwrap();
    (db, t)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let (db, t) = setup();
    // A predicate that keeps most rows: the scan is dominated by DS2/DS4
    // operator work, the right regime for measuring CPU scaling.
    let stmt = Statement::Select(QuerySpec::select(t, vec![0, 1]).filter(1, Predicate::lt(900)));
    // Warm the pool once so every measured run is pure CPU.
    db.execute_planned(
        &stmt,
        &QueryPlan::forced_scan(Strategy::EmPipelined),
        &db.exec_options(),
    )
    .expect("warm-up");

    for strategy in [Strategy::EmPipelined, Strategy::LmParallel] {
        let plan = QueryPlan::forced_scan(strategy);
        let mut g = c.benchmark_group(format!("parallel_scan_1M_{}", strategy.name()));
        for threads in [1usize, 2, 4, 8] {
            let opts = ExecOptions {
                parallelism: threads,
                ..ExecOptions::default()
            };
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("threads={threads}")),
                &stmt,
                |bch, stmt| {
                    bch.iter(|| {
                        black_box(db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows()
                    })
                },
            );
        }
        g.finish();
    }
}

/// Work-stealing rebalance under clustered selectivity: every match
/// lives in the first 1/16th of the table — inside worker 0's original
/// span at any thread count — so without stealing the other workers
/// would scan their empty spans and idle while worker 0 fetched and
/// stitched every survivor. With stealing, idle workers drain worker
/// 0's tail; `tests/steal_skew_diff.rs` proves the results stay
/// byte-identical while they do.
fn bench_skewed_scaling(c: &mut Criterion) {
    let db = Database::in_memory();
    let hot = ROWS / 16;
    let a: Vec<Value> = (0..ROWS).map(|i| (i / (ROWS / 64)) as Value).collect();
    let b: Vec<Value> = (0..ROWS).map(|i| Value::from(i < hot)).collect();
    let payload: Vec<Value> = (0..ROWS).map(|i| ((i * 7919) % 1000) as Value).collect();
    let spec = ProjectionSpec::new("skewed")
        .column("a", EncodingKind::Rle, SortOrder::Primary)
        .column("b", EncodingKind::Plain, SortOrder::None)
        .column("c", EncodingKind::Plain, SortOrder::None);
    let t = db.load_projection(&spec, &[&a, &b, &payload]).unwrap();
    let stmt = Statement::Select(QuerySpec::select(t, vec![0, 2]).filter(1, Predicate::eq(1)));
    let plan = QueryPlan::forced_scan(Strategy::LmParallel);
    db.execute_planned(&stmt, &plan, &db.exec_options())
        .expect("warm-up");

    let mut g = c.benchmark_group("parallel_scan_1M_skewed_LM-parallel");
    for threads in [1usize, 2, 4, 8] {
        let opts = ExecOptions {
            // 64 granules: fine enough that stolen runs rebalance the
            // hot span, coarse enough that claims stay cheap.
            granule: 16 * 1024,
            parallelism: threads,
            ..ExecOptions::default()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &stmt,
            |bch, stmt| {
                bch.iter(|| {
                    black_box(db.execute_planned(stmt, &plan, &opts).unwrap().rows).num_rows()
                })
            },
        );
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_thread_scaling, bench_skewed_scaling
}
criterion_main!(benches);
