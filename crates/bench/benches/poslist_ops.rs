//! Micro-benchmarks for the position-list algebra (§2.1.1, §3.3).
//!
//! These quantify the claims behind the AND cost model: intersecting two
//! bit-strings costs one instruction per 64 positions; intersecting
//! range lists costs one merge step per run; intersecting a range with a
//! bit-string is a clip.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::PosRange;
use matstrat_poslist::{Bitmap, PosList, PosListBuilder, PosVec, RangeList};

const UNIVERSE: u64 = 1 << 20; // 1 Mi positions

/// Every-other-position set (worst case for ranges, fine for bitmaps).
fn alternating_bitmap() -> PosList {
    let mut bm = Bitmap::zeros(PosRange::new(0, UNIVERSE));
    for p in (0..UNIVERSE).step_by(2) {
        bm.set(p);
    }
    PosList::Bitmap(bm)
}

/// A clustered set: 64 runs of 8 Ki positions.
fn clustered_ranges() -> PosList {
    let ranges: Vec<PosRange> = (0..64)
        .map(|i| PosRange::new(i * 16384, i * 16384 + 8192))
        .collect();
    PosList::Ranges(RangeList::from_ranges(ranges))
}

/// A sparse explicit list: every 1024th position.
fn sparse_explicit() -> PosList {
    PosList::Explicit(PosVec::from_sorted((0..UNIVERSE).step_by(1024).collect()))
}

fn bench_and(c: &mut Criterion) {
    let mut g = c.benchmark_group("poslist_and");
    let bitmap = alternating_bitmap();
    let ranges = clustered_ranges();
    let explicit = sparse_explicit();

    g.bench_function("bitmap_and_bitmap_1M", |b| {
        b.iter(|| black_box(bitmap.and(&bitmap)).count())
    });
    g.bench_function("ranges_and_ranges_64runs", |b| {
        b.iter(|| black_box(ranges.and(&ranges)).count())
    });
    g.bench_function("ranges_and_bitmap", |b| {
        b.iter(|| black_box(ranges.and(&bitmap)).count())
    });
    g.bench_function("explicit_and_bitmap_sparse", |b| {
        b.iter(|| black_box(explicit.and(&bitmap)).count())
    });
    g.finish();
}

fn bench_or_and_not(c: &mut Criterion) {
    let mut g = c.benchmark_group("poslist_or");
    let bitmap = alternating_bitmap();
    let ranges = clustered_ranges();
    g.bench_function("bitmap_or_bitmap_1M", |b| {
        b.iter(|| black_box(bitmap.or(&bitmap)).count())
    });
    g.bench_function("ranges_or_ranges", |b| {
        b.iter(|| black_box(ranges.or(&ranges)).count())
    });
    if let PosList::Bitmap(bm) = &bitmap {
        g.bench_function("bitmap_not_1M", |b| b.iter(|| black_box(bm.not()).count()));
    }
    g.finish();
}

fn bench_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("poslist_iterate");
    for (name, pl) in [
        ("bitmap_half_dense", alternating_bitmap()),
        ("ranges_clustered", clustered_ranges()),
        ("explicit_sparse", sparse_explicit()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &pl, |b, pl| {
            b.iter(|| {
                let mut acc = 0u64;
                for p in pl.iter() {
                    acc = acc.wrapping_add(p);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_builder(c: &mut Criterion) {
    let mut g = c.benchmark_group("poslist_builder");
    g.bench_function("push_runs_64", |b| {
        b.iter(|| {
            let mut builder = PosListBuilder::new();
            for i in 0..64u64 {
                builder.push_run(PosRange::new(i * 16384, i * 16384 + 8192));
            }
            black_box(builder.finish()).count()
        })
    });
    g.bench_function("push_singletons_dense_64k", |b| {
        b.iter(|| {
            let mut builder = PosListBuilder::new();
            for p in (0..65536u64).step_by(2) {
                builder.push(p);
            }
            black_box(builder.finish()).count()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_and, bench_or_and_not, bench_iteration, bench_builder
}
criterion_main!(benches);
