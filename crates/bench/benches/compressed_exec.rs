//! Ablation for the compressed-execution layer: the same encoded data,
//! predicate, and aggregate evaluated two ways — decode-then-eval (the
//! pre-compressed-execution behavior: materialize values, then compare
//! per value) against the never-decode path (one comparison per RLE run,
//! code-domain predicates over dictionary codes, run-granular
//! aggregation).
//!
//! On the serial CI leg this runs in `--quick` mode with
//! `BENCH_JSON=BENCH_compressed.json`, archiving the medians as a perf
//! trajectory; the acceptance bar is ≥ 1.5× on the RLE-run scan and the
//! dict-eq scan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matstrat_common::{PosRange, Predicate, Value};
use matstrat_core::MiniColumn;
use matstrat_poslist::PosListBuilder;
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder, Store};

const ROWS: usize = 500_000;

fn mini(store: &Store, id: matstrat_common::TableId) -> MiniColumn {
    MiniColumn::fetch(&store.reader(id, 0).unwrap(), PosRange::new(0, ROWS as u64)).unwrap()
}

/// RLE-heavy: runs of average length 50 over 7 distinct values.
fn rle_mini() -> (Store, matstrat_common::TableId) {
    let values: Vec<Value> = (0..ROWS).map(|i| ((i / 50) % 7) as Value).collect();
    let store = Store::in_memory();
    let spec = ProjectionSpec::new("c").column("v", EncodingKind::Rle, SortOrder::None);
    let id = store.load_projection(&spec, &[&values]).unwrap();
    (store, id)
}

/// Low-cardinality shared-dict column: 10 distinct values in a sorted
/// column-wide dictionary, so point predicates translate to single-code
/// comparisons and ranges to contiguous code intervals.
fn dict_mini() -> (Store, matstrat_common::TableId) {
    let values: Vec<Value> = (0..ROWS).map(|i| (((i * 31) % 10) * 5) as Value).collect();
    let store = Store::in_memory();
    let spec = ProjectionSpec::new("c").column_shared_dict("v", SortOrder::None);
    let id = store.load_projection(&spec, &[&values]).unwrap();
    (store, id)
}

/// The pre-compressed-execution scan: materialize every value, evaluate
/// the predicate per value, and build the same position list the
/// executor's DS1 leaf emits — apples-to-apples with `scan_positions`.
fn decode_then_scan(m: &MiniColumn, pred: &Predicate) -> u64 {
    let mut out = Vec::with_capacity(ROWS);
    m.decode(&mut out).unwrap();
    let mut b = PosListBuilder::new();
    for (i, &v) in out.iter().enumerate() {
        if pred.matches(v) {
            b.push(i as u64);
        }
    }
    b.finish().count()
}

fn bench_rle_scan(c: &mut Criterion) {
    let (store, id) = rle_mini();
    let m = mini(&store, id);
    let pred = Predicate::lt(4);
    let mut g = c.benchmark_group("compressed_rle_scan");
    g.bench_with_input(
        BenchmarkId::from_parameter("decode_then_eval"),
        &m,
        |b, m| b.iter(|| black_box(decode_then_scan(m, &pred))),
    );
    g.bench_with_input(BenchmarkId::from_parameter("run_granular"), &m, |b, m| {
        b.iter(|| black_box(m.scan_positions(&pred)).count())
    });
    g.finish();
}

fn bench_dict_eq_scan(c: &mut Criterion) {
    let (store, id) = dict_mini();
    let m = mini(&store, id);
    let pred = Predicate::eq(25);
    let mut g = c.benchmark_group("compressed_dict_eq_scan");
    g.bench_with_input(
        BenchmarkId::from_parameter("decode_then_eval"),
        &m,
        |b, m| b.iter(|| black_box(decode_then_scan(m, &pred))),
    );
    g.bench_with_input(BenchmarkId::from_parameter("code_domain"), &m, |b, m| {
        b.iter(|| black_box(m.scan_positions(&pred)).count())
    });
    g.finish();
}

fn bench_dict_range_scan(c: &mut Criterion) {
    let (store, id) = dict_mini();
    let m = mini(&store, id);
    let pred = Predicate::between(10, 30);
    let mut g = c.benchmark_group("compressed_dict_range_scan");
    g.bench_with_input(
        BenchmarkId::from_parameter("decode_then_eval"),
        &m,
        |b, m| b.iter(|| black_box(decode_then_scan(m, &pred))),
    );
    g.bench_with_input(BenchmarkId::from_parameter("code_domain"), &m, |b, m| {
        b.iter(|| black_box(m.scan_positions(&pred)).count())
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rle_scan, bench_dict_eq_scan, bench_dict_range_scan
}
criterion_main!(benches);
