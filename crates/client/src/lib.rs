//! matstrat-client: the thin client half of the wire protocol.
//!
//! A [`Client`] wraps one `TcpStream`, sends one dialect statement per
//! line, and parses the newline-framed response
//! (`matstrat_net::protocol`) into a [`Response`]: either [`Rows`]
//! (columns, row data, and the `OK` trailer's deterministic
//! measurements) or [`WireError`] (the server's rendered error,
//! caret snippet and all, verbatim).
//!
//! Every parsed response also keeps its **raw bytes** exactly as they
//! came off the socket — `tests/net_diff.rs` compares those bytes to a
//! locally rendered serial oracle, so "byte-identical over the wire"
//! is literal, not a paraphrase.
//!
//! The client is deliberately dumb: no pooling, no retries, no
//! pipelining. It exists for tests, benches, and `matstrat serve
//! --self-check`; a real application would wrap its own transport
//! around the protocol module.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use matstrat_net::protocol;

/// A successful response: header, rows, and the `OK` trailer fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rows {
    /// Column names from the header line.
    pub columns: Vec<String>,
    /// Row-major values, `columns.len()` per row.
    pub data: Vec<i64>,
    /// The trailer's `rows_out` (rows affected, for writes).
    pub rows_out: u64,
    /// The trailer's `reads=` — this query's own cold block reads.
    pub block_reads: u64,
    /// The response exactly as it crossed the wire.
    pub raw: Vec<u8>,
}

impl Rows {
    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.columns.len()).unwrap_or(0)
    }
}

/// An `ERR` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The server's message, newline-joined, exactly as rendered on
    /// the far side (for a compile failure: the three-line caret
    /// snippet).
    pub message: String,
    /// The response exactly as it crossed the wire.
    pub raw: Vec<u8>,
}

/// One response off the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `ROWS …` — the statement executed.
    Rows(Rows),
    /// `ERR …` — the statement was rejected (connection stays open).
    Err(WireError),
}

impl Response {
    /// The raw bytes of the response, whichever shape it took.
    pub fn raw(&self) -> &[u8] {
        match self {
            Response::Rows(r) => &r.raw,
            Response::Err(e) => &e.raw,
        }
    }

    /// The rows, or panic with the server's error — test ergonomics.
    pub fn expect_rows(self, context: &str) -> Rows {
        match self {
            Response::Rows(r) => r,
            Response::Err(e) => panic!("{context}: server said\n{}", e.message),
        }
    }
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running `NetServer`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        Client::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Bound how long [`Client::query`] may wait on the server.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Send one statement (the newline is added here; `sql` itself
    /// must be a single line) and read its response.
    pub fn query(&mut self, sql: &str) -> io::Result<Response> {
        debug_assert!(!sql.contains('\n'), "the protocol is newline-framed");
        self.writer.write_all(sql.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_response()
    }

    /// Read one response off the socket (after a raw `send` by other
    /// means, or to drain a pipelined burst).
    pub fn read_response(&mut self) -> io::Result<Response> {
        let mut raw = Vec::new();
        let status = self.line(&mut raw)?;
        if let Some(nlines) = protocol::parse_err_status(&status) {
            let mut lines = Vec::with_capacity(nlines);
            for _ in 0..nlines {
                lines.push(self.line(&mut raw)?);
            }
            return Ok(Response::Err(WireError {
                message: lines.join("\n"),
                raw,
            }));
        }
        let Some(ncols) = protocol::parse_rows_status(&status) else {
            return Err(malformed(format!("unexpected status line: {status:?}")));
        };
        let header = self.line(&mut raw)?;
        let columns: Vec<String> = header.split('\t').map(str::to_string).collect();
        if columns.len() != ncols {
            return Err(malformed(format!(
                "status promised {ncols} columns, header has {}",
                columns.len()
            )));
        }
        let mut data: Vec<i64> = Vec::new();
        loop {
            let line = self.line(&mut raw)?;
            if let Some((rows_out, block_reads)) = protocol::parse_ok_trailer(&line) {
                return Ok(Response::Rows(Rows {
                    columns,
                    data,
                    rows_out,
                    block_reads,
                    raw,
                }));
            }
            for field in line.split('\t') {
                data.push(
                    field
                        .parse()
                        .map_err(|_| malformed(format!("bad value {field:?}")))?,
                );
            }
        }
    }

    /// Read one `\n`-terminated line, appending the bytes (newline
    /// included) to `raw` and returning the text without it.
    fn line(&mut self, raw: &mut Vec<u8>) -> io::Result<String> {
        let start = raw.len();
        let n = self.reader.read_until(b'\n', raw)?;
        if n == 0 || raw.last() != Some(&b'\n') {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        let text = std::str::from_utf8(&raw[start..raw.len() - 1])
            .map_err(|_| malformed("response is not valid UTF-8".into()))?;
        Ok(text.to_string())
    }
}

fn malformed(msg: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed response: {msg}"),
    )
}
