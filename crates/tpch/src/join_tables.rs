//! Orders and customer tables for the §4.3 join experiment.

use matstrat_common::{Result, TableId, Value};
use matstrat_core::Database;
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{TpchConfig, SHIPDATE_DAYS};

/// Base orders cardinality at scale 1.
pub const ORDERS_BASE_ROWS: u64 = 1_500_000;
/// Base customer cardinality at scale 1.
pub const CUSTOMER_BASE_ROWS: u64 = 150_000;
/// Number of TPC-H nations.
pub const NATIONS: i64 = 25;

/// Generated orders columns, sorted by order date.
#[derive(Debug, Clone)]
pub struct OrdersData {
    /// Order date (day number), the sort key.
    pub orderdate: Vec<Value>,
    /// Foreign key into customer (uniform over customers).
    pub custkey: Vec<Value>,
    /// The paper outputs "Orders.shipdate"; modeled as orderdate + lag.
    pub shipdate: Vec<Value>,
}

/// Generated customer columns, sorted by custkey (the primary key).
#[derive(Debug, Clone)]
pub struct CustomerData {
    /// Primary key `0..n`.
    pub custkey: Vec<Value>,
    /// Nation code `0..25`.
    pub nationcode: Vec<Value>,
}

/// Nation dimension, sorted by nationkey: the snowflake hop behind
/// customer (`customer.nationcode → nation.nationkey`).
#[derive(Debug, Clone)]
pub struct NationData {
    /// Primary key `0..NATIONS`.
    pub nationkey: Vec<Value>,
    /// TPC-H region code `0..5`.
    pub regionkey: Vec<Value>,
}

/// Date dimension, one row per day of the generator's calendar: the
/// second star edge out of orders (`orders.orderdate → date.datekey`).
#[derive(Debug, Clone)]
pub struct DateData {
    /// Primary key `0..SHIPDATE_DAYS`.
    pub datekey: Vec<Value>,
    /// Month number (30-day months keep it simple).
    pub month: Vec<Value>,
}

/// The join tables plus loader helpers: the §4.3 pair (orders ⋈
/// customer) extended with the nation and date dimensions that turn it
/// into a proper multi-way star/snowflake workload.
#[derive(Debug, Clone)]
pub struct JoinTables {
    /// The outer (probe) table.
    pub orders: OrdersData,
    /// The inner (build) table.
    pub customer: CustomerData,
    /// Snowflake dimension behind customer.
    pub nation: NationData,
    /// Star dimension on order date.
    pub date: DateData,
}

/// Column indices for the loaded orders projection.
pub mod orders_cols {
    /// ORDERDATE column index.
    pub const ORDERDATE: usize = 0;
    /// CUSTKEY column index.
    pub const CUSTKEY: usize = 1;
    /// SHIPDATE column index.
    pub const SHIPDATE: usize = 2;
}

/// Column indices for the loaded customer projection.
pub mod customer_cols {
    /// CUSTKEY column index.
    pub const CUSTKEY: usize = 0;
    /// NATIONCODE column index.
    pub const NATIONCODE: usize = 1;
}

/// Column indices for the loaded nation projection.
pub mod nation_cols {
    /// NATIONKEY column index.
    pub const NATIONKEY: usize = 0;
    /// REGIONKEY column index.
    pub const REGIONKEY: usize = 1;
}

/// Column indices for the loaded date projection.
pub mod date_cols {
    /// DATEKEY column index.
    pub const DATEKEY: usize = 0;
    /// MONTH column index.
    pub const MONTH: usize = 1;
}

impl JoinTables {
    /// Generate both tables for `cfg`.
    pub fn generate(cfg: TpchConfig) -> JoinTables {
        let n_orders = cfg.rows(ORDERS_BASE_ROWS);
        let n_cust = cfg.rows(CUSTOMER_BASE_ROWS);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);

        let mut orders: Vec<(Value, Value, Value)> = (0..n_orders)
            .map(|_| {
                let od = rng.gen_range(0..SHIPDATE_DAYS - 121);
                let ck = rng.gen_range(0..n_cust as Value);
                let sd = od + rng.gen_range(1..=121);
                (od, ck, sd)
            })
            .collect();
        orders.sort_unstable_by_key(|&(od, _, _)| od);

        let customer = CustomerData {
            custkey: (0..n_cust as Value).collect(),
            nationcode: (0..n_cust).map(|_| rng.gen_range(0..NATIONS)).collect(),
        };
        let nation = NationData {
            nationkey: (0..NATIONS).collect(),
            regionkey: (0..NATIONS).map(|k| k % 5).collect(),
        };
        let date = DateData {
            datekey: (0..SHIPDATE_DAYS).collect(),
            month: (0..SHIPDATE_DAYS).map(|d| d / 30).collect(),
        };
        JoinTables {
            orders: OrdersData {
                orderdate: orders.iter().map(|o| o.0).collect(),
                custkey: orders.iter().map(|o| o.1).collect(),
                shipdate: orders.iter().map(|o| o.2).collect(),
            },
            customer,
            nation,
            date,
        }
    }

    /// Number of customers (the custkey domain size).
    pub fn num_customers(&self) -> usize {
        self.customer.custkey.len()
    }

    /// The custkey cutoff `X` such that `Orders.custkey < X` has
    /// selectivity `sf` (custkey is uniform, so this is exact in
    /// expectation).
    pub fn custkey_cutoff(&self, sf: f64) -> Value {
        (self.num_customers() as f64 * sf.clamp(0.0, 1.0)) as Value
    }

    /// Load the orders projection (sorted by orderdate).
    pub fn load_orders(&self, db: &Database, name: &str) -> Result<TableId> {
        let spec = ProjectionSpec::new(name)
            .column("orderdate", EncodingKind::Rle, SortOrder::Primary)
            .column("custkey", EncodingKind::Plain, SortOrder::None)
            .column("shipdate", EncodingKind::Plain, SortOrder::None);
        db.load_projection(
            &spec,
            &[
                &self.orders.orderdate,
                &self.orders.custkey,
                &self.orders.shipdate,
            ],
        )
    }

    /// Load the customer projection (sorted by custkey).
    pub fn load_customer(&self, db: &Database, name: &str) -> Result<TableId> {
        let spec = ProjectionSpec::new(name)
            .column("custkey", EncodingKind::Plain, SortOrder::Primary)
            .column("nationcode", EncodingKind::Plain, SortOrder::None);
        db.load_projection(&spec, &[&self.customer.custkey, &self.customer.nationcode])
    }

    /// Load the nation projection (sorted by nationkey).
    pub fn load_nation(&self, db: &Database, name: &str) -> Result<TableId> {
        let spec = ProjectionSpec::new(name)
            .column("nationkey", EncodingKind::Plain, SortOrder::Primary)
            .column("regionkey", EncodingKind::Plain, SortOrder::None);
        db.load_projection(&spec, &[&self.nation.nationkey, &self.nation.regionkey])
    }

    /// Load the date projection (sorted by datekey).
    pub fn load_date(&self, db: &Database, name: &str) -> Result<TableId> {
        let spec = ProjectionSpec::new(name)
            .column("datekey", EncodingKind::Plain, SortOrder::Primary)
            .column("month", EncodingKind::Rle, SortOrder::None);
        db.load_projection(&spec, &[&self.date.datekey, &self.date.month])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::Predicate;
    use matstrat_core::{InnerStrategy, JoinSpec, JoinTreeSpec, QueryPlan, Statement};

    fn run_join(
        db: &Database,
        spec: &JoinSpec,
        inner: InnerStrategy,
    ) -> matstrat_common::Result<matstrat_core::QueryResult> {
        Ok(db
            .execute_planned(
                &Statement::JoinTree(JoinTreeSpec::new(vec![spec.clone()])),
                &QueryPlan::forced_tree(vec![0], vec![inner]),
                &db.exec_options(),
            )?
            .rows)
    }

    fn cfg() -> TpchConfig {
        TpchConfig {
            scale: 0.01,
            seed: 3,
        }
    }

    #[test]
    fn cardinalities_scale() {
        let t = JoinTables::generate(cfg());
        assert_eq!(t.orders.custkey.len(), 15_000);
        assert_eq!(t.num_customers(), 1_500);
        assert!(t.orders.custkey.iter().all(|&k| (0..1_500).contains(&k)));
        assert!(t
            .customer
            .nationcode
            .iter()
            .all(|&v| (0..NATIONS).contains(&v)));
    }

    #[test]
    fn custkey_is_dense_primary_key() {
        let t = JoinTables::generate(cfg());
        for (i, &k) in t.customer.custkey.iter().enumerate() {
            assert_eq!(k, i as Value);
        }
    }

    #[test]
    fn deterministic() {
        let a = JoinTables::generate(cfg());
        let b = JoinTables::generate(cfg());
        assert_eq!(a.orders.custkey, b.orders.custkey);
        assert_eq!(a.customer.nationcode, b.customer.nationcode);
    }

    #[test]
    fn cutoff_selectivity() {
        let t = JoinTables::generate(cfg());
        let x = t.custkey_cutoff(0.3);
        let sel = t.orders.custkey.iter().filter(|&&k| k < x).count() as f64
            / t.orders.custkey.len() as f64;
        assert!((sel - 0.3).abs() < 0.03, "sel = {sel}");
    }

    #[test]
    fn fk_pk_join_produces_one_row_per_matching_order() {
        let t = JoinTables::generate(cfg());
        let db = Database::in_memory();
        let orders = t.load_orders(&db, "orders").unwrap();
        let customer = t.load_customer(&db, "customer").unwrap();
        let x = t.custkey_cutoff(0.5);
        let spec = JoinSpec {
            left: orders,
            right: customer,
            left_key: orders_cols::CUSTKEY,
            right_key: customer_cols::CUSTKEY,
            left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
            right_filter: None,
            left_output: vec![orders_cols::SHIPDATE],
            right_output: vec![customer_cols::NATIONCODE],
        };
        let expected = t.orders.custkey.iter().filter(|&&k| k < x).count();
        for inner in InnerStrategy::ALL {
            let r = run_join(&db, &spec, inner).unwrap();
            assert_eq!(r.num_rows(), expected, "{inner:?}");
        }
        // Spot-check values against the generator.
        let r = run_join(&db, &spec, InnerStrategy::Materialized).unwrap();
        let rows = r.sorted_rows();
        let mut reference: Vec<Vec<Value>> = t
            .orders
            .custkey
            .iter()
            .zip(&t.orders.shipdate)
            .filter(|(&k, _)| k < x)
            .map(|(&k, &sd)| vec![sd, t.customer.nationcode[k as usize]])
            .collect();
        reference.sort_unstable();
        assert_eq!(rows, reference);
    }

    #[test]
    fn dimensions_are_dense_fk_targets() {
        let t = JoinTables::generate(cfg());
        // nation: dense PK covering every customer nationcode.
        assert_eq!(t.nation.nationkey.len(), NATIONS as usize);
        for (i, &k) in t.nation.nationkey.iter().enumerate() {
            assert_eq!(k, i as Value);
        }
        assert!(t.nation.regionkey.iter().all(|&r| (0..5).contains(&r)));
        // date: dense PK covering every orderdate.
        assert_eq!(t.date.datekey.len(), crate::SHIPDATE_DAYS as usize);
        assert!(t
            .orders
            .orderdate
            .iter()
            .all(|&d| (0..crate::SHIPDATE_DAYS).contains(&d)));
    }

    #[test]
    fn star_snowflake_tree_joins_end_to_end() {
        use matstrat_core::JoinTreeSpec;
        let t = JoinTables::generate(cfg());
        let db = Database::in_memory();
        let orders = t.load_orders(&db, "orders").unwrap();
        let customer = t.load_customer(&db, "customer").unwrap();
        let nation = t.load_nation(&db, "nation").unwrap();
        let date = t.load_date(&db, "date").unwrap();
        let x = t.custkey_cutoff(0.4);
        let spec = JoinTreeSpec::new(vec![
            JoinSpec {
                left: orders,
                right: customer,
                left_key: orders_cols::CUSTKEY,
                right_key: customer_cols::CUSTKEY,
                left_filter: Some((orders_cols::CUSTKEY, Predicate::lt(x))),
                right_filter: None,
                left_output: vec![orders_cols::SHIPDATE],
                right_output: vec![customer_cols::NATIONCODE],
            },
            JoinSpec {
                left: orders,
                right: date,
                left_key: orders_cols::ORDERDATE,
                right_key: date_cols::DATEKEY,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![date_cols::MONTH],
            },
            JoinSpec {
                left: customer,
                right: nation,
                left_key: customer_cols::NATIONCODE,
                right_key: nation_cols::NATIONKEY,
                left_filter: None,
                right_filter: None,
                left_output: vec![],
                right_output: vec![nation_cols::REGIONKEY],
            },
        ]);
        let expected = t.orders.custkey.iter().filter(|&&k| k < x).count();
        let out = db.execute(&Statement::JoinTree(spec)).unwrap();
        let (result, stats) = (&out.rows, &out.stats);
        assert_eq!(result.num_rows(), expected, "{}", out.choice.describe());
        assert_eq!(stats.rows_out, expected as u64);
        assert_eq!(stats.builds, 3);
        // Spot-check one row end to end against the generators.
        let row = result.row(0);
        let month = row[2];
        let region = row[3];
        assert!(t.date.month.contains(&month));
        assert!((0..5).contains(&region));
    }
}
