//! The lineitem projection generator.

use matstrat_common::{Result, TableId, Value};
use matstrat_core::Database;
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{TpchConfig, SHIPDATE_DAYS};

/// Base lineitem cardinality at scale 1.
pub const LINEITEM_BASE_ROWS: u64 = 6_000_000;

/// Generated lineitem columns, sorted by
/// (RETURNFLAG, SHIPDATE, LINENUM) — the paper's projection order.
#[derive(Debug, Clone)]
pub struct LineitemData {
    /// RETURNFLAG codes (A=0, N=1, R=2). Primary sort key.
    pub returnflag: Vec<Value>,
    /// SHIPDATE day numbers in `0..SHIPDATE_DAYS`. Secondary sort key.
    pub shipdate: Vec<Value>,
    /// LINENUM in `1..=7`. Tertiary sort key.
    pub linenum: Vec<Value>,
    /// QUANTITY in `1..=50`. Unsorted payload.
    pub quantity: Vec<Value>,
}

impl LineitemData {
    /// Row count.
    pub fn num_rows(&self) -> usize {
        self.returnflag.len()
    }

    /// The SHIPDATE cutoff `X` such that `shipdate < X` has selectivity
    /// closest to `sf` on this data — used to sweep the figures' x-axis
    /// with *actual* (not assumed-uniform) selectivities.
    pub fn shipdate_cutoff(&self, sf: f64) -> Value {
        let mut sorted = self.shipdate.clone();
        sorted.sort_unstable();
        let k = ((sorted.len() as f64) * sf.clamp(0.0, 1.0)) as usize;
        if k >= sorted.len() {
            sorted.last().copied().unwrap_or(0) + 1
        } else {
            sorted[k]
        }
    }

    /// Exact selectivity of `shipdate < x` on this data.
    pub fn shipdate_selectivity(&self, x: Value) -> f64 {
        if self.shipdate.is_empty() {
            return 0.0;
        }
        self.shipdate.iter().filter(|&&d| d < x).count() as f64 / self.shipdate.len() as f64
    }

    /// Load as a C-Store projection. RETURNFLAG and SHIPDATE are always
    /// RLE (as in every experiment of the paper); `linenum_encoding`
    /// varies per figure panel; QUANTITY is uncompressed.
    pub fn load(
        &self,
        db: &Database,
        name: &str,
        linenum_encoding: EncodingKind,
    ) -> Result<TableId> {
        let spec = ProjectionSpec::new(name)
            .column("returnflag", EncodingKind::Rle, SortOrder::Primary)
            .column("shipdate", EncodingKind::Rle, SortOrder::Secondary)
            .column("linenum", linenum_encoding, SortOrder::Tertiary)
            .column("quantity", EncodingKind::Plain, SortOrder::None);
        db.load_projection(
            &spec,
            &[
                &self.returnflag,
                &self.shipdate,
                &self.linenum,
                &self.quantity,
            ],
        )
    }
}

/// Column indices of the lineitem projection loaded by
/// [`LineitemData::load`].
pub mod cols {
    /// RETURNFLAG column index.
    pub const RETURNFLAG: usize = 0;
    /// SHIPDATE column index.
    pub const SHIPDATE: usize = 1;
    /// LINENUM column index.
    pub const LINENUM: usize = 2;
    /// QUANTITY column index.
    pub const QUANTITY: usize = 3;
}

/// Seeded lineitem generator.
#[derive(Debug, Clone)]
pub struct LineitemGen {
    cfg: TpchConfig,
}

impl LineitemGen {
    /// Generator for the given configuration.
    pub fn new(cfg: TpchConfig) -> LineitemGen {
        LineitemGen { cfg }
    }

    /// Generate the sorted projection data.
    pub fn generate(&self) -> LineitemData {
        let n = self.cfg.rows(LINEITEM_BASE_ROWS);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut rows: Vec<(Value, Value, Value, Value)> = Vec::with_capacity(n);
        for _ in 0..n {
            // Order date uniform over the domain minus max shipping lag.
            let orderdate = rng.gen_range(0..SHIPDATE_DAYS - 121);
            let shipdate = orderdate + rng.gen_range(1..=121);
            // Line k of an order exists iff the order has >= k lines and
            // order sizes are uniform on 1..=7, so P(linenum = k) ∝ 8-k.
            let linenum = sample_linenum(&mut rng);
            // RETURNFLAG: items received before the cutoff are returned
            // ('R') or accepted ('A') evenly; later ones are 'N'.
            let returnflag = if rng.gen_bool(0.5) {
                1 // N
            } else if rng.gen_bool(0.5) {
                0 // A
            } else {
                2 // R
            };
            let quantity = rng.gen_range(1..=50);
            rows.push((returnflag, shipdate, linenum, quantity));
        }
        rows.sort_unstable_by_key(|&(rf, sd, ln, _)| (rf, sd, ln));
        LineitemData {
            returnflag: rows.iter().map(|r| r.0).collect(),
            shipdate: rows.iter().map(|r| r.1).collect(),
            linenum: rows.iter().map(|r| r.2).collect(),
            quantity: rows.iter().map(|r| r.3).collect(),
        }
    }
}

/// Sample LINENUM with P(k) ∝ 8−k for k in 1..=7 (weights 7..1, total 28).
fn sample_linenum(rng: &mut StdRng) -> Value {
    let t = rng.gen_range(0..28);
    // Cumulative weights: 7, 13, 18, 22, 25, 27, 28.
    match t {
        0..=6 => 1,
        7..=12 => 2,
        13..=17 => 3,
        18..=21 => 4,
        22..=24 => 5,
        25..=26 => 6,
        _ => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LineitemData {
        LineitemGen::new(TpchConfig {
            scale: 0.01,
            seed: 7,
        })
        .generate()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.shipdate, b.shipdate);
        assert_eq!(a.quantity, b.quantity);
        let c = LineitemGen::new(TpchConfig {
            scale: 0.01,
            seed: 8,
        })
        .generate();
        assert_ne!(a.shipdate, c.shipdate, "different seed, different data");
    }

    #[test]
    fn domains_match_tpch() {
        let d = small();
        assert_eq!(d.num_rows(), 60_000);
        assert!(d.returnflag.iter().all(|&v| (0..=2).contains(&v)));
        assert!(d.shipdate.iter().all(|&v| (0..SHIPDATE_DAYS).contains(&v)));
        assert!(d.linenum.iter().all(|&v| (1..=7).contains(&v)));
        assert!(d.quantity.iter().all(|&v| (1..=50).contains(&v)));
    }

    #[test]
    fn sorted_by_projection_key() {
        let d = small();
        for i in 1..d.num_rows() {
            let prev = (d.returnflag[i - 1], d.shipdate[i - 1], d.linenum[i - 1]);
            let cur = (d.returnflag[i], d.shipdate[i], d.linenum[i]);
            assert!(prev <= cur, "row {i} out of order");
        }
    }

    #[test]
    fn linenum_distribution_is_decreasing() {
        let d = small();
        let mut counts = [0usize; 8];
        for &l in &d.linenum {
            counts[l as usize] += 1;
        }
        for k in 1..7 {
            assert!(
                counts[k] > counts[k + 1],
                "P(linenum={k}) should exceed P(linenum={})",
                k + 1
            );
        }
        // linenum < 7 ≈ 27/28 ≈ 96 % — the paper's fixed Y=7 predicate.
        let sel = d.linenum.iter().filter(|&&l| l < 7).count() as f64 / d.num_rows() as f64;
        assert!((sel - 27.0 / 28.0).abs() < 0.01, "sel = {sel}");
    }

    #[test]
    fn returnflag_proportions() {
        let d = small();
        let n = d.num_rows() as f64;
        let frac = |code: Value| d.returnflag.iter().filter(|&&v| v == code).count() as f64 / n;
        assert!((frac(1) - 0.5).abs() < 0.02, "N ≈ 50%");
        assert!((frac(0) - 0.25).abs() < 0.02, "A ≈ 25%");
        assert!((frac(2) - 0.25).abs() < 0.02, "R ≈ 25%");
    }

    #[test]
    fn shipdate_cutoff_hits_requested_selectivity() {
        let d = small();
        for sf in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let x = d.shipdate_cutoff(sf);
            let actual = d.shipdate_selectivity(x);
            assert!(
                (actual - sf).abs() < 0.02,
                "requested {sf}, got {actual} (cutoff {x})"
            );
        }
    }

    #[test]
    fn loads_into_database() {
        let d = small();
        let db = Database::in_memory();
        let id = d.load(&db, "lineitem", EncodingKind::Rle).unwrap();
        let proj = db.store().projection(id).unwrap();
        assert_eq!(proj.num_rows as usize, d.num_rows());
        assert_eq!(proj.columns[cols::SHIPDATE].name, "shipdate");
        // RLE on the sorted prefix keys compresses massively.
        assert!(proj.columns[cols::RETURNFLAG].stats.num_runs <= 3);
        let sd = &proj.columns[cols::SHIPDATE];
        assert!(sd.stats.avg_run_len() > 5.0, "shipdate runs should be long");
    }
}
