//! TPC-H-style workload generation (§4 of the paper).
//!
//! The paper's experiments run over a C-Store projection of TPC-H
//! scale-10 lineitem — (RETURNFLAG, SHIPDATE, LINENUM, QUANTITY), sorted
//! by RETURNFLAG, then SHIPDATE, then LINENUM — plus the orders and
//! customer tables for the join study. Shipping the real `dbgen` is
//! unnecessary: the experiments depend only on the value *domains*, the
//! *sort order*, and rough uniformity, all of which this seeded
//! generator reproduces:
//!
//! | attribute | domain | distribution |
//! |---|---|---|
//! | RETURNFLAG | {A=0, N=1, R=2} | ~25/50/25 % (receipt-date split) |
//! | SHIPDATE | day 0..2526 (1992-01-02 … 1998-12-01) | orderdate + U(1,121) |
//! | LINENUM | 1..=7 | P(k) ∝ 8−k (line k exists when the order has ≥ k lines) |
//! | QUANTITY | 1..=50 | uniform |
//!
//! Row counts scale linearly with the scale factor, as in TPC-H:
//! lineitem 6 M × SF, orders 1.5 M × SF, customer 150 K × SF.

pub mod join_tables;
pub mod lineitem;

pub use join_tables::{CustomerData, JoinTables, OrdersData};
pub use lineitem::{LineitemData, LineitemGen};

/// Number of distinct SHIPDATE values (days in the TPC-H date domain).
pub const SHIPDATE_DAYS: i64 = 2526;

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchConfig {
    /// TPC-H scale factor. The paper uses 10 (60 M lineitem rows);
    /// laptop-scale harness runs use 0.01–1.
    pub scale: f64,
    /// RNG seed; identical seeds produce identical data.
    pub seed: u64,
}

impl TpchConfig {
    /// Scale `base` rows by the scale factor (at least 1 row).
    pub fn rows(&self, base: u64) -> usize {
        ((base as f64 * self.scale) as usize).max(1)
    }
}

impl Default for TpchConfig {
    fn default() -> TpchConfig {
        TpchConfig {
            scale: 0.1,
            seed: 0xC57A_11E5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_scale_linearly() {
        let c = TpchConfig {
            scale: 0.5,
            seed: 1,
        };
        assert_eq!(c.rows(6_000_000), 3_000_000);
        let tiny = TpchConfig {
            scale: 1e-9,
            seed: 1,
        };
        assert_eq!(tiny.rows(10), 1, "never zero rows");
    }
}
