//! Property tests for the compressed-execution contract: translating a
//! predicate into the code domain (`Predicate::to_code_domain`) and
//! evaluating it over dictionary codes must agree exactly with evaluating
//! the original predicate over decoded values — for **every** predicate
//! constructor, for constants absent from the dictionary, and through
//! every codec's `scan_positions` (the Dict codec scans codes only, the
//! others scan runs / bit-strings / raw values).

use matstrat_common::{Predicate, Value, Width};
use matstrat_storage::{ColumnFileReader, ColumnFileWriter, DictBlock, EncodingKind, MemDisk};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

const ENCODINGS: [EncodingKind; 4] = [
    EncodingKind::Plain,
    EncodingKind::Rle,
    EncodingKind::BitVec,
    EncodingKind::Dict,
];

/// Every public constructor. Constants range wider than the data domain
/// so eq/ne/between routinely name values absent from the dictionary.
fn arb_pred() -> impl PropStrategy<Value = Predicate> {
    (-30i64..30, 0i64..15, 0usize..8).prop_map(|(x, span, op)| match op {
        0 => Predicate::lt(x),
        1 => Predicate::le(x),
        2 => Predicate::gt(x),
        3 => Predicate::ge(x),
        4 => Predicate::eq(x),
        5 => Predicate::ne(x),
        6 => Predicate::between(x, x + span),
        _ => Predicate::always_true(),
    })
}

fn arb_values() -> impl PropStrategy<Value = Vec<Value>> {
    prop::collection::vec((-20i64..20, 1usize..12), 1..60).prop_map(|runs| {
        runs.into_iter()
            .flat_map(|(v, n)| std::iter::repeat_n(v, n))
            .collect()
    })
}

fn write_and_open(disk: &MemDisk, enc: EncodingKind, values: &[Value]) -> ColumnFileReader {
    let mut w = ColumnFileWriter::create(disk, "c.col", enc, Width::W2).unwrap();
    w.push_all(values).unwrap();
    w.finish().unwrap();
    ColumnFileReader::open(disk, "c.col").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The translation itself: over any sorted dictionary, a code
    /// matches the translated predicate iff its decoded value matches
    /// the original.
    #[test]
    fn code_domain_matches_value_domain(values in arb_values(), pred in arb_pred()) {
        let mut dict: Vec<Value> = values.clone();
        dict.sort_unstable();
        dict.dedup();
        let cp = pred.to_code_domain(&dict);
        for (code, &v) in dict.iter().enumerate() {
            prop_assert_eq!(
                cp.matches_code(code as u32),
                pred.matches(v),
                "code {} (value {}) under {:?} -> {:?}",
                code, v, pred, cp
            );
        }
        // The shortcut classifications are truthful too.
        if cp.matches_nothing() {
            prop_assert!(dict.iter().all(|&v| !pred.matches(v)));
        }
        if cp.matches_everything() {
            prop_assert!(dict.iter().all(|&v| pred.matches(v)));
        }
    }

    /// The same contract end-to-end: every codec's position scan (Dict
    /// evaluates the translated predicate over codes, never decoding)
    /// returns exactly the positions a decoded filter would.
    #[test]
    fn every_codec_scan_agrees_with_decoded_filter(
        values in arb_values(),
        pred in arb_pred(),
    ) {
        let expected: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(**v))
            .map(|(i, _)| i as u64)
            .collect();
        for enc in ENCODINGS {
            let disk = MemDisk::new();
            let r = write_and_open(&disk, enc, &values);
            let mut got = Vec::new();
            for i in 0..r.num_blocks() {
                got.extend(r.fetch_block(&disk, i).unwrap().scan_positions(&pred).to_vec());
            }
            prop_assert_eq!(&got, &expected, "{} {:?}", enc, pred);
        }
    }

    /// Blocks encoded against a column-wide shared dictionary — the
    /// dictionary typically holds values the block never stores — scan
    /// to the same positions as a decoded filter.
    #[test]
    fn shared_dict_block_scan_agrees_with_decoded_filter(
        values in arb_values(),
        pred in arb_pred(),
    ) {
        let mut dict: Vec<Value> = values.clone();
        // Widen the dictionary beyond the block's own values so the
        // translation sees entries with no local occurrences.
        dict.extend([-100, 100]);
        dict.sort_unstable();
        dict.dedup();
        let b = DictBlock::from_values_shared(0, &values, &dict).unwrap();
        let expected: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(**v))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(b.scan_positions(&pred).to_vec(), expected, "{:?}", pred);
    }
}
