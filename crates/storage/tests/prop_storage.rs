//! Property tests for the storage layer: whatever the data, whatever the
//! encoding, a column written through the block/file machinery reads
//! back exactly, every access path agrees with the raw data, and the
//! write-time statistics are truthful.

use matstrat_common::Width;
use matstrat_common::{PosRange, Predicate, Value};
use matstrat_poslist::PosList;
use matstrat_storage::{ColumnFileReader, ColumnFileWriter, EncodingKind, MemDisk};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

const ENCODINGS: [EncodingKind; 4] = [
    EncodingKind::Plain,
    EncodingKind::Rle,
    EncodingKind::BitVec,
    EncodingKind::Dict,
];

fn arb_values() -> impl PropStrategy<Value = Vec<Value>> {
    // Runs + noise: realistic for semi-sorted projections, and exercises
    // every codec's run/dictionary handling.
    prop::collection::vec((-20i64..20, 1usize..20), 0..60).prop_map(|runs| {
        runs.into_iter()
            .flat_map(|(v, n)| std::iter::repeat_n(v, n))
            .collect()
    })
}

fn arb_pred() -> impl PropStrategy<Value = Predicate> {
    (-25i64..25, 0usize..6).prop_map(|(x, op)| match op {
        0 => Predicate::lt(x),
        1 => Predicate::le(x),
        2 => Predicate::gt(x),
        3 => Predicate::eq(x),
        4 => Predicate::ne(x),
        _ => Predicate::between(x, x + 10),
    })
}

fn write_and_open(disk: &MemDisk, enc: EncodingKind, values: &[Value]) -> ColumnFileReader {
    let mut w = ColumnFileWriter::create(disk, "c.col", enc, Width::W2).unwrap();
    w.push_all(values).unwrap();
    let stats = w.finish().unwrap();
    assert_eq!(stats.num_rows as usize, values.len());
    ColumnFileReader::open(disk, "c.col").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decode_roundtrip_every_encoding(values in arb_values()) {
        for enc in ENCODINGS {
            let disk = MemDisk::new();
            let r = write_and_open(&disk, enc, &values);
            let mut decoded = Vec::new();
            for i in 0..r.num_blocks() {
                r.fetch_block(&disk, i).unwrap().decode_all(&mut decoded);
            }
            prop_assert_eq!(&decoded, &values, "{}", enc);
        }
    }

    #[test]
    fn scan_equals_filter_every_encoding(values in arb_values(), pred in arb_pred()) {
        let expected: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(**v))
            .map(|(i, _)| i as u64)
            .collect();
        for enc in ENCODINGS {
            let disk = MemDisk::new();
            let r = write_and_open(&disk, enc, &values);
            let mut got = Vec::new();
            for i in 0..r.num_blocks() {
                let block = r.fetch_block(&disk, i).unwrap();
                got.extend(block.scan_positions(&pred).to_vec());
            }
            prop_assert_eq!(&got, &expected, "{} {:?}", enc, pred);
        }
    }

    #[test]
    fn stats_are_truthful(values in arb_values()) {
        use std::collections::HashSet;
        let disk = MemDisk::new();
        let r = write_and_open(&disk, EncodingKind::Rle, &values);
        let s = r.stats();
        if values.is_empty() {
            prop_assert_eq!(s.distinct, 0);
        } else {
            prop_assert_eq!(s.min, *values.iter().min().unwrap());
            prop_assert_eq!(s.max, *values.iter().max().unwrap());
            let distinct: HashSet<_> = values.iter().collect();
            prop_assert_eq!(s.distinct as usize, distinct.len());
            let runs = 1 + values.windows(2).filter(|w| w[0] != w[1]).count();
            prop_assert_eq!(s.num_runs as usize, runs);
        }
    }

    #[test]
    fn value_at_agrees_with_raw(values in arb_values(), idx in 0usize..1000) {
        prop_assume!(!values.is_empty());
        let idx = idx % values.len();
        for enc in ENCODINGS {
            let disk = MemDisk::new();
            let r = write_and_open(&disk, enc, &values);
            let b = r.block_for_pos(idx as u64).unwrap();
            let block = r.fetch_block(&disk, b).unwrap();
            prop_assert_eq!(block.value_at(idx as u64).unwrap(), values[idx], "{}", enc);
        }
    }

    #[test]
    fn windowed_scan_equals_clipped_scan(
        values in arb_values(),
        pred in arb_pred(),
        lo in 0u64..500,
        len in 0u64..500,
    ) {
        prop_assume!(!values.is_empty());
        let n = values.len() as u64;
        let window = PosRange::new(lo.min(n), (lo + len).min(n));
        for enc in ENCODINGS {
            let disk = MemDisk::new();
            let r = write_and_open(&disk, enc, &values);
            let mut got: Vec<u64> = Vec::new();
            let mut expected: Vec<u64> = Vec::new();
            for i in 0..r.num_blocks() {
                let block = r.fetch_block(&disk, i).unwrap();
                got.extend(block.scan_positions_in(&pred, window).to_vec());
                expected.extend(block.scan_positions(&pred).clip(window).to_vec());
            }
            prop_assert_eq!(&got, &expected, "{} {:?} {}", enc, pred, window);
        }
    }

    #[test]
    fn gather_equals_index_where_supported(values in arb_values(), seed in 0u64..1000) {
        prop_assume!(values.len() >= 4);
        let n = values.len() as u64;
        // A deterministic pseudo-random subset of positions.
        let positions: Vec<u64> = (0..n).filter(|p| (p * 7 + seed) % 3 == 0).collect();
        let expected: Vec<Value> = positions.iter().map(|&p| values[p as usize]).collect();
        let pl = PosList::from_positions(positions);
        for enc in ENCODINGS {
            if enc == EncodingKind::BitVec {
                continue; // DS3 unsupported, verified elsewhere
            }
            let disk = MemDisk::new();
            let r = write_and_open(&disk, enc, &values);
            let mut got = Vec::new();
            for i in 0..r.num_blocks() {
                let block = r.fetch_block(&disk, i).unwrap();
                let clipped = pl.clip(block.covering());
                block.gather(&clipped.to_vec(), &mut got).unwrap();
            }
            prop_assert_eq!(&got, &expected, "{}", enc);
        }
    }
}
