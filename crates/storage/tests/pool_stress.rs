//! Buffer-pool stress test: eight threads hammering a tiny-capacity pool.
//!
//! The parallel executor shares one `BufferPool` among all workers, so the
//! pool must keep its invariants under real contention, not just in
//! single-threaded unit tests:
//!
//! * the capacity bound holds at every observable moment;
//! * no deadlock (single-flight stripes are only ever taken before the
//!   inner mutex, never after; shards never lock each other);
//! * the hit/miss counters reconcile with the number of lookups issued,
//!   and misses reconcile with the number of fills actually run —
//!   **globally exact across shards**, even while every shard is
//!   evicting under churn.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use matstrat_common::Width;
use matstrat_storage::{BufferPool, EncodedBlock, PlainBlock};

fn block(start: u64) -> Arc<EncodedBlock> {
    Arc::new(EncodedBlock::Plain(PlainBlock::from_values(
        start,
        Width::W1,
        &[1, 2, 3],
    )))
}

#[test]
fn tiny_pool_survives_eight_thread_hammering() {
    hammer(BufferPool::new(4), 4);
}

#[test]
fn single_shard_pool_survives_eight_thread_hammering() {
    // The degenerate-sharding configuration (`MATSTRAT_POOL_SHARDS=1`
    // in CI): one global LRU, exactly the pre-sharding pool.
    hammer(BufferPool::with_shards(4, 1), 4);
}

#[test]
fn sharded_pool_counters_reconcile_under_cross_stripe_eviction() {
    // Capacity 8 over 4 stripes (2 blocks each) with a 64-key space:
    // every stripe evicts constantly, and the walk crosses stripes on
    // almost every step. The global counters must still account for
    // every lookup exactly.
    let pool = BufferPool::with_shards(8, 4);
    assert_eq!(pool.num_shards(), 4);
    hammer(pool, 8);
}

/// Deterministic multi-threaded churn against `pool`, asserting the
/// capacity bound at every moment and exact counter reconciliation at
/// the end.
fn hammer(pool: BufferPool, capacity: usize) {
    const THREADS: usize = 8;
    const OPS: usize = 4_000;
    const KEYS: u64 = 64;
    let lookups = AtomicUsize::new(0);
    let fills = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            let lookups = &lookups;
            let fills = &fills;
            s.spawn(move || {
                // Deterministic per-thread walk over a key space much
                // larger than the pool, so eviction churns constantly.
                let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for i in 0..OPS {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = ("stress.col".to_string(), (x % KEYS) as u32);
                    if i % 3 == 0 {
                        // Plain lookup; on miss, insert directly.
                        lookups.fetch_add(1, Ordering::Relaxed);
                        let idx = key_idx(&key);
                        if pool.get(&key).is_none() {
                            pool.insert(key, block(u64::from(idx)));
                        }
                    } else {
                        // Single-flight path, as the executor uses it.
                        lookups.fetch_add(1, Ordering::Relaxed);
                        let b: Result<_, ()> = pool.get_or_insert_with(&key, || {
                            fills.fetch_add(1, Ordering::Relaxed);
                            Ok(block(u64::from(key_idx(&key))))
                        });
                        assert_eq!(b.unwrap().start_pos(), u64::from(key_idx(&key)));
                    }
                    // The capacity bound must hold at every moment, not
                    // just after the dust settles.
                    assert!(
                        pool.len() <= capacity,
                        "pool overflowed: {} > {capacity}",
                        pool.len()
                    );
                }
            });
        }
    });

    let stats = pool.stats();
    assert!(pool.len() <= capacity);
    assert_eq!(
        stats.hits + stats.misses,
        lookups.load(Ordering::Relaxed) as u64,
        "every lookup is exactly one hit or one miss"
    );
    // Every single-flight miss ran exactly one fill; plain `get` misses
    // ran none. Misses from both paths are counted, so:
    //   misses = get-misses + fills  and  fills <= misses.
    assert!(
        fills.load(Ordering::Relaxed) as u64 <= stats.misses,
        "more fills than misses: {} > {}",
        fills.load(Ordering::Relaxed),
        stats.misses
    );
    assert!(stats.misses > 0 && stats.hits > 0, "workload too easy");
    assert!(stats.evictions > 0, "tiny pool must evict under churn");
}

fn key_idx(key: &(String, u32)) -> u32 {
    key.1
}
