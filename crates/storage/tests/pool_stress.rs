//! Buffer-pool stress test: eight threads hammering a tiny-capacity pool.
//!
//! The parallel executor shares one `BufferPool` among all workers, so the
//! pool must keep its invariants under real contention, not just in
//! single-threaded unit tests:
//!
//! * the capacity bound holds at every observable moment;
//! * no deadlock (single-flight stripes are only ever taken before the
//!   inner mutex, never after; shards never lock each other);
//! * the hit/miss counters reconcile with the number of lookups issued,
//!   and misses reconcile with the number of fills actually run —
//!   **globally exact across shards**, even while every shard is
//!   evicting under churn.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use matstrat_common::Width;
use matstrat_storage::{BufferPool, EncodedBlock, PlainBlock};

fn block(start: u64) -> Arc<EncodedBlock> {
    Arc::new(EncodedBlock::Plain(PlainBlock::from_values(
        start,
        Width::W1,
        &[1, 2, 3],
    )))
}

#[test]
fn tiny_pool_survives_eight_thread_hammering() {
    hammer(BufferPool::new(4), 4);
}

#[test]
fn single_shard_pool_survives_eight_thread_hammering() {
    // The degenerate-sharding configuration (`MATSTRAT_POOL_SHARDS=1`
    // in CI): one global LRU, exactly the pre-sharding pool.
    hammer(BufferPool::with_shards(4, 1), 4);
}

#[test]
fn sharded_pool_counters_reconcile_under_cross_stripe_eviction() {
    // Capacity 8 over 4 stripes (2 blocks each) with a 64-key space:
    // every stripe evicts constantly, and the walk crosses stripes on
    // almost every step. The global counters must still account for
    // every lookup exactly.
    let pool = BufferPool::with_shards(8, 4);
    assert_eq!(pool.num_shards(), 4);
    hammer(pool, 8);
}

/// Deterministic multi-threaded churn against `pool`, asserting the
/// capacity bound at every moment and exact counter reconciliation at
/// the end.
fn hammer(pool: BufferPool, capacity: usize) {
    const THREADS: usize = 8;
    const OPS: usize = 4_000;
    const KEYS: u64 = 64;
    let lookups = AtomicUsize::new(0);
    let fills = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            let lookups = &lookups;
            let fills = &fills;
            s.spawn(move || {
                // Deterministic per-thread walk over a key space much
                // larger than the pool, so eviction churns constantly.
                let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for i in 0..OPS {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = ("stress.col".to_string(), (x % KEYS) as u32);
                    if i % 3 == 0 {
                        // Plain lookup; on miss, insert directly.
                        lookups.fetch_add(1, Ordering::Relaxed);
                        let idx = key_idx(&key);
                        if pool.get(&key).is_none() {
                            pool.insert(key, block(u64::from(idx)));
                        }
                    } else {
                        // Single-flight path, as the executor uses it.
                        lookups.fetch_add(1, Ordering::Relaxed);
                        let b: Result<_, ()> = pool.get_or_insert_with(&key, || {
                            fills.fetch_add(1, Ordering::Relaxed);
                            Ok(block(u64::from(key_idx(&key))))
                        });
                        assert_eq!(b.unwrap().start_pos(), u64::from(key_idx(&key)));
                    }
                    // The capacity bound must hold at every moment, not
                    // just after the dust settles.
                    assert!(
                        pool.len() <= capacity,
                        "pool overflowed: {} > {capacity}",
                        pool.len()
                    );
                }
            });
        }
    });

    let stats = pool.stats();
    assert!(pool.len() <= capacity);
    assert_eq!(
        stats.hits + stats.misses,
        lookups.load(Ordering::Relaxed) as u64,
        "every lookup is exactly one hit or one miss"
    );
    // Every single-flight miss ran exactly one fill; plain `get` misses
    // ran none. Misses from both paths are counted, so:
    //   misses = get-misses + fills  and  fills <= misses.
    assert!(
        fills.load(Ordering::Relaxed) as u64 <= stats.misses,
        "more fills than misses: {} > {}",
        fills.load(Ordering::Relaxed),
        stats.misses
    );
    assert!(stats.misses > 0 && stats.hits > 0, "workload too easy");
    assert!(stats.evictions > 0, "tiny pool must evict under churn");
}

fn key_idx(key: &(String, u32)) -> u32 {
    key.1
}

/// Two sessions sharing one store race their `set_parallelism` re-shards
/// (the session layer calls `reshard_at_least`) while lookups hammer the
/// pool. The old check-then-act at the caller — `if n > num_shards() {
/// reshard(n) }` — let the session with the *smaller* target re-shard
/// last off a stale read and narrow the pool the other session had just
/// widened. The grow-only decision now happens under the stripe write
/// lock, so: the stripe count is monotone non-decreasing at every
/// observation, ends at the widest request, and the hit/miss ledger
/// stays globally exact (no lookup dropped or double-counted across any
/// re-shard boundary).
#[test]
fn racing_session_reshards_never_narrow_the_pool_or_the_ledger() {
    const LOOKUP_THREADS: usize = 4;
    const OPS: usize = 3_000;
    const ROUNDS: usize = 200;
    // Capacity covers the key space: the ledger has no eviction column
    // to hide miscounts in.
    let pool = BufferPool::with_shards(512, 1);
    let lookups = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Session A repeatedly asks for 8 workers, session B for 3 —
        // interleaved arbitrarily by the scheduler.
        for &target in &[8usize, 3] {
            let pool = &pool;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    pool.reshard_at_least(target);
                    assert!(
                        pool.num_shards() >= target,
                        "session's own request not honored"
                    );
                    std::thread::yield_now();
                }
            });
        }
        // An observer proving monotonicity: grow-only means the stripe
        // count can never be seen shrinking, no matter the interleaving.
        {
            let pool = &pool;
            s.spawn(move || {
                let mut widest = pool.num_shards();
                for _ in 0..ROUNDS * 4 {
                    let now = pool.num_shards();
                    assert!(now >= widest, "pool narrowed: {widest} -> {now}");
                    widest = now;
                    std::thread::yield_now();
                }
            });
        }
        // Query traffic from both sessions, straddling every re-shard.
        for t in 0..LOOKUP_THREADS {
            let pool = &pool;
            let lookups = &lookups;
            s.spawn(move || {
                let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..OPS {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = ("race.col".to_string(), (x % 64) as u32);
                    lookups.fetch_add(1, Ordering::Relaxed);
                    let b: Result<_, ()> =
                        pool.get_or_insert_with(&key, || Ok(block(u64::from(key.1))));
                    assert_eq!(b.unwrap().start_pos(), u64::from(key.1));
                }
            });
        }
    });

    assert_eq!(pool.num_shards(), 8, "ends at the widest session request");
    let stats = pool.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups.load(Ordering::Relaxed) as u64,
        "ledger exact across every racing re-shard"
    );
    assert_eq!(stats.evictions, 0, "capacity covers the key space");
    assert_eq!(stats.misses, 64, "single-flight: one fill per key, ever");
}

/// The nightly-soak reproduction (threads=8, shards=2), now *fixed*
/// rather than surfaced: hammer a 2-stripe pool with 8 threads, re-shard
/// it to 8 stripes in place, and prove the counters carried over
/// **exactly** before hammering the widened pool again. Counter
/// exactness must hold across the reshard boundary, not merely within
/// each layout.
#[test]
fn reshard_under_hammering_preserves_counters_exactly() {
    const THREADS: usize = 8;
    const OPS: usize = 2_000;
    // Capacity 512 over a 64-key space: even the worst-case hash
    // clustering (all 64 keys in one stripe of the widest layout, 512/8
    // = 64 blocks) cannot evict, so the counter ledger across the
    // reshard has no third column to hide in.
    let pool = BufferPool::with_shards(512, 2);
    assert_eq!(pool.num_shards(), 2);
    let lookups = AtomicUsize::new(0);

    let hammer_once = |pool: &BufferPool| {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let lookups = &lookups;
                s.spawn(move || {
                    let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..OPS {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let key = ("reshard.col".to_string(), (x % 64) as u32);
                        lookups.fetch_add(1, Ordering::Relaxed);
                        let b: Result<_, ()> =
                            pool.get_or_insert_with(&key, || Ok(block(u64::from(key.1))));
                        assert_eq!(b.unwrap().start_pos(), u64::from(key.1));
                    }
                });
            }
        });
    };

    // Phase 1: contended 2-stripe pool (8 workers on 2 LRUs).
    hammer_once(&pool);
    let before = pool.stats();
    assert_eq!(
        before.hits + before.misses,
        lookups.load(Ordering::Relaxed) as u64
    );
    assert_eq!(before.evictions, 0, "capacity covers the key space");
    let cached = pool.len();

    // The fix: rehash in place to the worker count.
    pool.reshard(THREADS);
    assert_eq!(pool.num_shards(), THREADS);
    let after = pool.stats();
    assert_eq!(after.hits, before.hits, "hits preserved exactly");
    assert_eq!(after.misses, before.misses, "misses preserved exactly");
    assert_eq!(after.evictions, 0, "eviction-free move");
    assert_eq!(after.shards, THREADS as u64);
    assert_eq!(pool.len(), cached, "cached set survives");

    // Phase 2: the widened pool keeps exact accounting — every
    // pre-reshard block is found where its key now hashes (all hits:
    // the full key space was resident before the move).
    hammer_once(&pool);
    let end = pool.stats();
    assert_eq!(
        end.hits + end.misses,
        lookups.load(Ordering::Relaxed) as u64,
        "ledger exact across the reshard boundary"
    );
    assert_eq!(end.misses, before.misses, "phase 2 is all hits");
}
