//! Bit-vector encoded blocks.
//!
//! The paper (§1.1): *"A bit-vector encoded file representing a column of
//! size n with k distinct values consists of k bit-strings of length n,
//! one per unique value, stored sequentially."* Because our files are
//! chunked into 64 KB blocks, each block carries the k distinct values
//! appearing in its position range plus one bit-string per value spanning
//! the block's rows — the same representation, chunked.
//!
//! Range predicates are answered by ORing the bit-strings of matching
//! values (no value access). Position fetch (DS3) is unsupported: a
//! position's value is only discoverable by probing every bit-string.

use matstrat_common::{codeops, Error, Pos, PosRange, Predicate, Result, Value};
use matstrat_poslist::{Bitmap, PosList};

use crate::wire::{put_i64, put_u32, put_u64, Reader};
use crate::BLOCK_SIZE;

use super::BLOCK_HEADER_SIZE;

/// A bit-vector encoded block: `k` distinct values, each with a
/// bit-string of `words_per_value` 64-bit words covering the block rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BitVecBlock {
    start_pos: Pos,
    count: u32,
    /// Distinct values, in first-appearance order.
    values: Vec<Value>,
    /// Concatenated bit-strings: words[i * words_per_value ..][..words_per_value]
    /// is the bit-string for values[i]. Bit b = row `start_pos + b`.
    words: Vec<u64>,
    words_per_value: usize,
}

impl BitVecBlock {
    /// Serialized size for `k` distinct values and `rows` rows.
    pub fn encoded_size(k: usize, rows: usize) -> usize {
        BLOCK_HEADER_SIZE + 4 + k * 8 + k * rows.div_ceil(64) * 8
    }

    /// Encode `values`.
    ///
    /// # Panics
    /// Panics if the block would exceed 64 KB; the column writer is
    /// responsible for splitting.
    pub fn from_values(start_pos: Pos, vals: &[Value]) -> BitVecBlock {
        let mut distinct: Vec<Value> = Vec::new();
        for &v in vals {
            if !distinct.contains(&v) {
                distinct.push(v);
            }
        }
        assert!(
            Self::encoded_size(distinct.len(), vals.len()) <= BLOCK_SIZE,
            "bit-vector block overflow: k={} rows={}",
            distinct.len(),
            vals.len()
        );
        let wpv = vals.len().div_ceil(64);
        let mut words = vec![0u64; distinct.len() * wpv];
        for (row, &v) in vals.iter().enumerate() {
            let vi = distinct.iter().position(|&d| d == v).unwrap();
            words[vi * wpv + row / 64] |= 1u64 << (row % 64);
        }
        BitVecBlock {
            start_pos,
            count: vals.len() as u32,
            values: distinct,
            words,
            words_per_value: wpv,
        }
    }

    /// Absolute position of the first row.
    #[inline]
    pub fn start_pos(&self) -> Pos {
        self.start_pos
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.count
    }

    /// The distinct values present in the block.
    #[inline]
    pub fn distinct_values(&self) -> &[Value] {
        &self.values
    }

    /// The bit-string words for the `i`-th distinct value.
    #[inline]
    pub fn bitstring(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_value..(i + 1) * self.words_per_value]
    }

    /// DS1: OR together the bit-strings of matching values — the §2.1.1
    /// "positions derived directly from the index" path. Emits a bitmap.
    pub fn scan_positions(&self, pred: &Predicate) -> PosList {
        // One predicate evaluation per distinct value, then pure word ORs:
        // the whole scan runs on the encoded representation.
        codeops::add(self.values.len() as u64);
        let covering = PosRange::new(self.start_pos, self.start_pos + self.count as u64);
        let mut acc = vec![0u64; self.words_per_value];
        for (i, &v) in self.values.iter().enumerate() {
            if pred.matches(v) {
                for (dst, src) in acc.iter_mut().zip(self.bitstring(i)) {
                    *dst |= *src;
                }
            }
        }
        PosList::Bitmap(Bitmap::from_words(covering, acc))
    }

    /// DS2: requires decompression — matching (pos, value) pairs are
    /// produced per bit-string and then merged into position order.
    pub fn scan_pairs(&self, pred: &Predicate, out_pos: &mut Vec<Pos>, out_val: &mut Vec<Value>) {
        let matching: Vec<usize> = (0..self.values.len())
            .filter(|&i| pred.matches(self.values[i]))
            .collect();
        match matching.len() {
            0 => {}
            1 => {
                // Single bit-string: already in position order.
                let i = matching[0];
                let v = self.values[i];
                for p in iter_bits(self.bitstring(i), self.start_pos) {
                    out_pos.push(p);
                    out_val.push(v);
                }
            }
            _ => {
                // General case: decompress the block then filter — the
                // CPU cost the paper attributes to bit-vector data.
                let mut decoded = Vec::with_capacity(self.count as usize);
                self.decode_all(&mut decoded);
                for (row, &v) in decoded.iter().enumerate() {
                    if pred.matches(v) {
                        out_pos.push(self.start_pos + row as u64);
                        out_val.push(v);
                    }
                }
            }
        }
    }

    /// DS4 probe: O(k) bit tests.
    pub fn value_at(&self, pos: Pos) -> Result<Value> {
        if pos < self.start_pos || pos >= self.start_pos + self.count as u64 {
            return Err(Error::invalid(format!(
                "position {pos} outside bit-vector block"
            )));
        }
        let row = (pos - self.start_pos) as usize;
        for (i, &v) in self.values.iter().enumerate() {
            if (self.bitstring(i)[row / 64] >> (row % 64)) & 1 == 1 {
                return Ok(v);
            }
        }
        Err(Error::corrupt(format!(
            "no bit set for row {row} in bit-vector block"
        )))
    }

    /// Full decompression in position order: scatter each value to the
    /// rows its bit-string marks.
    pub fn decode_all(&self, out: &mut Vec<Value>) {
        let base = out.len();
        out.resize(base + self.count as usize, 0);
        for (i, &v) in self.values.iter().enumerate() {
            for p in iter_bits(self.bitstring(i), 0) {
                out[base + p as usize] = v;
            }
        }
    }

    /// Number of maximal equal-value runs, without decompression: every
    /// run of some value `v` is a maximal 1-run in `v`'s bit-string and
    /// vice versa, so the total is the number of 1-run starts (a set bit
    /// whose predecessor bit is clear) summed over all bit-strings.
    pub fn num_runs(&self) -> u64 {
        let mut total = 0u64;
        for i in 0..self.values.len() {
            let mut prev_top = 0u64; // previous word's bit 63, moved to bit 0
            for &w in self.bitstring(i) {
                total += (w & !((w << 1) | prev_top)).count_ones() as u64;
                prev_top = w >> 63;
            }
        }
        total
    }

    /// Visit equal-value runs in position order (requires decompression).
    pub fn for_each_run(&self, mut f: impl FnMut(Value, PosRange)) {
        if self.count == 0 {
            return;
        }
        let mut decoded = Vec::with_capacity(self.count as usize);
        self.decode_all(&mut decoded);
        let mut run_val = decoded[0];
        let mut run_start = self.start_pos;
        for (row, &v) in decoded.iter().enumerate().skip(1) {
            if v != run_val {
                f(
                    run_val,
                    PosRange::new(run_start, self.start_pos + row as u64),
                );
                run_val = v;
                run_start = self.start_pos + row as u64;
            }
        }
        f(
            run_val,
            PosRange::new(run_start, self.start_pos + self.count as u64),
        );
    }

    /// Append the codec payload to `buf`.
    pub fn serialize_payload(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.values.len() as u32);
        for &v in &self.values {
            put_i64(buf, v);
        }
        for &w in &self.words {
            put_u64(buf, w);
        }
    }

    /// Parse the codec payload.
    pub fn parse_payload(start_pos: Pos, count: u32, r: &mut Reader<'_>) -> Result<BitVecBlock> {
        let k = r.u32()? as usize;
        let mut values = Vec::with_capacity(k);
        for _ in 0..k {
            values.push(r.i64()?);
        }
        let wpv = (count as usize).div_ceil(64);
        let mut words = Vec::with_capacity(k * wpv);
        for _ in 0..k * wpv {
            words.push(r.u64()?);
        }
        Ok(BitVecBlock {
            start_pos,
            count,
            values,
            words,
            words_per_value: wpv,
        })
    }
}

/// Iterate over the set bit indices of `words`, offset by `base`.
fn iter_bits(words: &[u64], base: Pos) -> impl Iterator<Item = Pos> + '_ {
    words.iter().enumerate().flat_map(move |(wi, &w)| {
        let mut w = w;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let t = w.trailing_zeros() as u64;
                w &= w - 1;
                Some(base + wi as u64 * 64 + t)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values_and_bitstrings() {
        let b = BitVecBlock::from_values(0, &[5, 7, 5, 9, 7, 5]);
        assert_eq!(b.distinct_values(), &[5, 7, 9]);
        // value 5 at rows 0, 2, 5
        assert_eq!(b.bitstring(0)[0], 0b100101);
        // value 7 at rows 1, 4
        assert_eq!(b.bitstring(1)[0], 0b010010);
        // value 9 at row 3
        assert_eq!(b.bitstring(2)[0], 0b001000);
    }

    #[test]
    fn scan_positions_is_or_of_bitstrings() {
        let b = BitVecBlock::from_values(100, &[5, 7, 5, 9, 7, 5]);
        // pred <= 7 matches values 5 and 7 → rows 0,1,2,4,5
        let pl = b.scan_positions(&Predicate::le(7));
        assert_eq!(pl.to_vec(), vec![100, 101, 102, 104, 105]);
        // equality predicate: single bit-string
        let pl = b.scan_positions(&Predicate::eq(9));
        assert_eq!(pl.to_vec(), vec![103]);
    }

    #[test]
    fn scan_pairs_single_and_multi_value() {
        let b = BitVecBlock::from_values(0, &[5, 7, 5, 9]);
        let (mut p, mut v) = (Vec::new(), Vec::new());
        b.scan_pairs(&Predicate::eq(5), &mut p, &mut v);
        assert_eq!(p, vec![0, 2]);
        assert_eq!(v, vec![5, 5]);
        p.clear();
        v.clear();
        b.scan_pairs(&Predicate::le(7), &mut p, &mut v);
        assert_eq!(p, vec![0, 1, 2]);
        assert_eq!(v, vec![5, 7, 5]);
    }

    #[test]
    fn value_at_probes_all_bitstrings() {
        let vals = vec![5, 7, 5, 9, 7];
        let b = BitVecBlock::from_values(10, &vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.value_at(10 + i as u64).unwrap(), v);
        }
        assert!(b.value_at(15).is_err());
        assert!(b.value_at(9).is_err());
    }

    #[test]
    fn decode_all_scatters_correctly() {
        let vals: Vec<Value> = (0..200).map(|i| (i * 7) % 5).collect();
        let b = BitVecBlock::from_values(0, &vals);
        let mut out = Vec::new();
        b.decode_all(&mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn encoded_size_formula() {
        // 7 distinct, 1000 rows: header 16 + 4 + 56 + 7*16*8
        assert_eq!(BitVecBlock::encoded_size(7, 1000), 16 + 4 + 56 + 7 * 16 * 8);
    }

    #[test]
    fn rows_spanning_word_boundaries() {
        let vals: Vec<Value> = (0..130).map(|i| i % 2).collect();
        let b = BitVecBlock::from_values(0, &vals);
        let pl = b.scan_positions(&Predicate::eq(1));
        let expected: Vec<Pos> = (0..130).filter(|p| p % 2 == 1).collect();
        assert_eq!(pl.to_vec(), expected);
    }

    #[test]
    fn num_runs_counts_bitstring_run_starts() {
        for vals in [
            vec![5, 7, 5, 9, 7, 5],
            vec![1; 6],
            (0..130).map(|i| i % 2).collect::<Vec<Value>>(),
            vec![3, 3, 4, 4, 4, 3, 5, 5],
            Vec::new(),
        ] {
            let b = BitVecBlock::from_values(0, &vals);
            let mut expect = 0u64;
            b.for_each_run(|_, _| expect += 1);
            assert_eq!(b.num_runs(), expect, "{vals:?}");
        }
    }

    #[test]
    fn empty_block() {
        let b = BitVecBlock::from_values(0, &[]);
        assert_eq!(b.num_rows(), 0);
        let mut out = Vec::new();
        b.decode_all(&mut out);
        assert!(out.is_empty());
        let mut n = 0;
        b.for_each_run(|_, _| n += 1);
        assert_eq!(n, 0);
    }
}
