//! Run-length encoded blocks.
//!
//! The paper (§1.1): *"In a run-length encoded file, each block contains
//! a series of RLE triples (V, S, L), where V is the value, S is the
//! start position of the run, and L is the length of the run."* We store
//! (V, L) on disk — S is the running sum — and materialize S when the
//! block is parsed, so the in-memory form matches the paper's triples.

use matstrat_common::{codeops, Error, Pos, PosRange, Predicate, Result, Value};
use matstrat_poslist::{PosList, PosListBuilder};

use crate::wire::{put_i64, put_u32, Reader};
use crate::BLOCK_SIZE;

use super::BLOCK_HEADER_SIZE;

/// One RLE triple: `value` repeats for `len` rows starting at absolute
/// position `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RleRun {
    /// The repeated value (V).
    pub value: Value,
    /// Absolute start position of the run (S).
    pub start: Pos,
    /// Number of repetitions (L).
    pub len: u32,
}

impl RleRun {
    /// The positions this run covers.
    #[inline]
    pub fn range(&self) -> PosRange {
        PosRange::new(self.start, self.start + self.len as u64)
    }
}

/// A run-length encoded block.
#[derive(Debug, Clone, PartialEq)]
pub struct RleBlock {
    start_pos: Pos,
    count: u32,
    runs: Vec<RleRun>,
}

/// Bytes per run on disk: value (8) + length (4).
const RUN_DISK_SIZE: usize = 12;

impl RleBlock {
    /// Maximum number of runs a block can hold.
    pub fn capacity_runs() -> usize {
        (BLOCK_SIZE - BLOCK_HEADER_SIZE - 4) / RUN_DISK_SIZE
    }

    /// Encode `values` into runs.
    ///
    /// # Panics
    /// Panics if the values produce more runs than fit in one block; the
    /// column writer is responsible for splitting.
    pub fn from_values(start_pos: Pos, values: &[Value]) -> RleBlock {
        let mut runs: Vec<RleRun> = Vec::new();
        for (at, &v) in (start_pos..).zip(values.iter()) {
            match runs.last_mut() {
                Some(r) if r.value == v && r.len < u32::MAX => r.len += 1,
                _ => runs.push(RleRun {
                    value: v,
                    start: at,
                    len: 1,
                }),
            }
        }
        assert!(
            runs.len() <= Self::capacity_runs(),
            "RLE block overflow: {} runs",
            runs.len()
        );
        RleBlock {
            start_pos,
            count: values.len() as u32,
            runs,
        }
    }

    /// Build directly from runs (used by the column writer). Runs must be
    /// contiguous starting at `start_pos`.
    pub fn from_runs(start_pos: Pos, runs: Vec<RleRun>) -> RleBlock {
        let mut expected = start_pos;
        let mut count = 0u64;
        for r in &runs {
            assert_eq!(r.start, expected, "runs must be contiguous");
            assert!(r.len > 0, "empty run");
            expected += r.len as u64;
            count += r.len as u64;
        }
        assert!(runs.len() <= Self::capacity_runs());
        RleBlock {
            start_pos,
            count: count as u32,
            runs,
        }
    }

    /// Absolute position of the first row.
    #[inline]
    pub fn start_pos(&self) -> Pos {
        self.start_pos
    }

    /// Number of rows (sum of run lengths).
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.count
    }

    /// The stored runs.
    #[inline]
    pub fn runs(&self) -> &[RleRun] {
        &self.runs
    }

    /// Index of the run containing absolute position `pos`.
    fn run_for(&self, pos: Pos) -> Result<usize> {
        if pos < self.start_pos || pos >= self.start_pos + self.count as u64 {
            return Err(Error::invalid(format!(
                "position {pos} outside RLE block [{}, {})",
                self.start_pos,
                self.start_pos + self.count as u64
            )));
        }
        let idx = self.runs.partition_point(|r| r.start + r.len as u64 <= pos);
        Ok(idx)
    }

    /// DS1: one whole run matches or fails per comparison — O(#runs).
    /// Emits the range representation, the natural output for RLE.
    pub fn scan_positions(&self, pred: &Predicate) -> PosList {
        codeops::add(self.runs.len() as u64);
        let mut b = PosListBuilder::new();
        for r in &self.runs {
            if pred.matches(r.value) {
                b.push_run(r.range());
            }
        }
        b.finish_as_ranges()
    }

    /// DS2: matching runs are decompressed into (pos, value) pairs —
    /// the paper's "tuple construction requires decompression".
    pub fn scan_pairs(&self, pred: &Predicate, out_pos: &mut Vec<Pos>, out_val: &mut Vec<Value>) {
        for r in &self.runs {
            if pred.matches(r.value) {
                out_pos.extend(r.start..r.start + r.len as u64);
                out_val.extend(std::iter::repeat_n(r.value, r.len as usize));
            }
        }
    }

    /// Runs overlapping `window`, as a subslice (binary search on starts).
    fn runs_overlapping(&self, window: PosRange) -> &[RleRun] {
        let first = self
            .runs
            .partition_point(|r| r.start + r.len as u64 <= window.start);
        let last = self.runs.partition_point(|r| r.start < window.end);
        &self.runs[first..last]
    }

    /// DS1 restricted to `window`: O(overlapping runs).
    pub fn scan_positions_in(&self, pred: &Predicate, window: PosRange) -> PosList {
        let overlapping = self.runs_overlapping(window);
        codeops::add(overlapping.len() as u64);
        let mut b = PosListBuilder::new();
        for r in overlapping {
            if pred.matches(r.value) {
                b.push_run(r.range().intersect(&window));
            }
        }
        b.finish_as_ranges()
    }

    /// DS2 restricted to `window`.
    pub fn scan_pairs_in(
        &self,
        pred: &Predicate,
        window: PosRange,
        out_pos: &mut Vec<Pos>,
        out_val: &mut Vec<Value>,
    ) {
        for r in self.runs_overlapping(window) {
            if pred.matches(r.value) {
                let o = r.range().intersect(&window);
                out_pos.extend(o.start..o.end);
                out_val.extend(std::iter::repeat_n(r.value, o.len() as usize));
            }
        }
    }

    /// DS3 point fetch. Ascending positions walk the run list forward;
    /// random probes fall back to binary search.
    pub fn gather(&self, positions: &[Pos], out: &mut Vec<Value>) -> Result<()> {
        out.reserve(positions.len());
        let mut run_idx = 0usize;
        let mut last: Option<Pos> = None;
        for &p in positions {
            if last.is_some_and(|l| p < l) {
                run_idx = 0; // out-of-order probe: restart (rare path)
            }
            last = Some(p);
            if p < self.start_pos || p >= self.start_pos + self.count as u64 {
                return Err(Error::invalid(format!("position {p} outside RLE block")));
            }
            while self.runs[run_idx].start + self.runs[run_idx].len as u64 <= p {
                run_idx += 1;
            }
            out.push(self.runs[run_idx].value);
        }
        Ok(())
    }

    /// DS3 range fetch: overlapping runs emit `min(run, range)` copies.
    pub fn gather_range(&self, range: PosRange, out: &mut Vec<Value>) -> Result<()> {
        if range.is_empty() {
            return Ok(());
        }
        let first = self.run_for(range.start)?;
        self.run_for(range.end - 1)?; // bounds check the far end
        out.reserve(range.len() as usize);
        for r in &self.runs[first..] {
            let overlap = r.range().intersect(&range);
            if overlap.is_empty() {
                break;
            }
            out.extend(std::iter::repeat_n(r.value, overlap.len() as usize));
        }
        Ok(())
    }

    /// DS4 probe: binary search over run start positions.
    pub fn value_at(&self, pos: Pos) -> Result<Value> {
        let idx = self.run_for(pos)?;
        Ok(self.runs[idx].value)
    }

    /// Full decompression in position order.
    pub fn decode_all(&self, out: &mut Vec<Value>) {
        out.reserve(self.count as usize);
        for r in &self.runs {
            out.extend(std::iter::repeat_n(r.value, r.len as usize));
        }
    }

    /// Visit runs directly — the whole point of RLE: O(#runs), no
    /// decompression.
    pub fn for_each_run(&self, mut f: impl FnMut(Value, PosRange)) {
        for r in &self.runs {
            f(r.value, r.range());
        }
    }

    /// Append the codec payload to `buf`.
    pub fn serialize_payload(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.runs.len() as u32);
        for r in &self.runs {
            put_i64(buf, r.value);
            put_u32(buf, r.len);
        }
    }

    /// Parse the codec payload, rebuilding absolute run starts.
    pub fn parse_payload(start_pos: Pos, count: u32, r: &mut Reader<'_>) -> Result<RleBlock> {
        let nruns = r.u32()? as usize;
        let mut runs = Vec::with_capacity(nruns);
        let mut at = start_pos;
        let mut total = 0u64;
        for _ in 0..nruns {
            let value = r.i64()?;
            let len = r.u32()?;
            if len == 0 {
                return Err(Error::corrupt("zero-length RLE run"));
            }
            runs.push(RleRun {
                value,
                start: at,
                len,
            });
            at += len as u64;
            total += len as u64;
        }
        if total != count as u64 {
            return Err(Error::corrupt(format!(
                "RLE row count mismatch: header {count}, runs sum {total}"
            )));
        }
        Ok(RleBlock {
            start_pos,
            count,
            runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_builds_triples() {
        let b = RleBlock::from_values(100, &[7, 7, 7, 3, 3, 9]);
        assert_eq!(
            b.runs(),
            &[
                RleRun {
                    value: 7,
                    start: 100,
                    len: 3
                },
                RleRun {
                    value: 3,
                    start: 103,
                    len: 2
                },
                RleRun {
                    value: 9,
                    start: 105,
                    len: 1
                },
            ]
        );
        assert_eq!(b.num_rows(), 6);
    }

    #[test]
    fn paper_example_five_tuples() {
        // §2.1.2: (2,5) indicates the value 2 repeats 5 times.
        let b = RleBlock::from_values(0, &[2, 2, 2, 2, 2]);
        assert_eq!(b.runs().len(), 1);
        assert_eq!(b.runs()[0].value, 2);
        assert_eq!(b.runs()[0].len, 5);
        let mut out = Vec::new();
        b.decode_all(&mut out);
        assert_eq!(out, vec![2; 5]);
    }

    #[test]
    fn scan_positions_yields_ranges() {
        let b = RleBlock::from_values(0, &[1, 1, 2, 2, 2, 1]);
        let pl = b.scan_positions(&Predicate::eq(1));
        assert_eq!(pl.to_vec(), vec![0, 1, 5]);
        assert_eq!(pl.to_ranges().num_runs(), 2);
    }

    #[test]
    fn gather_out_of_order_restarts() {
        let b = RleBlock::from_values(0, &[1, 1, 2, 2, 3, 3]);
        let mut out = Vec::new();
        b.gather(&[5, 0, 3], &mut out).unwrap();
        assert_eq!(out, vec![3, 1, 2]);
    }

    #[test]
    fn gather_range_spanning_runs() {
        let b = RleBlock::from_values(10, &[1, 1, 2, 2, 3, 3]);
        let mut out = Vec::new();
        b.gather_range(PosRange::new(11, 15), &mut out).unwrap();
        assert_eq!(out, vec![1, 2, 2, 3]);
    }

    #[test]
    fn value_at_binary_search() {
        let b = RleBlock::from_values(0, &[5, 5, 6, 7, 7, 7]);
        assert_eq!(b.value_at(0).unwrap(), 5);
        assert_eq!(b.value_at(2).unwrap(), 6);
        assert_eq!(b.value_at(5).unwrap(), 7);
        assert!(b.value_at(6).is_err());
    }

    #[test]
    fn from_runs_validates_contiguity() {
        let runs = vec![
            RleRun {
                value: 1,
                start: 0,
                len: 3,
            },
            RleRun {
                value: 2,
                start: 3,
                len: 2,
            },
        ];
        let b = RleBlock::from_runs(0, runs);
        assert_eq!(b.num_rows(), 5);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn from_runs_rejects_gaps() {
        RleBlock::from_runs(
            0,
            vec![
                RleRun {
                    value: 1,
                    start: 0,
                    len: 3,
                },
                RleRun {
                    value: 2,
                    start: 5,
                    len: 2,
                },
            ],
        );
    }

    #[test]
    fn parse_rejects_bad_counts() {
        let b = RleBlock::from_values(0, &[1, 1, 2]);
        let mut buf = Vec::new();
        b.serialize_payload(&mut buf);
        // Corrupt: claim 99 rows in the header.
        let mut r = Reader::new(&buf);
        assert!(RleBlock::parse_payload(0, 99, &mut r).is_err());
    }
}
