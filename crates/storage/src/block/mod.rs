//! Encoded 64 KB blocks: the unit of disk I/O and of pipelined execution.
//!
//! A block is self-describing: a 16-byte common header (encoding tag,
//! value width, row count, start position) followed by a codec-specific
//! payload. In memory a block stays in its *compressed* form — RLE blocks
//! are run triples, bit-vector blocks are bit-strings — exactly as the
//! paper's mini-columns do, so operators can work on compressed data
//! directly.
//!
//! Every codec exposes the two C-Store data-source access patterns plus
//! the position-fetch used by late materialization:
//!
//! * [`EncodedBlock::scan_positions`] — DS1: predicate → positions;
//! * [`EncodedBlock::scan_pairs`] — DS2: predicate → (position, value);
//! * [`EncodedBlock::gather`] / [`EncodedBlock::gather_range`] — DS3:
//!   positions → values (**unsupported on bit-vector blocks**, §4.1);
//! * [`EncodedBlock::value_at`] — DS4's jump-to-position probe.

mod bitvec;
mod dict;
mod plain;
mod rle;

pub use bitvec::BitVecBlock;
pub use dict::DictBlock;
pub use plain::PlainBlock;
pub use rle::{RleBlock, RleRun};

use matstrat_common::{Error, Pos, PosRange, Predicate, Result, Value};
use matstrat_poslist::PosList;

use crate::encoding::EncodingKind;
use crate::wire::{put_u16, put_u32, put_u64, put_u8, Reader};
use crate::BLOCK_SIZE;

/// Size in bytes of the common block header.
pub const BLOCK_HEADER_SIZE: usize = 16;

/// A parsed, still-compressed block of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedBlock {
    /// Fixed-width packed values.
    Plain(PlainBlock),
    /// Run-length encoded values.
    Rle(RleBlock),
    /// Bit-vector encoded values.
    BitVec(BitVecBlock),
    /// Dictionary encoded values (extension).
    Dict(DictBlock),
}

impl EncodedBlock {
    /// The encoding of this block.
    pub fn encoding(&self) -> EncodingKind {
        match self {
            EncodedBlock::Plain(_) => EncodingKind::Plain,
            EncodedBlock::Rle(_) => EncodingKind::Rle,
            EncodedBlock::BitVec(_) => EncodingKind::BitVec,
            EncodedBlock::Dict(_) => EncodingKind::Dict,
        }
    }

    /// Absolute position of the block's first row.
    pub fn start_pos(&self) -> Pos {
        match self {
            EncodedBlock::Plain(b) => b.start_pos(),
            EncodedBlock::Rle(b) => b.start_pos(),
            EncodedBlock::BitVec(b) => b.start_pos(),
            EncodedBlock::Dict(b) => b.start_pos(),
        }
    }

    /// Number of rows in the block.
    pub fn num_rows(&self) -> u32 {
        match self {
            EncodedBlock::Plain(b) => b.num_rows(),
            EncodedBlock::Rle(b) => b.num_rows(),
            EncodedBlock::BitVec(b) => b.num_rows(),
            EncodedBlock::Dict(b) => b.num_rows(),
        }
    }

    /// The positions covered: `[start_pos, start_pos + num_rows)`.
    pub fn covering(&self) -> PosRange {
        let s = self.start_pos();
        PosRange::new(s, s + self.num_rows() as u64)
    }

    /// DS1: positions (absolute) whose values satisfy `pred`.
    ///
    /// The representation follows the codec: RLE emits ranges, bit-vector
    /// emits a bitmap (the OR of the matching bit-strings), plain and dict
    /// let the builder heuristic choose.
    pub fn scan_positions(&self, pred: &Predicate) -> PosList {
        match self {
            EncodedBlock::Plain(b) => b.scan_positions(pred),
            EncodedBlock::Rle(b) => b.scan_positions(pred),
            EncodedBlock::BitVec(b) => b.scan_positions(pred),
            EncodedBlock::Dict(b) => b.scan_positions(pred),
        }
    }

    /// DS2: (position, value) pairs satisfying `pred`, appended to the two
    /// output vectors in ascending position order.
    pub fn scan_pairs(&self, pred: &Predicate, out_pos: &mut Vec<Pos>, out_val: &mut Vec<Value>) {
        match self {
            EncodedBlock::Plain(b) => b.scan_pairs(pred, out_pos, out_val),
            EncodedBlock::Rle(b) => b.scan_pairs(pred, out_pos, out_val),
            EncodedBlock::BitVec(b) => b.scan_pairs(pred, out_pos, out_val),
            EncodedBlock::Dict(b) => b.scan_pairs(pred, out_pos, out_val),
        }
    }

    /// DS1 restricted to a window of positions: like
    /// [`scan_positions`](Self::scan_positions) but only rows inside
    /// `window ∩ covering` are examined. This is what lets a pipelined
    /// executor work one position-granule at a time without rescanning a
    /// wide block (an RLE block can cover millions of positions).
    pub fn scan_positions_in(&self, pred: &Predicate, window: PosRange) -> PosList {
        let w = self.covering().intersect(&window);
        if w.is_empty() {
            return PosList::empty();
        }
        match self {
            EncodedBlock::Rle(b) => b.scan_positions_in(pred, w),
            // Bit-vector: OR the bit-strings, then clip — the block's
            // covering range is granule-sized, so the clip is cheap.
            EncodedBlock::BitVec(b) => {
                if w == self.covering() {
                    b.scan_positions(pred)
                } else {
                    b.scan_positions(pred).clip(w)
                }
            }
            EncodedBlock::Plain(b) => b.scan_positions_in(pred, w),
            EncodedBlock::Dict(b) => b.scan_positions_in(pred, w),
        }
    }

    /// DS2 restricted to a window of positions.
    pub fn scan_pairs_in(
        &self,
        pred: &Predicate,
        window: PosRange,
        out_pos: &mut Vec<Pos>,
        out_val: &mut Vec<Value>,
    ) {
        let w = self.covering().intersect(&window);
        if w.is_empty() {
            return;
        }
        match self {
            EncodedBlock::Rle(b) => b.scan_pairs_in(pred, w, out_pos, out_val),
            EncodedBlock::BitVec(b) => {
                if w == self.covering() {
                    b.scan_pairs(pred, out_pos, out_val);
                } else {
                    let mark = out_pos.len();
                    b.scan_pairs(pred, out_pos, out_val);
                    // Drop pairs outside the window (prefix/suffix trim).
                    let mut keep = mark;
                    for i in mark..out_pos.len() {
                        if w.contains(out_pos[i]) {
                            out_pos.swap(keep, i);
                            out_val.swap(keep, i);
                            keep += 1;
                        }
                    }
                    out_pos.truncate(keep);
                    out_val.truncate(keep);
                }
            }
            EncodedBlock::Plain(b) => b.scan_pairs_in(pred, w, out_pos, out_val),
            EncodedBlock::Dict(b) => b.scan_pairs_in(pred, w, out_pos, out_val),
        }
    }

    /// Decompress every value in `range` (must lie inside the block) in
    /// position order. Unlike [`gather_range`](Self::gather_range) this is
    /// supported on **all** codecs — bit-vector blocks pay a full-block
    /// decompression, which is exactly the §4.1(c) cost.
    pub fn decode_range(&self, range: PosRange, out: &mut Vec<Value>) -> Result<()> {
        match self {
            EncodedBlock::BitVec(b) => {
                let cov = self.covering();
                if range.is_empty() {
                    return Ok(());
                }
                if !cov.contains(range.start) || !cov.contains(range.end - 1) {
                    return Err(Error::invalid(format!(
                        "range {range} outside bit-vector block {cov}"
                    )));
                }
                let mut full = Vec::with_capacity(b.num_rows() as usize);
                b.decode_all(&mut full);
                let lo = (range.start - cov.start) as usize;
                let hi = (range.end - cov.start) as usize;
                out.extend_from_slice(&full[lo..hi]);
                Ok(())
            }
            other => other.gather_range(range, out),
        }
    }

    /// Visit equal-value runs restricted to `window ∩ covering`.
    pub fn for_each_run_in(&self, window: PosRange, mut f: impl FnMut(Value, PosRange)) {
        let w = self.covering().intersect(&window);
        if w.is_empty() {
            return;
        }
        if w == self.covering() {
            self.for_each_run(f);
            return;
        }
        match self {
            EncodedBlock::Rle(b) => {
                for r in b.runs() {
                    let o = r.range().intersect(&w);
                    if !o.is_empty() {
                        f(r.value, o);
                    }
                }
            }
            other => {
                // Decode the window and coalesce.
                let mut vals = Vec::with_capacity(w.len() as usize);
                other
                    .decode_range(w, &mut vals)
                    .expect("window validated against covering");
                let mut run_val = vals[0];
                let mut run_start = w.start;
                for (i, &v) in vals.iter().enumerate().skip(1) {
                    if v != run_val {
                        f(run_val, PosRange::new(run_start, w.start + i as u64));
                        run_val = v;
                        run_start = w.start + i as u64;
                    }
                }
                f(run_val, PosRange::new(run_start, w.end));
            }
        }
    }

    /// DS3 point form: values at the given ascending absolute positions
    /// (all inside this block), appended to `out`.
    ///
    /// Errors with [`Error::Unsupported`] on bit-vector blocks.
    pub fn gather(&self, positions: &[Pos], out: &mut Vec<Value>) -> Result<()> {
        match self {
            EncodedBlock::Plain(b) => b.gather(positions, out),
            EncodedBlock::Rle(b) => b.gather(positions, out),
            EncodedBlock::BitVec(_) => Err(Error::unsupported(
                "DS3 (position fetch) on a bit-vector block: bit-strings cannot be \
                 probed by position without a scan",
            )),
            EncodedBlock::Dict(b) => b.gather(positions, out),
        }
    }

    /// DS3 range form: values at every position of `range` (which must lie
    /// inside this block), appended to `out`.
    ///
    /// Errors with [`Error::Unsupported`] on bit-vector blocks.
    pub fn gather_range(&self, range: PosRange, out: &mut Vec<Value>) -> Result<()> {
        match self {
            EncodedBlock::Plain(b) => b.gather_range(range, out),
            EncodedBlock::Rle(b) => b.gather_range(range, out),
            EncodedBlock::BitVec(_) => Err(Error::unsupported(
                "DS3 (range fetch) on a bit-vector block",
            )),
            EncodedBlock::Dict(b) => b.gather_range(range, out),
        }
    }

    /// DS4 probe: the value at one absolute position.
    ///
    /// Supported on every codec — on bit-vector blocks it costs O(k)
    /// bit tests (k = distinct values), which is exactly why EM plans on
    /// bit-vector data pay a CPU premium.
    pub fn value_at(&self, pos: Pos) -> Result<Value> {
        match self {
            EncodedBlock::Plain(b) => b.value_at(pos),
            EncodedBlock::Rle(b) => b.value_at(pos),
            EncodedBlock::BitVec(b) => b.value_at(pos),
            EncodedBlock::Dict(b) => b.value_at(pos),
        }
    }

    /// Full decompression: every value of the block in position order,
    /// appended to `out`. This is the paper's "tuple construction requires
    /// decompression" path.
    pub fn decode_all(&self, out: &mut Vec<Value>) {
        match self {
            EncodedBlock::Plain(b) => b.decode_all(out),
            EncodedBlock::Rle(b) => b.decode_all(out),
            EncodedBlock::BitVec(b) => b.decode_all(out),
            EncodedBlock::Dict(b) => b.decode_all(out),
        }
    }

    /// Visit maximal runs of equal values in position order as
    /// `(value, absolute position range)`. RLE blocks visit their stored
    /// runs in O(#runs); other codecs coalesce on the fly. This is what
    /// lets operators (notably the aggregator) work an entire run at a
    /// time — the §2.1.2 "operate directly on compressed data" win.
    pub fn for_each_run(&self, f: impl FnMut(Value, PosRange)) {
        match self {
            EncodedBlock::Plain(b) => b.for_each_run(f),
            EncodedBlock::Rle(b) => b.for_each_run(f),
            EncodedBlock::BitVec(b) => b.for_each_run(f),
            EncodedBlock::Dict(b) => b.for_each_run(f),
        }
    }

    /// Number of runs [`for_each_run`](Self::for_each_run) would visit.
    ///
    /// Computed per codec without materializing values: RLE stores its
    /// runs, plain compares packed bytes, dict compares codes, bit-vector
    /// counts 1-run starts across its bit-strings.
    pub fn num_runs(&self) -> u64 {
        match self {
            EncodedBlock::Plain(b) => b.num_runs(),
            EncodedBlock::Rle(b) => b.runs().len() as u64,
            EncodedBlock::BitVec(b) => b.num_runs(),
            EncodedBlock::Dict(b) => b.num_runs(),
        }
    }

    /// Serialize to the on-disk format (≤ [`BLOCK_SIZE`] bytes).
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1024);
        put_u8(&mut buf, self.encoding().tag());
        let width = match self {
            EncodedBlock::Plain(b) => b.width().bytes() as u8,
            EncodedBlock::Dict(b) => b.code_width() as u8,
            _ => 0,
        };
        put_u8(&mut buf, width);
        put_u16(&mut buf, 0); // reserved
        put_u32(&mut buf, self.num_rows());
        put_u64(&mut buf, self.start_pos());
        debug_assert_eq!(buf.len(), BLOCK_HEADER_SIZE);
        match self {
            EncodedBlock::Plain(b) => b.serialize_payload(&mut buf),
            EncodedBlock::Rle(b) => b.serialize_payload(&mut buf),
            EncodedBlock::BitVec(b) => b.serialize_payload(&mut buf),
            EncodedBlock::Dict(b) => b.serialize_payload(&mut buf),
        }
        debug_assert!(
            buf.len() <= BLOCK_SIZE,
            "serialized block exceeds 64KB: {} bytes",
            buf.len()
        );
        buf
    }

    /// Parse a serialized block.
    pub fn parse(bytes: &[u8]) -> Result<EncodedBlock> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let width = r.u8()?;
        let _reserved = r.u16()?;
        let count = r.u32()?;
        let start_pos = r.u64()?;
        match EncodingKind::from_tag(tag)? {
            EncodingKind::Plain => Ok(EncodedBlock::Plain(PlainBlock::parse_payload(
                start_pos, count, width, &mut r,
            )?)),
            EncodingKind::Rle => Ok(EncodedBlock::Rle(RleBlock::parse_payload(
                start_pos, count, &mut r,
            )?)),
            EncodingKind::BitVec => Ok(EncodedBlock::BitVec(BitVecBlock::parse_payload(
                start_pos, count, &mut r,
            )?)),
            EncodingKind::Dict => Ok(EncodedBlock::Dict(DictBlock::parse_payload(
                start_pos, count, width, &mut r,
            )?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_common::Width;

    fn sample_values() -> Vec<Value> {
        // Semi-sorted with runs, typical of a secondarily-sorted column.
        let mut v = Vec::new();
        for run in 0..20 {
            for _ in 0..(run % 5 + 1) {
                v.push(run % 7);
            }
        }
        v
    }

    fn all_blocks(values: &[Value], start: Pos) -> Vec<EncodedBlock> {
        vec![
            EncodedBlock::Plain(PlainBlock::from_values(start, Width::W4, values)),
            EncodedBlock::Rle(RleBlock::from_values(start, values)),
            EncodedBlock::BitVec(BitVecBlock::from_values(start, values)),
            EncodedBlock::Dict(DictBlock::from_values(start, values)),
        ]
    }

    #[test]
    fn serialize_parse_roundtrip_all_codecs() {
        let values = sample_values();
        for block in all_blocks(&values, 1000) {
            let bytes = block.serialize();
            let back = EncodedBlock::parse(&bytes).unwrap();
            assert_eq!(back.encoding(), block.encoding());
            assert_eq!(back.start_pos(), 1000);
            assert_eq!(back.num_rows() as usize, values.len());
            let mut decoded = Vec::new();
            back.decode_all(&mut decoded);
            assert_eq!(decoded, values, "{:?}", block.encoding());
        }
    }

    #[test]
    fn scan_positions_matches_naive_filter() {
        let values = sample_values();
        let preds = [
            Predicate::lt(3),
            Predicate::eq(0),
            Predicate::ge(5),
            Predicate::ne(2),
            Predicate::between(1, 4),
        ];
        for block in all_blocks(&values, 500) {
            for pred in &preds {
                let expected: Vec<Pos> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| pred.matches(**v))
                    .map(|(i, _)| 500 + i as u64)
                    .collect();
                let got = block.scan_positions(pred).to_vec();
                assert_eq!(got, expected, "{:?} {:?}", block.encoding(), pred);
            }
        }
    }

    #[test]
    fn scan_pairs_matches_naive_filter() {
        let values = sample_values();
        let pred = Predicate::lt(4);
        for block in all_blocks(&values, 0) {
            let mut pos = Vec::new();
            let mut val = Vec::new();
            block.scan_pairs(&pred, &mut pos, &mut val);
            let expected: Vec<(Pos, Value)> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| pred.matches(**v))
                .map(|(i, v)| (i as u64, *v))
                .collect();
            let got: Vec<(Pos, Value)> = pos.into_iter().zip(val).collect();
            assert_eq!(got, expected, "{:?}", block.encoding());
        }
    }

    #[test]
    fn gather_matches_index_and_bitvec_errors() {
        let values = sample_values();
        let positions: Vec<Pos> = vec![0, 5, 17, 40, values.len() as u64 - 1];
        for block in all_blocks(&values, 0) {
            let mut out = Vec::new();
            let r = block.gather(&positions, &mut out);
            if block.encoding() == EncodingKind::BitVec {
                assert!(matches!(r, Err(Error::Unsupported(_))));
            } else {
                r.unwrap();
                let expected: Vec<Value> = positions.iter().map(|&p| values[p as usize]).collect();
                assert_eq!(out, expected, "{:?}", block.encoding());
            }
        }
    }

    #[test]
    fn gather_range_matches_slice() {
        let values = sample_values();
        for block in all_blocks(&values, 100) {
            let mut out = Vec::new();
            let r = block.gather_range(PosRange::new(110, 130), &mut out);
            if block.encoding() == EncodingKind::BitVec {
                assert!(r.is_err());
            } else {
                r.unwrap();
                assert_eq!(out, &values[10..30], "{:?}", block.encoding());
            }
        }
    }

    #[test]
    fn value_at_all_codecs() {
        let values = sample_values();
        for block in all_blocks(&values, 7) {
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(
                    block.value_at(7 + i as u64).unwrap(),
                    v,
                    "{:?} at {i}",
                    block.encoding()
                );
            }
            assert!(block.value_at(7 + values.len() as u64).is_err());
            assert!(block.value_at(6).is_err());
        }
    }

    #[test]
    fn for_each_run_coalesces_equal_values() {
        let values = vec![5, 5, 5, 2, 2, 9];
        for block in all_blocks(&values, 0) {
            let mut runs = Vec::new();
            block.for_each_run(|v, r| runs.push((v, r.start, r.end)));
            assert_eq!(
                runs,
                vec![(5, 0, 3), (2, 3, 5), (9, 5, 6)],
                "{:?}",
                block.encoding()
            );
        }
    }

    #[test]
    fn covering_and_num_runs() {
        let values = vec![1, 1, 2];
        let b = EncodedBlock::Rle(RleBlock::from_values(10, &values));
        assert_eq!(b.covering(), PosRange::new(10, 13));
        assert_eq!(b.num_runs(), 2);
    }

    #[test]
    fn num_runs_matches_for_each_run_on_every_codec() {
        for values in [sample_values(), vec![7; 50], vec![-3], Vec::new()] {
            for block in all_blocks(&values, 40) {
                let mut n = 0;
                block.for_each_run(|_, _| n += 1);
                assert_eq!(block.num_runs(), n, "{:?} {values:?}", block.encoding());
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(EncodedBlock::parse(&[]).is_err());
        let mut bytes = all_blocks(&[1, 2, 3], 0)[0].serialize();
        bytes[0] = 99; // invalid tag
        assert!(EncodedBlock::parse(&bytes).is_err());
    }

    #[test]
    fn scan_positions_in_matches_clipped_full_scan() {
        let values = sample_values();
        let windows = [
            PosRange::new(500, 520),
            PosRange::new(505, 540),
            PosRange::new(0, 10_000),
            PosRange::new(490, 501),
            PosRange::empty(),
        ];
        for block in all_blocks(&values, 500) {
            for pred in [Predicate::lt(3), Predicate::eq(2), Predicate::ne(4)] {
                for w in windows {
                    let expected = block.scan_positions(&pred).clip(w).to_vec();
                    let got = block.scan_positions_in(&pred, w).to_vec();
                    assert_eq!(got, expected, "{:?} {pred:?} {w}", block.encoding());
                }
            }
        }
    }

    #[test]
    fn scan_pairs_in_matches_clipped_full_scan() {
        let values = sample_values();
        let w = PosRange::new(505, 540);
        let pred = Predicate::lt(4);
        for block in all_blocks(&values, 500) {
            let (mut fp, mut fv) = (Vec::new(), Vec::new());
            block.scan_pairs(&pred, &mut fp, &mut fv);
            let expected: Vec<(Pos, Value)> = fp
                .into_iter()
                .zip(fv)
                .filter(|(p, _)| w.contains(*p))
                .collect();
            let (mut gp, mut gv) = (Vec::new(), Vec::new());
            block.scan_pairs_in(&pred, w, &mut gp, &mut gv);
            let got: Vec<(Pos, Value)> = gp.into_iter().zip(gv).collect();
            assert_eq!(got, expected, "{:?}", block.encoding());
        }
    }

    #[test]
    fn decode_range_supported_on_all_codecs() {
        let values = sample_values();
        for block in all_blocks(&values, 100) {
            let mut out = Vec::new();
            block
                .decode_range(PosRange::new(110, 130), &mut out)
                .unwrap();
            assert_eq!(out, &values[10..30], "{:?}", block.encoding());
            // Out-of-block ranges are rejected.
            assert!(block.decode_range(PosRange::new(90, 95), &mut out).is_err());
        }
    }

    #[test]
    fn for_each_run_in_clips_runs() {
        let values = vec![5, 5, 5, 2, 2, 9, 9];
        for block in all_blocks(&values, 10) {
            let mut runs = Vec::new();
            block.for_each_run_in(PosRange::new(11, 16), |v, r| runs.push((v, r.start, r.end)));
            assert_eq!(
                runs,
                vec![(5, 11, 13), (2, 13, 15), (9, 15, 16)],
                "{:?}",
                block.encoding()
            );
            // Disjoint window: nothing.
            let mut n = 0;
            block.for_each_run_in(PosRange::new(100, 200), |_, _| n += 1);
            assert_eq!(n, 0);
        }
    }
}
