//! Dictionary encoded blocks (extension codec).
//!
//! Not part of the paper's experiments, but part of the compression
//! toolkit column stores rely on ([3] in the paper evaluates it): a
//! per-block table of distinct values plus a packed array of narrow
//! codes. Unlike bit-vector encoding, dictionary blocks support position
//! fetch (DS3) in O(1), so every materialization strategy runs on them.

use std::collections::HashMap;

use matstrat_common::{codeops, CodePredicate, Error, Pos, PosRange, Predicate, Result, Value};
use matstrat_poslist::{Bitmap, PosList};

use crate::wire::{put_i64, put_u32, Reader};
use crate::BLOCK_SIZE;

use super::BLOCK_HEADER_SIZE;

/// A dictionary encoded block.
#[derive(Debug, Clone, PartialEq)]
pub struct DictBlock {
    start_pos: Pos,
    /// Distinct values; codes index this table. First-appearance order
    /// for per-block dictionaries, ascending for shared dictionaries.
    dict: Vec<Value>,
    /// One code per row.
    codes: Vec<u32>,
    /// Content hash of `dict` (see [`dict_fingerprint`]): two columns
    /// whose blocks carry equal fingerprints use the same code space, so
    /// joins can compare codes instead of decoded values.
    fingerprint: u64,
}

/// Smallest byte width that can hold codes `0..k`.
fn code_width_for(k: usize) -> usize {
    if k <= 1 << 8 {
        1
    } else if k <= 1 << 16 {
        2
    } else {
        4
    }
}

/// Content fingerprint of a dictionary: FNV-1a over the entry count and
/// every value, so equal fingerprints mean (up to hash collision, which
/// consumers guard against by comparing the dictionaries themselves)
/// that two blocks assign identical codes to identical values.
pub fn dict_fingerprint(dict: &[Value]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in (dict.len() as u64).to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(PRIME);
    }
    for &v in dict {
        for byte in v.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
    }
    h
}

impl DictBlock {
    /// Serialized size for `k` distinct values and `rows` rows.
    pub fn encoded_size(k: usize, rows: usize) -> usize {
        BLOCK_HEADER_SIZE + 4 + k * 8 + rows * code_width_for(k)
    }

    /// Encode `values`.
    ///
    /// # Panics
    /// Panics if the block would exceed 64 KB.
    pub fn from_values(start_pos: Pos, values: &[Value]) -> DictBlock {
        // First-appearance code assignment, indexed by a hash map so
        // encoding is O(n) instead of O(n·k). The emitted dictionary and
        // codes are byte-identical to the old linear-probe loop.
        let mut dict: Vec<Value> = Vec::new();
        let mut index: HashMap<Value, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for &v in values {
            let code = *index.entry(v).or_insert_with(|| {
                dict.push(v);
                (dict.len() - 1) as u32
            });
            codes.push(code);
        }
        assert!(
            Self::encoded_size(dict.len(), values.len()) <= BLOCK_SIZE,
            "dict block overflow: k={} rows={}",
            dict.len(),
            values.len()
        );
        let fingerprint = dict_fingerprint(&dict);
        DictBlock {
            start_pos,
            dict,
            codes,
            fingerprint,
        }
    }

    /// Encode `values` against a caller-provided dictionary instead of a
    /// per-block one — the shared-dictionary path: every block encoded
    /// against the same table carries the same fingerprint and the same
    /// value↔code mapping, so predicates, probes, and aggregates can
    /// compare codes across blocks (and across columns, e.g. a fact
    /// foreign key against the dimension key it references).
    ///
    /// Errors if a value is absent from `dict`; panics (like
    /// [`from_values`](Self::from_values)) if the block would exceed
    /// 64 KB.
    pub fn from_values_shared(
        start_pos: Pos,
        values: &[Value],
        dict: &[Value],
    ) -> Result<DictBlock> {
        let index: HashMap<Value, u32> = dict
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut codes = Vec::with_capacity(values.len());
        for &v in values {
            match index.get(&v) {
                Some(&c) => codes.push(c),
                None => {
                    return Err(Error::invalid(format!(
                        "value {v} not in the shared dictionary ({} entries)",
                        dict.len()
                    )))
                }
            }
        }
        assert!(
            Self::encoded_size(dict.len(), values.len()) <= BLOCK_SIZE,
            "dict block overflow: k={} rows={}",
            dict.len(),
            values.len()
        );
        Ok(DictBlock {
            start_pos,
            dict: dict.to_vec(),
            codes,
            fingerprint: dict_fingerprint(dict),
        })
    }

    /// Absolute position of the first row.
    #[inline]
    pub fn start_pos(&self) -> Pos {
        self.start_pos
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.codes.len() as u32
    }

    /// The dictionary (distinct values).
    #[inline]
    pub fn dictionary(&self) -> &[Value] {
        &self.dict
    }

    /// The packed codes, one per row in position order.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Content fingerprint of the dictionary (see [`dict_fingerprint`]).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Byte width codes are packed at on disk.
    pub fn code_width(&self) -> usize {
        code_width_for(self.dict.len())
    }

    /// DS3 point fetch of *codes* (no value decode).
    pub fn gather_codes(&self, positions: &[Pos], out: &mut Vec<u32>) -> Result<()> {
        out.reserve(positions.len());
        for &p in positions {
            let idx = self.check_pos(p)?;
            out.push(self.codes[idx]);
        }
        Ok(())
    }

    fn check_pos(&self, pos: Pos) -> Result<usize> {
        if pos < self.start_pos || pos >= self.start_pos + self.codes.len() as u64 {
            return Err(Error::invalid(format!("position {pos} outside dict block")));
        }
        Ok((pos - self.start_pos) as usize)
    }

    /// DS1: translate the predicate into the code domain once, then test
    /// packed codes only — values are never decoded.
    pub fn scan_positions(&self, pred: &Predicate) -> PosList {
        self.scan_positions_span(pred, 0, self.codes.len())
    }

    /// DS2: matching (pos, value) pairs. The filter runs on codes; only
    /// matching rows decode (one dictionary index each).
    pub fn scan_pairs(&self, pred: &Predicate, out_pos: &mut Vec<Pos>, out_val: &mut Vec<Value>) {
        self.scan_pairs_span(pred, 0, self.codes.len(), out_pos, out_val);
    }

    /// DS1 restricted to `window` (already intersected with the covering
    /// range by the caller).
    pub fn scan_positions_in(&self, pred: &Predicate, window: PosRange) -> PosList {
        let lo = (window.start - self.start_pos) as usize;
        let hi = (window.end - self.start_pos) as usize;
        self.scan_positions_span(pred, lo, hi)
    }

    /// DS2 restricted to `window`.
    pub fn scan_pairs_in(
        &self,
        pred: &Predicate,
        window: PosRange,
        out_pos: &mut Vec<Pos>,
        out_val: &mut Vec<Value>,
    ) {
        let lo = (window.start - self.start_pos) as usize;
        let hi = (window.end - self.start_pos) as usize;
        self.scan_pairs_span(pred, lo, hi, out_pos, out_val);
    }

    fn scan_positions_span(&self, pred: &Predicate, lo: usize, hi: usize) -> PosList {
        let cp = pred.to_code_domain(&self.dict);
        codeops::add((hi - lo) as u64);
        let span = PosRange::new(self.start_pos + lo as u64, self.start_pos + hi as u64);
        // Dictionary codes are unsorted, so matches arrive as scattered
        // singletons; the predicate dispatch runs once per span and each
        // variant fills a bit-map with one branch-free OR per code.
        match &cp {
            CodePredicate::None => PosList::empty(),
            CodePredicate::All => PosList::full(span),
            CodePredicate::Eq(k) => self.fill_span_bitmap(span, lo, hi, |c| c == *k),
            CodePredicate::Ne(k) => self.fill_span_bitmap(span, lo, hi, |c| c != *k),
            CodePredicate::Range(clo, chi) => {
                self.fill_span_bitmap(span, lo, hi, |c| c >= *clo && c <= *chi)
            }
            // Codes are dictionary indices by construction, so the table
            // variant indexes without a bounds probe.
            CodePredicate::Table(t) => self.fill_span_bitmap(span, lo, hi, |c| t[c as usize]),
        }
    }

    /// Evaluate `matches` over the span's codes 64 at a time, packing the
    /// outcomes straight into bitmap words.
    fn fill_span_bitmap(
        &self,
        span: PosRange,
        lo: usize,
        hi: usize,
        matches: impl Fn(u32) -> bool,
    ) -> PosList {
        let mut words = vec![0u64; (hi - lo).div_ceil(64)];
        for (chunk, word) in self.codes[lo..hi].chunks(64).zip(words.iter_mut()) {
            let mut bits = 0u64;
            for (b, &c) in chunk.iter().enumerate() {
                bits |= (matches(c) as u64) << b;
            }
            *word = bits;
        }
        PosList::Bitmap(Bitmap::from_words(span, words))
    }

    fn scan_pairs_span(
        &self,
        pred: &Predicate,
        lo: usize,
        hi: usize,
        out_pos: &mut Vec<Pos>,
        out_val: &mut Vec<Value>,
    ) {
        let cp = pred.to_code_domain(&self.dict);
        codeops::add((hi - lo) as u64);
        if cp.matches_nothing() {
            return;
        }
        for i in lo..hi {
            let c = self.codes[i];
            if cp.matches_code(c) {
                out_pos.push(self.start_pos + i as u64);
                out_val.push(self.dict[c as usize]);
            }
        }
    }

    /// DS3 point fetch (O(1) per position).
    pub fn gather(&self, positions: &[Pos], out: &mut Vec<Value>) -> Result<()> {
        out.reserve(positions.len());
        for &p in positions {
            let idx = self.check_pos(p)?;
            out.push(self.dict[self.codes[idx] as usize]);
        }
        Ok(())
    }

    /// DS3 range fetch.
    pub fn gather_range(&self, range: PosRange, out: &mut Vec<Value>) -> Result<()> {
        if range.is_empty() {
            return Ok(());
        }
        let lo = self.check_pos(range.start)?;
        let hi = self.check_pos(range.end - 1)? + 1;
        out.reserve(hi - lo);
        for &c in &self.codes[lo..hi] {
            out.push(self.dict[c as usize]);
        }
        Ok(())
    }

    /// DS4 probe.
    pub fn value_at(&self, pos: Pos) -> Result<Value> {
        let idx = self.check_pos(pos)?;
        Ok(self.dict[self.codes[idx] as usize])
    }

    /// Full decompression in position order.
    pub fn decode_all(&self, out: &mut Vec<Value>) {
        out.reserve(self.codes.len());
        for &c in &self.codes {
            out.push(self.dict[c as usize]);
        }
    }

    /// Number of maximal equal-value runs: one pass of code compares, no
    /// value decode. (Codes map 1:1 to values, so code transitions are
    /// exactly value transitions.)
    pub fn num_runs(&self) -> u64 {
        if self.codes.is_empty() {
            return 0;
        }
        self.codes.windows(2).filter(|w| w[0] != w[1]).count() as u64 + 1
    }

    /// Visit equal-value runs (coalesced over codes, no value decode until
    /// the run is emitted).
    pub fn for_each_run(&self, mut f: impl FnMut(Value, PosRange)) {
        if self.codes.is_empty() {
            return;
        }
        let mut run_code = self.codes[0];
        let mut run_start = self.start_pos;
        for (i, &c) in self.codes.iter().enumerate().skip(1) {
            if c != run_code {
                f(
                    self.dict[run_code as usize],
                    PosRange::new(run_start, self.start_pos + i as u64),
                );
                run_code = c;
                run_start = self.start_pos + i as u64;
            }
        }
        f(
            self.dict[run_code as usize],
            PosRange::new(run_start, self.start_pos + self.codes.len() as u64),
        );
    }

    /// Append the codec payload to `buf`.
    pub fn serialize_payload(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.dict.len() as u32);
        for &v in &self.dict {
            put_i64(buf, v);
        }
        match self.code_width() {
            1 => {
                for &c in &self.codes {
                    buf.push(c as u8);
                }
            }
            2 => {
                for &c in &self.codes {
                    buf.extend_from_slice(&(c as u16).to_le_bytes());
                }
            }
            _ => {
                for &c in &self.codes {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }

    /// Parse the codec payload.
    pub fn parse_payload(
        start_pos: Pos,
        count: u32,
        width: u8,
        r: &mut Reader<'_>,
    ) -> Result<DictBlock> {
        let k = r.u32()? as usize;
        let mut dict = Vec::with_capacity(k);
        for _ in 0..k {
            dict.push(r.i64()?);
        }
        let mut codes = Vec::with_capacity(count as usize);
        match width {
            1 => {
                let bytes = r.bytes(count as usize)?;
                codes.extend(bytes.iter().map(|&b| b as u32));
            }
            2 => {
                let bytes = r.bytes(count as usize * 2)?;
                codes.extend(
                    bytes
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes(c.try_into().unwrap()) as u32),
                );
            }
            4 => {
                let bytes = r.bytes(count as usize * 4)?;
                codes.extend(
                    bytes
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
                );
            }
            w => return Err(Error::corrupt(format!("bad dict code width {w}"))),
        }
        for &c in &codes {
            if c as usize >= k {
                return Err(Error::corrupt(format!(
                    "dict code {c} out of range (k={k})"
                )));
            }
        }
        let fingerprint = dict_fingerprint(&dict);
        Ok(DictBlock {
            start_pos,
            dict,
            codes,
            fingerprint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let vals = vec![100, 200, 100, 300, 200, 100];
        let b = DictBlock::from_values(0, &vals);
        assert_eq!(b.dictionary(), &[100, 200, 300]);
        let mut out = Vec::new();
        b.decode_all(&mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn scan_positions_via_dictionary() {
        let b = DictBlock::from_values(10, &[100, 200, 100, 300]);
        let pl = b.scan_positions(&Predicate::le(200));
        assert_eq!(pl.to_vec(), vec![10, 11, 12]);
    }

    #[test]
    fn gather_and_value_at() {
        let b = DictBlock::from_values(5, &[7, 8, 9]);
        let mut out = Vec::new();
        b.gather(&[5, 7], &mut out).unwrap();
        assert_eq!(out, vec![7, 9]);
        assert_eq!(b.value_at(6).unwrap(), 8);
        assert!(b.value_at(8).is_err());
    }

    #[test]
    fn code_width_scales_with_cardinality() {
        assert_eq!(code_width_for(2), 1);
        assert_eq!(code_width_for(256), 1);
        assert_eq!(code_width_for(257), 2);
        assert_eq!(code_width_for(70_000), 4);
    }

    #[test]
    fn wide_dictionary_roundtrip() {
        // Force 2-byte codes: 300 distinct values.
        let vals: Vec<Value> = (0..300).map(|i| i * 1000).collect();
        let b = DictBlock::from_values(0, &vals);
        assert_eq!(b.code_width(), 2);
        let mut buf = Vec::new();
        b.serialize_payload(&mut buf);
        let mut r = Reader::new(&buf);
        let back = DictBlock::parse_payload(0, 300, 2, &mut r).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn hashed_encoding_keeps_first_appearance_order() {
        // The dictionary (and therefore every code) must be identical to
        // what the old linear-probe loop emitted: first-appearance order.
        let vals = vec![50, 20, 50, 90, 20, 20, 10, 90];
        let b = DictBlock::from_values(0, &vals);
        assert_eq!(b.dictionary(), &[50, 20, 90, 10]);
        assert_eq!(b.codes(), &[0, 1, 0, 2, 1, 1, 3, 2]);
    }

    #[test]
    fn shared_dict_blocks_agree_on_codes_and_fingerprint() {
        let dict = vec![10, 20, 30, 40];
        let a = DictBlock::from_values_shared(0, &[20, 40, 20], &dict).unwrap();
        let b = DictBlock::from_values_shared(100, &[40, 10], &dict).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.codes(), &[1, 3, 1]);
        assert_eq!(b.codes(), &[3, 0]);
        // A per-block dictionary over the same values assigns different
        // codes (first-appearance order) and a different fingerprint.
        let c = DictBlock::from_values(0, &[20, 40, 20]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Values outside the dictionary are rejected.
        assert!(DictBlock::from_values_shared(0, &[99], &dict).is_err());
    }

    #[test]
    fn fingerprint_survives_serialization() {
        let dict = vec![10, 20, 30];
        let b = DictBlock::from_values_shared(0, &[30, 10, 20, 20], &dict).unwrap();
        let mut buf = Vec::new();
        b.serialize_payload(&mut buf);
        let mut r = Reader::new(&buf);
        let back = DictBlock::parse_payload(0, 4, 1, &mut r).unwrap();
        assert_eq!(back.fingerprint(), b.fingerprint());
        assert_eq!(back, b);
    }

    #[test]
    fn shared_sorted_dict_scans_ranges_without_tables() {
        // A shared dictionary is sorted, so range predicates translate to
        // code ranges; the scan result must match value-domain filtering.
        let dict = vec![10, 20, 30, 40];
        let vals = vec![40, 10, 30, 20, 30, 40];
        let b = DictBlock::from_values_shared(0, &vals, &dict).unwrap();
        let pl = b.scan_positions(&Predicate::between(15, 35));
        let expect: Vec<Pos> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| (15..=35).contains(&v))
            .map(|(i, _)| i as Pos)
            .collect();
        assert_eq!(pl.to_vec(), expect);
    }

    #[test]
    fn gather_codes_matches_decoded_gather() {
        let b = DictBlock::from_values(5, &[7, 8, 9, 7]);
        let mut codes = Vec::new();
        b.gather_codes(&[5, 8, 6], &mut codes).unwrap();
        assert_eq!(codes, vec![0, 0, 1]);
        assert!(b.gather_codes(&[99], &mut codes).is_err());
    }

    #[test]
    fn scans_record_code_ops() {
        let b = DictBlock::from_values(0, &[1, 2, 1, 3]);
        let before = matstrat_common::codeops::snapshot();
        b.scan_positions(&Predicate::eq(2));
        assert_eq!(matstrat_common::codeops::snapshot() - before, 4);
    }

    #[test]
    fn parse_rejects_out_of_range_codes() {
        let b = DictBlock::from_values(0, &[1, 2]);
        let mut buf = Vec::new();
        b.serialize_payload(&mut buf);
        // Corrupt a code byte to 9 (k = 2).
        let last = buf.len() - 1;
        buf[last] = 9;
        let mut r = Reader::new(&buf);
        assert!(DictBlock::parse_payload(0, 2, 1, &mut r).is_err());
    }
}
