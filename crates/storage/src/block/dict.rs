//! Dictionary encoded blocks (extension codec).
//!
//! Not part of the paper's experiments, but part of the compression
//! toolkit column stores rely on ([3] in the paper evaluates it): a
//! per-block table of distinct values plus a packed array of narrow
//! codes. Unlike bit-vector encoding, dictionary blocks support position
//! fetch (DS3) in O(1), so every materialization strategy runs on them.

use matstrat_common::{Error, Pos, PosRange, Predicate, Result, Value};
use matstrat_poslist::{PosList, PosListBuilder};

use crate::wire::{put_i64, put_u32, Reader};
use crate::BLOCK_SIZE;

use super::BLOCK_HEADER_SIZE;

/// A dictionary encoded block.
#[derive(Debug, Clone, PartialEq)]
pub struct DictBlock {
    start_pos: Pos,
    /// Distinct values in first-appearance order; codes index this table.
    dict: Vec<Value>,
    /// One code per row.
    codes: Vec<u32>,
}

/// Smallest byte width that can hold codes `0..k`.
fn code_width_for(k: usize) -> usize {
    if k <= 1 << 8 {
        1
    } else if k <= 1 << 16 {
        2
    } else {
        4
    }
}

impl DictBlock {
    /// Serialized size for `k` distinct values and `rows` rows.
    pub fn encoded_size(k: usize, rows: usize) -> usize {
        BLOCK_HEADER_SIZE + 4 + k * 8 + rows * code_width_for(k)
    }

    /// Encode `values`.
    ///
    /// # Panics
    /// Panics if the block would exceed 64 KB.
    pub fn from_values(start_pos: Pos, values: &[Value]) -> DictBlock {
        let mut dict: Vec<Value> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for &v in values {
            let code = match dict.iter().position(|&d| d == v) {
                Some(i) => i,
                None => {
                    dict.push(v);
                    dict.len() - 1
                }
            };
            codes.push(code as u32);
        }
        assert!(
            Self::encoded_size(dict.len(), values.len()) <= BLOCK_SIZE,
            "dict block overflow: k={} rows={}",
            dict.len(),
            values.len()
        );
        DictBlock {
            start_pos,
            dict,
            codes,
        }
    }

    /// Absolute position of the first row.
    #[inline]
    pub fn start_pos(&self) -> Pos {
        self.start_pos
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.codes.len() as u32
    }

    /// The dictionary (distinct values).
    #[inline]
    pub fn dictionary(&self) -> &[Value] {
        &self.dict
    }

    /// Byte width codes are packed at on disk.
    pub fn code_width(&self) -> usize {
        code_width_for(self.dict.len())
    }

    fn check_pos(&self, pos: Pos) -> Result<usize> {
        if pos < self.start_pos || pos >= self.start_pos + self.codes.len() as u64 {
            return Err(Error::invalid(format!("position {pos} outside dict block")));
        }
        Ok((pos - self.start_pos) as usize)
    }

    /// DS1: evaluate the predicate once per dictionary entry, then test
    /// codes against the resulting small match table.
    pub fn scan_positions(&self, pred: &Predicate) -> PosList {
        let matches: Vec<bool> = self.dict.iter().map(|&v| pred.matches(v)).collect();
        let mut b = PosListBuilder::new();
        for (i, &c) in self.codes.iter().enumerate() {
            if matches[c as usize] {
                b.push(self.start_pos + i as u64);
            }
        }
        b.finish()
    }

    /// DS2: matching (pos, value) pairs.
    pub fn scan_pairs(&self, pred: &Predicate, out_pos: &mut Vec<Pos>, out_val: &mut Vec<Value>) {
        let matches: Vec<bool> = self.dict.iter().map(|&v| pred.matches(v)).collect();
        for (i, &c) in self.codes.iter().enumerate() {
            if matches[c as usize] {
                out_pos.push(self.start_pos + i as u64);
                out_val.push(self.dict[c as usize]);
            }
        }
    }

    /// DS1 restricted to `window` (already intersected with the covering
    /// range by the caller).
    pub fn scan_positions_in(&self, pred: &Predicate, window: PosRange) -> PosList {
        let matches: Vec<bool> = self.dict.iter().map(|&v| pred.matches(v)).collect();
        let lo = (window.start - self.start_pos) as usize;
        let hi = (window.end - self.start_pos) as usize;
        let mut b = PosListBuilder::new();
        for i in lo..hi {
            if matches[self.codes[i] as usize] {
                b.push(self.start_pos + i as u64);
            }
        }
        b.finish()
    }

    /// DS2 restricted to `window`.
    pub fn scan_pairs_in(
        &self,
        pred: &Predicate,
        window: PosRange,
        out_pos: &mut Vec<Pos>,
        out_val: &mut Vec<Value>,
    ) {
        let matches: Vec<bool> = self.dict.iter().map(|&v| pred.matches(v)).collect();
        let lo = (window.start - self.start_pos) as usize;
        let hi = (window.end - self.start_pos) as usize;
        for i in lo..hi {
            let c = self.codes[i] as usize;
            if matches[c] {
                out_pos.push(self.start_pos + i as u64);
                out_val.push(self.dict[c]);
            }
        }
    }

    /// DS3 point fetch (O(1) per position).
    pub fn gather(&self, positions: &[Pos], out: &mut Vec<Value>) -> Result<()> {
        out.reserve(positions.len());
        for &p in positions {
            let idx = self.check_pos(p)?;
            out.push(self.dict[self.codes[idx] as usize]);
        }
        Ok(())
    }

    /// DS3 range fetch.
    pub fn gather_range(&self, range: PosRange, out: &mut Vec<Value>) -> Result<()> {
        if range.is_empty() {
            return Ok(());
        }
        let lo = self.check_pos(range.start)?;
        let hi = self.check_pos(range.end - 1)? + 1;
        out.reserve(hi - lo);
        for &c in &self.codes[lo..hi] {
            out.push(self.dict[c as usize]);
        }
        Ok(())
    }

    /// DS4 probe.
    pub fn value_at(&self, pos: Pos) -> Result<Value> {
        let idx = self.check_pos(pos)?;
        Ok(self.dict[self.codes[idx] as usize])
    }

    /// Full decompression in position order.
    pub fn decode_all(&self, out: &mut Vec<Value>) {
        out.reserve(self.codes.len());
        for &c in &self.codes {
            out.push(self.dict[c as usize]);
        }
    }

    /// Visit equal-value runs (coalesced over codes, no value decode until
    /// the run is emitted).
    pub fn for_each_run(&self, mut f: impl FnMut(Value, PosRange)) {
        if self.codes.is_empty() {
            return;
        }
        let mut run_code = self.codes[0];
        let mut run_start = self.start_pos;
        for (i, &c) in self.codes.iter().enumerate().skip(1) {
            if c != run_code {
                f(
                    self.dict[run_code as usize],
                    PosRange::new(run_start, self.start_pos + i as u64),
                );
                run_code = c;
                run_start = self.start_pos + i as u64;
            }
        }
        f(
            self.dict[run_code as usize],
            PosRange::new(run_start, self.start_pos + self.codes.len() as u64),
        );
    }

    /// Append the codec payload to `buf`.
    pub fn serialize_payload(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.dict.len() as u32);
        for &v in &self.dict {
            put_i64(buf, v);
        }
        match self.code_width() {
            1 => {
                for &c in &self.codes {
                    buf.push(c as u8);
                }
            }
            2 => {
                for &c in &self.codes {
                    buf.extend_from_slice(&(c as u16).to_le_bytes());
                }
            }
            _ => {
                for &c in &self.codes {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }

    /// Parse the codec payload.
    pub fn parse_payload(
        start_pos: Pos,
        count: u32,
        width: u8,
        r: &mut Reader<'_>,
    ) -> Result<DictBlock> {
        let k = r.u32()? as usize;
        let mut dict = Vec::with_capacity(k);
        for _ in 0..k {
            dict.push(r.i64()?);
        }
        let mut codes = Vec::with_capacity(count as usize);
        match width {
            1 => {
                let bytes = r.bytes(count as usize)?;
                codes.extend(bytes.iter().map(|&b| b as u32));
            }
            2 => {
                let bytes = r.bytes(count as usize * 2)?;
                codes.extend(
                    bytes
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes(c.try_into().unwrap()) as u32),
                );
            }
            4 => {
                let bytes = r.bytes(count as usize * 4)?;
                codes.extend(
                    bytes
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
                );
            }
            w => return Err(Error::corrupt(format!("bad dict code width {w}"))),
        }
        for &c in &codes {
            if c as usize >= k {
                return Err(Error::corrupt(format!(
                    "dict code {c} out of range (k={k})"
                )));
            }
        }
        Ok(DictBlock {
            start_pos,
            dict,
            codes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let vals = vec![100, 200, 100, 300, 200, 100];
        let b = DictBlock::from_values(0, &vals);
        assert_eq!(b.dictionary(), &[100, 200, 300]);
        let mut out = Vec::new();
        b.decode_all(&mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn scan_positions_via_dictionary() {
        let b = DictBlock::from_values(10, &[100, 200, 100, 300]);
        let pl = b.scan_positions(&Predicate::le(200));
        assert_eq!(pl.to_vec(), vec![10, 11, 12]);
    }

    #[test]
    fn gather_and_value_at() {
        let b = DictBlock::from_values(5, &[7, 8, 9]);
        let mut out = Vec::new();
        b.gather(&[5, 7], &mut out).unwrap();
        assert_eq!(out, vec![7, 9]);
        assert_eq!(b.value_at(6).unwrap(), 8);
        assert!(b.value_at(8).is_err());
    }

    #[test]
    fn code_width_scales_with_cardinality() {
        assert_eq!(code_width_for(2), 1);
        assert_eq!(code_width_for(256), 1);
        assert_eq!(code_width_for(257), 2);
        assert_eq!(code_width_for(70_000), 4);
    }

    #[test]
    fn wide_dictionary_roundtrip() {
        // Force 2-byte codes: 300 distinct values.
        let vals: Vec<Value> = (0..300).map(|i| i * 1000).collect();
        let b = DictBlock::from_values(0, &vals);
        assert_eq!(b.code_width(), 2);
        let mut buf = Vec::new();
        b.serialize_payload(&mut buf);
        let mut r = Reader::new(&buf);
        let back = DictBlock::parse_payload(0, 300, 2, &mut r).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn parse_rejects_out_of_range_codes() {
        let b = DictBlock::from_values(0, &[1, 2]);
        let mut buf = Vec::new();
        b.serialize_payload(&mut buf);
        // Corrupt a code byte to 9 (k = 2).
        let last = buf.len() - 1;
        buf[last] = 9;
        let mut r = Reader::new(&buf);
        assert!(DictBlock::parse_payload(0, 2, 1, &mut r).is_err());
    }
}
