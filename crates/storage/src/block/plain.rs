//! Uncompressed (plain) blocks: values packed at a fixed byte width.

use matstrat_common::{Error, Pos, PosRange, Predicate, Result, Value, Width};
use matstrat_poslist::{PosList, PosListBuilder};

use crate::wire::Reader;
use crate::BLOCK_SIZE;

use super::BLOCK_HEADER_SIZE;

/// A block of values packed contiguously at [`Width`] bytes each.
///
/// The payload stays in its packed byte form in memory; accessors decode
/// individual values with sign extension. A 64 KB block at width 1 holds
/// ~65 K values, which is what makes the paper's uncompressed LINENUM
/// column (60 M rows) occupy 916 blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct PlainBlock {
    start_pos: Pos,
    width: Width,
    raw: Vec<u8>,
    count: u32,
}

impl PlainBlock {
    /// Maximum number of rows a plain block of `width` can hold.
    pub fn capacity(width: Width) -> usize {
        (BLOCK_SIZE - BLOCK_HEADER_SIZE) / width.bytes()
    }

    /// Encode `values` (must fit `width` and `capacity`).
    ///
    /// # Panics
    /// Panics if a value does not fit the width or the block would
    /// overflow 64 KB.
    pub fn from_values(start_pos: Pos, width: Width, values: &[Value]) -> PlainBlock {
        assert!(
            values.len() <= Self::capacity(width),
            "plain block overflow: {} values at width {width}",
            values.len()
        );
        let mut raw = Vec::with_capacity(values.len() * width.bytes());
        for &v in values {
            assert!(width.fits(v), "value {v} does not fit width {width}");
            match width {
                Width::W1 => raw.extend_from_slice(&(v as i8).to_le_bytes()),
                Width::W2 => raw.extend_from_slice(&(v as i16).to_le_bytes()),
                Width::W4 => raw.extend_from_slice(&(v as i32).to_le_bytes()),
                Width::W8 => raw.extend_from_slice(&v.to_le_bytes()),
            }
        }
        PlainBlock {
            start_pos,
            width,
            raw,
            count: values.len() as u32,
        }
    }

    /// Absolute position of the first row.
    #[inline]
    pub fn start_pos(&self) -> Pos {
        self.start_pos
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.count
    }

    /// Byte width of each packed value.
    #[inline]
    pub fn width(&self) -> Width {
        self.width
    }

    /// Decode the value at row index `idx` (0-based within the block).
    #[inline(always)]
    fn decode_idx(&self, idx: usize) -> Value {
        let w = self.width.bytes();
        let o = idx * w;
        match self.width {
            Width::W1 => self.raw[o] as i8 as i64,
            Width::W2 => i16::from_le_bytes(self.raw[o..o + 2].try_into().unwrap()) as i64,
            Width::W4 => i32::from_le_bytes(self.raw[o..o + 4].try_into().unwrap()) as i64,
            Width::W8 => i64::from_le_bytes(self.raw[o..o + 8].try_into().unwrap()),
        }
    }

    fn check_pos(&self, pos: Pos) -> Result<usize> {
        if pos < self.start_pos || pos >= self.start_pos + self.count as u64 {
            return Err(Error::invalid(format!(
                "position {pos} outside block [{}, {})",
                self.start_pos,
                self.start_pos + self.count as u64
            )));
        }
        Ok((pos - self.start_pos) as usize)
    }

    /// DS1 over packed values; representation chosen by the builder.
    pub fn scan_positions(&self, pred: &Predicate) -> PosList {
        let mut b = PosListBuilder::new();
        // Specialize the inner loop per width so the decode is branch-free.
        macro_rules! scan {
            ($get:expr) => {
                for i in 0..self.count as usize {
                    if pred.matches($get(i)) {
                        b.push(self.start_pos + i as u64);
                    }
                }
            };
        }
        match self.width {
            Width::W1 => scan!(|i: usize| self.raw[i] as i8 as i64),
            Width::W2 => scan!(|i: usize| i16::from_le_bytes(
                self.raw[i * 2..i * 2 + 2].try_into().unwrap()
            ) as i64),
            Width::W4 => scan!(|i: usize| i32::from_le_bytes(
                self.raw[i * 4..i * 4 + 4].try_into().unwrap()
            ) as i64),
            Width::W8 => {
                scan!(|i: usize| i64::from_le_bytes(self.raw[i * 8..i * 8 + 8].try_into().unwrap()))
            }
        }
        b.finish()
    }

    /// DS2 over packed values.
    pub fn scan_pairs(&self, pred: &Predicate, out_pos: &mut Vec<Pos>, out_val: &mut Vec<Value>) {
        for i in 0..self.count as usize {
            let v = self.decode_idx(i);
            if pred.matches(v) {
                out_pos.push(self.start_pos + i as u64);
                out_val.push(v);
            }
        }
    }

    /// DS1 restricted to `window` (already intersected with the covering
    /// range by the caller).
    pub fn scan_positions_in(&self, pred: &Predicate, window: PosRange) -> PosList {
        let lo = (window.start - self.start_pos) as usize;
        let hi = (window.end - self.start_pos) as usize;
        let mut b = PosListBuilder::new();
        for i in lo..hi {
            if pred.matches(self.decode_idx(i)) {
                b.push(self.start_pos + i as u64);
            }
        }
        b.finish()
    }

    /// DS2 restricted to `window`.
    pub fn scan_pairs_in(
        &self,
        pred: &Predicate,
        window: PosRange,
        out_pos: &mut Vec<Pos>,
        out_val: &mut Vec<Value>,
    ) {
        let lo = (window.start - self.start_pos) as usize;
        let hi = (window.end - self.start_pos) as usize;
        for i in lo..hi {
            let v = self.decode_idx(i);
            if pred.matches(v) {
                out_pos.push(self.start_pos + i as u64);
                out_val.push(v);
            }
        }
    }

    /// DS3 point fetch (O(1) per position).
    pub fn gather(&self, positions: &[Pos], out: &mut Vec<Value>) -> Result<()> {
        out.reserve(positions.len());
        for &p in positions {
            let idx = self.check_pos(p)?;
            out.push(self.decode_idx(idx));
        }
        Ok(())
    }

    /// DS3 range fetch.
    pub fn gather_range(&self, range: PosRange, out: &mut Vec<Value>) -> Result<()> {
        if range.is_empty() {
            return Ok(());
        }
        let lo = self.check_pos(range.start)?;
        let hi = self.check_pos(range.end - 1)? + 1;
        out.reserve(hi - lo);
        for i in lo..hi {
            out.push(self.decode_idx(i));
        }
        Ok(())
    }

    /// DS4 probe.
    pub fn value_at(&self, pos: Pos) -> Result<Value> {
        let idx = self.check_pos(pos)?;
        Ok(self.decode_idx(idx))
    }

    /// Append every value in position order.
    pub fn decode_all(&self, out: &mut Vec<Value>) {
        out.reserve(self.count as usize);
        for i in 0..self.count as usize {
            out.push(self.decode_idx(i));
        }
    }

    /// Number of maximal equal-value runs: one pass of fixed-width byte
    /// compares over the packed payload, no value materialization.
    pub fn num_runs(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let w = self.width.bytes();
        let transitions = self
            .raw
            .chunks_exact(w)
            .zip(self.raw.chunks_exact(w).skip(1))
            .filter(|(a, b)| a != b)
            .count();
        transitions as u64 + 1
    }

    /// Visit maximal equal-value runs (coalesced on the fly).
    pub fn for_each_run(&self, mut f: impl FnMut(Value, PosRange)) {
        if self.count == 0 {
            return;
        }
        let mut run_val = self.decode_idx(0);
        let mut run_start = self.start_pos;
        for i in 1..self.count as usize {
            let v = self.decode_idx(i);
            if v != run_val {
                f(run_val, PosRange::new(run_start, self.start_pos + i as u64));
                run_val = v;
                run_start = self.start_pos + i as u64;
            }
        }
        f(
            run_val,
            PosRange::new(run_start, self.start_pos + self.count as u64),
        );
    }

    /// Append the codec payload (packed bytes) to `buf`.
    pub fn serialize_payload(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.raw);
    }

    /// Parse the codec payload.
    pub fn parse_payload(
        start_pos: Pos,
        count: u32,
        width: u8,
        r: &mut Reader<'_>,
    ) -> Result<PlainBlock> {
        let width = match width {
            1 => Width::W1,
            2 => Width::W2,
            4 => Width::W4,
            8 => Width::W8,
            w => return Err(Error::corrupt(format!("bad plain width {w}"))),
        };
        let raw = r.bytes(count as usize * width.bytes())?.to_vec();
        Ok(PlainBlock {
            start_pos,
            width,
            raw,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_by_width() {
        assert_eq!(PlainBlock::capacity(Width::W1), 65520);
        assert_eq!(PlainBlock::capacity(Width::W8), 8190);
    }

    #[test]
    fn negative_values_roundtrip_all_widths() {
        for width in [Width::W1, Width::W2, Width::W4, Width::W8] {
            let values = vec![-1, 0, 1, -128, 127];
            let b = PlainBlock::from_values(0, width, &values);
            let mut out = Vec::new();
            b.decode_all(&mut out);
            assert_eq!(out, values, "{width}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn width_violation_panics() {
        PlainBlock::from_values(0, Width::W1, &[1000]);
    }

    #[test]
    fn scan_positions_runs_are_coalesced() {
        // 0,0,0,1,1,0: pred eq(0) matches positions 0-2 and 5.
        let b = PlainBlock::from_values(10, Width::W1, &[0, 0, 0, 1, 1, 0]);
        let pl = b.scan_positions(&Predicate::eq(0));
        assert_eq!(pl.to_vec(), vec![10, 11, 12, 15]);
    }

    #[test]
    fn gather_range_bounds_checked() {
        let b = PlainBlock::from_values(10, Width::W2, &[1, 2, 3]);
        let mut out = Vec::new();
        assert!(b.gather_range(PosRange::new(10, 14), &mut out).is_err());
        out.clear();
        b.gather_range(PosRange::new(11, 13), &mut out).unwrap();
        assert_eq!(out, vec![2, 3]);
        b.gather_range(PosRange::empty(), &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_block_for_each_run() {
        let b = PlainBlock::from_values(0, Width::W1, &[]);
        let mut n = 0;
        b.for_each_run(|_, _| n += 1);
        assert_eq!(n, 0);
    }
}
