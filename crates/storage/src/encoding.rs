//! Column encoding kinds.

use std::fmt;

use matstrat_common::{Error, Result};

/// The physical encoding of a column (and of each of its blocks).
///
/// The paper's experiments use the first three; `Dict` is an extension
/// (the compression study the paper builds on also evaluates dictionary
/// coding, and it is what makes string attributes integer-addressable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    /// Values packed contiguously at a fixed byte width.
    Plain,
    /// Run-length encoding: (value, start, length) triples. Ideal for
    /// columns sorted (or semi-sorted) on their own value.
    Rle,
    /// One bit-string per distinct value. Ideal for low-cardinality
    /// columns; range predicates become ORs of bit-strings.
    BitVec,
    /// Dictionary: per-block value table plus narrow codes (extension).
    Dict,
}

impl EncodingKind {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            EncodingKind::Plain => 0,
            EncodingKind::Rle => 1,
            EncodingKind::BitVec => 2,
            EncodingKind::Dict => 3,
        }
    }

    /// Inverse of [`tag`](EncodingKind::tag).
    pub fn from_tag(tag: u8) -> Result<EncodingKind> {
        match tag {
            0 => Ok(EncodingKind::Plain),
            1 => Ok(EncodingKind::Rle),
            2 => Ok(EncodingKind::BitVec),
            3 => Ok(EncodingKind::Dict),
            other => Err(Error::corrupt(format!("unknown encoding tag {other}"))),
        }
    }

    /// Whether the DS3 access pattern (jump to a position, read its value)
    /// is supported. Bit-vector columns cannot answer it without a scan:
    /// *"it is impossible to know in advance in which bit-string any
    /// particular position is located"* (§4.1).
    pub fn supports_position_fetch(self) -> bool {
        !matches!(self, EncodingKind::BitVec)
    }

    /// Short lowercase name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            EncodingKind::Plain => "plain",
            EncodingKind::Rle => "rle",
            EncodingKind::BitVec => "bitvec",
            EncodingKind::Dict => "dict",
        }
    }
}

impl fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for k in [
            EncodingKind::Plain,
            EncodingKind::Rle,
            EncodingKind::BitVec,
            EncodingKind::Dict,
        ] {
            assert_eq!(EncodingKind::from_tag(k.tag()).unwrap(), k);
        }
        assert!(EncodingKind::from_tag(99).is_err());
    }

    #[test]
    fn bitvec_rejects_position_fetch() {
        assert!(!EncodingKind::BitVec.supports_position_fetch());
        assert!(EncodingKind::Plain.supports_position_fetch());
        assert!(EncodingKind::Rle.supports_position_fetch());
        assert!(EncodingKind::Dict.supports_position_fetch());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EncodingKind::Plain.to_string(), "plain");
        assert_eq!(EncodingKind::BitVec.to_string(), "bitvec");
    }
}
