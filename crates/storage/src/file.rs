//! Column files: a stats header, a sequence of encoded blocks, and a
//! block index.
//!
//! Layout:
//!
//! ```text
//! [ header (80 bytes): magic, version, encoding, width,
//!   num_rows, num_blocks, index_offset, min, max, distinct, num_runs ]
//! [ block 0 ][ block 1 ] ... [ block n-1 ]
//! [ index: n entries of (offset, len, start_pos, count) ]
//! ```
//!
//! The index is loaded into memory when a column is opened, so locating
//! the block containing a position is a binary search with no I/O —
//! the "jump to pos" of the DS3/DS4 pseudocode.

use std::collections::HashSet;

use matstrat_common::{Error, Pos, Predicate, Result, Value, Width};

use crate::block::{BitVecBlock, DictBlock, EncodedBlock, PlainBlock, RleBlock};
use crate::disk::Disk;
use crate::encoding::EncodingKind;
use crate::wire::{put_u16, put_u32, put_u64, put_u8, Reader};
use crate::BLOCK_SIZE;

const MAGIC: &[u8; 4] = b"MSCF";
// Version history: 2 added a per-block min/max zone map to the index.
const VERSION: u32 = 2;
const HEADER_SIZE: u64 = 80;
const INDEX_ENTRY_SIZE_V1: usize = 24;
const INDEX_ENTRY_SIZE: usize = 40;

/// Location, position coverage, and value zone of one block inside a
/// column file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockIndexEntry {
    /// Byte offset of the serialized block.
    pub offset: u64,
    /// Serialized length in bytes.
    pub len: u32,
    /// Absolute position of the block's first row.
    pub start_pos: Pos,
    /// Number of rows in the block.
    pub count: u32,
    /// Smallest value in the block (`Value::MIN` for pre-zone files:
    /// an unknown zone never prunes).
    pub min: Value,
    /// Largest value in the block (`Value::MAX` for pre-zone files).
    pub max: Value,
}

impl BlockIndexEntry {
    /// Zone-map test: can this block contain a row matching `pred`?
    /// `false` means the block is provably predicate-free and a filtered
    /// scan may skip it without reading it.
    pub fn zone_overlaps(&self, pred: &Predicate) -> bool {
        pred.overlaps_range(self.min, self.max)
    }
}

/// Statistics gathered while writing a column, persisted in the header.
///
/// These are exactly the quantities the analytical model consumes:
/// `|C|` (blocks), `||C||` (rows), and `RL` (average run length =
/// `num_rows / num_runs`), plus min/max/distinct for selectivity
/// estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Total rows (`||C||`).
    pub num_rows: u64,
    /// Total blocks (`|C|`).
    pub num_blocks: u64,
    /// Minimum value (0 when the column is empty).
    pub min: Value,
    /// Maximum value (0 when the column is empty).
    pub max: Value,
    /// Number of distinct values.
    pub distinct: u64,
    /// Number of maximal equal-value runs (`num_rows / RL`).
    pub num_runs: u64,
}

impl ColumnStats {
    /// Average sorted-run length `RL` (1.0 for an empty column).
    pub fn avg_run_len(&self) -> f64 {
        if self.num_runs == 0 {
            1.0
        } else {
            self.num_rows as f64 / self.num_runs as f64
        }
    }
}

/// Streaming writer: push values, blocks split themselves per codec.
pub struct ColumnFileWriter<'a> {
    disk: &'a dyn Disk,
    name: String,
    encoding: EncodingKind,
    width: Width,
    buffer: Vec<Value>,
    /// Distinct values in the *current block* (BitVec/Dict size control).
    block_distinct: Vec<Value>,
    /// Runs in the current block (RLE size control).
    block_runs: usize,
    /// Dict only: a column-wide dictionary every block encodes against
    /// (instead of per-block first-appearance dictionaries).
    shared_dict: Option<Vec<Value>>,
    /// Zone map of the current block.
    block_min: Value,
    block_max: Value,
    next_start: Pos,
    write_offset: u64,
    index: Vec<BlockIndexEntry>,
    // Column-wide stats.
    min: Value,
    max: Value,
    distinct: HashSet<Value>,
    num_runs: u64,
    last_value: Option<Value>,
}

impl<'a> ColumnFileWriter<'a> {
    /// Create `name` on `disk` and start writing a column with the given
    /// encoding. `width` is the packed width for `Plain` (ignored by the
    /// other codecs).
    pub fn create(
        disk: &'a dyn Disk,
        name: impl Into<String>,
        encoding: EncodingKind,
        width: Width,
    ) -> Result<ColumnFileWriter<'a>> {
        let name = name.into();
        disk.create(&name)?;
        Ok(ColumnFileWriter {
            disk,
            name,
            encoding,
            width,
            buffer: Vec::new(),
            block_distinct: Vec::new(),
            block_runs: 0,
            shared_dict: None,
            block_min: Value::MAX,
            block_max: Value::MIN,
            next_start: 0,
            write_offset: HEADER_SIZE,
            index: Vec::new(),
            min: Value::MAX,
            max: Value::MIN,
            distinct: HashSet::new(),
            num_runs: 0,
            last_value: None,
        })
    }

    /// Create a dict-encoded column whose blocks all share `dict`
    /// (must be sorted ascending distinct values; every pushed value
    /// must be present in it or `finish`/`flush` will error).
    pub fn create_shared_dict(
        disk: &'a dyn Disk,
        name: impl Into<String>,
        dict: Vec<Value>,
    ) -> Result<ColumnFileWriter<'a>> {
        if !dict.windows(2).all(|w| w[0] < w[1]) {
            return Err(Error::invalid(
                "shared dictionary must be sorted ascending with distinct values",
            ));
        }
        let mut w = Self::create(disk, name, EncodingKind::Dict, Width::W8)?;
        w.shared_dict = Some(dict);
        Ok(w)
    }

    /// Whether appending `v` to the current block would overflow 64 KB.
    fn would_overflow(&self, v: Value) -> bool {
        let n = self.buffer.len();
        if let Some(dict) = &self.shared_dict {
            // The dictionary is fixed, so only the packed codes grow.
            return DictBlock::encoded_size(dict.len(), n + 1) > BLOCK_SIZE;
        }
        match self.encoding {
            EncodingKind::Plain => n >= PlainBlock::capacity(self.width),
            EncodingKind::Rle => {
                let new_run = self.buffer.last() != Some(&v);
                self.block_runs + usize::from(new_run) > RleBlock::capacity_runs()
            }
            EncodingKind::BitVec => {
                let k = self.block_distinct.len() + usize::from(!self.block_distinct.contains(&v));
                BitVecBlock::encoded_size(k, n + 1) > BLOCK_SIZE
            }
            EncodingKind::Dict => {
                let k = self.block_distinct.len() + usize::from(!self.block_distinct.contains(&v));
                DictBlock::encoded_size(k, n + 1) > BLOCK_SIZE
            }
        }
    }

    /// Append one value.
    pub fn push(&mut self, v: Value) -> Result<()> {
        if self.encoding == EncodingKind::Plain && !self.width.fits(v) {
            return Err(Error::invalid(format!(
                "value {v} does not fit plain width {}",
                self.width
            )));
        }
        if self.would_overflow(v) {
            self.flush_block()?;
        }
        // Per-block bookkeeping.
        match self.encoding {
            EncodingKind::Rle => {
                if self.buffer.last() != Some(&v) {
                    self.block_runs += 1;
                }
            }
            EncodingKind::BitVec | EncodingKind::Dict => {
                // With a shared dictionary the block's cardinality is
                // fixed, so per-block distinct tracking is unnecessary.
                if self.shared_dict.is_none() && !self.block_distinct.contains(&v) {
                    self.block_distinct.push(v);
                }
            }
            EncodingKind::Plain => {}
        }
        self.buffer.push(v);
        self.block_min = self.block_min.min(v);
        self.block_max = self.block_max.max(v);
        // Column-wide stats.
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.distinct.insert(v);
        if self.last_value != Some(v) {
            self.num_runs += 1;
            self.last_value = Some(v);
        }
        Ok(())
    }

    /// Append a slice of values.
    pub fn push_all(&mut self, values: &[Value]) -> Result<()> {
        for &v in values {
            self.push(v)?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let block = match self.encoding {
            EncodingKind::Plain => EncodedBlock::Plain(PlainBlock::from_values(
                self.next_start,
                self.width,
                &self.buffer,
            )),
            EncodingKind::Rle => {
                EncodedBlock::Rle(RleBlock::from_values(self.next_start, &self.buffer))
            }
            EncodingKind::BitVec => {
                EncodedBlock::BitVec(BitVecBlock::from_values(self.next_start, &self.buffer))
            }
            EncodingKind::Dict => match &self.shared_dict {
                Some(dict) => EncodedBlock::Dict(DictBlock::from_values_shared(
                    self.next_start,
                    &self.buffer,
                    dict,
                )?),
                None => EncodedBlock::Dict(DictBlock::from_values(self.next_start, &self.buffer)),
            },
        };
        let bytes = block.serialize();
        self.disk.write_at(&self.name, self.write_offset, &bytes)?;
        self.index.push(BlockIndexEntry {
            offset: self.write_offset,
            len: bytes.len() as u32,
            start_pos: self.next_start,
            count: self.buffer.len() as u32,
            min: self.block_min,
            max: self.block_max,
        });
        self.write_offset += bytes.len() as u64;
        self.next_start += self.buffer.len() as u64;
        self.buffer.clear();
        self.block_distinct.clear();
        self.block_runs = 0;
        self.block_min = Value::MAX;
        self.block_max = Value::MIN;
        Ok(())
    }

    /// Flush the final block, write the index and header, and return the
    /// column statistics.
    pub fn finish(mut self) -> Result<ColumnStats> {
        self.flush_block()?;
        let index_offset = self.write_offset;
        let mut index_bytes = Vec::with_capacity(self.index.len() * INDEX_ENTRY_SIZE);
        for e in &self.index {
            put_u64(&mut index_bytes, e.offset);
            put_u32(&mut index_bytes, e.len);
            put_u64(&mut index_bytes, e.start_pos);
            put_u32(&mut index_bytes, e.count);
            index_bytes.extend_from_slice(&e.min.to_le_bytes());
            index_bytes.extend_from_slice(&e.max.to_le_bytes());
        }
        self.disk.write_at(&self.name, index_offset, &index_bytes)?;

        let stats = ColumnStats {
            num_rows: self.next_start,
            num_blocks: self.index.len() as u64,
            min: if self.distinct.is_empty() {
                0
            } else {
                self.min
            },
            max: if self.distinct.is_empty() {
                0
            } else {
                self.max
            },
            distinct: self.distinct.len() as u64,
            num_runs: self.num_runs,
        };

        let mut header = Vec::with_capacity(HEADER_SIZE as usize);
        header.extend_from_slice(MAGIC);
        put_u32(&mut header, VERSION);
        put_u8(&mut header, self.encoding.tag());
        put_u8(&mut header, self.width.bytes() as u8);
        put_u16(&mut header, 0);
        put_u32(&mut header, 0); // padding to 16
        put_u64(&mut header, stats.num_rows);
        put_u64(&mut header, stats.num_blocks);
        put_u64(&mut header, index_offset);
        header.extend_from_slice(&stats.min.to_le_bytes());
        header.extend_from_slice(&stats.max.to_le_bytes());
        put_u64(&mut header, stats.distinct);
        put_u64(&mut header, stats.num_runs);
        put_u64(&mut header, 0); // tail padding to HEADER_SIZE
        debug_assert_eq!(header.len() as u64, HEADER_SIZE);
        self.disk.write_at(&self.name, 0, &header)?;
        Ok(stats)
    }
}

/// An opened column file: header stats plus the in-memory block index.
#[derive(Debug, Clone)]
pub struct ColumnFileReader {
    name: String,
    encoding: EncodingKind,
    width: Width,
    stats: ColumnStats,
    index: Vec<BlockIndexEntry>,
}

impl ColumnFileReader {
    /// Open `name` on `disk`, reading the header and block index.
    pub fn open(disk: &dyn Disk, name: impl Into<String>) -> Result<ColumnFileReader> {
        let name = name.into();
        let header = disk.read_at(&name, 0, HEADER_SIZE as usize)?;
        let mut r = Reader::new(&header);
        if r.bytes(4)? != MAGIC {
            return Err(Error::corrupt(format!("{name}: bad magic")));
        }
        let version = r.u32()?;
        if !(1..=VERSION).contains(&version) {
            return Err(Error::corrupt(format!("{name}: unknown version {version}")));
        }
        let encoding = EncodingKind::from_tag(r.u8()?)?;
        let width = match r.u8()? {
            1 => Width::W1,
            2 => Width::W2,
            4 => Width::W4,
            8 => Width::W8,
            w => return Err(Error::corrupt(format!("{name}: bad width {w}"))),
        };
        let _ = r.u16()?;
        let _ = r.u32()?;
        let num_rows = r.u64()?;
        let num_blocks = r.u64()?;
        let index_offset = r.u64()?;
        let min = r.i64()?;
        let max = r.i64()?;
        let distinct = r.u64()?;
        let num_runs = r.u64()?;

        let entry_size = if version >= 2 {
            INDEX_ENTRY_SIZE
        } else {
            INDEX_ENTRY_SIZE_V1
        };
        let index_bytes = disk.read_at(&name, index_offset, num_blocks as usize * entry_size)?;
        let mut ir = Reader::new(&index_bytes);
        let mut index = Vec::with_capacity(num_blocks as usize);
        for _ in 0..num_blocks {
            let (offset, len, start_pos, count) = (ir.u64()?, ir.u32()?, ir.u64()?, ir.u32()?);
            // Version 1 predates zone maps: an unbounded zone never prunes.
            let (bmin, bmax) = if version >= 2 {
                (ir.i64()?, ir.i64()?)
            } else {
                (Value::MIN, Value::MAX)
            };
            index.push(BlockIndexEntry {
                offset,
                len,
                start_pos,
                count,
                min: bmin,
                max: bmax,
            });
        }
        Ok(ColumnFileReader {
            name,
            encoding,
            width,
            stats: ColumnStats {
                num_rows,
                num_blocks,
                min,
                max,
                distinct,
                num_runs,
            },
            index,
        })
    }

    /// File name on the disk.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column encoding.
    pub fn encoding(&self) -> EncodingKind {
        self.encoding
    }

    /// Packed width (meaningful for `Plain`).
    pub fn width(&self) -> Width {
        self.width
    }

    /// Header statistics.
    pub fn stats(&self) -> ColumnStats {
        self.stats
    }

    /// The block index.
    pub fn index(&self) -> &[BlockIndexEntry] {
        &self.index
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.index.len()
    }

    /// Index of the block containing absolute position `pos`.
    pub fn block_for_pos(&self, pos: Pos) -> Result<usize> {
        if pos >= self.stats.num_rows {
            return Err(Error::invalid(format!(
                "position {pos} beyond column {} ({} rows)",
                self.name, self.stats.num_rows
            )));
        }
        let idx = self
            .index
            .partition_point(|e| e.start_pos + e.count as u64 <= pos);
        Ok(idx)
    }

    /// Read and parse block `idx` from `disk` (no caching — the store's
    /// buffer pool sits above this).
    pub fn fetch_block(&self, disk: &dyn Disk, idx: usize) -> Result<EncodedBlock> {
        let e = self
            .index
            .get(idx)
            .ok_or_else(|| Error::invalid(format!("block {idx} out of range for {}", self.name)))?;
        let bytes = disk.read_at(&self.name, e.offset, e.len as usize)?;
        EncodedBlock::parse(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use matstrat_common::Predicate;

    fn write_column(
        disk: &MemDisk,
        name: &str,
        encoding: EncodingKind,
        width: Width,
        values: &[Value],
    ) -> ColumnStats {
        let mut w = ColumnFileWriter::create(disk, name, encoding, width).unwrap();
        w.push_all(values).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_small_column_all_codecs() {
        let values: Vec<Value> = (0..1000).map(|i| (i / 37) % 11).collect();
        let disk = MemDisk::new();
        for (enc, name) in [
            (EncodingKind::Plain, "p.col"),
            (EncodingKind::Rle, "r.col"),
            (EncodingKind::BitVec, "b.col"),
            (EncodingKind::Dict, "d.col"),
        ] {
            let stats = write_column(&disk, name, enc, Width::W2, &values);
            assert_eq!(stats.num_rows, 1000);
            assert_eq!(stats.min, 0);
            assert_eq!(stats.max, 10);
            assert_eq!(stats.distinct, 11);
            let r = ColumnFileReader::open(&disk, name).unwrap();
            assert_eq!(r.encoding(), enc);
            assert_eq!(r.stats(), stats);
            let mut decoded = Vec::new();
            for i in 0..r.num_blocks() {
                r.fetch_block(&disk, i).unwrap().decode_all(&mut decoded);
            }
            assert_eq!(decoded, values, "{enc}");
        }
    }

    #[test]
    fn plain_splits_at_capacity() {
        let n = PlainBlock::capacity(Width::W1) + 10;
        let values: Vec<Value> = (0..n).map(|i| (i % 7) as Value).collect();
        let disk = MemDisk::new();
        let stats = write_column(&disk, "c", EncodingKind::Plain, Width::W1, &values);
        assert_eq!(stats.num_blocks, 2);
        let r = ColumnFileReader::open(&disk, "c").unwrap();
        assert_eq!(r.index()[0].count as usize, PlainBlock::capacity(Width::W1));
        assert_eq!(r.index()[1].count, 10);
        assert_eq!(
            r.index()[1].start_pos,
            PlainBlock::capacity(Width::W1) as u64
        );
    }

    #[test]
    fn block_for_pos_binary_search() {
        let n = PlainBlock::capacity(Width::W1) * 2 + 5;
        let values: Vec<Value> = vec![1; n];
        let disk = MemDisk::new();
        write_column(&disk, "c", EncodingKind::Plain, Width::W1, &values);
        let r = ColumnFileReader::open(&disk, "c").unwrap();
        assert_eq!(r.block_for_pos(0).unwrap(), 0);
        assert_eq!(
            r.block_for_pos(PlainBlock::capacity(Width::W1) as u64)
                .unwrap(),
            1
        );
        assert_eq!(r.block_for_pos(n as u64 - 1).unwrap(), 2);
        assert!(r.block_for_pos(n as u64).is_err());
    }

    #[test]
    fn rle_compression_ratio_on_sorted_data() {
        // 100k rows, 10 distinct values, sorted: 10 runs → 1 block.
        let mut values = Vec::new();
        for v in 0..10 {
            values.extend(std::iter::repeat_n(v, 10_000));
        }
        let disk = MemDisk::new();
        let stats = write_column(&disk, "c", EncodingKind::Rle, Width::W8, &values);
        assert_eq!(stats.num_blocks, 1);
        assert_eq!(stats.num_runs, 10);
        assert!((stats.avg_run_len() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn index_carries_per_block_zone_maps() {
        // Clustered data: each block's zone is a narrow value band, so a
        // point predicate prunes all but one block.
        let n = PlainBlock::capacity(Width::W1) * 3;
        let values: Vec<Value> = (0..n)
            .map(|i| (i / PlainBlock::capacity(Width::W1)) as Value)
            .collect();
        let disk = MemDisk::new();
        write_column(&disk, "c", EncodingKind::Plain, Width::W1, &values);
        let r = ColumnFileReader::open(&disk, "c").unwrap();
        assert_eq!(r.num_blocks(), 3);
        for (b, e) in r.index().iter().enumerate() {
            assert_eq!((e.min, e.max), (b as Value, b as Value));
        }
        let hits: Vec<usize> = (0..3)
            .filter(|&b| r.index()[b].zone_overlaps(&Predicate::eq(1)))
            .collect();
        assert_eq!(hits, vec![1]);
        // Range and Ne predicates stay conservative.
        assert!(r.index()[0].zone_overlaps(&Predicate::lt(1)));
        assert!(!r.index()[2].zone_overlaps(&Predicate::lt(1)));
        assert!(r.index()[0].zone_overlaps(&Predicate::ne(1)));
        assert!(
            !r.index()[1].zone_overlaps(&Predicate::ne(1)),
            "all-1 block"
        );
    }

    #[test]
    fn open_accepts_version_1_index_without_zones() {
        // Serialize a column, then rewrite it as a v1 file: header version
        // 1 and 24-byte index entries (zones spliced out).
        let values: Vec<Value> = (0..100).collect();
        let disk = MemDisk::new();
        write_column(&disk, "c", EncodingKind::Plain, Width::W1, &values);
        let len = disk.len("c").unwrap() as usize;
        let mut bytes = disk.read_at("c", 0, len).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let index_offset = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
        // One block: drop its 16 zone bytes from the index tail.
        bytes.truncate(index_offset + INDEX_ENTRY_SIZE_V1);
        disk.create("v1").unwrap();
        disk.write_at("v1", 0, &bytes).unwrap();
        let r = ColumnFileReader::open(&disk, "v1").unwrap();
        let e = r.index()[0];
        assert_eq!((e.min, e.max), (Value::MIN, Value::MAX));
        assert!(
            e.zone_overlaps(&Predicate::eq(12345)),
            "unknown zones never prune"
        );
    }

    #[test]
    fn width_violation_is_error() {
        let disk = MemDisk::new();
        let mut w = ColumnFileWriter::create(&disk, "c", EncodingKind::Plain, Width::W1).unwrap();
        assert!(w.push(128).is_err());
    }

    #[test]
    fn empty_column() {
        let disk = MemDisk::new();
        let stats = write_column(&disk, "c", EncodingKind::Rle, Width::W8, &[]);
        assert_eq!(stats.num_rows, 0);
        assert_eq!(stats.num_blocks, 0);
        let r = ColumnFileReader::open(&disk, "c").unwrap();
        assert_eq!(r.num_blocks(), 0);
        assert!(r.block_for_pos(0).is_err());
    }

    #[test]
    fn open_rejects_bad_magic() {
        let disk = MemDisk::new();
        disk.create("junk").unwrap();
        disk.write_at("junk", 0, &[0u8; 80]).unwrap();
        assert!(ColumnFileReader::open(&disk, "junk").is_err());
    }

    #[test]
    fn shared_dict_writer_gives_every_block_the_same_fingerprint() {
        // Enough rows to split into several blocks; values drawn from a
        // small domain so per-block first-appearance dicts would differ.
        // 1-byte codes pack ~65k rows per 64 KB block, so 150k rows
        // forces a split.
        let values: Vec<Value> = (0..150_000).map(|i| ((i * 7919) % 13) * 100).collect();
        let mut dict: Vec<Value> = (0..13).map(|v| v * 100).collect();
        dict.sort_unstable();
        let disk = MemDisk::new();
        let mut w = ColumnFileWriter::create_shared_dict(&disk, "c", dict.clone()).unwrap();
        w.push_all(&values).unwrap();
        let stats = w.finish().unwrap();
        assert!(stats.num_blocks > 1, "want a multi-block column");
        let r = ColumnFileReader::open(&disk, "c").unwrap();
        let mut decoded = Vec::new();
        let mut fps = HashSet::new();
        for i in 0..r.num_blocks() {
            let b = r.fetch_block(&disk, i).unwrap();
            if let EncodedBlock::Dict(d) = &b {
                assert_eq!(
                    d.dictionary(),
                    &dict[..],
                    "block {i} must store the shared dict"
                );
                fps.insert(d.fingerprint());
            } else {
                panic!("expected dict block");
            }
            b.decode_all(&mut decoded);
        }
        assert_eq!(fps.len(), 1, "all blocks share one fingerprint");
        assert_eq!(decoded, values);
    }

    #[test]
    fn shared_dict_writer_rejects_unsorted_dict_and_absent_values() {
        let disk = MemDisk::new();
        assert!(ColumnFileWriter::create_shared_dict(&disk, "bad", vec![3, 1, 2]).is_err());
        assert!(ColumnFileWriter::create_shared_dict(&disk, "dup", vec![1, 1]).is_err());
        let mut w = ColumnFileWriter::create_shared_dict(&disk, "c", vec![1, 2, 3]).unwrap();
        w.push(99).unwrap(); // caught when the block encodes
        assert!(w.finish().is_err());
    }

    #[test]
    fn bitvec_blocks_hold_many_rows_at_low_cardinality() {
        // 7 distinct values (like LINENUM): blocks should be large.
        let values: Vec<Value> = (0..200_000).map(|i| (i % 7) as Value + 1).collect();
        let disk = MemDisk::new();
        let stats = write_column(&disk, "c", EncodingKind::BitVec, Width::W8, &values);
        // encoded_size(7, n) <= 64KB → n ≈ 74k rows/block → 3 blocks.
        assert_eq!(stats.num_blocks, 3);
        let r = ColumnFileReader::open(&disk, "c").unwrap();
        let b = r.fetch_block(&disk, 0).unwrap();
        let pl = b.scan_positions(&Predicate::lt(3));
        let expected = b.covering().iter().filter(|&p| (p % 7) + 1 < 3).count() as u64;
        assert_eq!(pl.count(), expected);
    }
}
