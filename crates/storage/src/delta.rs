//! The mutable half of every table: a row-oriented, position-stamped
//! delta that scans merge with the immutable column blocks.
//!
//! A projection's immutable blocks cover positions `[0, base_rows)`.
//! Inserted rows are **position-stamped** past that: the i-th delta row
//! is the logical row at position `base_rows + i`, so the table's
//! logical row order is always *immutable rows in position order, then
//! delta rows in insertion order* — a total order that does not depend
//! on who scans it or with how many threads. Deletes are a sorted
//! position set over the combined space; a deleted row stays physically
//! present (in blocks or in the delta) and is filtered at merge time.
//! Compaction folds the whole delta back into fresh immutable blocks in
//! exactly this logical order, which is why a query is byte-identical
//! before, during, and after a compaction.
//!
//! Snapshots are copy-on-write: a scan grabs an `Arc<TableDelta>` in
//! O(1) and is immune to later writes; a writer mutates through
//! [`Arc::make_mut`], which only pays for a clone while some scan still
//! holds the previous snapshot.

use std::collections::HashMap;
use std::sync::Arc;

use matstrat_common::{Error, Result, TableId, Value};
use parking_lot::RwLock;

/// The in-memory delta of one table: inserted rows (row-major) and
/// deleted positions, both against a fixed immutable base.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableDelta {
    /// Immutable row count the stamps are relative to — always equal to
    /// the catalog's `num_rows` for the same table (both change only
    /// together, under the store's write lock).
    pub base_rows: u64,
    /// Inserted rows, row-major; row `i` is logical position
    /// `base_rows + i`.
    pub inserts: Vec<Vec<Value>>,
    /// Deleted positions over `[0, base_rows + inserts.len())`, sorted
    /// and deduplicated.
    pub deletes: Vec<u64>,
}

impl TableDelta {
    /// An empty delta over `base_rows` immutable rows.
    pub fn new(base_rows: u64) -> TableDelta {
        TableDelta {
            base_rows,
            ..TableDelta::default()
        }
    }

    /// Total logical positions (immutable + inserted, deleted included).
    pub fn total_rows(&self) -> u64 {
        self.base_rows + self.inserts.len() as u64
    }

    /// Rows a merge-time scan yields: total minus deleted.
    pub fn live_rows(&self) -> u64 {
        self.total_rows() - self.deletes.len() as u64
    }

    /// `true` when there is nothing to merge or compact.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Whether position `pos` is deleted.
    pub fn is_deleted(&self, pos: u64) -> bool {
        self.deletes.binary_search(&pos).is_ok()
    }

    /// Deleted positions below `base_rows` (the immutable side), as a
    /// sorted slice.
    pub fn base_deletes(&self) -> &[u64] {
        let split = self.deletes.partition_point(|&p| p < self.base_rows);
        &self.deletes[..split]
    }

    /// Mark `pos` deleted. Returns `false` (and changes nothing) when
    /// the position was already deleted; errors when it is out of range.
    fn delete(&mut self, pos: u64) -> Result<bool> {
        if pos >= self.total_rows() {
            return Err(Error::invalid(format!(
                "delete position {pos} out of range (table has {} rows)",
                self.total_rows()
            )));
        }
        match self.deletes.binary_search(&pos) {
            Ok(_) => Ok(false),
            Err(at) => {
                self.deletes.insert(at, pos);
                Ok(true)
            }
        }
    }
}

/// All tables' deltas, keyed by projection. Writers and the compactor
/// synchronize through the store's write lock; this lock only protects
/// the map itself and the copy-on-write snapshot swap.
#[derive(Debug, Default)]
pub struct DeltaStore {
    tables: RwLock<HashMap<TableId, Arc<TableDelta>>>,
}

impl DeltaStore {
    /// An empty delta store.
    pub fn new() -> DeltaStore {
        DeltaStore::default()
    }

    /// O(1) snapshot of one table's delta. `None` when the table has no
    /// pending writes (the common read-only case pays one map lookup).
    pub fn snapshot(&self, table: TableId) -> Option<Arc<TableDelta>> {
        self.tables.read().get(&table).cloned()
    }

    /// Tables that currently have a non-empty delta.
    pub fn dirty_tables(&self) -> Vec<TableId> {
        let tables = self.tables.read();
        let mut v: Vec<TableId> = tables
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(&t, _)| t)
            .collect();
        v.sort_unstable_by_key(|t| t.0);
        v
    }

    /// Append `rows` to `table`'s delta (base `base_rows` when the delta
    /// does not exist yet), returning the position stamp of the first
    /// appended row. Caller must hold the store's write lock.
    pub fn append_rows(&self, table: TableId, base_rows: u64, rows: &[Vec<Value>]) -> u64 {
        let mut tables = self.tables.write();
        let delta = tables
            .entry(table)
            .or_insert_with(|| Arc::new(TableDelta::new(base_rows)));
        let delta = Arc::make_mut(delta);
        debug_assert_eq!(delta.base_rows, base_rows, "stale base for delta append");
        let first = delta.total_rows();
        delta.inserts.extend(rows.iter().cloned());
        first
    }

    /// Mark `positions` of `table` deleted, returning how many were
    /// newly deleted (already-deleted positions are skipped). Caller
    /// must hold the store's write lock.
    pub fn delete_positions(
        &self,
        table: TableId,
        base_rows: u64,
        positions: &[u64],
    ) -> Result<u64> {
        let mut tables = self.tables.write();
        let delta = tables
            .entry(table)
            .or_insert_with(|| Arc::new(TableDelta::new(base_rows)));
        let delta = Arc::make_mut(delta);
        let mut fresh = 0;
        for &p in positions {
            if delta.delete(p)? {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Replace `table`'s delta wholesale (compaction swap / recovery).
    /// An empty `delta` removes the entry.
    pub fn replace(&self, table: TableId, delta: TableDelta) {
        let mut tables = self.tables.write();
        if delta.is_empty() {
            tables.remove(&table);
        } else {
            tables.insert(table, Arc::new(delta));
        }
    }
}

/// Filter `positions` (ascending) down to those not present in the
/// sorted `deletes` set, walking both lists once.
pub fn retain_live(positions: &mut Vec<u64>, deletes: &[u64]) {
    if deletes.is_empty() {
        return;
    }
    let mut di = 0usize;
    positions.retain(|&p| {
        while di < deletes.len() && deletes[di] < p {
            di += 1;
        }
        !(di < deletes.len() && deletes[di] == p)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_ascend_and_snapshots_are_immutable() {
        let ds = DeltaStore::new();
        let t = TableId(0);
        assert!(ds.snapshot(t).is_none());
        let first = ds.append_rows(t, 100, &[vec![1, 2], vec![3, 4]]);
        assert_eq!(first, 100);
        let snap = ds.snapshot(t).unwrap();
        assert_eq!(snap.total_rows(), 102);
        // A later write does not disturb the held snapshot.
        let next = ds.append_rows(t, 100, &[vec![5, 6]]);
        assert_eq!(next, 102);
        assert_eq!(snap.inserts.len(), 2, "snapshot is copy-on-write");
        assert_eq!(ds.snapshot(t).unwrap().inserts.len(), 3);
    }

    #[test]
    fn deletes_sort_dedup_and_split_by_base() {
        let ds = DeltaStore::new();
        let t = TableId(1);
        ds.append_rows(t, 10, &[vec![7], vec![8]]);
        assert_eq!(ds.delete_positions(t, 10, &[11, 3, 3, 0]).unwrap(), 3);
        let snap = ds.snapshot(t).unwrap();
        assert_eq!(snap.deletes, vec![0, 3, 11]);
        assert_eq!(snap.base_deletes(), &[0, 3]);
        assert!(snap.is_deleted(11));
        assert!(!snap.is_deleted(10));
        assert_eq!(snap.live_rows(), 9);
        // Out-of-range delete errors without changing anything.
        assert!(ds.delete_positions(t, 10, &[12]).is_err());
        assert_eq!(ds.snapshot(t).unwrap().deletes.len(), 3);
    }

    #[test]
    fn replace_with_empty_removes_the_entry() {
        let ds = DeltaStore::new();
        let t = TableId(2);
        ds.append_rows(t, 0, &[vec![1]]);
        assert_eq!(ds.dirty_tables(), vec![t]);
        ds.replace(t, TableDelta::new(1));
        assert!(ds.snapshot(t).is_none());
        assert!(ds.dirty_tables().is_empty());
    }

    #[test]
    fn retain_live_filters_sorted_deletes() {
        let mut pos = vec![0, 1, 2, 5, 6, 9];
        retain_live(&mut pos, &[1, 5, 7]);
        assert_eq!(pos, vec![0, 2, 6, 9]);
        let mut pos = vec![3, 4];
        retain_live(&mut pos, &[]);
        assert_eq!(pos, vec![3, 4]);
    }
}
