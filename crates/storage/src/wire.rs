//! Little-endian wire helpers for block and file serialization.
//!
//! Kept dependency-free on purpose: the formats are simple enough that a
//! handful of fixed-width put/get helpers beats pulling in a codec crate.

use matstrat_common::{Error, Result};

/// Append a `u8`.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u16` little-endian.
#[inline]
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` little-endian.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` little-endian.
#[inline]
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    /// Current read offset.
    pub fn offset(&self) -> usize {
        self.at
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corrupt(format!(
                "truncated buffer: need {n} bytes at offset {}, have {}",
                self.at,
                self.remaining()
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEADBEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        put_i64(&mut buf, -42);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_read_is_error() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert!(r.u16().is_ok());
        assert!(r.u32().is_err());
    }

    #[test]
    fn bytes_and_offset() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes(2).unwrap(), &[1, 2]);
        assert_eq!(r.offset(), 2);
        assert_eq!(r.remaining(), 3);
    }
}
